//! Property tests for the krb-lint lexer: totality and span fidelity on
//! random token soup.
//!
//! The lexer's contract (see `krb_lint::lexer`) is that *any* byte
//! sequence lexes without panicking and that concatenating the token
//! texts reproduces the input exactly. The soup generator deliberately
//! mixes the constructs with tricky closing conditions — raw-string
//! openers, unterminated quotes, nested comment markers, escapes,
//! multi-byte characters — with runs of arbitrary printable characters.

use krb_lint::lexer::lex;
use testkit::prelude::*;

/// One fragment of soup: either a construct chosen to hit a lexer edge
/// case, or a short burst of arbitrary printable characters.
fn fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("\"".to_string()),
        Just("'".to_string()),
        Just("b'".to_string()),
        Just("r#\"".to_string()),
        Just("br##\"".to_string()),
        Just("\"#".to_string()),
        Just("r#ident".to_string()),
        Just("//".to_string()),
        Just("/*".to_string()),
        Just("*/".to_string()),
        Just("\\".to_string()),
        Just("..=".to_string()),
        Just("<<=".to_string()),
        Just("1.5e3".to_string()),
        Just("0..8".to_string()),
        Just("'a>".to_string()),
        Just("🦀".to_string()),
        Just("'é'".to_string()),
        Just("\n".to_string()),
        Just("\t".to_string()),
        string::printable(0..=8),
    ]
}

testkit::prop! {
    /// The lexer never panics, and token texts concatenate back to the
    /// input with contiguous, in-order spans.
    fn lexer_is_total_and_spans_roundtrip [512] (
        parts in collection::vec(fragment(), 0..24),
    ) {
        let src: String = parts.concat();
        let toks = lex(&src);
        let rebuilt: String = toks.iter().map(|t| t.text).collect();
        prop_assert_eq!(&rebuilt, &src);
        let mut pos = 0usize;
        for t in &toks {
            prop_assert_eq!(t.start, pos);
            prop_assert!(!t.text.is_empty());
            prop_assert_eq!(&src[t.start..t.start + t.text.len()], t.text);
            pos += t.text.len();
        }
        prop_assert_eq!(pos, src.len());
    }

    /// Each token's recorded line/column agrees with a direct scan of
    /// the source prefix before it.
    fn lexer_line_col_agree_with_prefix_scan [256] (
        parts in collection::vec(fragment(), 0..16),
    ) {
        let src: String = parts.concat();
        for t in &lex(&src) {
            let prefix = &src[..t.start];
            let line = prefix.bytes().filter(|&b| b == b'\n').count() as u32 + 1;
            let col = prefix.rsplit('\n').next().unwrap_or("").chars().count() as u32 + 1;
            prop_assert_eq!((t.line, t.col), (line, col));
        }
    }
}
