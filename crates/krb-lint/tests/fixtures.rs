//! Golden tests over the fixture corpus.
//!
//! Every rule has a `bad` example (must fire that rule, output matched
//! byte-for-byte against `expected.txt`) and a `good` example (must lint
//! clean). Each fixture is analysed as if it sat at
//! `crates/kerberos/src/<RULE>_bad.rs` — the most heavily governed
//! location: `kerberos` is both a deterministic and a panic-free crate,
//! and `/src/` puts it in P001 scope — so a rule that regresses shows up
//! here before it shows up in the tree.
//!
//! Regenerate the goldens with `KRB_LINT_BLESS=1 cargo test -p krb-lint
//! --test fixtures` after an intentional diagnostic change.

use krb_lint::manifest::check_manifest;
use krb_lint::{analyze_source, analyze_workspace, FileInput, Rule};
use std::fs;
use std::path::PathBuf;

const SOURCE_RULES: &[Rule] = &[
    Rule::S001,
    Rule::S002,
    Rule::S003,
    Rule::S004,
    Rule::C001,
    Rule::D001,
    Rule::D002,
    Rule::P001,
    Rule::P002,
];

/// Rules of the flow pass (`analyze_workspace`): their fixtures form a
/// miniature workspace instead of a lone file.
const FLOW_RULES: &[Rule] = &[Rule::S005, Rule::D003, Rule::P003, Rule::A001, Rule::E001];

fn fixture_dir(rule: Rule) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(rule.id())
}

fn read(rule: Rule, name: &str) -> String {
    let path = fixture_dir(rule).join(name);
    match fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => panic!("fixture {} missing: {e}", path.display()),
    }
}

/// Lints a fixture as though it lived in the kerberos crate's src/.
fn lint_fixture(rule: Rule, name: &str) -> Vec<String> {
    let text = read(rule, name);
    let rel = format!("crates/kerberos/src/{}_{}", rule.id(), name);
    analyze_source(&rel, "kerberos", &text).iter().map(|f| f.to_string()).collect()
}

#[test]
fn bad_examples_fire_their_rule_and_match_golden() {
    let bless = std::env::var_os("KRB_LINT_BLESS").is_some();
    for &rule in SOURCE_RULES {
        let rendered = lint_fixture(rule, "bad.rs");
        assert!(
            rendered.iter().any(|l| l.starts_with(rule.id())),
            "{}/bad.rs must trigger {}; got: {rendered:#?}",
            rule.id(),
            rule.id()
        );
        let golden_path = fixture_dir(rule).join("expected.txt");
        let actual = rendered.join("\n") + "\n";
        if bless {
            fs::write(&golden_path, &actual).expect("write golden");
            continue;
        }
        let expected = fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("golden {} missing: {e}", golden_path.display()));
        assert_eq!(
            actual,
            expected,
            "{}/bad.rs diagnostics drifted from expected.txt (KRB_LINT_BLESS=1 to regenerate)",
            rule.id()
        );
    }
}

#[test]
fn good_examples_lint_clean() {
    for &rule in SOURCE_RULES {
        let rendered = lint_fixture(rule, "good.rs");
        assert!(
            rendered.is_empty(),
            "{}/good.rs must lint clean; got: {rendered:#?}",
            rule.id()
        );
    }
}

/// Runs the flow pass over a miniature workspace: the fixture itself
/// placed in the kerberos crate's `src/` (deterministic + hot-path
/// governed), plus the rule's optional `helper.rs` (a file in the
/// non-governed `bench` crate — D003's clock launderer lives there)
/// and optional `design.md` (E001's registry).
fn lint_flow_fixture(rule: Rule, name: &str) -> Vec<String> {
    let text = read(rule, name);
    let rel = format!("crates/kerberos/src/{}_{name}", rule.id());
    let helper = fs::read_to_string(fixture_dir(rule).join("helper.rs")).ok();
    let helper_rel = format!("crates/bench/src/{}_helper.rs", rule.id());
    let mut inputs = vec![FileInput { rel_path: &rel, crate_name: "kerberos", text: &text }];
    if let Some(h) = &helper {
        inputs.push(FileInput { rel_path: &helper_rel, crate_name: "bench", text: h });
    }
    let design = fs::read_to_string(fixture_dir(rule).join("design.md")).ok();
    let (findings, _) = analyze_workspace(&inputs, design.as_deref().map(|d| ("DESIGN.md", d)));
    findings.iter().map(|f| f.to_string()).collect()
}

#[test]
fn flow_bad_examples_fire_their_rule_and_match_golden() {
    let bless = std::env::var_os("KRB_LINT_BLESS").is_some();
    for &rule in FLOW_RULES {
        let rendered = lint_flow_fixture(rule, "bad.rs");
        assert!(
            rendered.iter().any(|l| l.starts_with(rule.id())),
            "{}/bad.rs must trigger {}; got: {rendered:#?}",
            rule.id(),
            rule.id()
        );
        let golden_path = fixture_dir(rule).join("expected.txt");
        let actual = rendered.join("\n") + "\n";
        if bless {
            fs::write(&golden_path, &actual).expect("write golden");
            continue;
        }
        let expected = fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("golden {} missing: {e}", golden_path.display()));
        assert_eq!(
            actual,
            expected,
            "{}/bad.rs diagnostics drifted from expected.txt (KRB_LINT_BLESS=1 to regenerate)",
            rule.id()
        );
    }
}

/// Flow-rule good examples are clean under the flow pass AND the
/// lexical pass — the sanctioned pattern must not trade one rule's
/// finding for another's.
#[test]
fn flow_good_examples_lint_clean() {
    for &rule in FLOW_RULES {
        let flow = lint_flow_fixture(rule, "good.rs");
        assert!(flow.is_empty(), "{}/good.rs must flow-lint clean; got: {flow:#?}", rule.id());
        let lexical = lint_fixture(rule, "good.rs");
        assert!(
            lexical.is_empty(),
            "{}/good.rs must also lexically lint clean; got: {lexical:#?}",
            rule.id()
        );
    }
}

#[test]
fn h001_manifest_fixtures() {
    let bless = std::env::var_os("KRB_LINT_BLESS").is_some();
    let bad = read(Rule::H001, "bad.toml");
    let findings = check_manifest("crates/kerberos/Cargo.toml", &bad);
    assert!(
        findings.iter().all(|f| f.rule == Rule::H001) && !findings.is_empty(),
        "H001/bad.toml must trigger H001; got: {findings:#?}"
    );
    let rendered: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
    let golden_path = fixture_dir(Rule::H001).join("expected.txt");
    let actual = rendered.join("\n") + "\n";
    if bless {
        fs::write(&golden_path, &actual).expect("write golden");
    } else {
        let expected = fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("golden {} missing: {e}", golden_path.display()));
        assert_eq!(actual, expected, "H001/bad.toml diagnostics drifted from expected.txt");
    }

    let good = read(Rule::H001, "good.toml");
    let clean = check_manifest("crates/kerberos/Cargo.toml", &good);
    assert!(clean.is_empty(), "H001/good.toml must lint clean; got: {clean:#?}");
}

/// The corpus itself is complete: every rule has its pair of examples on
/// disk, so adding a rule without fixtures fails loudly.
#[test]
fn every_rule_has_fixtures() {
    for &rule in krb_lint::ALL_RULES {
        let dir = fixture_dir(rule);
        let (bad, good) = if rule == Rule::H001 {
            ("bad.toml", "good.toml")
        } else {
            ("bad.rs", "good.rs")
        };
        assert!(dir.join(bad).is_file(), "missing {}/{bad}", rule.id());
        assert!(dir.join(good).is_file(), "missing {}/{good}", rule.id());
    }
}
