//! Property tests for the krb-lint syntax layer and taint fixpoint.
//!
//! `krb_lint::syntax::parse` promises totality: any token stream —
//! including unbalanced braces, truncated items, and arbitrary soup —
//! parses without panicking, and every span it does record is a
//! well-formed brace pair over in-bounds significant-token indices.
//! The soup generator below skews heavily toward Rust-shaped fragments
//! so a useful share of inputs actually contain parseable functions
//! with parameters, `let` bindings, and calls, not just noise.

use krb_lint::lexer::lex;
use krb_lint::syntax::parse;
use krb_lint::taint::local_taint;
use std::collections::BTreeSet;
use testkit::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("key".to_string()),
        Just("session_key".to_string()),
        Just("password".to_string()),
        Just("buf".to_string()),
        Just("tmp".to_string()),
        Just("n".to_string()),
        Just("DesKey".to_string()),
    ]
}

/// One fragment: a structural construct with a tricky closing
/// condition, or a burst of arbitrary printable characters.
fn fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("fn f(".to_string()),
        Just("pub fn g(key: DesKey) -> DesKey {".to_string()),
        Just(") {".to_string()),
        Just("{".to_string()),
        Just("}".to_string()),
        Just("(".to_string()),
        Just(")".to_string()),
        Just("[".to_string()),
        Just("]".to_string()),
        Just(";".to_string()),
        Just(",".to_string()),
        Just("let ".to_string()),
        Just(" = ".to_string()),
        Just("impl Sealer ".to_string()),
        Just("mod m ".to_string()),
        Just("#[cfg(test)]\n".to_string()),
        Just("#[test]\n".to_string()),
        Just("format!(\"{key}\")".to_string()),
        Just("h(a, b)".to_string()),
        Just(".len()".to_string()),
        Just("s2k::".to_string()),
        Just("\"a str\"".to_string()),
        Just("// line\n".to_string()),
        Just("/*".to_string()),
        ident(),
        string::printable(0..=6),
    ]
}

testkit::prop! {
    /// `parse` never panics, and every span it records — item bodies,
    /// function bodies, `let` initializers, call arguments — is
    /// in-bounds; brace spans open with `{` and close with the
    /// matching `}`.
    fn parse_is_total_and_spans_are_well_formed [384] (
        parts in collection::vec(fragment(), 0..32),
    ) {
        let src: String = parts.concat();
        let toks = lex(&src);
        let file = parse(&toks);
        for &i in &file.sig {
            prop_assert!(i < toks.len());
        }
        // Test regions are byte ranges (brace start offsets), not sig
        // indices.
        for &(s, e) in &file.test_regions {
            prop_assert!(s < e && e < src.len());
        }
        for item in &file.items {
            prop_assert!(item.open < item.close && item.close < file.sig.len());
            prop_assert_eq!(toks[file.sig[item.open]].text, "{");
            prop_assert_eq!(toks[file.sig[item.close]].text, "}");
        }
        for f in &file.fns {
            let (open, close) = f.body;
            prop_assert!(open < close && close < file.sig.len());
            prop_assert_eq!(toks[file.sig[open]].text, "{");
            prop_assert_eq!(toks[file.sig[close]].text, "}");
            prop_assert!(f.name_at < file.sig.len());
            for l in &f.lets {
                prop_assert!(l.at < file.sig.len());
                prop_assert!(l.rhs.0 <= l.rhs.1 && l.rhs.1 <= file.sig.len());
            }
            for c in &f.calls {
                prop_assert!(c.name_at < file.sig.len());
                for &(a, b) in &c.args {
                    prop_assert!(a <= b && b <= file.sig.len());
                }
            }
        }
    }

    /// Taint is monotone in its call knowledge: telling the engine
    /// that MORE calls return secrets can only grow the tainted set,
    /// never shrink it — the guarantee that conservative call-graph
    /// resolution (unresolved = not secret-returning) errs toward
    /// missing findings, never toward unstable ones.
    fn local_taint_is_monotone_in_secret_calls [256] (
        parts in collection::vec(fragment(), 0..32),
    ) {
        let src: String = parts.concat();
        let toks = lex(&src);
        let file = parse(&toks);
        for f in &file.fns {
            let none = BTreeSet::new();
            let all: BTreeSet<usize> = f.calls.iter().map(|c| c.name_at).collect();
            let base = local_taint(&toks, &file.sig, f, &none);
            let grown = local_taint(&toks, &file.sig, f, &all);
            prop_assert!(
                base.is_subset(&grown),
                "taint shrank when every call was secret-returning: {base:?} ⊄ {grown:?}"
            );
        }
    }
}
