//! GOOD: unexpected states surface as errors.

pub fn dispatch(kind: u8) -> Result<u64, Error> {
    match kind {
        0 => Ok(1),
        _ => Err(Error::BadKind(kind)),
    }
}
