//! BAD: aborting macros in protocol code.

pub fn dispatch(kind: u8) -> u64 {
    match kind {
        0 => 1,
        1 => todo!("renewals"),
        2 => unimplemented!(),
        3 => unreachable!("validated above"),
        _ => panic!("bad message kind {kind}"),
    }
}
