//! BAD: a secret key type deriving `Debug` (and `Serialize`) lets key
//! bytes reach any log line that formats it.

#[derive(Clone, Copy, Debug, Serialize, PartialEq, Eq)]
pub struct DesKey(pub [u8; 8]);
