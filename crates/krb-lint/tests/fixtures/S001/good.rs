//! GOOD: no leaking derives; Debug is hand-written and redacts.

#[derive(Clone, Copy, PartialEq, Eq)]
pub struct DesKey(pub [u8; 8]);

impl core::fmt::Debug for DesKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "DesKey(****************)")
    }
}
