//! GOOD: ordered containers; every traversal is deterministic.

use std::collections::{BTreeMap, BTreeSet};

pub struct Registry {
    by_name: BTreeMap<String, u32>,
    live: BTreeSet<u32>,
}
