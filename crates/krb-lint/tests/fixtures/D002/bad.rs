//! BAD: RandomState-ordered containers in a deterministic crate make
//! every iteration order (and any output derived from it) run-varying.

use std::collections::{HashMap, HashSet};

pub struct Registry {
    by_name: HashMap<String, u32>,
    live: HashSet<u32>,
}
