//! GOOD: all key/MAC comparisons route through krb_crypto::ct_eq.

pub fn verify(claimed: &[u8], computed: &[u8], skey: &Key, expected: &Key) -> bool {
    krb_crypto::ct_eq(claimed, computed) && skey.ct_eq(expected)
}
