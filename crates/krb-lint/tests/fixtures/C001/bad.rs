//! BAD: variable-time comparison of MAC and key bytes. The early-exit
//! of slice `==` leaks a matching prefix through timing.

pub fn verify(claimed_mac: &[u8], computed: &[u8], skey: &Key, expected: &Key) -> bool {
    if claimed_mac == computed {
        return skey.bytes == expected.bytes;
    }
    false
}
