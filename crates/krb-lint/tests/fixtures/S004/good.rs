//! S004 good example: keys reach the trace only as redacted
//! fingerprints (`kerberos::fingerprint`, an 8-hex-char digest prefix),
//! and scopes are principal names, not secrets.

use krb_trace::{EventKind, Tracer, Value};

pub fn record_issue(trace: &Tracer, now: u64, client: &str, session_key: &DesKey) {
    trace.emit(
        EventKind::TicketIssued,
        now,
        vec![
            ("client", Value::str(client)),
            ("key_fpr", Value::str(fingerprint(session_key))),
        ],
    );
    trace.counter("kdc.issued", client, 1);
}
