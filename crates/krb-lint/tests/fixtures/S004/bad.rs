//! S004 bad example: key material handed to trace emissions. Traces
//! export as JSONL and render in narrations, so this is a secrecy leak
//! even though no format macro is involved.

use krb_trace::{EventKind, Tracer, Value};

pub fn record_issue(trace: &Tracer, now: u64, session_key: &DesKey) {
    trace.emit(
        EventKind::TicketIssued,
        now,
        vec![("session", Value::bytes(session_key.bytes().to_vec()))],
    );
}

pub fn record_scope(trace: &Tracer, now: u64, tgs_key: &DesKey) {
    let _span = trace.begin_span("issue", now, vec![("k", Value::bytes(tgs_key.bytes().to_vec()))]);
}
