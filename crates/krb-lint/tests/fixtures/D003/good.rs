//! GOOD: time is a parameter. The simulator clock hands `now_us` in,
//! so the function is a pure function of its inputs and every run
//! replays byte-identically from a seed.

pub fn expiry_from_sim_clock(now_us: u64, lifetime_us: u64) -> u64 {
    now_us.saturating_add(lifetime_us)
}
