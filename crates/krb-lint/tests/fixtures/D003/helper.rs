//! The laundering helper: lives in a non-governed crate (`bench`), so
//! D001's token scan never sees the `Instant` below from inside a
//! deterministic crate. D003 exists to follow the call edge here.

use std::time::Instant;

pub fn stamp_us(epoch: Instant) -> u64 {
    Instant::now().duration_since(epoch).as_micros() as u64
}
