//! BAD: a deterministic-crate function takes its notion of "now" from
//! a helper crate that reads the wall clock — same nondeterminism as a
//! direct `Instant::now()`, one call hop further away.

pub fn expiry_from_wall_clock(epoch: Epoch, lifetime_us: u64) -> u64 {
    stamp_us(epoch).saturating_add(lifetime_us)
}
