//! GOOD: log the public identity, never the key.

pub fn on_login(principal: &str, _session: u64) -> String {
    format!("login ok for {principal}")
}
