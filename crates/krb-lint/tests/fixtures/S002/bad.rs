//! BAD: key material interpolated into a formatting macro.

pub fn on_login(principal: &str, session_key: u64) -> String {
    format!("login ok for {}, key={:x}", principal, session_key)
}
