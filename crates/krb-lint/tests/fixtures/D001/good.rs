//! GOOD: time comes from the simulated clock, I/O from simnet.

pub fn stamp(net: &simnet::Network) -> u64 {
    net.now().as_micros()
}
