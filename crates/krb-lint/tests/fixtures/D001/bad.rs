//! BAD: wall-clock and OS facilities in a deterministic crate.

pub fn stamp() -> u64 {
    let t = std::time::SystemTime::now();
    let started = std::time::Instant::now();
    std::thread::sleep(std::time::Duration::from_millis(1));
    let _ = std::net::UdpSocket::bind("127.0.0.1:0");
    drop((t, started));
    0
}
