//! GOOD: emissions and registry agree exactly — every emitted name has
//! a row, every row is emitted.

pub struct Kdc {
    trace: Tracer,
}

impl Kdc {
    pub fn issue(&mut self, principal: &str) {
        self.trace.counter("kdc.issued", principal, 1);
    }

    pub fn retire(&mut self, principal: &str) {
        self.trace.counter("kdc.retired", principal, 1);
    }
}
