//! BAD: drift in both directions — `kdc.minted` is emitted but never
//! registered in design.md, and the registry's `kdc.retired` row is
//! never emitted anywhere.

pub struct Kdc {
    trace: Tracer,
}

impl Kdc {
    pub fn issue(&mut self, principal: &str) {
        self.trace.counter("kdc.issued", principal, 1);
        self.trace.counter("kdc.minted", principal, 1);
    }
}
