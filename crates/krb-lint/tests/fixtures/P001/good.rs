//! GOOD: errors are returned; poisoned locks are recovered, not
//! propagated as panics.

pub fn parse(data: &[u8], state: &Shared) -> Result<u64, Error> {
    let guard = state.lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    if data.len() < 8 {
        return Err(Error::Truncated);
    }
    let mut b = [0u8; 8];
    b.copy_from_slice(&data[..8]);
    drop(guard);
    Ok(u64::from_be_bytes(b))
}
