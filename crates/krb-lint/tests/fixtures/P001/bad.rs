//! BAD: `.unwrap()` / `.expect()` in protocol code panic on adversarial
//! input — a remote denial of service.

pub fn parse(data: &[u8], state: &Shared) -> u64 {
    let guard = state.lock.lock().unwrap();
    let n = u64::from_be_bytes(data[..8].try_into().expect("8 bytes"));
    drop(guard);
    n
}
