//! GOOD: the sanctioned Debug — a visible `****` redaction marker.

impl core::fmt::Debug for DesKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "DesKey(****************)")
    }
}
