//! BAD: a hand-written Debug impl on a secret type that prints the raw
//! bytes, plus a Display impl (never acceptable on key types).

impl core::fmt::Debug for DesKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "DesKey({:02x?})", self.0)
    }
}

impl core::fmt::Display for DesKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:02x?}", self.0)
    }
}
