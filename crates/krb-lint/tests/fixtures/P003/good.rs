//! GOOD: the length converts via `try_from` and saturates — a
//! saturated length can never frame correctly, so oversized input
//! fails closed at the decoder instead of mis-framing.

pub fn encode_record(out: &mut Vec<u8>, payload: &[u8]) {
    let body_len = u32::try_from(payload.len()).unwrap_or(u32::MAX);
    out.extend_from_slice(&body_len.to_be_bytes());
    out.extend_from_slice(payload);
}
