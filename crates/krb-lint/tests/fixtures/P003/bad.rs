//! BAD: a wire length field converted with `as` — on a 64-bit host an
//! oversized body silently truncates to a small length and the frame
//! parses as a different, shorter message.

pub fn encode_record(out: &mut Vec<u8>, payload: &[u8]) {
    let body_len = payload.len();
    out.extend_from_slice(&(body_len as u32).to_be_bytes());
    out.extend_from_slice(payload);
}
