//! GOOD: the sanctioned shapes — fingerprint the key before it reaches
//! any string, and let non-secret derivations (lengths, tags) flow
//! freely.

use krb_crypto::des::DesKey;

pub fn audit_line(client_key: &DesKey) -> String {
    let tag = fingerprint(client_key);
    format!("issuing under {tag}")
}

pub fn describe(session_key: &DesKey, payload: &[u8]) -> String {
    let nbytes = payload.len();
    let id = fingerprint(session_key);
    format!("sealed {nbytes} bytes under {id}")
}
