//! BAD: the secret reaches the format sink through a rename and
//! through a callee — S002's single token window sees neither.

use krb_crypto::des::DesKey;

/// The rename: `material` is not a secret-named identifier, but it
/// carries `client_key`'s bytes into the format string.
pub fn audit_line(client_key: &DesKey) -> String {
    let material = client_key;
    format!("issuing under {material:?}")
}

/// The callee: its own parameter is secret-typed and hits a format
/// sink directly.
fn render(token: &DesKey) -> String {
    format!("{token:?}")
}

/// The call hop: a secret passed into `render` reaches that sink one
/// hop away.
pub fn describe(session_key: &DesKey) -> String {
    render(session_key)
}
