//! GOOD: one `Vec::with_capacity` sized up front is the sanctioned
//! owned-result pattern — the extend and resize below reuse that
//! allocation.

pub struct Sealer;

impl Sealer {
    pub fn seal_with(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(plaintext.len() + 8);
        buf.extend_from_slice(plaintext);
        buf.resize(buf.len().next_multiple_of(8), 0);
        buf
    }
}
