//! BAD: a heap allocation inside a declared hot-path function — the
//! per-request copy the E13/E17 throughput numbers never see in a
//! test, only in the bench regression.

pub struct Sealer;

impl Sealer {
    pub fn seal_with(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let mut buf = plaintext.to_vec();
        buf.resize(buf.len().next_multiple_of(8), 0);
        buf
    }
}
