//! The flow-aware pass: whole-workspace analysis over the syntax layer
//! ([`crate::syntax`]), the call graph ([`crate::callgraph`]), and the
//! taint engine ([`crate::taint`]).
//!
//! [`analyze_workspace`] is the single entry point; it runs S005 plus
//! the four structural rules that need function bodies rather than raw
//! tokens:
//!
//! - **D003** — a deterministic-crate function reaching (≤3 call hops)
//!   a wall-clock read *defined outside the governed set*. D001 already
//!   flags `Instant` lexically inside governed crates; D003 catches the
//!   laundered form, where the clock lives in `bench` or another exempt
//!   helper crate and only the call crosses the boundary.
//! - **P003** — `as u8/u16/u32` on a length-named operand inside an
//!   encode/decode-path function of a deterministic crate. Wire lengths
//!   must fail closed (`u32::try_from`), not silently truncate into a
//!   mis-framed message.
//! - **A001** — heap allocation inside a configured hot-path function
//!   ([`crate::config::HOT_PATH_FNS`]).
//! - **E001** — drift between metric names emitted in code and the
//!   "Metric name registry" table in DESIGN.md, in both directions.

use crate::callgraph::{FnRef, Graph};
use crate::config::{
    is_codec_fn, is_len_ident, is_test_path, ALLOC_MACROS, ALLOC_METHODS, ALLOC_TYPES,
    DETERMINISTIC_CRATES, HOT_PATH_FNS, METRIC_EMIT_CALLS, METRIC_REGISTRY_HEADING,
};
use crate::diag::{Finding, Rule};
use crate::lexer::{is_keyword, lex, TokKind, Token};
use crate::syntax::{parse, FileSyntax, FnInfo};
use crate::taint::{check_s005, TaintCtx, MAX_HOPS};
use std::collections::{BTreeMap, BTreeSet};

/// One workspace file handed to the flow pass.
pub struct FileInput<'a> {
    /// Workspace-relative path.
    pub rel_path: &'a str,
    /// Owning crate name.
    pub crate_name: &'a str,
    /// Full source text.
    pub text: &'a str,
}

/// Coverage counters the E19 bench reports.
#[derive(Default, Clone, Copy)]
pub struct FlowStats {
    /// Functions with bodies parsed across the workspace.
    pub functions: usize,
    /// Call sites the graph resolved to a unique definition.
    pub call_edges: usize,
    /// (fn, param) taint summaries expanded by the S005 search.
    pub taint_paths: usize,
}

/// Runs every flow rule over the workspace. `design` is DESIGN.md as
/// (rel_path, text), when present, for E001.
pub fn analyze_workspace(
    files: &[FileInput<'_>],
    design: Option<(&str, &str)>,
) -> (Vec<Finding>, FlowStats) {
    let lexed: Vec<Vec<Token<'_>>> = files.iter().map(|f| lex(f.text)).collect();
    let parsed: Vec<FileSyntax> = lexed.iter().map(|t| parse(t)).collect();
    let with_syntax: Vec<(&str, &str, &FileSyntax)> = files
        .iter()
        .zip(&parsed)
        .map(|(f, p)| (f.rel_path, f.crate_name, p))
        .collect();
    let graph = Graph::build(&with_syntax);
    let meta: Vec<(&str, &str)> = files.iter().map(|f| (f.rel_path, f.crate_name)).collect();
    let ctx = TaintCtx { files: &meta, lexed: &lexed, parsed: &parsed, graph: &graph };

    let mut out = Vec::new();
    let taint = check_s005(&ctx, &mut out);
    check_d003(&ctx, &mut out);
    check_p003(&ctx, &mut out);
    check_a001(&ctx, &mut out);
    check_e001(&ctx, design, &mut out);
    out.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });

    let stats = FlowStats {
        functions: parsed.iter().map(|p| p.fns.len()).sum(),
        call_edges: graph.edges,
        taint_paths: taint.paths,
    };
    (out, stats)
}

/// Iterates every production (non-test) function with its file context.
fn production_fns<'a>(
    ctx: &'a TaintCtx<'a>,
) -> impl Iterator<Item = (usize, &'a str, &'a str, usize, &'a FnInfo)> {
    ctx.files.iter().enumerate().flat_map(move |(file, &(rel, krate))| {
        let skip_file = is_test_path(rel);
        ctx.parsed[file].fns.iter().enumerate().filter_map(move |(fn_idx, f)| {
            (!skip_file && !f.is_test).then_some((file, rel, krate, fn_idx, f))
        })
    })
}

/// D003: governed-crate call chains that end at a wall-clock read in a
/// non-governed crate.
fn check_d003(ctx: &TaintCtx<'_>, out: &mut Vec<Finding>) {
    // Roots: functions whose body reads the clock, defined OUTSIDE the
    // governed set (inside it, D001 flags the read itself).
    let mut dist: BTreeMap<FnRef, (usize, FnRef)> = BTreeMap::new();
    for (file, &(_, krate)) in ctx.files.iter().enumerate() {
        if DETERMINISTIC_CRATES.contains(&krate) {
            continue;
        }
        for (fn_idx, f) in ctx.parsed[file].fns.iter().enumerate() {
            if reads_clock(ctx, file, f) {
                let r = FnRef { file, fn_idx };
                dist.insert(r, (0, r));
            }
        }
    }
    if dist.is_empty() {
        return;
    }
    // Bounded relaxation: hop counts up to MAX_HOPS, deterministic by
    // preferring (fewer hops, smaller root ref).
    for _ in 0..MAX_HOPS {
        let mut updates: Vec<(FnRef, (usize, FnRef))> = Vec::new();
        for (file, &(_, krate)) in ctx.files.iter().enumerate() {
            for (fn_idx, f) in ctx.parsed[file].fns.iter().enumerate() {
                let me = FnRef { file, fn_idx };
                for call in &f.calls {
                    let Some(callee) = ctx.graph.resolve(call, krate, file) else { continue };
                    if callee == me {
                        continue;
                    }
                    if let Some(&(d, root)) = dist.get(&callee) {
                        let cand = (d + 1, root);
                        if cand.0 <= MAX_HOPS && dist.get(&me).is_none_or(|cur| cand < *cur) {
                            updates.push((me, cand));
                        }
                    }
                }
            }
        }
        if updates.is_empty() {
            break;
        }
        for (k, v) in updates {
            let e = dist.entry(k).or_insert(v);
            if v < *e {
                *e = v;
            }
        }
    }
    // Findings: every governed call site whose callee reaches a root.
    for (file, rel, krate, _, f) in production_fns(ctx) {
        if !DETERMINISTIC_CRATES.contains(&krate) {
            continue;
        }
        let (toks, sig) = ctx.toks_sig(file);
        for call in &f.calls {
            let Some(callee) = ctx.graph.resolve(call, krate, file) else { continue };
            let Some(&(d, root)) = dist.get(&callee) else { continue };
            let hops = d + 1;
            if hops > MAX_HOPS {
                continue;
            }
            let at = &toks[sig[call.name_at]];
            let root_fn = &ctx.parsed[root.file].fns[root.fn_idx];
            out.push(Finding {
                rule: Rule::D003,
                file: rel.to_string(),
                line: at.line,
                col: at.col,
                message: format!(
                    "`{}` reaches a wall-clock read in `{}` (crate `{}`, {hops} hop(s) away); \
                     deterministic crates take time from the simulator clock only",
                    call.callee,
                    root_fn.name,
                    ctx.graph.crate_of(root),
                ),
            });
        }
    }
}

/// Whether `f`'s body reads the wall clock (`Instant::now`,
/// `SystemTime::now`).
fn reads_clock(ctx: &TaintCtx<'_>, file: usize, f: &FnInfo) -> bool {
    let (toks, sig) = ctx.toks_sig(file);
    let t = |k: usize| toks[sig[k]].text;
    (f.body.0..f.body.1.min(sig.len().saturating_sub(2))).any(|k| {
        matches!(t(k), "Instant" | "SystemTime") && t(k + 1) == "::" && t(k + 2) == "now"
    })
}

/// P003: truncating casts on length operands in codec functions.
fn check_p003(ctx: &TaintCtx<'_>, out: &mut Vec<Finding>) {
    for (file, rel, krate, _, f) in production_fns(ctx) {
        if !DETERMINISTIC_CRATES.contains(&krate) || !is_codec_fn(&f.name) {
            continue;
        }
        let (toks, sig) = ctx.toks_sig(file);
        let t = |k: usize| toks[sig[k]].text;
        for k in f.body.0 + 1..f.body.1.min(sig.len().saturating_sub(1)) {
            if t(k) != "as" || toks[sig[k]].kind != TokKind::Ident {
                continue;
            }
            let target = t(k + 1);
            if !matches!(target, "u8" | "u16" | "u32") {
                continue;
            }
            let Some(culprit) = cast_operand_len_ident(toks, sig, f.body.0, k) else { continue };
            let at = &toks[sig[k]];
            out.push(Finding {
                rule: Rule::P003,
                file: rel.to_string(),
                line: at.line,
                col: at.col,
                message: format!(
                    "`{culprit} as {target}` in codec fn `{}` truncates silently on oversized \
                     input; convert lengths with u32::try_from (fail closed) instead",
                    f.name
                ),
            });
        }
    }
}

/// Walks left from the `as` at `sig[cast]` over one postfix-expression
/// operand; returns the first length-named identifier in it.
fn cast_operand_len_ident(
    toks: &[Token<'_>],
    sig: &[usize],
    body_open: usize,
    cast: usize,
) -> Option<String> {
    let mut depth = 0i64;
    let mut p = cast;
    let mut steps = 0;
    let mut found: Option<String> = None;
    while p > body_open && steps < 24 {
        p -= 1;
        steps += 1;
        let tok = &toks[sig[p]];
        match tok.text {
            ")" | "]" => depth += 1,
            "(" | "[" => {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            }
            "." | "::" | "?" | "&" => {}
            _ if tok.kind == TokKind::Ident && !is_keyword(tok.text) => {
                if found.is_none() && is_len_ident(tok.text) {
                    found = Some(tok.text.to_string());
                }
            }
            _ if tok.kind == TokKind::Number => {}
            _ if depth > 0 => {} // operators inside a call's arguments
            _ => break,          // operator/statement boundary at depth 0
        }
    }
    found
}

/// A001: heap allocation inside the configured hot-path functions.
fn check_a001(ctx: &TaintCtx<'_>, out: &mut Vec<Finding>) {
    for (file, rel, krate, _, f) in production_fns(ctx) {
        if !HOT_PATH_FNS.contains(&(krate, f.name.as_str())) {
            continue;
        }
        let (toks, sig) = ctx.toks_sig(file);
        for call in &f.calls {
            let what = if call.is_method && ALLOC_METHODS.contains(&call.callee.as_str()) {
                Some(format!(".{}()", call.callee))
            } else if call.is_macro && ALLOC_MACROS.contains(&call.callee.as_str()) {
                Some(format!("{}!", call.callee))
            } else if !call.is_method && call.callee == "new" {
                call.path
                    .last()
                    .filter(|p| ALLOC_TYPES.contains(&p.as_str()))
                    .map(|p| format!("{p}::new()"))
            } else {
                None
            };
            if let Some(what) = what {
                let at = &toks[sig[call.name_at]];
                out.push(Finding {
                    rule: Rule::A001,
                    file: rel.to_string(),
                    line: at.line,
                    col: at.col,
                    message: format!(
                        "`{what}` allocates inside hot-path fn `{}`; hoist the buffer, reuse a \
                         scratch field, or size it once with Vec::with_capacity",
                        f.name
                    ),
                });
            }
        }
    }
}

/// E001: metric names emitted in code vs DESIGN.md's registry table.
fn check_e001(ctx: &TaintCtx<'_>, design: Option<(&str, &str)>, out: &mut Vec<Finding>) {
    let Some((design_path, design_text)) = design else { return };
    let registry = parse_registry(design_text);
    let registered: BTreeSet<&str> = registry.iter().map(|(n, _)| n.as_str()).collect();

    let mut emitted: BTreeSet<String> = BTreeSet::new();
    for (file, rel, _, _, f) in production_fns(ctx) {
        let (toks, sig) = ctx.toks_sig(file);
        for call in &f.calls {
            if !call.is_method || !METRIC_EMIT_CALLS.contains(&call.callee.as_str()) {
                continue;
            }
            let Some(&(a, b)) = call.args.first() else { continue };
            // First string literal of the first argument is the metric
            // name; a purely dynamic name is out of E001's scope.
            let Some(lit) = (a..b.min(sig.len()))
                .map(|k| &toks[sig[k]])
                .find(|t| t.kind == TokKind::Str)
            else {
                continue;
            };
            let name = lit.text.trim_matches('"').to_string();
            if !registered.contains(name.as_str()) {
                out.push(Finding {
                    rule: Rule::E001,
                    file: rel.to_string(),
                    line: lit.line,
                    col: lit.col,
                    message: format!(
                        "metric `{name}` is emitted here but absent from DESIGN.md's \
                         \"{METRIC_REGISTRY_HEADING}\" table"
                    ),
                });
            }
            emitted.insert(name);
        }
    }
    for (name, line) in &registry {
        if !emitted.contains(name) {
            out.push(Finding {
                rule: Rule::E001,
                file: design_path.to_string(),
                line: *line,
                col: 1,
                message: format!(
                    "registry lists metric `{name}` but no production code emits it; \
                     drop the row or restore the emission"
                ),
            });
        }
    }
}

/// Extracts `(name, line)` rows from DESIGN.md's registry table: under
/// the [`METRIC_REGISTRY_HEADING`] heading, every `|`-row's first
/// backtick-quoted cell, until the next heading.
fn parse_registry(design_text: &str) -> Vec<(String, u32)> {
    let mut rows = Vec::new();
    let mut in_section = false;
    for (i, line) in design_text.lines().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.starts_with('#') {
            in_section = trimmed.contains(METRIC_REGISTRY_HEADING);
            continue;
        }
        if !in_section || !trimmed.starts_with('|') {
            continue;
        }
        let Some(open) = trimmed.find('`') else { continue };
        let rest = &trimmed[open + 1..];
        let Some(close) = rest.find('`') else { continue };
        let name = &rest[..close];
        if !name.is_empty() {
            rows.push((name.to_string(), (i + 1) as u32));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str, &str)], design: Option<(&str, &str)>) -> Vec<Finding> {
        let inputs: Vec<FileInput<'_>> = files
            .iter()
            .map(|&(rel_path, crate_name, text)| FileInput { rel_path, crate_name, text })
            .collect();
        analyze_workspace(&inputs, design).0
    }

    #[test]
    fn d003_flags_laundered_clock_but_not_direct_read() {
        let gov = "fn tick(x: u32) -> f64 { measure(x) }";
        let helper = "pub fn measure(x: u32) -> f64 { let t = Instant::now(); t.elapsed() }";
        let f = run(
            &[
                ("crates/kerberos/src/kdc.rs", "kerberos", gov),
                ("crates/bench/src/lib.rs", "bench", helper),
            ],
            None,
        );
        assert_eq!(f.iter().filter(|x| x.rule == Rule::D003).count(), 1, "{f:#?}");
        assert!(f[0].message.contains("measure"));
        assert!(f[0].message.contains("1 hop"));
        // The read itself, in the exempt crate, is not D003's business.
        assert!(!f.iter().any(|x| x.file.contains("bench")));
    }

    #[test]
    fn d003_hop_budget() {
        let gov = "fn tick() { a1(); }";
        let helper = "pub fn a1() { a2() }\npub fn a2() { a3() }\npub fn a3() { a4() }\n\
                      pub fn a4() { let _ = Instant::now(); }";
        let f = run(
            &[
                ("crates/kerberos/src/kdc.rs", "kerberos", gov),
                ("crates/bench/src/lib.rs", "bench", helper),
            ],
            None,
        );
        // tick → a1 → a2 → a3 → a4 is 4 hops: over budget, silent.
        assert!(f.iter().all(|x| x.rule != Rule::D003), "{f:#?}");
    }

    #[test]
    fn p003_fires_only_in_codec_fns() {
        let src = r#"
            fn encode_body(buf: &mut Vec<u8>, body: &[u8]) {
                let n = (body.len() as u32).to_be_bytes();
                buf.extend_from_slice(&n);
            }
            fn retry_policy(attempts: usize) -> u32 { attempts as u32 }
        "#;
        let f = run(&[("crates/kerberos/src/encoding.rs", "kerberos", src)], None);
        let p: Vec<_> = f.iter().filter(|x| x.rule == Rule::P003).collect();
        assert_eq!(p.len(), 1, "{f:#?}");
        assert!(p[0].message.contains("encode_body"));
        assert!(p[0].message.contains("len as u32"));
    }

    #[test]
    fn a001_flags_alloc_but_not_with_capacity() {
        let src = r#"
            fn handle_batch(&mut self, reqs: &[Req]) -> Vec<Vec<u8>> {
                let mut out = Vec::with_capacity(reqs.len());
                let tag = self.name.clone();
                let extra = Vec::new();
                let msg = format!("x");
                out
            }
        "#;
        let f = run(&[("crates/kerberos/src/kdc.rs", "kerberos", src)], None);
        let msgs: Vec<&str> = f
            .iter()
            .filter(|x| x.rule == Rule::A001)
            .map(|x| x.message.as_str())
            .collect();
        assert_eq!(msgs.len(), 3, "{f:#?}");
        assert!(msgs.iter().any(|m| m.contains(".clone()")));
        assert!(msgs.iter().any(|m| m.contains("Vec::new()")));
        assert!(msgs.iter().any(|m| m.contains("format!")));
    }

    #[test]
    fn e001_reports_drift_both_ways() {
        let src = r#"fn report(&self) { self.trace.counter("kdc.issued", scope, 1);
                     self.trace.counter("kdc.unlisted", scope, 1); }"#;
        let design = "# Design\n\n## Metric name registry\n\n| name | meaning |\n|---|---|\n\
                      | `kdc.issued` | tickets |\n| `kdc.orphaned` | nothing |\n\n## Next\n";
        let f = run(
            &[("crates/kerberos/src/kdc.rs", "kerberos", src)],
            Some(("DESIGN.md", design)),
        );
        let e: Vec<_> = f.iter().filter(|x| x.rule == Rule::E001).collect();
        assert_eq!(e.len(), 2, "{f:#?}");
        assert!(e.iter().any(|x| x.message.contains("kdc.unlisted") && x.file.ends_with(".rs")));
        assert!(e.iter().any(|x| x.message.contains("kdc.orphaned") && x.file == "DESIGN.md"));
    }
}
