//! Rule H001: hermeticity of `Cargo.toml` manifests.
//!
//! This absorbs (and replaces) the `grep` guard that `verify.sh` carried
//! since PR 1: every entry in any `*dependencies*` section must resolve
//! in-tree — a `path` dependency or a `workspace = true` reference. A
//! bare version string, a `version =` inline table without `path`, or a
//! `git =` source all mean cargo would reach the network, which the
//! build must never do.

use crate::diag::{Finding, Rule};

/// Checks one manifest. `rel_path` is used verbatim in diagnostics.
pub fn check_manifest(rel_path: &str, text: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut in_deps = false;
    for (n, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            // Section header: dependency sections are [dependencies],
            // [dev-dependencies], [build-dependencies],
            // [workspace.dependencies], [target.'...'.dependencies].
            let section = line.trim_matches(['[', ']']);
            in_deps = section.ends_with("dependencies");
            continue;
        }
        if !in_deps {
            continue;
        }
        let Some((name, value)) = line.split_once('=') else {
            continue;
        };
        let (name, value) = (name.trim(), value.trim());
        let hermetic = value.contains("path")
            || value.contains("workspace = true")
            || name.ends_with(".workspace"); // `foo.workspace = true` split form
        if hermetic && !value.contains("git") {
            continue;
        }
        let why = if value.contains("git") {
            "a git dependency"
        } else if value.starts_with('"') {
            "a crates-io version dependency"
        } else {
            "not an in-tree path dependency"
        };
        out.push(Finding {
            rule: Rule::H001,
            file: rel_path.to_string(),
            line: n as u32 + 1,
            col: 1,
            message: format!(
                "dependency `{name}` is {why}; the build must stay hermetic — use \
                 `{{ path = \"...\" }}` or `workspace = true`"
            ),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_and_workspace_deps_pass() {
        let toml = "[dependencies]\nfoo = { path = \"../foo\" }\nbar.workspace = true\nbaz = { workspace = true }\n";
        assert!(check_manifest("Cargo.toml", toml).is_empty());
    }

    #[test]
    fn version_string_fails() {
        let toml = "[dependencies]\nserde = \"1.0\"\n";
        let f = check_manifest("Cargo.toml", toml);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("serde"));
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn inline_version_table_fails_but_path_plus_version_passes() {
        let toml = "[dev-dependencies]\na = { version = \"1\" }\nb = { path = \"../b\", version = \"0.1\" }\n";
        let f = check_manifest("Cargo.toml", toml);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains('a'));
    }

    #[test]
    fn git_dependency_fails_even_with_path_key() {
        let toml = "[dependencies]\nx = { git = \"https://example.com/x\" }\n";
        assert_eq!(check_manifest("Cargo.toml", toml).len(), 1);
    }

    #[test]
    fn package_metadata_is_not_a_dependency() {
        let toml = "[package]\nname = \"k\"\nversion = \"0.1.0\"\nedition = \"2021\"\n";
        assert!(check_manifest("Cargo.toml", toml).is_empty());
    }
}
