//! Workspace walking and whole-tree analysis.

use crate::baseline::{Baseline, BaselineError};
use crate::diag::{Finding, ALL_RULES};
use crate::flow::{analyze_workspace, FileInput, FlowStats};
use crate::lexer::lex;
use crate::manifest::check_manifest;
use crate::rules::{check_file, FileCtx};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into. `fixtures` keeps the lint's own
/// deliberately-bad corpus out of the workspace scan.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

/// The lint result for a whole tree.
pub struct Report {
    /// Findings NOT suppressed by the baseline.
    pub active: Vec<Finding>,
    /// Findings suppressed by a justified baseline entry.
    pub baselined: Vec<Finding>,
    /// Baseline entries matching nothing (these fail the run).
    pub stale: Vec<String>,
    /// Number of files analysed (`.rs` + manifests).
    pub files_scanned: usize,
    /// Flow-pass coverage counters (functions, call edges, taint paths)
    /// — the E19 metrics.
    pub flow: FlowStats,
}

impl Report {
    /// Whether the gate passes.
    pub fn clean(&self) -> bool {
        self.active.is_empty() && self.stale.is_empty()
    }

    /// rule × crate violation counts over active + baselined findings,
    /// the table EXPERIMENTS.md E14 records.
    pub fn counts_by_rule_and_crate(&self) -> BTreeMap<&'static str, BTreeMap<String, usize>> {
        let mut m: BTreeMap<&'static str, BTreeMap<String, usize>> = BTreeMap::new();
        for r in ALL_RULES {
            m.entry(r.id()).or_default();
        }
        for f in self.active.iter().chain(&self.baselined) {
            *m.entry(f.rule.id())
                .or_default()
                .entry(crate_of(&f.file).to_string())
                .or_insert(0) += 1;
        }
        m
    }
}

/// The crate a workspace-relative path belongs to.
pub fn crate_of(rel_path: &str) -> &str {
    rel_path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("kerberos-limits")
}

/// Analyses one Rust source text as `rel_path` within `crate_name`.
/// Exposed for the fixture tests, which lint files outside the tree.
pub fn analyze_source(rel_path: &str, crate_name: &str, text: &str) -> Vec<Finding> {
    let tokens = lex(text);
    let is_test_file = rel_path.contains("/tests/")
        || rel_path.contains("/benches/")
        || rel_path.contains("/examples/");
    let ctx = FileCtx { rel_path, crate_name, is_test_file, tokens: &tokens };
    let mut findings = check_file(&ctx);
    findings.sort_by_key(|f| (f.line, f.col, f.rule));
    findings
}

/// Walks the workspace at `root`, lints every `.rs` file and manifest,
/// and applies `lint-baseline.toml`.
pub fn run(root: &Path) -> io::Result<Result<Report, BaselineError>> {
    let mut rs_files = Vec::new();
    let mut manifests = Vec::new();
    walk(root, root, &mut rs_files, &mut manifests)?;
    rs_files.sort();
    manifests.sort();

    let mut all = Vec::new();
    let files_scanned = rs_files.len() + manifests.len();
    for rel in &manifests {
        let text = fs::read_to_string(root.join(rel))?;
        all.extend(check_manifest(rel, &text));
    }
    let mut sources = Vec::with_capacity(rs_files.len());
    for rel in &rs_files {
        let text = fs::read_to_string(root.join(rel))?;
        all.extend(analyze_source(rel, crate_of(rel), &text));
        sources.push(text);
    }

    // The flow pass needs every file at once (call graph, taint).
    let inputs: Vec<FileInput<'_>> = rs_files
        .iter()
        .zip(&sources)
        .map(|(rel, text)| FileInput { rel_path: rel, crate_name: crate_of(rel), text })
        .collect();
    let design_text = fs::read_to_string(root.join("DESIGN.md")).ok();
    let (flow_findings, flow) =
        analyze_workspace(&inputs, design_text.as_deref().map(|t| ("DESIGN.md", t)));
    all.extend(flow_findings);
    all.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });

    let baseline_text = fs::read_to_string(root.join("lint-baseline.toml")).unwrap_or_default();
    let baseline = match Baseline::parse(&baseline_text) {
        Ok(b) => b,
        Err(e) => return Ok(Err(e)),
    };

    let stale = baseline
        .stale_entries(&all)
        .into_iter()
        .map(|a| format!("{} {} ({})", a.rule.id(), a.file, a.reason))
        .collect();
    let (baselined, active): (Vec<_>, Vec<_>) =
        all.into_iter().partition(|f| baseline.suppresses(f));
    Ok(Ok(Report { active, baselined, stale, files_scanned, flow }))
}

fn walk(
    root: &Path,
    dir: &Path,
    rs_files: &mut Vec<String>,
    manifests: &mut Vec<String>,
) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, rs_files, manifests)?;
        } else if name.ends_with(".rs") {
            rs_files.push(rel_of(root, &path));
        } else if name == "Cargo.toml" {
            manifests.push(rel_of(root, &path));
        }
    }
    Ok(())
}

fn rel_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Locates the workspace root: `$CARGO_MANIFEST_DIR/../..` when invoked
/// via cargo, else the first ancestor of the cwd whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_root() -> io::Result<PathBuf> {
    if let Ok(md) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(&md);
        for anc in p.ancestors() {
            if is_workspace_root(anc) {
                return Ok(anc.to_path_buf());
            }
        }
    }
    let cwd = std::env::current_dir()?;
    for anc in cwd.ancestors() {
        if is_workspace_root(anc) {
            return Ok(anc.to_path_buf());
        }
    }
    Err(io::Error::new(io::ErrorKind::NotFound, "no [workspace] Cargo.toml above cwd"))
}

fn is_workspace_root(dir: &Path) -> bool {
    fs::read_to_string(dir.join("Cargo.toml"))
        .map(|t| t.contains("[workspace]"))
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_attribution() {
        assert_eq!(crate_of("crates/kerberos/src/kdc.rs"), "kerberos");
        assert_eq!(crate_of("crates/krb-lint/src/main.rs"), "krb-lint");
        assert_eq!(crate_of("src/lib.rs"), "kerberos-limits");
        assert_eq!(crate_of("tests/attack_matrix_golden.rs"), "kerberos-limits");
    }

    #[test]
    fn analyze_source_is_deterministic_and_sorted() {
        let src = "fn f() { a.unwrap(); b.unwrap(); }";
        let f = analyze_source("crates/kerberos/src/x.rs", "kerberos", src);
        assert_eq!(f.len(), 2);
        assert!(f[0].col < f[1].col);
    }
}
