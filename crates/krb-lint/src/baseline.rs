//! The suppression allowlist: `lint-baseline.toml` at the workspace
//! root.
//!
//! Every entry must name a rule, a file, and a justification — an
//! unjustified suppression is itself an error, and so is a *stale* entry
//! (one matching no current finding): the baseline can only shrink, and
//! `verify.sh` fails the moment an entry outlives its reason.
//!
//! The file is a tiny TOML subset (parsed in-tree, per the hermeticity
//! rule): `[[allow]]` table-array headers followed by `key = "value"`
//! string assignments.
//!
//! ```toml
//! [[allow]]
//! rule = "P001"
//! file = "crates/kerberos/src/testbed.rs"
//! reason = "test-harness fixture construction; a panic is the right failure"
//! ```

use crate::diag::{Finding, Rule};

/// Fields of an `[[allow]]` entry mid-parse: rule, file, reason, and the
/// 1-based line of its header (for error reporting).
type PartialEntry = (Option<Rule>, Option<String>, Option<String>, u32);

/// One suppression: all findings of `rule` in `file` are baselined.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Allow {
    /// Rule ID this entry suppresses.
    pub rule: Rule,
    /// Workspace-relative file the suppression is scoped to.
    pub file: String,
    /// Why the suppression is sound. Required.
    pub reason: String,
}

/// A parsed baseline.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    /// The suppressions, in file order.
    pub allows: Vec<Allow>,
}

/// A baseline syntax or schema problem, with its line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineError {
    /// 1-based line in `lint-baseline.toml`.
    pub line: u32,
    /// What is wrong.
    pub message: String,
}

impl Baseline {
    /// Parses baseline text. A missing file is represented by the empty
    /// string and yields an empty baseline.
    pub fn parse(text: &str) -> Result<Baseline, BaselineError> {
        let mut allows: Vec<Allow> = Vec::new();
        // Fields of the entry currently being assembled.
        let mut current: Option<PartialEntry> = None;
        let err = |line: usize, message: String| BaselineError { line: line as u32 + 1, message };

        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(entry) = current.take() {
                    allows.push(finish_entry(entry)?);
                }
                current = Some((None, None, None, u32::try_from(n).unwrap_or(u32::MAX).saturating_add(1)));
                continue;
            }
            let Some((field, value)) = parse_assignment(line) else {
                return Err(err(n, format!("unrecognised line: `{line}`")));
            };
            let Some(entry) = current.as_mut() else {
                return Err(err(n, format!("`{field}` outside an [[allow]] entry")));
            };
            match field {
                "rule" => {
                    entry.0 = Some(Rule::from_id(&value).ok_or_else(|| {
                        err(n, format!("unknown rule ID `{value}`"))
                    })?)
                }
                "file" => entry.1 = Some(value),
                "reason" => {
                    if value.trim().len() < 10 {
                        return Err(err(
                            n,
                            "a suppression justification must be a real sentence".to_string(),
                        ));
                    }
                    entry.2 = Some(value);
                }
                other => return Err(err(n, format!("unknown key `{other}`"))),
            }
        }
        if let Some(entry) = current.take() {
            allows.push(finish_entry(entry)?);
        }
        Ok(Baseline { allows })
    }

    /// Whether `f` is suppressed by some entry.
    pub fn suppresses(&self, f: &Finding) -> bool {
        self.allows.iter().any(|a| a.rule == f.rule && a.file == f.file)
    }

    /// Entries matching no finding in `all` — stale suppressions that
    /// must be deleted.
    pub fn stale_entries<'a>(&'a self, all: &[Finding]) -> Vec<&'a Allow> {
        self.allows
            .iter()
            .filter(|a| !all.iter().any(|f| a.rule == f.rule && a.file == f.file))
            .collect()
    }
}

fn finish_entry(
    (rule, file, reason, line): PartialEntry,
) -> Result<Allow, BaselineError> {
    let missing = |what: &str| BaselineError {
        line,
        message: format!("[[allow]] entry is missing `{what}` — every suppression must be justified"),
    };
    Ok(Allow {
        rule: rule.ok_or_else(|| missing("rule"))?,
        file: file.ok_or_else(|| missing("file"))?,
        reason: reason.ok_or_else(|| missing("reason"))?,
    })
}

/// Parses `key = "value"`, tolerating a trailing comment.
fn parse_assignment(line: &str) -> Option<(&str, String)> {
    let (key, rest) = line.split_once('=')?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('"')?;
    let (value, _) = rest.split_once('"')?;
    Some((key.trim(), value.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: Rule, file: &str) -> Finding {
        Finding { rule, file: file.into(), line: 1, col: 1, message: String::new() }
    }

    #[test]
    fn parses_and_suppresses() {
        let b = Baseline::parse(
            "# comment\n[[allow]]\nrule = \"P001\"\nfile = \"a.rs\"\nreason = \"fixture construction panics are fine\"\n",
        )
        .expect("parses");
        assert_eq!(b.allows.len(), 1);
        assert!(b.suppresses(&finding(Rule::P001, "a.rs")));
        assert!(!b.suppresses(&finding(Rule::P002, "a.rs")));
        assert!(!b.suppresses(&finding(Rule::P001, "b.rs")));
    }

    #[test]
    fn missing_reason_is_an_error() {
        let e = Baseline::parse("[[allow]]\nrule = \"P001\"\nfile = \"a.rs\"\n").unwrap_err();
        assert!(e.message.contains("reason"), "{e:?}");
    }

    #[test]
    fn short_reason_is_an_error() {
        let e = Baseline::parse("[[allow]]\nrule = \"P001\"\nfile = \"a.rs\"\nreason = \"meh\"\n")
            .unwrap_err();
        assert!(e.message.contains("justification"), "{e:?}");
    }

    #[test]
    fn stale_entries_are_reported() {
        let b = Baseline::parse(
            "[[allow]]\nrule = \"P001\"\nfile = \"gone.rs\"\nreason = \"this file was fixed already\"\n",
        )
        .expect("parses");
        let stale = b.stale_entries(&[finding(Rule::P001, "other.rs")]);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].file, "gone.rs");
    }

    #[test]
    fn unknown_rule_rejected() {
        assert!(Baseline::parse("[[allow]]\nrule = \"Z999\"\n").is_err());
    }
}
