//! The syntax layer: a brace-matching pass over the lexer's token
//! stream that recovers the module/item tree and, for every function, a
//! structural skeleton — parameter list, `let` bindings, call
//! expressions — without type information and without `syn` (rule H001).
//!
//! Like the lexer it is total: any token soup parses without panicking.
//! Items whose delimiters never balance are simply dropped, so the
//! worst a malformed file can do is hide itself from the flow rules
//! (the lexical rules still see every token). The `testkit` proptests
//! in `tests/syntax_props.rs` hold this layer to brace-tree totality
//! and item-span well-formedness on arbitrary inputs.
//!
//! All positions below are indices into the *significant* token list
//! (`sig`), which skips whitespace and comments; callers convert back
//! to source tokens via `tokens[sig[i]]`.

use crate::lexer::{is_keyword, TokKind, Token};

/// Hard bound on any single delimiter walk; past this the construct is
/// abandoned rather than scanned to EOF (defends parse time on
/// adversarial input, e.g. the fuzzer corpus accidentally linted).
const WALK_BOUND: usize = 100_000;

/// Indices of significant (non-whitespace, non-comment) tokens.
pub fn significant(tokens: &[Token<'_>]) -> Vec<usize> {
    tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| {
            !matches!(t.kind, TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment)
        })
        .map(|(i, _)| i)
        .collect()
}

/// What kind of named item a brace block belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ItemKind {
    /// `mod name { .. }`
    Mod,
    /// `fn name(..) { .. }`
    Fn,
    /// `struct Name { .. }`
    Struct,
    /// `enum Name { .. }`
    Enum,
    /// `trait Name { .. }`
    Trait,
    /// `impl [Trait for] Type { .. }` (named by the type).
    Impl,
}

/// One named item with a brace-delimited body.
#[derive(Clone, Debug)]
pub struct Item {
    /// Item class.
    pub kind: ItemKind,
    /// Declared name (for `impl`, the implemented type's last segment).
    pub name: String,
    /// `sig` index of the opening `{`.
    pub open: usize,
    /// `sig` index of the matching `}`.
    pub close: usize,
}

/// One declared parameter.
#[derive(Clone, Debug)]
pub struct Param {
    /// The bound name (first lower-case identifier of the pattern).
    pub name: String,
    /// Identifiers appearing in the declared type (path segments,
    /// generic arguments), for secret-type seeding.
    pub type_idents: Vec<String>,
}

/// One `let` binding inside a function body.
#[derive(Clone, Debug)]
pub struct LetBinding {
    /// Names bound by the pattern (lower-case identifiers only, so
    /// `let Some(key) = ..` binds `key`, not `Some`).
    pub names: Vec<String>,
    /// `sig` range `[start, end)` of the initializer expression.
    pub rhs: (usize, usize),
    /// `sig` index of the `let` keyword.
    pub at: usize,
}

/// One call expression inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// The called name (`seal_with`, `format`, ...).
    pub callee: String,
    /// Leading path segments (`s2k::derive` records `["s2k"]`).
    pub path: Vec<String>,
    /// Whether the call is `recv.callee(..)`.
    pub is_method: bool,
    /// Whether the call is `callee!(..)`.
    pub is_macro: bool,
    /// Identifiers of the receiver chain for method calls.
    pub receiver: Vec<String>,
    /// `sig` range `[start, end)` of each top-level comma argument.
    pub args: Vec<(usize, usize)>,
    /// `sig` index of the callee identifier.
    pub name_at: usize,
}

/// One function with a body.
#[derive(Clone, Debug)]
pub struct FnInfo {
    /// Declared name.
    pub name: String,
    /// Parameters, receiver (`self`) excluded.
    pub params: Vec<Param>,
    /// Identifiers in the return type (empty when none declared).
    pub ret_idents: Vec<String>,
    /// `sig` indices of the body's `{` and matching `}`.
    pub body: (usize, usize),
    /// `sig` index of the name token.
    pub name_at: usize,
    /// Whether the function sits inside a `#[cfg(test)]` module or is
    /// itself `#[test]`-attributed.
    pub is_test: bool,
    /// `let` bindings, in source order.
    pub lets: Vec<LetBinding>,
    /// Call expressions, in source order.
    pub calls: Vec<CallSite>,
}

/// The parsed skeleton of one file. Holds only indices (no token
/// references), so it outlives the borrow of the source text.
pub struct FileSyntax {
    /// Significant-token indices (into the lexed token vector).
    pub sig: Vec<usize>,
    /// Every named braced item found, in source order.
    pub items: Vec<Item>,
    /// Every function with a body, in source order (nested functions
    /// appear in their own right).
    pub fns: Vec<FnInfo>,
    /// Byte ranges of `#[cfg(test)]` / `#[test]` bodies.
    pub test_regions: Vec<(usize, usize)>,
}

/// Byte ranges of test-only code: `#[cfg(test)] mod ... { .. }` bodies
/// and `#[test] fn ... { .. }` bodies.
pub fn test_regions(toks: &[Token<'_>], sig: &[usize]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 4 < sig.len() {
        let t = |k: usize| toks[sig[k]].text;
        if t(i) == "#" && t(i + 1) == "[" {
            let is_cfg_test = i + 5 < sig.len()
                && t(i + 2) == "cfg"
                && t(i + 3) == "("
                && t(i + 4) == "test"
                && t(i + 5) == ")";
            let is_test_attr = t(i + 2) == "test" && t(i + 3) == "]";
            if is_cfg_test || is_test_attr {
                if let Some((open, close)) = next_brace_block(toks, sig, i) {
                    regions.push((toks[sig[open]].start, toks[sig[close]].start));
                    i = open; // regions may nest; keep scanning inside
                }
            }
        }
        i += 1;
    }
    regions
}

/// From `from`, finds the next top-level `{` and its matching `}`
/// (indices into `sig`). Tolerates unbalanced files by returning `None`.
pub fn next_brace_block(toks: &[Token<'_>], sig: &[usize], from: usize) -> Option<(usize, usize)> {
    let mut open = None;
    for (k, &si) in sig.iter().enumerate().skip(from) {
        if toks[si].text == "{" {
            open = Some(k);
            break;
        }
        // A `;` before any `{` means the construct is body-less
        // (e.g. `#[test] fn x();` in a trait): no block.
        if toks[si].text == ";" {
            return None;
        }
    }
    let open = open?;
    let mut depth = 0i64;
    for (k, &si) in sig.iter().enumerate().skip(open).take(WALK_BOUND) {
        match toks[si].text {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, k));
                }
            }
            _ => {}
        }
    }
    None
}

/// Whether a token starts inside any of the byte `regions`.
pub fn in_regions(regions: &[(usize, usize)], tok: &Token<'_>) -> bool {
    regions.iter().any(|&(s, e)| tok.start >= s && tok.start <= e)
}

/// Parses one lexed file into its item/function skeleton.
pub fn parse(toks: &[Token<'_>]) -> FileSyntax {
    let sig = significant(toks);
    let tests = test_regions(toks, &sig);
    let mut items = Vec::new();
    let mut fns = Vec::new();
    let t = |k: usize| toks[sig[k]].text;

    for i in 0..sig.len() {
        if toks[sig[i]].kind != TokKind::Ident {
            continue;
        }
        match t(i) {
            "mod" | "struct" | "enum" | "trait"
                if i + 1 < sig.len() && toks[sig[i + 1]].kind == TokKind::Ident =>
            {
                let kind = match t(i) {
                    "mod" => ItemKind::Mod,
                    "struct" => ItemKind::Struct,
                    "enum" => ItemKind::Enum,
                    _ => ItemKind::Trait,
                };
                if let Some((open, close)) = next_brace_block(toks, &sig, i) {
                    items.push(Item { kind, name: t(i + 1).to_string(), open, close });
                }
            }
            "impl" => {
                if let Some(name) = impl_type_name(toks, &sig, i) {
                    if let Some((open, close)) = next_brace_block(toks, &sig, i) {
                        items.push(Item { kind: ItemKind::Impl, name, open, close });
                    }
                }
            }
            "fn" => {
                if let Some(f) = parse_fn(toks, &sig, i, &tests) {
                    items.push(Item {
                        kind: ItemKind::Fn,
                        name: f.name.clone(),
                        open: f.body.0,
                        close: f.body.1,
                    });
                    fns.push(f);
                }
            }
            _ => {}
        }
    }
    FileSyntax { sig, items, fns, test_regions: tests }
}

/// The implemented type's name: the last path identifier before the
/// impl block opens (after `for`, when the impl is a trait impl).
fn impl_type_name(toks: &[Token<'_>], sig: &[usize], at: usize) -> Option<String> {
    let t = |k: usize| toks[sig[k]].text;
    let mut last = None;
    for k in at + 1..sig.len().min(at + 64) {
        match t(k) {
            "{" | "where" => break,
            _ if toks[sig[k]].kind == TokKind::Ident && !is_keyword(t(k)) => {
                last = Some(t(k).to_string());
            }
            _ => {}
        }
    }
    last
}

/// Parses the function whose `fn` keyword sits at `sig[at]`. Returns
/// `None` for body-less declarations (trait methods, externs) and for
/// anything too malformed to brace-match.
fn parse_fn(
    toks: &[Token<'_>],
    sig: &[usize],
    at: usize,
    tests: &[(usize, usize)],
) -> Option<FnInfo> {
    let t = |k: usize| toks[sig[k]].text;
    let name_at = at + 1;
    if name_at >= sig.len()
        || toks[sig[name_at]].kind != TokKind::Ident
        || is_keyword(t(name_at))
    {
        return None; // `fn(..)` pointer type, or truncated input
    }
    let name = t(name_at).to_string();

    // Skip generics `<..>` between the name and the parameter list.
    let mut j = name_at + 1;
    if j < sig.len() && t(j) == "<" {
        let mut depth = 0i64;
        let mut steps = 0;
        while j < sig.len() {
            depth += match t(j) {
                "<" => 1,
                "<<" => 2,
                ">" => -1,
                ">>" => -2,
                "(" | "{" | ";" => return None, // generics never contain these here
                _ => 0,
            };
            j += 1;
            steps += 1;
            if depth <= 0 || steps > 512 {
                break;
            }
        }
        if depth > 0 {
            return None;
        }
    }
    if j >= sig.len() || t(j) != "(" {
        return None;
    }

    // Parameter list: split the paren group at depth-1 commas.
    let params_open = j;
    let params_close = match_delim(toks, sig, params_open)?;
    let mut params = Vec::new();
    for (a, b) in split_args(toks, sig, params_open, params_close) {
        if let Some(p) = parse_param(toks, sig, a, b) {
            params.push(p);
        }
    }

    // Return type: idents between `->` and `{` / `;` / `where`.
    let mut ret_idents = Vec::new();
    let mut k = params_close + 1;
    if k < sig.len() && t(k) == "->" {
        k += 1;
        while k < sig.len() && !matches!(t(k), "{" | ";" | "where") {
            if toks[sig[k]].kind == TokKind::Ident && !is_keyword(t(k)) {
                ret_idents.push(t(k).to_string());
            }
            k += 1;
            if k > params_close + 256 {
                return None;
            }
        }
    }

    // Body (skipping any `where` clause): next `{..}`; `;` first means
    // a body-less declaration.
    let (open, close) = next_brace_block(toks, sig, params_close)?;
    let is_test = in_regions(tests, &toks[sig[name_at]]);
    let lets = parse_lets(toks, sig, open, close);
    let calls = parse_calls(toks, sig, open, close);
    Some(FnInfo {
        name,
        params,
        ret_idents,
        body: (open, close),
        name_at,
        is_test,
        lets,
        calls,
    })
}

/// Matches the delimiter at `sig[open]` (`(`, `[`, or `{`) to its
/// closing index, tracking all three bracket kinds.
fn match_delim(toks: &[Token<'_>], sig: &[usize], open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (k, &si) in sig.iter().enumerate().skip(open).take(WALK_BOUND) {
        match toks[si].text {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
                if depth < 0 {
                    return None;
                }
            }
            _ => {}
        }
    }
    None
}

/// Splits the group `sig[open..=close]` at depth-1 commas into
/// non-empty argument ranges (exclusive of the delimiters).
fn split_args(
    toks: &[Token<'_>],
    sig: &[usize],
    open: usize,
    close: usize,
) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut start = open + 1;
    for k in open..=close {
        match toks[sig[k]].text {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 && k > start {
                    out.push((start, k));
                }
            }
            "," if depth == 1 => {
                if k > start {
                    out.push((start, k));
                }
                start = k + 1;
            }
            _ => {}
        }
    }
    out
}

/// Parses one parameter slice `sig[a..b)`. Returns `None` for the
/// receiver (`self` in any of its spellings).
fn parse_param(toks: &[Token<'_>], sig: &[usize], a: usize, b: usize) -> Option<Param> {
    let t = |k: usize| toks[sig[k]].text;
    // Pattern part runs to the first `:` outside nested groups.
    let mut colon = None;
    let mut depth = 0i64;
    for k in a..b {
        match t(k) {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            ":" if depth == 0 => {
                colon = Some(k);
                break;
            }
            _ => {}
        }
    }
    let pat_end = colon.unwrap_or(b);
    let mut name = None;
    for k in a..pat_end {
        let tok = &toks[sig[k]];
        if tok.kind == TokKind::Ident {
            if tok.text == "self" {
                return None; // receiver
            }
            if !is_keyword(tok.text) && name.is_none() {
                name = Some(tok.text.to_string());
            }
        }
    }
    let mut type_idents = Vec::new();
    if let Some(c) = colon {
        for k in c + 1..b {
            let tok = &toks[sig[k]];
            if tok.kind == TokKind::Ident && !is_keyword(tok.text) {
                type_idents.push(tok.text.to_string());
            }
        }
    }
    Some(Param { name: name?, type_idents })
}

/// Extracts `let` bindings inside the body `sig[(open, close)]`.
fn parse_lets(toks: &[Token<'_>], sig: &[usize], open: usize, close: usize) -> Vec<LetBinding> {
    let t = |k: usize| toks[sig[k]].text;
    let mut out = Vec::new();
    let mut k = open + 1;
    while k < close {
        if t(k) != "let" || toks[sig[k]].kind != TokKind::Ident {
            k += 1;
            continue;
        }
        let at = k;
        // Bound names: lower-case identifiers of the pattern (skips
        // constructors like `Some`/`Ok` and type ascription).
        let mut names = Vec::new();
        let mut eq = None;
        let mut depth = 0i64;
        let mut m = k + 1;
        let mut in_type = false;
        while m < close {
            match t(m) {
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" | ">" => depth -= 1,
                ":" if depth == 0 => in_type = true,
                "=" if depth <= 0 => {
                    eq = Some(m);
                    break;
                }
                ";" if depth <= 0 => break,
                _ => {
                    let tok = &toks[sig[m]];
                    if !in_type
                        && tok.kind == TokKind::Ident
                        && !is_keyword(tok.text)
                        && tok.text != "self"
                        && tok.text.chars().next().is_some_and(|c| c.is_lowercase() || c == '_')
                    {
                        names.push(tok.text.to_string());
                    }
                }
            }
            m += 1;
        }
        let Some(eq) = eq else {
            k = m + 1;
            continue; // `let x;` — no initializer
        };
        // Initializer: to the `;` closing the statement (brackets of
        // all kinds tracked; `let .. else { .. }` blocks included).
        let mut depth = 0i64;
        let mut end = close;
        let mut n = eq + 1;
        while n < close {
            match t(n) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth <= 0 => {
                    end = n;
                    break;
                }
                _ => {}
            }
            n += 1;
        }
        if !names.is_empty() {
            out.push(LetBinding { names, rhs: (eq + 1, end), at });
        }
        k = eq + 1; // rescan the initializer: it may contain nested lets
    }
    out
}

/// Extracts call expressions inside the body `sig[(open, close)]`.
fn parse_calls(toks: &[Token<'_>], sig: &[usize], open: usize, close: usize) -> Vec<CallSite> {
    let t = |k: usize| toks[sig[k]].text;
    let mut out = Vec::new();
    for k in open + 1..close {
        let tok = &toks[sig[k]];
        if tok.kind != TokKind::Ident || is_keyword(tok.text) || tok.text == "self" {
            continue;
        }
        let is_macro = k + 2 < close && t(k + 1) == "!" && matches!(t(k + 2), "(" | "[" | "{");
        let is_call = k + 1 < close && t(k + 1) == "(";
        if !is_macro && !is_call {
            continue;
        }
        if k > 0 && t(k - 1) == "fn" {
            continue; // a nested declaration, not a call
        }
        let is_method = k > 0 && t(k - 1) == ".";
        // Leading path segments: `a::b::callee(..)` records ["a", "b"].
        let mut path = Vec::new();
        if !is_method {
            let mut p = k;
            while p >= 2 && t(p - 1) == "::" && toks[sig[p - 2]].kind == TokKind::Ident {
                path.push(t(p - 2).to_string());
                p -= 2;
            }
            path.reverse();
        }
        // Receiver chain for method calls: idents walking left through
        // `.`/`::`/`?` links and balanced groups, bounded.
        let mut receiver = Vec::new();
        if is_method {
            let mut depth = 0i64;
            let mut p = k - 1; // the `.`
            let mut steps = 0;
            while p > 0 && steps < 24 {
                p -= 1;
                steps += 1;
                let s = t(p);
                if matches!(s, ")" | "]") {
                    depth += 1;
                } else if matches!(s, "(" | "[") {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                } else if depth == 0 {
                    match toks[sig[p]].kind {
                        TokKind::Ident if !is_keyword(s) => receiver.push(s.to_string()),
                        TokKind::Punct if matches!(s, "." | "::" | "?" | "&") => {}
                        _ => break,
                    }
                }
            }
            receiver.reverse();
        }
        let group_open = if is_macro { k + 2 } else { k + 1 };
        let Some(group_close) = match_delim(toks, sig, group_open) else {
            continue;
        };
        out.push(CallSite {
            callee: tok.text.to_string(),
            path,
            is_method,
            is_macro,
            receiver,
            args: split_args(toks, sig, group_open, group_close),
            name_at: k,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> FileSyntax {
        parse(&lex(src))
    }

    #[test]
    fn extracts_fn_skeleton() {
        let src = r#"
            fn seal(key: &DesKey, iv: u64, plaintext: &[u8]) -> Result<Vec<u8>, KrbError> {
                let mut buf = Vec::with_capacity(plaintext.len());
                let mac = checksum::compute(ChecksumType::Md4Des, Some(key), &buf)?;
                buf.extend_from_slice(&mac.value);
                Ok(buf)
            }
        "#;
        let fs = parse_src(src);
        assert_eq!(fs.fns.len(), 1);
        let f = &fs.fns[0];
        assert_eq!(f.name, "seal");
        let names: Vec<&str> = f.params.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["key", "iv", "plaintext"]);
        assert!(f.params[0].type_idents.iter().any(|t| t == "DesKey"));
        assert!(f.ret_idents.iter().any(|t| t == "KrbError"));
        assert_eq!(f.lets.len(), 2);
        assert_eq!(f.lets[0].names, ["buf"]);
        assert_eq!(f.lets[1].names, ["mac"]);
        let callees: Vec<&str> = f.calls.iter().map(|c| c.callee.as_str()).collect();
        assert!(callees.contains(&"with_capacity"));
        assert!(callees.contains(&"compute"));
        assert!(callees.contains(&"extend_from_slice"));
        let compute = f.calls.iter().find(|c| c.callee == "compute").unwrap();
        assert_eq!(compute.path, ["checksum"]);
        assert_eq!(compute.args.len(), 3);
    }

    #[test]
    fn receiver_and_method_calls() {
        let src = "fn f(tr: &Tracer) { tr.metrics.counter(\"kdc.issued\", scope, 1); }";
        let fs = parse_src(src);
        let c = fs.fns[0].calls.iter().find(|c| c.callee == "counter").unwrap();
        assert!(c.is_method);
        assert_eq!(c.receiver, ["tr", "metrics"]);
        assert_eq!(c.args.len(), 3);
    }

    #[test]
    fn macro_calls_and_captures() {
        let src = r#"fn f(x: u32) { println!("x = {x}"); format!("{}", x); }"#;
        let fs = parse_src(src);
        let macros: Vec<&str> = fs.fns[0]
            .calls
            .iter()
            .filter(|c| c.is_macro)
            .map(|c| c.callee.as_str())
            .collect();
        assert_eq!(macros, ["println", "format"]);
    }

    #[test]
    fn destructuring_let_binds_lowercase_names_only() {
        let src = "fn f() { let Some((a, b)) = pair() else { return; }; let _ = a; }";
        let fs = parse_src(src);
        assert_eq!(fs.fns[0].lets[0].names, ["a", "b"]);
    }

    #[test]
    fn bodyless_and_generic_fns() {
        let src = r#"
            trait T { fn no_body(&self); }
            fn generic<K: Ord, V>(map: &BTreeMap<K, V>) -> usize { map.len() }
        "#;
        let fs = parse_src(src);
        assert_eq!(fs.fns.len(), 1);
        assert_eq!(fs.fns[0].name, "generic");
        assert_eq!(fs.fns[0].params[0].name, "map");
    }

    #[test]
    fn item_tree_names_mods_impls_and_tests() {
        let src = r#"
            mod inner { struct S; }
            impl fmt::Debug for DesKey { fn fmt(&self) -> R { todo() } }
            #[cfg(test)]
            mod tests { #[test] fn t() { helper(); } }
        "#;
        let fs = parse_src(src);
        let kinds: Vec<(ItemKind, &str)> =
            fs.items.iter().map(|i| (i.kind, i.name.as_str())).collect();
        assert!(kinds.contains(&(ItemKind::Mod, "inner")));
        assert!(kinds.contains(&(ItemKind::Impl, "DesKey")));
        assert!(kinds.contains(&(ItemKind::Mod, "tests")));
        let t = fs.fns.iter().find(|f| f.name == "t").unwrap();
        assert!(t.is_test);
        let fmt = fs.fns.iter().find(|f| f.name == "fmt").unwrap();
        assert!(!fmt.is_test);
    }

    #[test]
    fn malformed_input_is_total() {
        for src in [
            "fn",
            "fn (",
            "fn f(",
            "fn f() {",
            "fn f<T(x: T) {}",
            "}{)(",
            "fn f() { let = ; }",
            "impl { }",
            "fn f() { g(; }",
        ] {
            let fs = parse_src(src); // must not panic
            for item in &fs.items {
                assert!(item.open < item.close);
            }
        }
    }
}
