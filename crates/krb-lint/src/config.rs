//! What the rules consider secret, deterministic, and protocol-grade.
//!
//! This is the lint's registry: the one place future PRs extend when
//! they add a key-carrying type or a new crate. Everything here is data,
//! so the rule implementations stay generic.

/// Types that carry raw key material or key-derived secrets. Deriving
/// `Debug`/`Display`/`Serialize` on any of these is a secrecy leak
/// (S001); hand-written impls must redact (S003).
pub const SECRET_TYPES: &[&str] = &[
    "DesKey",
    "TripleDesKey",
    "KeySchedule",
    "TripleSchedule",
    "ScheduledKey",
    "TaggedKey",
    "SecretBytes",
];

/// Crates whose execution must be a pure function of their inputs: the
/// simulator, the protocol, the crypto, the attack campaigns (E1's
/// golden matrix is byte-identical across runs), the tracing layer
/// (same-seed traces are byte-identical JSONL), and the fuzzer (two
/// same-seed runs must produce byte-identical reports). `bench` and
/// `testkit` are exempt — they measure wall clocks on purpose.
pub const DETERMINISTIC_CRATES: &[&str] =
    &["simnet", "kerberos", "krb-crypto", "attacks", "krb-trace", "krb-fuzz", "krb-gateway"];

/// Crates whose `src/` is production protocol code: a panic is a
/// protocol-visible denial of service, so `unwrap`/`expect`/`panic!`
/// are forbidden outside tests (P001/P002). `krb-trace` is on every
/// protocol hot path, so it is held to the same bar, and `krb-fuzz`
/// must never panic itself — a panic anywhere in its `src/` would be
/// indistinguishable from the decoder bugs it exists to catch.
/// `attacks` is the adversary harness and `bench`/`krb-lint` are
/// tooling; they are exempt. `krb-gateway` fronts every KDC flow, so a
/// panic there is a realm-wide outage — it is governed.
pub const PANIC_FREE_CRATES: &[&str] =
    &["simnet", "kerberos", "krb-crypto", "hardware", "krb-trace", "krb-fuzz", "krb-gateway"];

/// Macros whose arguments become human-readable strings (S002 scans
/// their argument lists for secret-named identifiers).
pub const FORMAT_MACROS: &[&str] = &[
    "println", "print", "eprintln", "eprint", "format", "write", "writeln", "panic", "assert",
    "assert_eq", "assert_ne", "debug_assert", "log", "trace", "debug", "info", "warn", "error",
];

/// Methods whose argument lists become trace events, metrics, or span
/// fields (S004 scans them for secret-named identifiers; an argument
/// wrapped in `fingerprint(...)` is the sanctioned redaction and is
/// skipped).
pub const TRACE_EMIT_CALLS: &[&str] =
    &["emit", "note", "begin_span", "end_span", "counter", "gauge", "observe_us"];

/// Whether an identifier names key material (S002, S004, C001).
pub fn is_secret_ident(name: &str) -> bool {
    matches!(name, "key" | "keys" | "skey" | "session_key")
        || name.ends_with("_key")
        || name.ends_with("_keys")
}

/// Whether an identifier names MAC/checksum material (C001).
pub fn is_mac_ident(name: &str) -> bool {
    matches!(name, "mac" | "hmac" | "digest" | "cksum" | "checksum")
        || name.ends_with("_mac")
        || name.ends_with("_digest")
        || name.ends_with("_cksum")
        || name.ends_with("_checksum")
}

/// Identifiers that defuse a C001 match: comparing a checksum *type*,
/// key *kind*, purpose tag, or length is not a secret comparison.
pub fn is_cmp_benign(name: &str) -> bool {
    name.contains("type") || matches!(name, "kind" | "purpose" | "len" | "count")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_classifiers() {
        assert!(is_secret_ident("session_key"));
        assert!(is_secret_ident("tgs_key"));
        assert!(!is_secret_ident("keyboard"));
        assert!(!is_secret_ident("monkey"));
        assert!(is_mac_ident("cksum"));
        assert!(!is_mac_ident("checksummed"));
        assert!(is_cmp_benign("ctype"));
        assert!(is_cmp_benign("checksum_type"));
        assert!(!is_cmp_benign("value"));
    }
}
