//! What the rules consider secret, deterministic, and protocol-grade.
//!
//! This is the lint's registry: the one place future PRs extend when
//! they add a key-carrying type or a new crate. Everything here is data,
//! so the rule implementations stay generic.

/// Types that carry raw key material or key-derived secrets. Deriving
/// `Debug`/`Display`/`Serialize` on any of these is a secrecy leak
/// (S001); hand-written impls must redact (S003).
pub const SECRET_TYPES: &[&str] = &[
    "DesKey",
    "TripleDesKey",
    "KeySchedule",
    "TripleSchedule",
    "ScheduledKey",
    "TaggedKey",
    "SecretBytes",
];

/// Crates whose execution must be a pure function of their inputs: the
/// simulator, the protocol, the crypto, the attack campaigns (E1's
/// golden matrix is byte-identical across runs), the tracing layer
/// (same-seed traces are byte-identical JSONL), the fuzzer (two
/// same-seed runs must produce byte-identical reports), and the linter
/// itself (same-tree runs must report byte-identical findings, and the
/// E19 coverage JSON is diffed across double runs). `krb-ids` detects
/// as a pure function of the trace — same-seed alert streams are
/// byte-identical JSONL and the E20 matrix is diffed across double
/// runs — so a wall-clock or RNG read there would break the golden.
/// `bench` and `testkit` are exempt — they measure wall clocks on
/// purpose.
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "simnet", "kerberos", "krb-crypto", "attacks", "krb-trace", "krb-fuzz", "krb-gateway",
    "krb-lint", "krb-ids",
];

/// Crates whose `src/` is production protocol code: a panic is a
/// protocol-visible denial of service, so `unwrap`/`expect`/`panic!`
/// are forbidden outside tests (P001/P002). `krb-trace` is on every
/// protocol hot path, so it is held to the same bar, and `krb-fuzz`
/// must never panic itself — a panic anywhere in its `src/` would be
/// indistinguishable from the decoder bugs it exists to catch.
/// `attacks` is the adversary harness and `bench` is tooling; they are
/// exempt. `krb-gateway` fronts every KDC flow, so a panic there is a
/// realm-wide outage — it is governed. `krb-lint` gates every verify
/// run, so since PR 9 it meets its own bar: a panic in the linter would
/// take the whole gate down with a stack trace instead of a finding.
/// `krb-ids` watches the wire online — a panic in a detector is a
/// crashed defender, the worst possible failure mode for monitoring —
/// so rule parsing/compilation returns typed errors and detectors must
/// stay total over arbitrary event bytes (the rule_props proptests
/// drive that totality).
pub const PANIC_FREE_CRATES: &[&str] = &[
    "simnet", "kerberos", "krb-crypto", "hardware", "krb-trace", "krb-fuzz", "krb-gateway",
    "krb-lint", "krb-ids",
];

/// Macros whose arguments become human-readable strings (S002 scans
/// their argument lists for secret-named identifiers).
pub const FORMAT_MACROS: &[&str] = &[
    "println", "print", "eprintln", "eprint", "format", "write", "writeln", "panic", "assert",
    "assert_eq", "assert_ne", "debug_assert", "log", "trace", "debug", "info", "warn", "error",
];

/// Methods whose argument lists become trace events, metrics, or span
/// fields (S004 scans them for secret-named identifiers; an argument
/// wrapped in `fingerprint(...)` is the sanctioned redaction and is
/// skipped).
pub const TRACE_EMIT_CALLS: &[&str] =
    &["emit", "note", "begin_span", "end_span", "counter", "gauge", "observe_us"];

/// Functions whose output is safe to bind even when their inputs are
/// secret: the taint engine ([`crate::taint`]) skips their whole
/// argument group. `fingerprint` is the sanctioned trace redaction;
/// `seal`/`seal_with`/`wrap`/`encrypt` produce ciphertext; `compute`
/// (checksum) produces a MAC, which already lives in a redacting
/// `SecretBytes` container of its own.
pub const SANITIZER_FNS: &[&str] =
    &["fingerprint", "seal", "seal_with", "seal_into", "wrap", "encrypt", "compute"];

/// Methods whose *result* carries no secret even on a tainted receiver:
/// lengths, emptiness, tags, and constant-time comparison verdicts.
pub const SANITIZER_METHODS: &[&str] =
    &["len", "is_empty", "ct_eq", "fingerprint", "tag", "ctype", "kind", "purpose"];

/// The hot-path allocation budget (A001): `(crate, function)` pairs in
/// which any heap allocation is a finding. These are the per-request /
/// per-block inner loops the E13/E17/E18 benches measure; a stray
/// `clone()` or `format!` here is a throughput regression that no test
/// catches. `Vec::with_capacity` is deliberately NOT flagged — one
/// sized allocation per call is the sanctioned way to produce an owned
/// result (and `extend_from_slice`/`resize` into it do not re-allocate
/// when the capacity was right).
pub const HOT_PATH_FNS: &[(&str, &str)] = &[
    ("kerberos", "seal_with"),
    ("kerberos", "open_with"),
    ("kerberos", "open_into"),
    ("kerberos", "handle_batch"),
    ("krb-crypto", "encrypt_block"),
    ("krb-crypto", "decrypt_block"),
    ("krb-crypto", "feistel"),
    ("krb-gateway", "handle"),
];

/// Allocating method calls A001 flags inside a hot-path function.
pub const ALLOC_METHODS: &[&str] =
    &["clone", "to_vec", "to_string", "to_owned", "collect", "into_bytes"];

/// Allocating constructor paths (`Vec::new`, `Box::new`, ...) A001
/// flags inside a hot-path function.
pub const ALLOC_TYPES: &[&str] = &["Vec", "String", "Box", "BTreeMap", "BTreeSet", "VecDeque"];

/// Allocating macros A001 flags inside a hot-path function. `write!`
/// into a pre-sized buffer is deliberately absent: formatting into a
/// reused `String` is the sanctioned fix for `to_string()` churn.
pub const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Whether a function, by name, sits on an encode/decode path — the
/// scope of P003's truncating-cast rule. Length fields on these paths
/// come from or go to the wire, where a silent `as u32` truncation
/// mis-frames the message instead of failing closed.
pub fn is_codec_fn(name: &str) -> bool {
    const INFIX: &[&str] =
        &["encode", "decode", "seal", "open", "wrap", "serialize", "parse", "to_bytes",
          "from_bytes", "to_wire", "from_wire"];
    INFIX.iter().any(|p| name.contains(p)) || name.starts_with("put_") || name.starts_with("take_")
}

/// Whether an identifier plausibly names a length/size (P003's cast
/// operand filter).
pub fn is_len_ident(name: &str) -> bool {
    matches!(name, "len" | "length" | "size" | "count" | "remaining" | "n" | "nbytes")
        || name.ends_with("_len")
        || name.ends_with("_length")
        || name.ends_with("_size")
        || name.ends_with("_count")
}

/// Trace-metric emission methods whose first argument is a metric name
/// literal (E001 checks these against DESIGN.md's registry). `emit`,
/// `note`, and span calls carry event kinds, not metric names, so they
/// are S004's business, not E001's.
pub const METRIC_EMIT_CALLS: &[&str] = &["counter", "gauge", "observe_us"];

/// The DESIGN.md heading under which every metric name must be listed
/// (E001). The section is a table whose first backtick-quoted cell per
/// row is the name.
pub const METRIC_REGISTRY_HEADING: &str = "Metric name registry";

/// Whether a workspace-relative path is test/demo code, exempt from the
/// flow rules: integration tests, benches, and examples (both crate
/// subdirectories and the workspace-level `tests/`/`examples/` trees).
/// The lexical rules keep their narrower historical exemption.
pub fn is_test_path(rel_path: &str) -> bool {
    ["tests/", "benches/", "examples/"]
        .iter()
        .any(|d| rel_path.contains(&format!("/{d}")) || rel_path.starts_with(d))
}

/// Whether an identifier names key material (S002, S004, C001).
pub fn is_secret_ident(name: &str) -> bool {
    matches!(name, "key" | "keys" | "skey" | "session_key")
        || name.ends_with("_key")
        || name.ends_with("_keys")
}

/// Whether an identifier seeds taint (S005): everything
/// [`is_secret_ident`] covers plus passwords, which are the paper's
/// other root secret (the password-guessing exposure, E2).
pub fn is_taint_source_ident(name: &str) -> bool {
    is_secret_ident(name)
        || matches!(name, "password" | "passwd" | "pw")
        || name.ends_with("_password")
}

/// Whether an identifier names MAC/checksum material (C001).
pub fn is_mac_ident(name: &str) -> bool {
    matches!(name, "mac" | "hmac" | "digest" | "cksum" | "checksum")
        || name.ends_with("_mac")
        || name.ends_with("_digest")
        || name.ends_with("_cksum")
        || name.ends_with("_checksum")
}

/// Identifiers that defuse a C001 match: comparing a checksum *type*,
/// key *kind*, purpose tag, or length is not a secret comparison.
pub fn is_cmp_benign(name: &str) -> bool {
    name.contains("type") || matches!(name, "kind" | "purpose" | "len" | "count")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_classifiers() {
        assert!(is_secret_ident("session_key"));
        assert!(is_secret_ident("tgs_key"));
        assert!(!is_secret_ident("keyboard"));
        assert!(!is_secret_ident("monkey"));
        assert!(is_mac_ident("cksum"));
        assert!(!is_mac_ident("checksummed"));
        assert!(is_cmp_benign("ctype"));
        assert!(is_cmp_benign("checksum_type"));
        assert!(!is_cmp_benign("value"));
    }
}
