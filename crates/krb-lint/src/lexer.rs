//! A small line/column-tracking Rust token scanner.
//!
//! The PR-1 hermeticity rule forbids external crates, so there is no
//! `syn` here: this is a hand-rolled lexer covering exactly the token
//! shapes the rule engine needs — identifiers (including `r#raw`),
//! lifetimes vs. char literals, all five string-literal families,
//! numbers, nested block comments, and multi-character operators. It is
//! total: any byte sequence lexes without panicking, and the
//! concatenation of all token texts reproduces the input exactly
//! (whitespace and comments are tokens too). That round-trip is the
//! invariant the `testkit` proptest in `tests/lexer_props.rs` checks on
//! random token soup.

/// What kind of lexeme a token is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokKind {
    /// Spaces, tabs, newlines.
    Whitespace,
    /// `// ...` (including doc `///` and `//!`).
    LineComment,
    /// `/* ... */`, nesting honoured; unterminated runs to EOF.
    BlockComment,
    /// Identifier or keyword, including `r#raw` identifiers.
    Ident,
    /// `'a` (not a char literal).
    Lifetime,
    /// Integer or float literal, suffix included.
    Number,
    /// `"..."`, `b"..."`, `r"..."`/`r#"..."#`, `br#"..."#`.
    Str,
    /// `'x'`, `'\n'`, `b'x'`.
    Char,
    /// Operator or delimiter; multi-char operators are single tokens.
    Punct,
    /// Any byte the scanner does not recognise (emitted, never skipped).
    Unknown,
}

/// One lexed token. `text` borrows from the source, so spans can never
/// drift from content.
#[derive(Clone, Copy, Debug)]
pub struct Token<'a> {
    /// Lexeme class.
    pub kind: TokKind,
    /// Exact source slice.
    pub text: &'a str,
    /// Byte offset of the first byte.
    pub start: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based column (in chars) of the first byte.
    pub col: u32,
}

/// Multi-char operators, longest first so maximal munch works.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "...", "..=", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "::", "->", "=>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

/// Rust keywords the rule engine must not mistake for operand
/// identifiers when walking expression chains.
pub const KEYWORDS: &[&str] = &[
    "as", "async", "await", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "static", "struct", "super", "trait", "true", "type",
    "unsafe", "use", "where", "while",
];

/// Whether `s` is a keyword (`self`/`Self` are deliberately absent: they
/// are legitimate links in a field-access chain).
pub fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek_at(&self, n: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(n)
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Consumes chars while `f` holds.
    fn eat_while(&mut self, f: impl Fn(char) -> bool) {
        while self.peek().is_some_and(&f) {
            self.bump();
        }
    }
}

/// Lexes `src` completely. Never panics; unrecognised bytes become
/// [`TokKind::Unknown`] tokens so the output always concatenates back to
/// the input.
pub fn lex(src: &str) -> Vec<Token<'_>> {
    let mut cur = Cursor { src, pos: 0, line: 1, col: 1 };
    let mut out = Vec::new();
    while cur.pos < src.len() {
        let (start, line, col) = (cur.pos, cur.line, cur.col);
        let kind = scan_one(&mut cur);
        out.push(Token { kind, text: &src[start..cur.pos], start, line, col });
    }
    out
}

fn scan_one(cur: &mut Cursor<'_>) -> TokKind {
    let c = match cur.peek() {
        Some(c) => c,
        None => return TokKind::Unknown,
    };
    if c.is_whitespace() {
        cur.eat_while(|c| c.is_whitespace());
        return TokKind::Whitespace;
    }
    if cur.rest().starts_with("//") {
        cur.eat_while(|c| c != '\n');
        return TokKind::LineComment;
    }
    if cur.rest().starts_with("/*") {
        return scan_block_comment(cur);
    }
    // String-ish families that begin with what would otherwise be an
    // identifier: b'..', b".."; r".."/r#"..", br"../br#"..; r#ident.
    if c == 'b' || c == 'r' {
        if let Some(kind) = scan_prefixed_literal(cur) {
            return kind;
        }
    }
    if is_ident_start(c) {
        cur.eat_while(is_ident_continue);
        return TokKind::Ident;
    }
    if c.is_ascii_digit() {
        return scan_number(cur);
    }
    match c {
        '"' => return scan_string(cur),
        '\'' => return scan_quote(cur),
        _ => {}
    }
    for op in OPERATORS {
        if cur.rest().starts_with(op) {
            for _ in 0..op.len() {
                cur.bump();
            }
            return TokKind::Punct;
        }
    }
    if c.is_ascii_punctuation() {
        cur.bump();
        return TokKind::Punct;
    }
    cur.bump();
    TokKind::Unknown
}

fn scan_block_comment(cur: &mut Cursor<'_>) -> TokKind {
    cur.bump(); // '/'
    cur.bump(); // '*'
    let mut depth = 1u32;
    while depth > 0 {
        if cur.rest().starts_with("/*") {
            cur.bump();
            cur.bump();
            depth += 1;
        } else if cur.rest().starts_with("*/") {
            cur.bump();
            cur.bump();
            depth -= 1;
        } else if cur.bump().is_none() {
            break; // unterminated: runs to EOF
        }
    }
    TokKind::BlockComment
}

/// Handles `b`/`r`-prefixed literals and raw identifiers. Returns `None`
/// when the `b`/`r` is just the start of a plain identifier.
fn scan_prefixed_literal(cur: &mut Cursor<'_>) -> Option<TokKind> {
    let rest = cur.rest();
    if rest.starts_with("b'") {
        cur.bump();
        return Some(scan_quote(cur)); // byte literal lexes like a char
    }
    if rest.starts_with("b\"") {
        cur.bump();
        return Some(scan_string(cur));
    }
    let raw_prefix = if rest.starts_with("br") {
        2
    } else if rest.starts_with('r') {
        1
    } else {
        return None;
    };
    // Count '#'s after the prefix; a '"' then starts a raw string.
    let mut hashes = 0usize;
    while cur.peek_at(raw_prefix + hashes) == Some('#') {
        hashes += 1;
    }
    if cur.peek_at(raw_prefix + hashes) == Some('"') {
        for _ in 0..raw_prefix + hashes + 1 {
            cur.bump();
        }
        let close: String = format!("\"{}", "#".repeat(hashes));
        while !cur.rest().starts_with(close.as_str()) {
            if cur.bump().is_none() {
                return Some(TokKind::Str); // unterminated
            }
        }
        for _ in 0..close.len() {
            cur.bump();
        }
        return Some(TokKind::Str);
    }
    // r#ident raw identifier.
    if raw_prefix == 1 && hashes == 1 && cur.peek_at(2).is_some_and(is_ident_start) {
        cur.bump(); // r
        cur.bump(); // #
        cur.eat_while(is_ident_continue);
        return Some(TokKind::Ident);
    }
    None
}

fn scan_number(cur: &mut Cursor<'_>) -> TokKind {
    // Digits, underscores, and alphanumerics cover hex/octal/binary
    // bodies and type suffixes in one pass.
    cur.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
    // A fractional part only if '.' is followed by a digit (so `1..2`
    // and `1.max()` are left alone).
    if cur.peek() == Some('.') && cur.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
        cur.bump();
        cur.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
    }
    TokKind::Number
}

fn scan_string(cur: &mut Cursor<'_>) -> TokKind {
    cur.bump(); // opening '"'
    loop {
        match cur.bump() {
            None => return TokKind::Str, // unterminated
            Some('\\') => {
                cur.bump(); // escaped char (possibly the quote)
            }
            Some('"') => return TokKind::Str,
            Some(_) => {}
        }
    }
}

/// Disambiguates `'a` (lifetime) from `'x'`/`'\n'` (char literal).
fn scan_quote(cur: &mut Cursor<'_>) -> TokKind {
    cur.bump(); // opening '\''
    match cur.peek() {
        // Escape: definitely a char literal.
        Some('\\') => {
            cur.bump();
            cur.bump(); // the escaped char
            if cur.peek() == Some('\'') {
                cur.bump();
            }
            TokKind::Char
        }
        Some(c) if is_ident_start(c) => {
            cur.eat_while(is_ident_continue);
            if cur.peek() == Some('\'') {
                cur.bump(); // 'x' — char literal after all
                TokKind::Char
            } else {
                TokKind::Lifetime
            }
        }
        Some('\'') => {
            cur.bump(); // empty char literal ''
            TokKind::Char
        }
        Some(_) => {
            cur.bump(); // '+' etc.
            if cur.peek() == Some('\'') {
                cur.bump();
            }
            TokKind::Char
        }
        None => TokKind::Char, // lone quote at EOF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) {
        let toks = lex(src);
        let rebuilt: String = toks.iter().map(|t| t.text).collect();
        assert_eq!(rebuilt, src);
    }

    #[test]
    fn basic_tokens() {
        let toks = lex("let x = a.b == c;");
        let sig: Vec<&str> =
            toks.iter().filter(|t| t.kind != TokKind::Whitespace).map(|t| t.text).collect();
        assert_eq!(sig, ["let", "x", "=", "a", ".", "b", "==", "c", ";"]);
        roundtrip("let x = a.b == c;");
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<&str> =
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).map(|t| t.text).collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
        let chars: Vec<&str> =
            toks.iter().filter(|t| t.kind == TokKind::Char).map(|t| t.text).collect();
        assert_eq!(chars, ["'x'", "'\\n'"]);
    }

    #[test]
    fn raw_strings_and_idents() {
        roundtrip(r####"let s = r#"quote " inside"#; let t = br"bytes"; let r#fn = 1;"####);
        let toks = lex(r####"r#"a"# r#type"####);
        assert_eq!(toks[0].kind, TokKind::Str);
        assert_eq!(toks[2].kind, TokKind::Ident);
        assert_eq!(toks[2].text, "r#type");
    }

    #[test]
    fn nested_block_comment() {
        let toks = lex("/* a /* b */ c */ x");
        assert_eq!(toks[0].kind, TokKind::BlockComment);
        assert_eq!(toks[0].text, "/* a /* b */ c */");
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let sig: Vec<String> = lex("0..8 1.5 2.max(3) 0xff_u64")
            .iter()
            .filter(|t| t.kind != TokKind::Whitespace)
            .map(|t| t.text.to_string())
            .collect();
        assert_eq!(sig, ["0", "..", "8", "1.5", "2", ".", "max", "(", "3", ")", "0xff_u64"]);
    }

    #[test]
    fn line_and_col_track_newlines() {
        let toks = lex("a\n  bb\n");
        let bb = toks.iter().find(|t| t.text == "bb").expect("bb lexed");
        assert_eq!((bb.line, bb.col), (2, 3));
    }

    #[test]
    fn pathological_inputs_do_not_panic() {
        for src in ["\"unterminated", "/* open", "'", "b'", "r#\"open", "r#", "\\", "🦀 'é'"] {
            roundtrip(src);
        }
    }
}
