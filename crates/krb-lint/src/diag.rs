//! Rule identities and findings.

use std::fmt;

/// Every rule the engine knows, with a stable ID. IDs are append-only:
/// a retired rule keeps its number so baselines and EXPERIMENTS.md
/// history stay meaningful.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Rule {
    /// Secret-bearing type derives `Debug`/`Display`/`Serialize`.
    S001,
    /// Secret-named value flows into a formatting/log macro.
    S002,
    /// Hand-written leaking impl (`Display`/`Serialize`, or a `Debug`
    /// impl with no `****` redaction marker) on a secret-bearing type.
    S003,
    /// Secret-named value flows into a trace emission (`emit`, `note`,
    /// `begin_span`, `counter`, ...) without passing through
    /// `fingerprint(...)` redaction.
    S004,
    /// Taint-tracked secret reaches a sink across renames, inline
    /// format captures, or up to 3 call-graph hops (flow-aware sibling
    /// of S002/S004; see [`crate::taint`]).
    S005,
    /// `==`/`!=` on key or MAC material; `ct_eq` is required.
    C001,
    /// Wall-clock / OS nondeterminism (`SystemTime`, `Instant`,
    /// `thread::sleep`, `std::net`) in a deterministic crate.
    D001,
    /// `HashMap`/`HashSet` in a deterministic crate: `RandomState`
    /// iteration order is per-process nondeterministic.
    D002,
    /// A deterministic-crate function transitively (≤3 hops) reaches a
    /// wall-clock read defined *outside* the governed set — clock
    /// laundering D001 cannot see.
    D003,
    /// `unwrap()`/`expect()` in non-test protocol code.
    P001,
    /// `panic!`/`unreachable!`/`todo!`/`unimplemented!` in non-test
    /// protocol code.
    P002,
    /// Truncating `as u8/u16/u32` cast on a length-named operand inside
    /// an encode/decode-path function of a deterministic crate.
    P003,
    /// Heap allocation inside a configured hot-path function
    /// ([`crate::config::HOT_PATH_FNS`]).
    A001,
    /// Metric-name drift: a name emitted in code is missing from
    /// DESIGN.md's registry table, or vice versa.
    E001,
    /// Non-path (external registry) dependency in a manifest.
    H001,
}

/// All rules, in report order.
pub const ALL_RULES: &[Rule] = &[
    Rule::S001,
    Rule::S002,
    Rule::S003,
    Rule::S004,
    Rule::S005,
    Rule::C001,
    Rule::D001,
    Rule::D002,
    Rule::D003,
    Rule::P001,
    Rule::P002,
    Rule::P003,
    Rule::A001,
    Rule::E001,
    Rule::H001,
];

impl Rule {
    /// The stable ID string.
    pub fn id(self) -> &'static str {
        match self {
            Rule::S001 => "S001",
            Rule::S002 => "S002",
            Rule::S003 => "S003",
            Rule::S004 => "S004",
            Rule::S005 => "S005",
            Rule::C001 => "C001",
            Rule::D001 => "D001",
            Rule::D002 => "D002",
            Rule::D003 => "D003",
            Rule::P001 => "P001",
            Rule::P002 => "P002",
            Rule::P003 => "P003",
            Rule::A001 => "A001",
            Rule::E001 => "E001",
            Rule::H001 => "H001",
        }
    }

    /// Parses an ID string (as written in `lint-baseline.toml`).
    pub fn from_id(s: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.id() == s)
    }

    /// One-line rationale, shown in `--report` and DESIGN.md.
    pub fn rationale(self) -> &'static str {
        match self {
            Rule::S001 => "secret types must not derive Debug/Display/Serialize",
            Rule::S002 => "key material must not reach format!/log strings",
            Rule::S003 => "hand-written impls on secret types must redact",
            Rule::S004 => "traces carry key fingerprints, never key material",
            Rule::S005 => "secrets must not reach sinks through renames or calls",
            Rule::C001 => "key/MAC comparison must be constant-time (ct_eq)",
            Rule::D001 => "no wall clock, sleeps, or OS sockets in the simulator",
            Rule::D002 => "no RandomState maps in deterministic crates",
            Rule::D003 => "no clock reads laundered through helper crates",
            Rule::P001 => "protocol code must not unwrap()/expect()",
            Rule::P002 => "protocol code must not panic!/unreachable!",
            Rule::P003 => "wire lengths convert via try_from, never `as` casts",
            Rule::A001 => "hot-path functions stay allocation-free",
            Rule::E001 => "emitted metric names match DESIGN.md's registry",
            Rule::H001 => "every dependency must be an in-tree path dependency",
        }
    }
}

/// One diagnostic: a rule violated at a location.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the specific violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{}:{} {}",
            self.rule.id(),
            self.file,
            self.line,
            self.col,
            self.message
        )
    }
}
