//! The `krb-lint` binary: lints the workspace and gates `verify.sh`.
//!
//! Exit codes: 0 clean (every finding baselined with a justification,
//! no stale entries), 1 findings or stale baseline entries, 2 usage or
//! I/O errors.

use bench::TextTable;
use krb_lint::{Rule, ALL_RULES};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut report_mode = false;
    let mut root_arg: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--report" => report_mode = true,
            "--root" => root_arg = args.next(),
            "--help" | "-h" => {
                println!("usage: krb-lint [--report] [--root DIR]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("krb-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root_arg.map(Into::into).map(Ok).unwrap_or_else(krb_lint::find_root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("krb-lint: cannot locate workspace root: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match krb_lint::run(&root) {
        Ok(Ok(r)) => r,
        Ok(Err(b)) => {
            eprintln!("krb-lint: lint-baseline.toml:{}: {}", b.line, b.message);
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("krb-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if report_mode {
        print_report(&report);
    }

    if !report.active.is_empty() {
        let mut t = TextTable::new(&["rule", "location", "finding"]);
        for f in &report.active {
            t.row(&[
                f.rule.id().to_string(),
                format!("{}:{}:{}", f.file, f.line, f.col),
                f.message.clone(),
            ]);
        }
        t.print(&format!("krb-lint: {} finding(s)", report.active.len()));
        println!("(fix the finding, or add a justified [[allow]] entry to lint-baseline.toml)");
    }
    if !report.stale.is_empty() {
        println!("\nstale lint-baseline.toml entries (match no current finding — delete them):");
        for s in &report.stale {
            println!("  {s}");
        }
    }
    if report.clean() {
        println!(
            "krb-lint: OK — {} files scanned, 0 active findings, {} baselined suppression(s)",
            report.files_scanned,
            report.baselined.len()
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The E14 table: rule × crate violation counts (active + baselined),
/// plus the rule rationale column.
fn print_report(report: &krb_lint::Report) {
    let counts = report.counts_by_rule_and_crate();
    let mut crates: Vec<String> = counts.values().flat_map(|m| m.keys().cloned()).collect();
    crates.sort();
    crates.dedup();
    let mut headers: Vec<&str> = vec!["rule", "rationale"];
    for c in &crates {
        headers.push(c.as_str());
    }
    headers.push("total");
    let mut t = TextTable::new(&headers);
    for rule in ALL_RULES {
        let per: &std::collections::BTreeMap<String, usize> = &counts[rule.id()];
        let mut row = vec![rule.id().to_string(), rule.rationale().to_string()];
        let mut total = 0usize;
        for c in &crates {
            let n = per.get(c).copied().unwrap_or(0);
            total += n;
            row.push(if n == 0 { "·".to_string() } else { n.to_string() });
        }
        row.push(total.to_string());
        t.row(&row);
    }
    t.print("krb-lint rule × crate violations (E14)");
    println!(
        "flow coverage (E19): {} function(s), {} call edge(s), {} taint path(s)",
        report.flow.functions, report.flow.call_edges, report.flow.taint_paths
    );
    print_rule_table_hint(report);
}

fn print_rule_table_hint(report: &krb_lint::Report) {
    let active_by_rule = |r: Rule| report.active.iter().filter(|f| f.rule == r).count();
    let any_active = ALL_RULES.iter().any(|r| active_by_rule(*r) > 0);
    println!(
        "active: {}, baselined: {}{}",
        report.active.len(),
        report.baselined.len(),
        if any_active { " — active findings fail the gate" } else { "" }
    );
}
