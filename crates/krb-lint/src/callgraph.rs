//! The workspace call graph: which function does a call site reach?
//!
//! Resolution is by *name*, the only information a lexical parse has,
//! tightened with three heuristics so ambiguity produces silence rather
//! than noise:
//!
//! 1. a leading path segment (`s2k::derive`, `checksum::compute`) must
//!    match the defining file's stem or the defining crate's name;
//! 2. otherwise same-crate definitions win (intra-crate calls are the
//!    common case the taint rules care about);
//! 3. otherwise a cross-crate call resolves only when the name is
//!    defined exactly once in the whole workspace.
//!
//! A name that stays ambiguous after all three is left unresolved — the
//! flow rules treat an unresolved call as a no-op, trading recall for a
//! zero-false-positive edge set.

use crate::syntax::{CallSite, FileSyntax};
use std::collections::BTreeMap;

/// A function, addressed by file index and position within the file.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct FnRef {
    /// Index into the workspace file list.
    pub file: usize,
    /// Index into that file's `FileSyntax::fns`.
    pub fn_idx: usize,
}

/// The resolved graph over every file in the workspace.
pub struct Graph {
    /// name → every definition site, in file order.
    by_name: BTreeMap<String, Vec<FnRef>>,
    /// Per-file crate names, aligned with the parse list.
    crates: Vec<String>,
    /// Per-file path stems (`s2k` for `crates/krb-crypto/src/s2k.rs`).
    stems: Vec<String>,
    /// Resolved edges, for the E19 coverage count.
    pub edges: usize,
}

impl Graph {
    /// Indexes every function of every parsed file. `files` pairs each
    /// parse with its (workspace-relative path, crate name).
    pub fn build(files: &[(&str, &str, &FileSyntax)]) -> Graph {
        let mut by_name: BTreeMap<String, Vec<FnRef>> = BTreeMap::new();
        let mut crates = Vec::new();
        let mut stems = Vec::new();
        for (file, (rel_path, crate_name, fs)) in files.iter().enumerate() {
            crates.push(crate_name.to_string());
            stems.push(stem_of(rel_path));
            for (fn_idx, f) in fs.fns.iter().enumerate() {
                by_name.entry(f.name.clone()).or_default().push(FnRef { file, fn_idx });
            }
        }
        let mut g = Graph { by_name, crates, stems, edges: 0 };
        // Pre-count resolvable edges across the workspace (the E19
        // `call_edges` metric): every call site with a unique target.
        let mut edges = 0;
        for (file, (_, crate_name, fs)) in files.iter().enumerate() {
            for f in &fs.fns {
                for c in &f.calls {
                    if g.resolve(c, crate_name, file).is_some() {
                        edges += 1;
                    }
                }
            }
        }
        g.edges = edges;
        g
    }

    /// The crate owning `fnref`'s file.
    pub fn crate_of(&self, fnref: FnRef) -> &str {
        &self.crates[fnref.file]
    }

    /// Resolves `call` made from `from_crate` (in file `from_file`) to
    /// its unique definition, or `None` when unknown or ambiguous.
    pub fn resolve(&self, call: &CallSite, from_crate: &str, from_file: usize) -> Option<FnRef> {
        if call.is_macro {
            return None;
        }
        let candidates = self.by_name.get(&call.callee)?;
        // 1. Qualified path: the last segment before the name must match
        //    the defining module's file stem or the defining crate.
        if let Some(qual) = call.path.last() {
            let qual_norm = qual.replace('_', "-");
            let matched: Vec<FnRef> = candidates
                .iter()
                .copied()
                .filter(|r| {
                    self.stems[r.file] == *qual
                        || self.crates[r.file] == qual_norm
                        || self.crates[r.file] == *qual
                })
                .collect();
            return match matched.as_slice() {
                [one] => Some(*one),
                _ => None,
            };
        }
        // 2. Same file, then same crate.
        let in_file: Vec<FnRef> =
            candidates.iter().copied().filter(|r| r.file == from_file).collect();
        if let [one] = in_file.as_slice() {
            return Some(*one);
        }
        let in_crate: Vec<FnRef> =
            candidates.iter().copied().filter(|r| self.crates[r.file] == from_crate).collect();
        if let [one] = in_crate.as_slice() {
            return Some(*one);
        }
        if !in_crate.is_empty() {
            return None; // several same-crate definitions: ambiguous
        }
        // 3. Workspace-unique.
        match candidates.as_slice() {
            [one] => Some(*one),
            _ => None,
        }
    }
}

fn stem_of(rel_path: &str) -> String {
    rel_path
        .rsplit('/')
        .next()
        .unwrap_or(rel_path)
        .trim_end_matches(".rs")
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::syntax::parse;

    #[test]
    fn resolves_same_crate_then_unique_then_path() {
        let a = "fn caller() { helper(); s2k::derive(); unique_elsewhere(); }\nfn helper() {}";
        let b = "fn derive() {}";
        let c = "fn unique_elsewhere() {}\nfn helper() {}";
        let ta = lex(a);
        let tb = lex(b);
        let tc = lex(c);
        let (pa, pb, pc) = (parse(&ta), parse(&tb), parse(&tc));
        let files = [
            ("crates/kerberos/src/kdc.rs", "kerberos", &pa),
            ("crates/krb-crypto/src/s2k.rs", "krb-crypto", &pb),
            ("crates/bench/src/lib.rs", "bench", &pc),
        ];
        let g = Graph::build(&files);
        let caller = &pa.fns[0];
        let helper_call = caller.calls.iter().find(|c| c.callee == "helper").unwrap();
        // `helper` exists in kerberos and bench: same-crate wins.
        assert_eq!(g.resolve(helper_call, "kerberos", 0), Some(FnRef { file: 0, fn_idx: 1 }));
        let derive_call = caller.calls.iter().find(|c| c.callee == "derive").unwrap();
        // Path-qualified: the s2k stem picks the krb-crypto definition.
        assert_eq!(g.resolve(derive_call, "kerberos", 0), Some(FnRef { file: 1, fn_idx: 0 }));
        let uniq = caller.calls.iter().find(|c| c.callee == "unique_elsewhere").unwrap();
        // Workspace-unique cross-crate name resolves.
        assert_eq!(g.resolve(uniq, "kerberos", 0), Some(FnRef { file: 2, fn_idx: 0 }));
        assert_eq!(g.edges, 3);
    }

    #[test]
    fn ambiguity_is_silence() {
        let a = "fn f() { dup(); }";
        let b = "fn dup() {}";
        let c = "fn dup() {}";
        let (ta, tb, tc) = (lex(a), lex(b), lex(c));
        let (pa, pb, pc) = (parse(&ta), parse(&tb), parse(&tc));
        let files = [
            ("crates/kerberos/src/x.rs", "kerberos", &pa),
            ("crates/bench/src/lib.rs", "bench", &pb),
            ("crates/testkit/src/lib.rs", "testkit", &pc),
        ];
        let g = Graph::build(&files);
        let call = pa.fns[0].calls.iter().find(|c| c.callee == "dup").unwrap();
        assert_eq!(g.resolve(call, "kerberos", 0), None);
        assert_eq!(g.edges, 0);
    }
}
