//! The rule implementations: token-stream walks over one source file.
//!
//! Every rule receives a [`FileCtx`] (lexed tokens plus crate identity)
//! and appends [`Finding`]s. Rules are deliberately lexical — no type
//! information — so each pattern is tuned against the fixture corpus in
//! `tests/fixtures/` (one bad and one good example per rule) and against
//! the live tree, where every false positive found during bring-up grew
//! the benign-identifier lists in [`crate::config`].

use crate::config::{
    is_cmp_benign, is_mac_ident, is_secret_ident, DETERMINISTIC_CRATES, FORMAT_MACROS,
    PANIC_FREE_CRATES, SECRET_TYPES, TRACE_EMIT_CALLS,
};
use crate::diag::{Finding, Rule};
use crate::lexer::{is_keyword, TokKind, Token};

/// One source file, lexed, with enough context to scope rules.
pub struct FileCtx<'a> {
    /// Workspace-relative path (diagnostics use this verbatim).
    pub rel_path: &'a str,
    /// Owning crate name (`kerberos`, `simnet`, ...).
    pub crate_name: &'a str,
    /// Whole-file test code: under `tests/`, `benches/`, or `examples/`.
    pub is_test_file: bool,
    /// All tokens, whitespace and comments included.
    pub tokens: &'a [Token<'a>],
}

impl FileCtx<'_> {
    fn finding(&self, rule: Rule, tok: &Token<'_>, message: String) -> Finding {
        Finding { rule, file: self.rel_path.to_string(), line: tok.line, col: tok.col, message }
    }
}

/// Indices of significant (non-whitespace, non-comment) tokens.
fn significant(tokens: &[Token<'_>]) -> Vec<usize> {
    tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| {
            !matches!(t.kind, TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment)
        })
        .map(|(i, _)| i)
        .collect()
}

/// Byte ranges of test-only code: `#[cfg(test)] mod ... { .. }` bodies
/// and `#[test] fn ... { .. }` bodies.
fn test_regions(ctx: &FileCtx<'_>, sig: &[usize]) -> Vec<(usize, usize)> {
    let toks = ctx.tokens;
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 4 < sig.len() {
        let t = |k: usize| toks[sig[k]].text;
        // #[cfg(test)] or #[test]
        if t(i) == "#" && t(i + 1) == "[" {
            let is_cfg_test = i + 5 < sig.len()
                && t(i + 2) == "cfg"
                && t(i + 3) == "("
                && t(i + 4) == "test"
                && t(i + 5) == ")";
            let is_test_attr = t(i + 2) == "test" && t(i + 3) == "]";
            if is_cfg_test || is_test_attr {
                // Find the next `{` at the item level and take its body.
                if let Some((open, close)) = next_brace_block(toks, sig, i) {
                    regions.push((toks[sig[open]].start, toks[sig[close]].start));
                    i = open; // regions may nest; keep scanning inside
                }
            }
        }
        i += 1;
    }
    regions
}

/// From `from`, finds the next top-level `{` and its matching `}`
/// (indices into `sig`). Tolerates unbalanced files by returning `None`.
fn next_brace_block(toks: &[Token<'_>], sig: &[usize], from: usize) -> Option<(usize, usize)> {
    let mut open = None;
    for (k, &si) in sig.iter().enumerate().skip(from) {
        if toks[si].text == "{" {
            open = Some(k);
            break;
        }
        // A `;` before any `{` means the attribute decorated a
        // body-less item (e.g. `#[test] fn x();` in a trait): no block.
        if toks[si].text == ";" {
            return None;
        }
    }
    let open = open?;
    let mut depth = 0i64;
    for (k, &si) in sig.iter().enumerate().skip(open) {
        match toks[si].text {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, k));
                }
            }
            _ => {}
        }
    }
    None
}

fn in_regions(regions: &[(usize, usize)], tok: &Token<'_>) -> bool {
    regions.iter().any(|&(s, e)| tok.start >= s && tok.start <= e)
}

/// Runs every source rule over one file.
pub fn check_file(ctx: &FileCtx<'_>) -> Vec<Finding> {
    let sig = significant(ctx.tokens);
    let tests = test_regions(ctx, &sig);
    let mut out = Vec::new();
    rule_s001_derive_leak(ctx, &sig, &mut out);
    rule_s002_format_leak(ctx, &sig, &tests, &mut out);
    rule_s003_manual_impl(ctx, &sig, &mut out);
    rule_s004_trace_leak(ctx, &sig, &tests, &mut out);
    rule_c001_secret_compare(ctx, &sig, &tests, &mut out);
    rule_d001_wall_clock(ctx, &sig, &mut out);
    rule_d002_random_state(ctx, &sig, &tests, &mut out);
    rule_p001_p002_panic(ctx, &sig, &tests, &mut out);
    out
}

// ---- S001: secret type derives a leaking trait ----

fn rule_s001_derive_leak(ctx: &FileCtx<'_>, sig: &[usize], out: &mut Vec<Finding>) {
    const LEAKY: &[&str] = &["Debug", "Display", "Serialize"];
    let toks = ctx.tokens;
    let t = |k: usize| toks[sig[k]].text;
    let mut i = 0;
    while i + 3 < sig.len() {
        if !(t(i) == "#" && t(i + 1) == "[" && t(i + 2) == "derive" && t(i + 3) == "(") {
            i += 1;
            continue;
        }
        // Collect derived trait names up to the closing `)`.
        let mut leaks: Vec<(&str, usize)> = Vec::new();
        let mut j = i + 4;
        while j < sig.len() && t(j) != ")" {
            if toks[sig[j]].kind == TokKind::Ident && LEAKY.contains(&t(j)) {
                leaks.push((t(j), j));
            }
            j += 1;
        }
        // Skip to the struct/enum name: past `)]`, further attributes,
        // doc comments (not in sig), and visibility.
        let mut k = j + 2; // past `)` and `]`
        while k < sig.len() && t(k) == "#" {
            // another attribute: skip its [...] group
            let mut depth = 0i64;
            k += 1;
            while k < sig.len() {
                match t(k) {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
        }
        if k < sig.len() && t(k) == "pub" {
            k += 1;
            if k < sig.len() && t(k) == "(" {
                while k < sig.len() && t(k) != ")" {
                    k += 1;
                }
                k += 1;
            }
        }
        if k + 1 < sig.len() && (t(k) == "struct" || t(k) == "enum") {
            let name = t(k + 1);
            if SECRET_TYPES.contains(&name) {
                for (trait_name, at) in &leaks {
                    out.push(ctx.finding(
                        Rule::S001,
                        &toks[sig[*at]],
                        format!(
                            "secret type `{name}` derives `{trait_name}`; write a redacting impl \
                             (or drop it) so key bytes cannot be formatted"
                        ),
                    ));
                }
            }
        }
        i = j;
    }
}

// ---- S002: secret-named identifier inside a formatting macro ----

fn rule_s002_format_leak(
    ctx: &FileCtx<'_>,
    sig: &[usize],
    tests: &[(usize, usize)],
    out: &mut Vec<Finding>,
) {
    if ctx.is_test_file {
        return;
    }
    let toks = ctx.tokens;
    let t = |k: usize| toks[sig[k]].text;
    let mut i = 0;
    while i + 2 < sig.len() {
        let is_fmt = toks[sig[i]].kind == TokKind::Ident
            && FORMAT_MACROS.contains(&t(i))
            && t(i + 1) == "!"
            && matches!(t(i + 2), "(" | "[" | "{");
        if !is_fmt || in_regions(tests, &toks[sig[i]]) {
            i += 1;
            continue;
        }
        let (open_s, close_s) = (t(i + 2), matching_close(t(i + 2)));
        let mut depth = 0i64;
        let mut j = i + 2;
        while j < sig.len() {
            let s = t(j);
            if s == open_s {
                depth += 1;
            } else if s == close_s {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if toks[sig[j]].kind == TokKind::Ident && is_secret_ident(s) {
                out.push(ctx.finding(
                    Rule::S002,
                    &toks[sig[j]],
                    format!("`{s}` flows into `{}!`: key material must never be formatted", t(i)),
                ));
            }
            j += 1;
        }
        i = j.max(i + 1);
    }
}

fn matching_close(open: &str) -> &'static str {
    match open {
        "(" => ")",
        "[" => "]",
        _ => "}",
    }
}

// ---- S003: hand-written leaking impl on a secret type ----

fn rule_s003_manual_impl(ctx: &FileCtx<'_>, sig: &[usize], out: &mut Vec<Finding>) {
    let toks = ctx.tokens;
    let t = |k: usize| toks[sig[k]].text;
    for i in 0..sig.len() {
        if t(i) != "impl" {
            continue;
        }
        // impl [<generics>] Path::To::Trait for Type
        let mut j = i + 1;
        if j < sig.len() && t(j) == "<" {
            let mut depth = 0i64;
            while j < sig.len() {
                match t(j) {
                    "<" => depth += 1,
                    ">" => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // Walk the trait path; remember its last identifier.
        let mut trait_name: Option<&str> = None;
        while j < sig.len() {
            if toks[sig[j]].kind == TokKind::Ident && !is_keyword(t(j)) {
                trait_name = Some(t(j));
                j += 1;
            } else if t(j) == "::" {
                j += 1;
            } else {
                break;
            }
        }
        if j >= sig.len() || t(j) != "for" {
            continue; // inherent impl
        }
        j += 1;
        // Type path: last identifier is the type name.
        let mut type_name: Option<(&str, usize)> = None;
        while j < sig.len() {
            if toks[sig[j]].kind == TokKind::Ident && !is_keyword(t(j)) {
                type_name = Some((t(j), j));
                j += 1;
            } else if t(j) == "::" {
                j += 1;
            } else {
                break;
            }
        }
        let (Some(trait_name), Some((type_name, at))) = (trait_name, type_name) else {
            continue;
        };
        if !SECRET_TYPES.contains(&type_name) {
            continue;
        }
        match trait_name {
            "Display" | "Serialize" => out.push(ctx.finding(
                Rule::S003,
                &toks[sig[at]],
                format!("`impl {trait_name} for {type_name}` can expose key bytes; remove it"),
            )),
            "Debug" => {
                // The sanctioned redaction path — but only if the body
                // visibly redacts (a `****` marker in a string literal).
                let redacts = next_brace_block(toks, sig, j).is_some_and(|(open, close)| {
                    sig[open..=close].iter().any(|&si| {
                        toks[si].kind == TokKind::Str && toks[si].text.contains("****")
                    })
                });
                if !redacts {
                    out.push(ctx.finding(
                        Rule::S003,
                        &toks[sig[at]],
                        format!(
                            "`impl Debug for {type_name}` has no `****` redaction marker; \
                             a Debug impl on a secret type must redact"
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
}

// ---- S004: key material in a trace emission ----

/// Traces export to JSONL and render in narrations, so anything passed
/// to an emission method is as public as a log line. The sanctioned way
/// to reference a key in a trace is `fingerprint(...)` (an 8-hex-char
/// digest prefix); arguments inside a `fingerprint(...)` group are
/// therefore exempt, everything else secret-named fires.
fn rule_s004_trace_leak(
    ctx: &FileCtx<'_>,
    sig: &[usize],
    tests: &[(usize, usize)],
    out: &mut Vec<Finding>,
) {
    if ctx.is_test_file {
        return;
    }
    let toks = ctx.tokens;
    let t = |k: usize| toks[sig[k]].text;
    let mut i = 0;
    while i + 2 < sig.len() {
        let is_call = t(i) == "."
            && toks[sig[i + 1]].kind == TokKind::Ident
            && TRACE_EMIT_CALLS.contains(&t(i + 1))
            && t(i + 2) == "(";
        if !is_call || in_regions(tests, &toks[sig[i + 1]]) {
            i += 1;
            continue;
        }
        let method = t(i + 1);
        let mut depth = 0i64;
        let mut j = i + 2;
        while j < sig.len() {
            let s = t(j);
            if toks[sig[j]].kind == TokKind::Ident
                && s == "fingerprint"
                && j + 1 < sig.len()
                && t(j + 1) == "("
            {
                // The redaction boundary: skip its whole paren group.
                let mut inner = 0i64;
                j += 1;
                while j < sig.len() {
                    match t(j) {
                        "(" => inner += 1,
                        ")" => {
                            inner -= 1;
                            if inner == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            } else if s == "(" {
                depth += 1;
            } else if s == ")" {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if toks[sig[j]].kind == TokKind::Ident && is_secret_ident(s) {
                out.push(ctx.finding(
                    Rule::S004,
                    &toks[sig[j]],
                    format!(
                        "`{s}` flows into trace `.{method}(..)`: traces are exported; \
                         pass fingerprint(&key) instead of key material"
                    ),
                ));
            }
            j += 1;
        }
        i = j.max(i + 1);
    }
}

// ---- C001: non-constant-time comparison of secret material ----

fn rule_c001_secret_compare(
    ctx: &FileCtx<'_>,
    sig: &[usize],
    tests: &[(usize, usize)],
    out: &mut Vec<Finding>,
) {
    let toks = ctx.tokens;
    for (k, &si) in sig.iter().enumerate() {
        let op = toks[si].text;
        if !(toks[si].kind == TokKind::Punct && (op == "==" || op == "!="))
            || ctx.is_test_file
            || in_regions(tests, &toks[si])
        {
            continue;
        }
        let mut idents = operand_idents(toks, sig, k, Direction::Left);
        idents.extend(operand_idents(toks, sig, k, Direction::Right));
        if idents.iter().any(|n| is_cmp_benign(n)) {
            continue;
        }
        if let Some(hit) =
            idents.iter().find(|n| is_secret_ident(n) || is_mac_ident(n)).copied()
        {
            out.push(ctx.finding(
                Rule::C001,
                &toks[si],
                format!("`{op}` compares `{hit}`: use krb_crypto::ct_eq for key/MAC material"),
            ));
        }
    }
}

enum Direction {
    Left,
    Right,
}

/// Collects the identifiers of the operand expression chain adjacent to
/// the comparison at `sig[k]`, walking through field accesses, paths,
/// index and call groups, and stopping at keywords or statement
/// boundaries. Bounded at 24 tokens so worst cases stay cheap.
fn operand_idents<'a>(
    toks: &[Token<'a>],
    sig: &[usize],
    k: usize,
    dir: Direction,
) -> Vec<&'a str> {
    let mut idents = Vec::new();
    let mut depth = 0i64;
    let mut steps = 0;
    let mut j = k;
    loop {
        match dir {
            Direction::Left => {
                if j == 0 {
                    break;
                }
                j -= 1;
            }
            Direction::Right => {
                j += 1;
                if j >= sig.len() {
                    break;
                }
            }
        }
        steps += 1;
        if steps > 24 {
            break;
        }
        let tok = &toks[sig[j]];
        let s = tok.text;
        let (opens, closes) = match dir {
            Direction::Left => ([")", "]"], ["(", "["]),
            Direction::Right => (["(", "["], [")", "]"]),
        };
        if opens.contains(&s) {
            depth += 1;
            continue;
        }
        if closes.contains(&s) {
            depth -= 1;
            if depth < 0 {
                break; // left the enclosing group
            }
            continue;
        }
        if depth > 0 {
            if tok.kind == TokKind::Ident && !is_keyword(s) {
                idents.push(s);
            }
            continue;
        }
        match tok.kind {
            TokKind::Ident if s == "self" || s == "Self" => {}
            TokKind::Ident if is_keyword(s) => break,
            TokKind::Ident => idents.push(s),
            TokKind::Number | TokKind::Lifetime => {}
            TokKind::Punct if matches!(s, "." | "::" | "&" | "*" | "!") => {}
            _ => break,
        }
    }
    idents
}

// ---- D001/D002: nondeterminism in deterministic crates ----

fn rule_d001_wall_clock(ctx: &FileCtx<'_>, sig: &[usize], out: &mut Vec<Finding>) {
    if !DETERMINISTIC_CRATES.contains(&ctx.crate_name) {
        return;
    }
    let toks = ctx.tokens;
    let t = |k: usize| toks[sig[k]].text;
    for k in 0..sig.len() {
        if toks[sig[k]].kind != TokKind::Ident {
            continue;
        }
        let name = t(k);
        let flagged = match name {
            "SystemTime" | "Instant" => Some(format!(
                "`{name}` reads the wall clock; deterministic crates must use simnet time"
            )),
            "sleep" if k > 1 && t(k - 1) == "::" && t(k - 2) == "thread" => Some(
                "`thread::sleep` stalls on the OS clock; advance the simulated clock instead"
                    .to_string(),
            ),
            "net" if k > 1 && t(k - 1) == "::" && t(k - 2) == "std" => Some(
                "`std::net` opens OS sockets; deterministic crates must use simnet".to_string(),
            ),
            _ => None,
        };
        if let Some(message) = flagged {
            out.push(ctx.finding(Rule::D001, &toks[sig[k]], message));
        }
    }
}

fn rule_d002_random_state(
    ctx: &FileCtx<'_>,
    sig: &[usize],
    tests: &[(usize, usize)],
    out: &mut Vec<Finding>,
) {
    if !DETERMINISTIC_CRATES.contains(&ctx.crate_name) || ctx.is_test_file {
        return;
    }
    for &si in sig {
        let tok = &ctx.tokens[si];
        if tok.kind == TokKind::Ident
            && matches!(tok.text, "HashMap" | "HashSet")
            && !in_regions(tests, tok)
        {
            out.push(ctx.finding(
                Rule::D002,
                tok,
                format!(
                    "`{}` iterates in RandomState order; use BTreeMap/BTreeSet so every \
                     traversal is deterministic",
                    tok.text
                ),
            ));
        }
    }
}

// ---- P001/P002: panic hygiene in protocol code ----

fn rule_p001_p002_panic(
    ctx: &FileCtx<'_>,
    sig: &[usize],
    tests: &[(usize, usize)],
    out: &mut Vec<Finding>,
) {
    if !PANIC_FREE_CRATES.contains(&ctx.crate_name)
        || ctx.is_test_file
        || !ctx.rel_path.contains("/src/")
    {
        return;
    }
    let toks = ctx.tokens;
    let t = |k: usize| toks[sig[k]].text;
    for k in 0..sig.len() {
        if toks[sig[k]].kind != TokKind::Ident || in_regions(tests, &toks[sig[k]]) {
            continue;
        }
        let name = t(k);
        match name {
            "unwrap" | "expect"
                if k > 0 && t(k - 1) == "." && k + 1 < sig.len() && t(k + 1) == "(" =>
            {
                out.push(ctx.finding(
                    Rule::P001,
                    &toks[sig[k]],
                    format!(
                        "`.{name}()` can panic in protocol code; return an error or recover \
                         (for locks: unwrap_or_else(|p| p.into_inner()))"
                    ),
                ));
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if k + 1 < sig.len() && t(k + 1) == "!" =>
            {
                out.push(ctx.finding(
                    Rule::P002,
                    &toks[sig[k]],
                    format!("`{name}!` aborts protocol code; surface a KrbError instead"),
                ));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(crate_name: &str, path: &str, src: &str) -> Vec<Finding> {
        let tokens = lex(src);
        let ctx = FileCtx {
            rel_path: path,
            crate_name,
            is_test_file: path.contains("/tests/"),
            tokens: &tokens,
        };
        check_file(&ctx)
    }

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                fn f() { x.unwrap(); }
            }
        "#;
        assert!(run("kerberos", "crates/kerberos/src/x.rs", src).is_empty());
    }

    #[test]
    fn unwrap_outside_tests_fires() {
        let src = "fn f() { x.unwrap(); }";
        let f = run("kerberos", "crates/kerberos/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::P001);
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let src = "fn f() { x.lock().unwrap_or_else(|p| p.into_inner()); }";
        assert!(run("kerberos", "crates/kerberos/src/x.rs", src).is_empty());
    }

    #[test]
    fn checksum_type_compare_is_benign() {
        let src = "fn f() { if c.ctype != config.checksum { } }";
        assert!(run("kerberos", "crates/kerberos/src/x.rs", src).is_empty());
    }

    #[test]
    fn mac_value_compare_fires() {
        let src = "fn f() { if recomputed.value == cksum.value { } }";
        let f = run("krb-crypto", "crates/krb-crypto/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::C001);
    }

    #[test]
    fn redacting_debug_impl_is_allowed() {
        let src = r#"
            impl core::fmt::Debug for DesKey {
                fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                    write!(f, "DesKey(****************)")
                }
            }
        "#;
        assert!(run("krb-crypto", "crates/krb-crypto/src/x.rs", src).is_empty());
    }

    #[test]
    fn trace_emit_with_raw_key_fires() {
        let src = r#"fn f(tr: &Tracer, session_key: &DesKey) {
            tr.emit(EventKind::TicketIssued, 0, vec![("k", Value::bytes(session_key.bytes()))]);
        }"#;
        let f = run("kerberos", "crates/kerberos/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::S004);
    }

    #[test]
    fn trace_emit_with_fingerprint_is_clean() {
        let src = r#"fn f(tr: &Tracer, session_key: &DesKey) {
            tr.emit(EventKind::TicketIssued, 0, vec![
                ("key_fpr", Value::str(crate::traceview::fingerprint(session_key))),
            ]);
            tr.counter("kdc.issued", name, 1);
        }"#;
        assert!(run("kerberos", "crates/kerberos/src/x.rs", src).is_empty());
    }

    #[test]
    fn non_trace_method_named_like_emit_arg_is_scanned_only_for_trace_calls() {
        // `.push(key)` is not a trace call; S004 must not fire.
        let src = "fn f(v: &mut Vec<u8>, key: u8) { v.push(key); }";
        assert!(run("kerberos", "crates/kerberos/src/x.rs", src).is_empty());
    }

    #[test]
    fn forbidden_in_strings_and_comments_is_ignored() {
        let src = r#"
            // SystemTime would be bad; HashMap too
            fn f() -> &'static str { "Instant HashMap unwrap()" }
        "#;
        assert!(run("simnet", "crates/simnet/src/x.rs", src).is_empty());
    }

    #[test]
    fn bench_crate_is_exempt_from_determinism() {
        let src = "use std::time::Instant; fn f() { let _ = Instant::now(); }";
        assert!(run("bench", "crates/bench/src/lib.rs", src).is_empty());
    }
}
