//! E19 — static-analysis coverage: what the flow-aware lint actually
//! traversed. Runs the full workspace lint once, times it, and reports
//! findings per rule (active + baselined separately), functions
//! analysed, call edges resolved, and taint paths walked.
//!
//! The wall-clock goes to stdout only; `BENCH_lint.json` carries
//! nothing but deterministic counts, so `verify.sh` byte-diffs two
//! back-to-back runs — the analyzer meets the same determinism bar it
//! enforces on the crates it scans.

use bench::{time_us, BenchJson, TextTable};
use krb_lint::ALL_RULES;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match krb_lint::find_root() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("table_lint_coverage: cannot locate workspace root: {e}");
            return ExitCode::from(2);
        }
    };
    let (outcome, wall_us) = time_us(|| krb_lint::run(&root));
    let report = match outcome {
        Ok(Ok(r)) => r,
        Ok(Err(b)) => {
            eprintln!("table_lint_coverage: lint-baseline.toml:{}: {}", b.line, b.message);
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("table_lint_coverage: {e}");
            return ExitCode::from(2);
        }
    };

    let mut t = TextTable::new(&["rule", "active", "baselined"]);
    let mut json = BenchJson::new("E19");
    json.int("files_scanned", report.files_scanned as u64)
        .int("functions", report.flow.functions as u64)
        .int("call_edges", report.flow.call_edges as u64)
        .int("taint_paths", report.flow.taint_paths as u64);
    for rule in ALL_RULES {
        let active = report.active.iter().filter(|f| f.rule == *rule).count();
        let baselined = report.baselined.iter().filter(|f| f.rule == *rule).count();
        t.row(&[rule.id().to_string(), active.to_string(), baselined.to_string()]);
        json.int(&format!("findings_{}", rule.id()), (active + baselined) as u64);
    }
    json.flag("clean", report.clean());

    t.print("krb-lint rule coverage (E19)");
    println!(
        "flow pass: {} function(s), {} call edge(s), {} taint path(s) over {} file(s)",
        report.flow.functions, report.flow.call_edges, report.flow.taint_paths,
        report.files_scanned,
    );
    println!("lint wall time: {wall_us:.0} us (stdout only, never in the JSON)");
    json.write("lint");
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
