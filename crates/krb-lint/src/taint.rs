//! The taint engine behind S005: where can a secret flow?
//!
//! Taint is a set of local names per function, seeded at the sources
//! the paper's attacks start from — parameters of a secret-bearing
//! type (`SecretBytes`, `DesKey`, ...), parameters named like keys or
//! passwords, `s2k::` derivation outputs — and propagated through
//! `let` bindings, field accesses, and (via per-function summaries) up
//! to [`MAX_HOPS`] call-graph hops. Sinks are the places bytes become
//! public: formatting macros (including *inline format captures*,
//! which the lexical S002 cannot see inside string literals) and trace
//! emissions outside a `fingerprint(...)` redaction group.
//!
//! Three deliberate asymmetries keep the rule useful rather than noisy:
//!
//! - a *local* flow of an identifier that is itself secret-named is
//!   S002/S004's finding, not S005's — S005 reports what the lexical
//!   rules cannot: renamed copies, captures, and cross-function flows;
//! - a call's *return value* is a different value from its arguments:
//!   `let h = unit.insert(key, purpose)` binds a slot handle, not the
//!   key, so argument taint stays inside the call unless the resolved
//!   callee's declared return type is itself secret (`s2k::` derivation,
//!   subkey computation);
//! - sanitizers ([`config::SANITIZER_FNS`], [`config::SANITIZER_METHODS`])
//!   cut the flow: passing a secret *into* `fingerprint`/`seal_with` is
//!   the sanctioned direction, and `key.len()` is public arithmetic.

use crate::callgraph::{FnRef, Graph};
use crate::config::{
    is_secret_ident, is_taint_source_ident, is_test_path, FORMAT_MACROS, SANITIZER_FNS,
    SANITIZER_METHODS, SECRET_TYPES, TRACE_EMIT_CALLS,
};
use crate::diag::{Finding, Rule};
use crate::lexer::{TokKind, Token};
use crate::syntax::{CallSite, FileSyntax, FnInfo};
use std::collections::{BTreeMap, BTreeSet};

/// Cross-function propagation depth (call-graph hops from the tainted
/// call site to the sink).
pub const MAX_HOPS: usize = 3;

/// Counters the E19 bench reports.
#[derive(Default, Clone, Copy)]
pub struct TaintStats {
    /// (fn, param) summary expansions walked by the cross-function
    /// search — the `taint_paths` E19 metric.
    pub paths: usize,
}

/// Where a tainted value became public.
#[derive(Clone, Debug)]
struct Sink {
    /// `format!`-family macro or trace-emission method name.
    via: String,
    /// File (workspace-relative) and position of the sink.
    file: String,
    line: u32,
    col: u32,
}

/// One function's externally visible taint behaviour.
struct Summary {
    /// Per parameter: the first local sink it reaches, if any.
    param_sink: Vec<Option<Sink>>,
    /// Per parameter: calls it flows into, as (callee, argument index).
    param_calls: Vec<Vec<(FnRef, usize)>>,
}

/// The workspace view the taint pass runs over.
pub struct TaintCtx<'a> {
    /// (rel_path, crate_name) per file, aligned with `lexed`/`parsed`.
    pub files: &'a [(&'a str, &'a str)],
    /// Lexed tokens per file.
    pub lexed: &'a [Vec<Token<'a>>],
    /// Parsed skeleton per file.
    pub parsed: &'a [FileSyntax],
    /// The resolved call graph.
    pub graph: &'a Graph,
}

impl TaintCtx<'_> {
    fn fn_info(&self, r: FnRef) -> &FnInfo {
        &self.parsed[r.file].fns[r.fn_idx]
    }

    /// (tokens, significant-index list) of one file, for rule passes.
    pub(crate) fn toks_sig(&self, file: usize) -> (&[Token<'_>], &[usize]) {
        (&self.lexed[file], &self.parsed[file].sig)
    }
}

/// Computes the tainted name set of one function body: parameter seeds
/// plus `let`-propagation to a fixpoint. `secret_calls` holds the
/// `name_at` indices of calls whose resolved callee returns a secret
/// type (see [`secret_ret_calls`]). Public for the monotonicity
/// proptest.
pub fn local_taint(
    toks: &[Token<'_>],
    sig: &[usize],
    f: &FnInfo,
    secret_calls: &BTreeSet<usize>,
) -> BTreeSet<String> {
    let mut tainted: BTreeSet<String> = BTreeSet::new();
    for p in &f.params {
        let secret_type = p.type_idents.iter().any(|t| SECRET_TYPES.contains(&t.as_str()));
        if secret_type || is_taint_source_ident(&p.name) {
            tainted.insert(p.name.clone());
        }
    }
    // Statement-ordered passes to a fixpoint; bindings form a DAG in
    // source order almost always, so this converges immediately, but
    // shadowing/reassignment patterns get three more chances.
    for _ in 0..4 {
        let mut changed = false;
        for l in &f.lets {
            if l.names.iter().all(|n| tainted.contains(n)) {
                continue;
            }
            if scan_taint_hits(toks, sig, l.rhs, &tainted, secret_calls, &mut |_, _| true) {
                for n in &l.names {
                    changed |= tainted.insert(n.clone());
                }
            }
        }
        if !changed {
            break;
        }
    }
    tainted
}

/// The `name_at` indices of `f`'s calls whose resolved callee declares a
/// secret return type — the only calls whose *results* carry taint.
fn secret_ret_calls(ctx: &TaintCtx<'_>, fnref: FnRef) -> BTreeSet<usize> {
    let (_, crate_name) = ctx.files[fnref.file];
    ctx.fn_info(fnref)
        .calls
        .iter()
        .filter(|c| !c.is_macro)
        .filter_map(|c| ctx.graph.resolve(c, crate_name, fnref.file).map(|r| (c, r)))
        .filter(|&(_, r)| {
            ctx.fn_info(r).ret_idents.iter().any(|t| SECRET_TYPES.contains(&t.as_str()))
        })
        .map(|(c, _)| c.name_at)
        .collect()
}

/// Advances past the balanced group opening at `sig[open]`; returns the
/// index just after the matching close (or `end` if unbalanced).
fn skip_group(toks: &[Token<'_>], sig: &[usize], open: usize, end: usize) -> usize {
    let mut depth = 0i64;
    let mut m = open;
    while m < end {
        match toks[sig[m]].text {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return m + 1;
                }
            }
            _ => {}
        }
        m += 1;
    }
    end
}

/// Walks the expression `sig[range)` and invokes `hit` on every
/// taint-carrying occurrence (index, name): a tainted/secret-named bare
/// identifier, a secret type constructor, an `s2k::` derivation, or a
/// call in `secret_calls`. Call argument groups are swallowed — the
/// result of a non-secret-returning call is not its arguments. Returns
/// whether any hit occurred.
fn scan_taint_hits(
    toks: &[Token<'_>],
    sig: &[usize],
    (start, end): (usize, usize),
    tainted: &BTreeSet<String>,
    secret_calls: &BTreeSet<usize>,
    hit: &mut dyn FnMut(usize, &str) -> bool,
) -> bool {
    let t = |k: usize| toks[sig[k]].text;
    let mut any = false;
    let mut k = start;
    let end = end.min(sig.len());
    while k < end {
        let tok = &toks[sig[k]];
        if tok.kind != TokKind::Ident {
            k += 1;
            continue;
        }
        let name = tok.text;
        if let Some(open) = call_group_open(toks, sig, k, end) {
            if secret_calls.contains(&k) {
                any = true;
                hit(k, name);
            }
            k = skip_group(toks, sig, open, end);
            continue;
        }
        if tainted.contains(name)
            || is_taint_source_ident(name)
            || SECRET_TYPES.contains(&name)
            || name == "s2k"
        {
            // `key.len()` and friends launder this occurrence.
            let sanitized = k + 2 < sig.len()
                && t(k + 1) == "."
                && SANITIZER_METHODS.contains(&t(k + 2));
            if !sanitized {
                any = true;
                hit(k, name);
            }
        }
        k += 1;
    }
    any
}

/// If `sig[k]` heads a call (`name(..)`) or macro (`name!(..)`), the
/// index of its opening delimiter.
fn call_group_open(toks: &[Token<'_>], sig: &[usize], k: usize, end: usize) -> Option<usize> {
    let t = |j: usize| toks[sig[j]].text;
    if k + 1 < end && t(k + 1) == "(" {
        Some(k + 1)
    } else if k + 2 < end && t(k + 1) == "!" && matches!(t(k + 2), "(" | "[" | "{") {
        Some(k + 2)
    } else {
        None
    }
}

/// Inline format captures (`"{key}"`, `"{skey:?}"`) in the string
/// literals of `sig[range)`: returns (sig index of the literal,
/// captured identifier) pairs.
fn format_captures(
    toks: &[Token<'_>],
    sig: &[usize],
    (start, end): (usize, usize),
) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for k in start..end.min(sig.len()) {
        let tok = &toks[sig[k]];
        if tok.kind != TokKind::Str {
            continue;
        }
        let mut chars = tok.text.chars().peekable();
        while let Some(c) = chars.next() {
            if c != '{' {
                continue;
            }
            if chars.peek() == Some(&'{') {
                chars.next(); // escaped `{{`
                continue;
            }
            let mut name = String::new();
            for c in chars.by_ref() {
                match c {
                    '}' | ':' => break,
                    c if c == '_' || c.is_alphanumeric() => name.push(c),
                    _ => {
                        name.clear();
                        break;
                    }
                }
            }
            if !name.is_empty() && !name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                out.push((k, name));
            }
        }
    }
    out
}

/// Runs S005 over every non-test function of every file. Appends
/// findings; returns the path-walk statistics for E19.
pub fn check_s005(ctx: &TaintCtx<'_>, out: &mut Vec<Finding>) -> TaintStats {
    let mut stats = TaintStats::default();
    let mut summaries: BTreeMap<FnRef, Summary> = BTreeMap::new();
    for (file, (rel_path, crate_name)) in ctx.files.iter().enumerate() {
        if is_test_path(rel_path) {
            continue;
        }
        for fn_idx in 0..ctx.parsed[file].fns.len() {
            let f = &ctx.parsed[file].fns[fn_idx];
            if f.is_test {
                continue;
            }
            check_fn(ctx, FnRef { file, fn_idx }, rel_path, crate_name, &mut summaries, &mut stats, out);
        }
    }
    stats
}

fn check_fn(
    ctx: &TaintCtx<'_>,
    fnref: FnRef,
    rel_path: &str,
    crate_name: &str,
    summaries: &mut BTreeMap<FnRef, Summary>,
    stats: &mut TaintStats,
    out: &mut Vec<Finding>,
) {
    let (toks, sig) = ctx.toks_sig(fnref.file);
    let f = ctx.fn_info(fnref);
    let secret_calls = secret_ret_calls(ctx, fnref);
    let tainted = local_taint(toks, sig, f, &secret_calls);

    for call in &f.calls {
        // Local sinks: formatting macros and trace emissions.
        if sink_kind(call).is_some() {
            report_local_sink(ctx, fnref, rel_path, call, &tainted, &secret_calls, out);
            continue;
        }
        // Passing a secret INTO a sanitizer is the sanctioned direction.
        if SANITIZER_FNS.contains(&call.callee.as_str()) {
            continue;
        }
        // Cross-function flows: a tainted argument entering a resolved
        // callee that lets it reach a sink within MAX_HOPS.
        let Some(callee) = ctx.graph.resolve(call, crate_name, fnref.file) else {
            continue;
        };
        for (arg_idx, &arg) in call.args.iter().enumerate() {
            let mut src: Option<String> = None;
            scan_taint_hits(toks, sig, arg, &tainted, &secret_calls, &mut |_, name| {
                if src.is_none() {
                    src = Some(name.to_string());
                }
                true
            });
            let Some(src) = src else { continue };
            if let Some((sink, hops)) =
                reach_sink(ctx, callee, arg_idx, 1, summaries, stats, &mut BTreeSet::new())
            {
                let at = &toks[sig[call.name_at]];
                out.push(Finding {
                    rule: Rule::S005,
                    file: rel_path.to_string(),
                    line: at.line,
                    col: at.col,
                    message: format!(
                        "secret `{src}` passed to `{}` reaches `{}` at {}:{}:{} ({hops} call \
                         hop(s) away); secrets cross function boundaries only toward \
                         fingerprint()/seal paths",
                        call.callee, sink.via, sink.file, sink.line, sink.col
                    ),
                });
            }
        }
    }
}

/// Whether a call site is a sink, and which kind.
fn sink_kind(call: &CallSite) -> Option<&'static str> {
    if call.is_macro && FORMAT_MACROS.contains(&call.callee.as_str()) {
        Some("format")
    } else if call.is_method && TRACE_EMIT_CALLS.contains(&call.callee.as_str()) {
        Some("trace")
    } else {
        None
    }
}

/// Reports local tainted-identifier and format-capture flows into the
/// sink `call`. Identifiers that are themselves secret-named are left
/// to S002/S004 (same token, same verdict — one rule per finding).
fn report_local_sink(
    ctx: &TaintCtx<'_>,
    fnref: FnRef,
    rel_path: &str,
    call: &CallSite,
    tainted: &BTreeSet<String>,
    secret_calls: &BTreeSet<usize>,
    out: &mut Vec<Finding>,
) {
    let Some(kind) = sink_kind(call) else {
        return;
    };
    let (toks, sig) = ctx.toks_sig(fnref.file);
    let whole = match (call.args.first(), call.args.last()) {
        (Some(&(a, _)), Some(&(_, b))) => (a, b),
        _ => return,
    };
    let sink_name = &call.callee;
    scan_taint_hits(toks, sig, whole, tainted, secret_calls, &mut |k, name| {
        if !is_secret_ident(name) && tainted.contains(name) {
            let at = &toks[sig[k]];
            out.push(Finding {
                rule: Rule::S005,
                file: rel_path.to_string(),
                line: at.line,
                col: at.col,
                message: format!(
                    "`{name}` carries key material (taint-derived) and flows into \
                     {} `{sink_name}`; redact via fingerprint() or drop it",
                    if kind == "format" { "macro" } else { "trace call" },
                ),
            });
        }
        true
    });
    for (k, name) in format_captures(toks, sig, whole) {
        if tainted.contains(&name) || is_taint_source_ident(&name) {
            let at = &toks[sig[k]];
            out.push(Finding {
                rule: Rule::S005,
                file: rel_path.to_string(),
                line: at.line,
                col: at.col,
                message: format!(
                    "inline format capture `{{{name}}}` embeds key material in a \
                     `{sink_name}` string; captures are invisible to S002 but just as public"
                ),
            });
        }
    }
}

/// Whether taint entering `callee` at parameter `arg_idx` reaches a
/// sink within the hop budget. Depth-first over memoized summaries.
fn reach_sink(
    ctx: &TaintCtx<'_>,
    callee: FnRef,
    arg_idx: usize,
    hops: usize,
    summaries: &mut BTreeMap<FnRef, Summary>,
    stats: &mut TaintStats,
    visiting: &mut BTreeSet<(FnRef, usize)>,
) -> Option<(Sink, usize)> {
    if hops > MAX_HOPS || !visiting.insert((callee, arg_idx)) {
        return None;
    }
    stats.paths += 1;
    ensure_summary(ctx, callee, summaries);
    let summary = &summaries[&callee];
    if let Some(sink) = summary.param_sink.get(arg_idx).and_then(|s| s.clone()) {
        return Some((sink, hops));
    }
    let next: Vec<(FnRef, usize)> =
        summary.param_calls.get(arg_idx).cloned().unwrap_or_default();
    for (next_fn, next_arg) in next {
        if let Some(found) =
            reach_sink(ctx, next_fn, next_arg, hops + 1, summaries, stats, visiting)
        {
            return Some(found);
        }
    }
    None
}

/// Builds (once) the summary of `fnref`: treating each parameter as the
/// sole taint source, which sinks and which outgoing calls does it
/// reach locally?
fn ensure_summary(ctx: &TaintCtx<'_>, fnref: FnRef, summaries: &mut BTreeMap<FnRef, Summary>) {
    if summaries.contains_key(&fnref) {
        return;
    }
    let (toks, sig) = ctx.toks_sig(fnref.file);
    let (rel_path, crate_name) = ctx.files[fnref.file];
    let f = ctx.fn_info(fnref);
    let secret_calls = secret_ret_calls(ctx, fnref);
    let nparams = f.params.len();
    let mut param_sink: Vec<Option<Sink>> = vec![None; nparams];
    let mut param_calls: Vec<Vec<(FnRef, usize)>> = vec![Vec::new(); nparams];

    for (i, p) in f.params.iter().enumerate() {
        // The names this parameter's taint lives under locally: itself
        // plus every let-binding derived from it. Computed by seeding
        // ONLY this parameter, so summaries stay per-parameter precise.
        let mut mine: BTreeSet<String> = BTreeSet::new();
        mine.insert(p.name.clone());
        for _ in 0..4 {
            let mut changed = false;
            for l in &f.lets {
                if l.names.iter().all(|n| mine.contains(n)) {
                    continue;
                }
                if scan_param_only(toks, sig, l.rhs, &mine, &secret_calls) {
                    for n in &l.names {
                        changed |= mine.insert(n.clone());
                    }
                }
            }
            if !changed {
                break;
            }
        }
        for call in &f.calls {
            if let Some(kind) = sink_kind(call) {
                let whole = match (call.args.first(), call.args.last()) {
                    (Some(&(a, _)), Some(&(_, b))) => (a, b),
                    _ => continue,
                };
                let mut hit_at = None;
                scan_param_hits(toks, sig, whole, &mine, &secret_calls, &mut |k| {
                    if hit_at.is_none() {
                        hit_at = Some(k);
                    }
                });
                let capture_hit = format_captures(toks, sig, whole)
                    .into_iter()
                    .find(|(_, name)| mine.contains(name));
                if let Some(k) = hit_at.or(capture_hit.map(|(k, _)| k)) {
                    if param_sink[i].is_none() {
                        let at = &toks[sig[k]];
                        param_sink[i] = Some(Sink {
                            via: format!(
                                "{}{}",
                                call.callee,
                                if kind == "format" { "!" } else { "()" }
                            ),
                            file: rel_path.to_string(),
                            line: at.line,
                            col: at.col,
                        });
                    }
                }
            } else if SANITIZER_FNS.contains(&call.callee.as_str()) {
                // Sanctioned direction; the flow ends here.
            } else if let Some(next) = ctx.graph.resolve(call, crate_name, fnref.file) {
                for (arg_idx, &arg) in call.args.iter().enumerate() {
                    let mut hit = false;
                    scan_param_hits(toks, sig, arg, &mine, &secret_calls, &mut |_| hit = true);
                    if hit {
                        param_calls[i].push((next, arg_idx));
                    }
                }
            }
        }
    }
    summaries.insert(fnref, Summary { param_sink, param_calls });
}

/// Like [`scan_taint_hits`] but matches ONLY the given name set (no
/// intrinsic secret-name/type seeding), for per-parameter summaries.
fn scan_param_only(
    toks: &[Token<'_>],
    sig: &[usize],
    range: (usize, usize),
    names: &BTreeSet<String>,
    secret_calls: &BTreeSet<usize>,
) -> bool {
    let mut hit = false;
    scan_param_hits(toks, sig, range, names, secret_calls, &mut |_| hit = true);
    hit
}

/// Per-parameter variant of the taint scan: bare names from `names`
/// count; call groups are swallowed, except that a secret-returning
/// call counts when the parameter feeds one of its arguments (the
/// derived secret inherits the param's taint).
fn scan_param_hits(
    toks: &[Token<'_>],
    sig: &[usize],
    (start, end): (usize, usize),
    names: &BTreeSet<String>,
    secret_calls: &BTreeSet<usize>,
    hit: &mut dyn FnMut(usize),
) {
    let t = |k: usize| toks[sig[k]].text;
    let mut k = start;
    let end = end.min(sig.len());
    while k < end {
        let tok = &toks[sig[k]];
        if tok.kind != TokKind::Ident {
            k += 1;
            continue;
        }
        if let Some(open) = call_group_open(toks, sig, k, end) {
            let after = skip_group(toks, sig, open, end);
            if secret_calls.contains(&k) {
                let mut inner = false;
                scan_param_hits(
                    toks,
                    sig,
                    (open + 1, after.saturating_sub(1)),
                    names,
                    secret_calls,
                    &mut |_| inner = true,
                );
                if inner {
                    hit(k);
                }
            }
            k = after;
            continue;
        }
        if names.contains(tok.text) {
            let sanitized = k + 2 < sig.len()
                && t(k + 1) == "."
                && SANITIZER_METHODS.contains(&t(k + 2));
            if !sanitized {
                hit(k);
            }
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::Graph;
    use crate::lexer::lex;
    use crate::syntax::parse;

    fn run_s005(files: &[(&str, &str, &str)]) -> Vec<Finding> {
        let lexed: Vec<Vec<Token<'_>>> = files.iter().map(|(_, _, t)| lex(t)).collect();
        let parsed: Vec<FileSyntax> = lexed.iter().map(|t| parse(t)).collect();
        let with_meta: Vec<(&str, &str, &FileSyntax)> = files
            .iter()
            .zip(&parsed)
            .map(|(&(rel, krate, _), p)| (rel, krate, p))
            .collect();
        let graph = Graph::build(&with_meta);
        let meta: Vec<(&str, &str)> = files.iter().map(|&(rel, krate, _)| (rel, krate)).collect();
        let ctx = TaintCtx { files: &meta, lexed: &lexed, parsed: &parsed, graph: &graph };
        let mut out = Vec::new();
        check_s005(&ctx, &mut out);
        out
    }

    #[test]
    fn renamed_copy_into_format_fires() {
        let src = r#"fn f(session_key: &DesKey) {
            let material = session_key;
            println!("{:?}", material);
        }"#;
        let f = run_s005(&[("crates/kerberos/src/x.rs", "kerberos", src)]);
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].message.contains("material"));
    }

    #[test]
    fn inline_capture_fires_where_s002_cannot() {
        let src = r#"fn f(session_key: &DesKey) { let sk2 = session_key; println!("sk={sk2}"); }"#;
        let f = run_s005(&[("crates/kerberos/src/x.rs", "kerberos", src)]);
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].message.contains("capture"));
    }

    #[test]
    fn cross_function_hop_fires() {
        let src = r#"
            fn caller(user_key: &DesKey) { describe(user_key); }
            fn describe(material: &DesKey) { println!("{material:?}"); }
        "#;
        let f = run_s005(&[("crates/kerberos/src/x.rs", "kerberos", src)]);
        // One local finding in describe (capture of typed param) and one
        // cross-function finding at the caller's call site.
        assert_eq!(f.len(), 2, "{f:#?}");
        assert!(f.iter().any(|x| x.message.contains("1 call hop")));
    }

    #[test]
    fn sanitizers_cut_the_flow() {
        let src = r#"
            fn f(session_key: &DesKey) {
                let fpr = fingerprint(session_key);
                let n = session_key.len();
                println!("{fpr} {n}");
            }
        "#;
        let f = run_s005(&[("crates/kerberos/src/x.rs", "kerberos", src)]);
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn secret_named_local_flow_is_left_to_s002() {
        // `session_key` inside println! is S002's finding; S005 must not
        // duplicate it (but the capture form, invisible to S002, fires).
        let src = r#"fn f(session_key: &DesKey) { println!("{:?}", session_key); }"#;
        let f = run_s005(&[("crates/kerberos/src/x.rs", "kerberos", src)]);
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn call_results_are_not_their_arguments() {
        // `insert` seals the key and returns a slot handle; binding the
        // handle must not taint it, and formatting it is fine.
        let src = r#"
            fn insert(slot_key: DesKey) -> u32 { 7 }
            fn f(session_key: DesKey) {
                let h = insert(session_key);
                println!("handle {h}");
            }
        "#;
        let f = run_s005(&[("crates/kerberos/src/x.rs", "kerberos", src)]);
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn secret_returning_call_taints_binding() {
        let src = r#"
            fn derive_subkey(seed: u64) -> DesKey { make(seed) }
            fn f() {
                let sk2 = derive_subkey(9);
                println!("{sk2:?}");
            }
        "#;
        let f = run_s005(&[("crates/kerberos/src/x.rs", "kerberos", src)]);
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].message.contains("sk2"));
    }

    #[test]
    fn hop_budget_is_bounded() {
        let src = r#"
            fn a(user_key: &DesKey) { b(user_key); }
            fn b(x1: &DesKey) { c(x1); }
            fn c(x2: &DesKey) { d(x2); }
            fn d(x3: &DesKey) { e(x3); }
            fn e(x4: &DesKey) { println!("{x4:?}"); }
        "#;
        let f = run_s005(&[("crates/kerberos/src/x.rs", "kerberos", src)]);
        // e's own capture fires locally; a→b→c→d→e is 4 hops, over
        // budget, but b→..→e (3 hops) and closer callers all fire.
        assert!(f.iter().any(|x| x.message.contains("3 call hop")), "{f:#?}");
        assert!(!f.iter().any(|x| x.message.contains("4 call hop")), "{f:#?}");
    }
}
