//! # krb-lint
//!
//! A hermetic, dependency-free static analysis pass over the whole
//! workspace, enforcing the invariants Bellovin & Merritt's attacks
//! exploit when they are broken:
//!
//! - **S — secrecy**: key-bearing types must not be formattable; key
//!   material must not flow into log strings (S001/S002/S003).
//! - **C — constant time**: key and MAC bytes are compared with
//!   `krb_crypto::ct_eq`, never `==` (C001).
//! - **D — determinism**: the simulator, protocol, crypto, and attack
//!   crates must be pure functions of their inputs — no wall clocks, OS
//!   sockets, or `RandomState` iteration (D001/D002).
//! - **P — panic hygiene**: protocol code returns errors; it does not
//!   `unwrap()` or `panic!` (P001/P002).
//! - **H — hermeticity**: every dependency is an in-tree path
//!   dependency (H001), absorbing the PR-1 `verify.sh` grep guard.
//!
//! Since PR 9 the linter is flow-aware: a brace-matching syntax layer
//! ([`syntax`]) recovers per-function skeletons from the token stream,
//! a workspace call graph ([`callgraph`]) resolves intra-tree calls,
//! and a taint engine ([`taint`]) follows secrets through renames and
//! up to 3 call hops. On top of these sit S005 (cross-function
//! secret-to-sink taint), D003 (laundered clock reads), P003
//! (truncating length casts on codec paths), A001 (hot-path
//! allocation), and E001 (metric-name drift vs DESIGN.md) — see
//! [`flow`].
//!
//! The scanner is a hand-rolled line/column-tracking lexer
//! ([`lexer`]) — no `syn`, per rule H001 itself. Suppressions live in
//! `lint-baseline.toml` ([`baseline`]) and every entry must carry a
//! justification; stale entries fail the run.

pub mod baseline;
pub mod callgraph;
pub mod config;
pub mod diag;
pub mod engine;
pub mod flow;
pub mod lexer;
pub mod manifest;
pub mod rules;
pub mod syntax;
pub mod taint;

pub use diag::{Finding, Rule, ALL_RULES};
pub use engine::{analyze_source, crate_of, find_root, run, Report};
pub use flow::{analyze_workspace, FileInput, FlowStats};
