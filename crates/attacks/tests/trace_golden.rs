//! Golden JSONL trace and byte-identity determinism for the tracing
//! subsystem, pinned to the E1 matrix cell the paper opens with:
//! A1 (stolen live-authenticator replay) against the V4 configuration.
//!
//! - The exported JSONL must match the checked-in golden byte for byte.
//!   Re-bless after an intentional trace change with
//!   `KRB_TRACE_BLESS=1 cargo test -p attacks --test trace_golden`.
//! - Two same-seed runs must produce byte-identical traces, with and
//!   without an environment fault plan — the determinism contract
//!   everything else (goldens, bisection, soak triage) rests on.

use attacks::env::{with_fault_profile, with_trace_capture, FaultProfile};
use attacks::replay::StolenAuthenticatorReplay;
use attacks::Attack;
use kerberos::{PaperLens, ProtocolConfig};
use krb_trace::{narrate, to_jsonl, Tracer};
use simnet::LinkFaults;
use std::path::PathBuf;

/// Seed of the pinned cell — the same seed the E1 matrix golden uses.
const SEED: u64 = 0xE1;

fn a1_tracer(profile: Option<FaultProfile>) -> Tracer {
    let run = || {
        let (_report, tracer) =
            with_trace_capture(|| StolenAuthenticatorReplay.run(&ProtocolConfig::v4(), SEED));
        tracer.expect("attack built an environment")
    };
    match profile {
        Some(p) => with_fault_profile(p, run),
        None => run(),
    }
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/trace_a1_v4.jsonl")
}

#[test]
fn a1_v4_trace_matches_golden() {
    let jsonl = to_jsonl(&a1_tracer(None).events());
    let path = golden_path();
    if std::env::var("KRB_TRACE_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, &jsonl).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden trace missing; bless with KRB_TRACE_BLESS=1");
    assert_eq!(
        jsonl, golden,
        "A1/V4 trace diverged from golden; re-bless with KRB_TRACE_BLESS=1 if intentional"
    );
}

#[test]
fn same_seed_runs_are_byte_identical() {
    let a = to_jsonl(&a1_tracer(None).events());
    let b = to_jsonl(&a1_tracer(None).events());
    assert_eq!(a, b, "zero-fault same-seed traces must be byte-identical");
    assert!(!a.is_empty());
}

#[test]
fn same_seed_runs_are_byte_identical_under_faults() {
    let profile = FaultProfile { seed: 0x7AB, faults: LinkFaults::lossy(0.05) };
    let a = to_jsonl(&a1_tracer(Some(profile)).events());
    let b = to_jsonl(&a1_tracer(Some(profile)).events());
    assert_eq!(a, b, "faulted same-seed traces must be byte-identical");
    // The fault plan actually perturbed the wire (otherwise this test
    // proves nothing beyond the zero-fault one).
    let clean = to_jsonl(&a1_tracer(None).events());
    assert_ne!(a, clean, "fault profile should alter the trace");
}

#[test]
fn narrated_trace_reads_as_paper_steps() {
    let tracer = a1_tracer(None);
    let text = narrate(&tracer.events(), &PaperLens);
    // Protocol flow in actor shorthand…
    assert!(text.contains("c -> kdc: AS-REQ"), "AS leg missing:\n{text}");
    assert!(text.contains("c -> s: AP-REQ"), "AP leg missing:\n{text}");
    // …client-side spans…
    assert!(text.contains(">> as-exchange"));
    assert!(text.contains("<< ap-exchange"));
    // …server-side protocol events…
    assert!(text.contains("kdc.ticket_issued"));
    assert!(text.contains("ap.accepted"));
    // …and the adversary's moves, interleaved.
    assert!(text.contains("** adversary injects"));
    assert!(text.contains("· adversary replays the captured ticket+authenticator"));
}

#[test]
fn metrics_snapshot_counts_the_attack() {
    let tracer = a1_tracer(None);
    let snap = tracer.snapshot();
    // The victim got tickets; the KDC issued them; the replayed
    // authenticator registered as a second acceptance (V4 has no replay
    // cache — that is attack A1's point).
    assert_eq!(snap.get("client.tickets{pat}"), Some(&2));
    assert_eq!(snap.get("kdc.issued{pat}"), Some(&2));
    assert_eq!(snap.get("ap.accepted{pat}"), Some(&2));
    // Span histograms recorded sim-time durations.
    assert_eq!(snap.get("span.as-exchange{pat}.count"), Some(&1));
}
