//! Golden alert stream for the defender's loop: the default krb-ids
//! rule set attached online to the pinned E1 cell (A1 stolen-
//! authenticator replay against V4), with the resulting `ids.alert`
//! events exported as JSONL.
//!
//! - The alert stream must match the checked-in golden byte for byte.
//!   Re-bless after an intentional rule/engine change with
//!   `KRB_TRACE_BLESS=1 cargo test -p attacks --test alert_golden`.
//! - Same-seed runs must produce byte-identical alert streams even
//!   under an environment fault plan: detection is a pure function of
//!   the (deterministic) wire, never of polling cadence or wall time.

use attacks::env::{with_env_hook, with_fault_profile, with_trace_capture, FaultProfile};
use attacks::replay::StolenAuthenticatorReplay;
use attacks::Attack;
use kerberos::ProtocolConfig;
use krb_ids::{default_engine, Engine};
use krb_trace::{to_jsonl, Event, EventKind, Tracer};
use simnet::LinkFaults;
use std::cell::RefCell;
use std::path::PathBuf;
use std::rc::Rc;

/// Seed of the pinned cell — the same seed the E1 matrix golden uses.
const SEED: u64 = 0xE1;

/// Runs A1/V4 with a default engine riding the trace, polls it, and
/// returns only the alert events it emitted back into the trace.
fn a1_alert_stream(profile: Option<FaultProfile>) -> Vec<Event> {
    let run = || {
        let engines: Rc<RefCell<Vec<Engine>>> = Rc::new(RefCell::new(Vec::new()));
        let hook: Rc<dyn Fn(&Tracer)> = {
            let engines = Rc::clone(&engines);
            Rc::new(move |t: &Tracer| {
                let mut eng = default_engine().expect("default rules compile");
                eng.attach(t);
                engines.borrow_mut().push(eng);
            })
        };
        let (_report, tracer) = with_trace_capture(|| {
            with_env_hook(hook, || StolenAuthenticatorReplay.run(&ProtocolConfig::v4(), SEED))
        });
        for eng in engines.borrow_mut().iter_mut() {
            eng.poll();
        }
        tracer.expect("attack built an environment")
    };
    let tracer = match profile {
        Some(p) => with_fault_profile(p, run),
        None => run(),
    };
    tracer.events().into_iter().filter(|e| e.kind == EventKind::IdsAlert).collect()
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/alerts_a1_v4.jsonl")
}

#[test]
fn a1_v4_alert_stream_matches_golden() {
    let jsonl = to_jsonl(&a1_alert_stream(None));
    let path = golden_path();
    if std::env::var("KRB_TRACE_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, &jsonl).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .expect("alert golden missing; bless with KRB_TRACE_BLESS=1");
    assert_eq!(
        jsonl, golden,
        "A1/V4 alert stream diverged from golden; re-bless with KRB_TRACE_BLESS=1 if intentional"
    );
}

#[test]
fn alert_stream_is_nonempty_and_replay_typed() {
    let alerts = a1_alert_stream(None);
    assert!(!alerts.is_empty(), "A1 on V4 must raise at least one alert");
    for a in &alerts {
        assert_eq!(a.str_field("detector"), Some("replay"), "{a:?}");
        assert!(a.u64_field("evidence").is_some(), "alerts carry their evidence seq");
    }
}

#[test]
fn same_seed_alert_streams_are_byte_identical() {
    let a = to_jsonl(&a1_alert_stream(None));
    let b = to_jsonl(&a1_alert_stream(None));
    assert_eq!(a, b, "zero-fault same-seed alert streams must be byte-identical");
}

#[test]
fn same_seed_alert_streams_are_byte_identical_under_faults() {
    let profile = FaultProfile { seed: 0x7AB, faults: LinkFaults::lossy(0.05) };
    let a = to_jsonl(&a1_alert_stream(Some(profile)));
    let b = to_jsonl(&a1_alert_stream(Some(profile)));
    assert_eq!(a, b, "faulted same-seed alert streams must be byte-identical");
}
