//! The chaos soak (experiment E12): liveness and safety under a
//! faulted network.
//!
//! - **Liveness**: across ≥5 distinct fault seeds, at ≥10% drop +
//!   duplication + reordering on every user↔KDC link, with a master-KDC
//!   crash window mid-campaign, every honest flow authenticates within
//!   the bounded retry budget.
//! - **Safety**: the E1 attack × configuration verdict grid is
//!   bit-identical with and without environment faults — the fault
//!   layer buys availability, never a different security verdict.
//! - **Replay defense across restarts**: a live authenticator replayed
//!   across an application-server crash/restart is still caught when
//!   the replay cache persists, and sails through when it does not.

use attacks::chaos::{run_soak, SoakConfig};
use attacks::env::{with_fault_profile, AttackEnv, FaultProfile};
use attacks::matrix::run_matrix;
use kerberos::messages::WireKind;
use kerberos::ProtocolConfig;
use simnet::{Datagram, FaultPlan, LinkFaults, SimDuration, SimTime};

const SOAK_SEEDS: [u64; 5] = [1, 2, 3, 4, 5];

fn soak_faults() -> LinkFaults {
    LinkFaults { drop: 0.10, duplicate: 0.10, reorder: 0.10, ..LinkFaults::none() }
}

#[test]
fn soak_liveness_across_seeds_and_presets() {
    for config in ProtocolConfig::presets() {
        for seed in SOAK_SEEDS {
            let report = run_soak(&config, &SoakConfig::standard(seed));
            assert!(
                report.all_authenticated(),
                "liveness violated (config {}, seed {seed}): {:?}",
                config.name,
                report.failures
            );
            // The campaign genuinely exercised the fault layer.
            assert!(report.stats.dropped > 0, "seed {seed}: nothing dropped");
            assert!(report.stats.duplicated > 0, "seed {seed}: nothing duplicated");
            assert!(report.stats.reordered > 0, "seed {seed}: nothing reordered");
            assert!(report.stats.host_down > 0, "seed {seed}: master crash never bit");
            assert!(report.stats.restarts >= 1, "seed {seed}: master never restarted");
        }
    }
}

/// The verdict grid — every (attack, config, succeeded) triple — does
/// not move under environment faults. Faults may change *evidence*
/// strings (retry counts, timings), never who wins.
#[test]
fn e1_matrix_verdicts_identical_under_faults() {
    let clean: Vec<(&str, &str, bool)> =
        run_matrix(0xE1).iter().map(|r| (r.id, r.config, r.succeeded)).collect();
    let faulted: Vec<(&str, &str, bool)> = with_fault_profile(
        FaultProfile { seed: 0xFA017, faults: soak_faults() },
        || run_matrix(0xE1).iter().map(|r| (r.id, r.config, r.succeeded)).collect(),
    );
    assert_eq!(clean, faulted, "a fault plan changed a security verdict");
}

/// A zero-rate fault plan is a perfect wire: installing it changes not
/// one byte of the attack traffic. (The broader determinism tests live
/// in the kerberos crate; this one pins the attack harness itself.)
#[test]
fn zero_rate_profile_keeps_matrix_bytes_identical() {
    let run = |profile: Option<FaultProfile>| -> Vec<(u64, Vec<u8>)> {
        let body = || {
            let mut env = AttackEnv::new(&ProtocolConfig::hardened(), 0xE1);
            env.victim_session("pat", "files").expect("victim session");
            env.net
                .traffic_log()
                .iter()
                .map(|r| (r.at.0, r.dgram.payload.to_vec()))
                .collect()
        };
        match profile {
            Some(p) => with_fault_profile(p, body),
            None => body(),
        }
    };
    let clean = run(None);
    let zeroed = run(Some(FaultProfile { seed: 0xFA017, faults: LinkFaults::none() }));
    assert_eq!(clean, zeroed, "a zero-rate plan must be byte-invisible");
}

/// A1 across a server crash: the stolen live authenticator is replayed
/// after the application server restarts. With a persisted replay cache
/// the replay is still caught; with a volatile cache (the V4 reality)
/// the restart forgets, and the replay is accepted.
#[test]
fn authenticator_replay_across_server_restart() {
    for (persist, expect_caught) in [(true, true), (false, false)] {
        // Timestamp-style AP with a replay cache: the configuration for
        // which the cache is the *only* thing standing between a live
        // authenticator and a second acceptance.
        let mut config = ProtocolConfig::hardened();
        config.auth_style = kerberos::config::AuthStyle::Timestamp;
        config.persist_replay_cache = persist;

        let mut env = AttackEnv::new(&config, 0xA1);
        env.victim_session("pat", "files").expect("victim session");
        let pat = env.user("pat");
        let files_ep = env.realm.service_ep("files");

        // Passive capture of the AP request (ticket + live
        // authenticator), exactly as in A1.
        let captured: Vec<Datagram> = env
            .net
            .traffic_log()
            .iter()
            .filter(|r| {
                r.is_request
                    && r.dgram.dst == files_ep
                    && r.dgram.payload.first().copied().and_then(WireKind::from_u8)
                        == Some(WireKind::ApReq)
            })
            .map(|r| r.dgram.clone())
            .collect();
        assert!(!captured.is_empty(), "no AP request captured");

        // The file server crashes and restarts — a two-second outage,
        // well inside the authenticator's freshness window.
        let t = env.net.now();
        env.net.set_fault_plan(FaultPlan::new(3).crash(
            files_ep.addr,
            SimTime(t.0 + 500_000),
            SimTime(t.0 + 2_500_000),
        ));
        env.net.advance(SimDuration::from_secs(3));

        let before = env.realm.with_app_server(&mut env.net, "files", |s| s.accepted_count(&pat));
        for d in &captured {
            let _ = env.net.inject(d.clone());
        }
        let after = env.realm.with_app_server(&mut env.net, "files", |s| s.accepted_count(&pat));
        let restarts = env.realm.with_app_server(&mut env.net, "files", |s| s.restarts);
        assert_eq!(restarts, 1, "the server rode out exactly one crash window");

        if expect_caught {
            assert_eq!(
                after, before,
                "persisted replay cache must survive the restart and refuse the replay"
            );
        } else {
            assert!(
                after > before,
                "volatile replay cache forgets on restart: the replay is accepted \
                 ({before} -> {after})"
            );
        }
    }
}
