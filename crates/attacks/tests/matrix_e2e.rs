//! Experiment E1: the full attack × configuration matrix must reproduce
//! the paper's claims exactly.

use attacks::matrix::{expected, run_matrix};

#[test]
fn matrix_matches_the_paper() {
    let reports = run_matrix(0xE1);
    assert_eq!(reports.len(), 42, "14 attacks x 3 configurations");
    let mut mismatches = Vec::new();
    for r in &reports {
        let want = expected(r.id, r.config).expect("expectation defined");
        if r.succeeded != want {
            mismatches.push(format!(
                "{}/{}: expected {}, got {} ({})",
                r.id,
                r.config,
                if want { "BREACH" } else { "safe" },
                if r.succeeded { "BREACH" } else { "safe" },
                r.evidence
            ));
        }
    }
    assert!(mismatches.is_empty(), "matrix deviations:\n{}", mismatches.join("\n"));
}

#[test]
fn matrix_is_deterministic() {
    let a = run_matrix(7);
    let b = run_matrix(7);
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.succeeded, y.succeeded, "{}/{}", x.id, x.config);
    }
}

#[test]
fn matrix_stable_across_seeds() {
    // The outcomes are properties of the protocol, not of luck.
    for seed in [1u64, 42, 9999] {
        for r in run_matrix(seed) {
            let want = expected(r.id, r.config).unwrap();
            assert_eq!(r.succeeded, want, "seed {seed}: {}/{} ({})", r.id, r.config, r.evidence);
        }
    }
}
