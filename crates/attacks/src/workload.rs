//! Workload generation: password populations and user-session traffic.
//!
//! "Empirically, users do not pick good passwords unless forced to"
//! (Morris & Thompson '79, Grampp & Morris '84, Stoll '88). The
//! password classes here drive the guessing experiments (E2); the
//! mail-check session generator drives the ticket-exposure experiment
//! (E9).
//!
//! All randomness flows through [`testkit::TestRng`], so every
//! generated population — and therefore every attack campaign built on
//! one — is replayable from a single printed seed.

use testkit::TestRng;

/// The attacker's base dictionary: common words and names of the era.
pub const DICTIONARY: &[&str] = &[
    "password", "secret", "love", "sex", "god", "wizard", "hacker", "computer", "network",
    "athena", "kerberos", "cerberus", "mit", "project", "unix", "vax", "sun", "sparc",
    "aaron", "albany", "albert", "alex", "alice", "amanda", "amy", "andrea", "andrew",
    "angela", "anna", "arthur", "bacchus", "banana", "barbara", "baseball", "batman",
    "beach", "bear", "beatles", "beethoven", "benjamin", "beowulf", "berkeley", "beta",
    "beverly", "bicycle", "bishop", "bitnet", "bradley", "brandy", "brian", "bridget",
    "broadway", "bumbling", "burgess", "camille", "campanile", "candi", "carmen",
    "carolina", "caroline", "castle", "cayuga", "celtics", "change", "charles", "charming",
    "charon", "chester", "cigar", "classic", "coffee", "coke", "collins", "comrades",
    "cookie", "cooper", "cornelius", "couscous", "creation", "creosote", "daemon",
    "dancer", "daniel", "danny", "dave", "deborah", "denise", "depeche", "desperate",
    "develop", "diet", "digital", "discovery", "disney", "dragon", "drought", "duncan",
    "eager", "easier", "edges", "edwin", "egghead", "eileen", "einstein", "elephant",
    "elizabeth", "ellen", "emerald", "engine", "engineer", "enterprise", "enzyme",
    "euclid", "evelyn", "extension", "fairway", "felicia", "fender", "fermat", "finite",
    "flower", "foolproof", "football", "format", "forsythe", "fourier", "fred",
    "friend", "frighten", "fun", "gabriel", "gardner", "garfield", "gauss", "george",
    "gertrude", "gibson", "ginger", "gnu", "golf", "golfer", "gorgeous", "graham",
    "gryphon", "guest", "guitar", "hamlet", "handily", "happening", "harmony", "harold",
    "harvey", "hebrides", "heinlein", "hello", "help", "herbert", "homework", "honey",
    "horse", "imperial", "include", "ingres", "innocuous", "internet", "jessica",
    "johnny", "joseph", "joshua", "judith", "juggle", "julia", "kathleen", "kermit",
    "kernel", "kirkland", "knight", "ladle", "lambda", "lamination", "larry", "lazarus",
    "lebesgue", "legend", "library", "light", "lisp", "louis", "macintosh", "mack",
    "maggot", "magic", "malcolm", "mark", "markus", "marty", "marvin", "master",
    "maurice", "merlin", "mets", "michael", "michelle", "mike", "minimum", "minsky",
    "mogul", "moose", "morley", "mozart", "nancy", "napoleon", "ncc1701", "newton",
    "next", "noxious", "nutrition", "nyquist", "oceanography", "ocelot", "olivia",
    "oracle", "orca", "orwell", "osiris", "outlaw", "oxford", "pacific", "painless",
    "pakistan", "peoria", "percolate", "persimmon", "persona", "pete", "peter",
    "philip", "phoenix", "pierre", "pizza", "plover", "polynomial", "praise", "prelude",
    "prince", "protect", "puneet", "puppet", "rabbit", "rachmaninoff", "rainbow",
    "raindrop", "rascal", "really", "rebecca", "remote", "rick", "robot", "robotics",
    "rochester", "rolex", "romano", "ronald", "rosebud", "rosemary", "roses", "ruben",
    "rules", "ruth", "sal", "saxon", "scamper", "scheme", "scott", "scotty", "secret",
    "sensor", "serenity", "sharks", "sharon", "sheffield", "sheldon", "shiva",
    "shivers", "shuttle", "signature", "simon", "simple", "singer", "single", "smile",
    "smooch", "smother", "snatch", "snoopy", "soap", "socrates", "sossina", "sparrows",
    "spit", "spring", "springer", "squires", "strangle", "stratford", "stuttgart",
    "subway", "success", "summer", "super", "superstage", "support", "supported",
    "surfer", "suzanne", "swearer", "symmetry", "tangerine", "tape", "target", "tarragon",
    "taylor", "telephone", "temptation", "thailand", "tiger", "toggle", "tomato",
    "topography", "tortoise", "toyota", "trails", "trivial", "trombone", "tubas",
    "tuttle", "umesh", "unhappy", "unicorn", "unknown", "urchin", "utility", "vasant",
    "vertigo", "vicky", "village", "virginia", "warren", "water", "weenie", "whatnot",
    "whiting", "whitney", "will", "william", "williamsburg", "willie", "winston",
    "wisconsin", "wombat", "woodwind", "wormwood", "yacov", "yang", "yellowstone",
    "yosemite", "zap", "zimmerman",
];

/// Password quality classes for the guessing experiments.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PasswordClass {
    /// A bare dictionary word.
    DictionaryWord,
    /// A dictionary word with a trivial mutation (digit suffix,
    /// capitalization).
    MutatedWord,
    /// A random 8-character string — effectively unguessable by
    /// dictionary.
    Random,
}

/// Generates a password of the given class.
pub fn generate_password(class: PasswordClass, rng: &mut TestRng) -> String {
    match class {
        PasswordClass::DictionaryWord => rng.pick(DICTIONARY).to_string(),
        PasswordClass::MutatedWord => {
            let w = *rng.pick(DICTIONARY);
            match rng.below(3) {
                0 => format!("{w}{}", rng.below(10)),
                1 => {
                    let mut c = w.chars();
                    match c.next() {
                        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
                        None => w.to_string(),
                    }
                }
                _ => format!("{w}!"),
            }
        }
        PasswordClass::Random => (0..8)
            .map(|_| {
                let c = 33 + rng.below(127 - 33) as u8;
                c as char
            })
            .collect(),
    }
}

/// A synthetic user population with a password-class mix.
pub fn generate_population(
    n: usize,
    mix: &[(PasswordClass, f64)],
    seed: u64,
) -> Vec<(String, String, PasswordClass)> {
    let mut rng = TestRng::new(seed);
    let total: f64 = mix.iter().map(|(_, w)| w).sum();
    (0..n)
        .map(|i| {
            let mut pick = rng.next_f64() * total;
            let mut class = mix[0].0;
            for (c, w) in mix {
                if pick < *w {
                    class = *c;
                    break;
                }
                pick -= w;
            }
            (format!("user{i:04}"), generate_password(class, &mut rng), class)
        })
        .collect()
}

/// The attacker's guess list: the dictionary plus standard mutations —
/// what a 1990 cracker actually tried.
pub fn guess_list() -> Vec<String> {
    let mut v = Vec::with_capacity(DICTIONARY.len() * 13);
    for w in DICTIONARY {
        v.push(w.to_string());
        for d in 0..10 {
            v.push(format!("{w}{d}"));
        }
        let mut c = w.chars();
        if let Some(f) = c.next() {
            v.push(f.to_uppercase().collect::<String>() + c.as_str());
        }
        v.push(format!("{w}!"));
    }
    v
}

/// One simulated mail-check session: "a user logs in briefly, reads a
/// few messages, and logs out. A number of valuable tickets would be
/// exposed by such a session." Returns the services contacted (each
/// contact exposes a live ticket+authenticator on the wire).
pub fn mail_check_session() -> Vec<&'static str> {
    // Login exposes the TGT exchange; mounting the home directory
    // exposes the NFS ticket; reading mail exposes the mail ticket.
    vec!["files", "mail"]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_generate_expected_shapes() {
        let mut rng = TestRng::new(1);
        let w = generate_password(PasswordClass::DictionaryWord, &mut rng);
        assert!(DICTIONARY.contains(&w.as_str()));
        let r = generate_password(PasswordClass::Random, &mut rng);
        assert_eq!(r.chars().count(), 8);
    }

    #[test]
    fn population_respects_mix() {
        let pop = generate_population(
            300,
            &[(PasswordClass::DictionaryWord, 1.0), (PasswordClass::Random, 1.0)],
            7,
        );
        let dict = pop.iter().filter(|(_, _, c)| *c == PasswordClass::DictionaryWord).count();
        assert!(dict > 100 && dict < 200, "dict={dict}");
        // Unique user names.
        let mut names: Vec<&String> = pop.iter().map(|(n, _, _)| n).collect();
        names.dedup();
        assert_eq!(names.len(), 300);
    }

    #[test]
    fn population_replayable_from_seed() {
        let mix = [(PasswordClass::DictionaryWord, 1.0), (PasswordClass::MutatedWord, 1.0)];
        assert_eq!(generate_population(50, &mix, 123), generate_population(50, &mix, 123));
        assert_ne!(generate_population(50, &mix, 123), generate_population(50, &mix, 124));
    }

    #[test]
    fn guess_list_covers_mutations() {
        let g = guess_list();
        assert!(g.contains(&"wombat".to_string()));
        assert!(g.contains(&"wombat7".to_string()));
        assert!(g.contains(&"Wombat".to_string()));
        assert!(g.contains(&"wombat!".to_string()));
        assert!(g.len() > DICTIONARY.len() * 12);
    }

    #[test]
    fn mutated_passwords_are_found_by_guess_list() {
        let mut rng = TestRng::new(2);
        let g = guess_list();
        for _ in 0..50 {
            let pw = generate_password(PasswordClass::MutatedWord, &mut rng);
            assert!(g.contains(&pw), "guess list missing {pw}");
        }
    }
}
