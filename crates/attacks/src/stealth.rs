//! E20 adversary variants and detection ground truth.
//!
//! The E1 scripts run each attack once, the way the paper describes it.
//! A defender's view depends on *how loudly* the attacker moves, so
//! this module re-stages three detectable attacks along a stealth axis:
//!
//! * `a1-loud` / `a1-stealthy` — the stolen-authenticator replay,
//!   hammered five times versus replayed once near the end of the
//!   authenticator's life. The stealthy variant is still caught: the
//!   replay rule's 900 s window dwarfs the five-minute authenticator
//!   lifetime, so the attacker cannot outwait the detector without
//!   losing the attack.
//! * `a5-loud` / `a5-stealthy` — the ticket harvest as a burst across
//!   many principals versus slow single probes. The stealthy variant
//!   evades: one well-spaced AS-REQ per idle period is exactly what a
//!   legitimate login looks like. This is the honest limitation of
//!   volume rules, reported as such in the E20 table.
//! * `crash-loud` / `crash-stealthy` — the replay-cache-wipe attack
//!   ("note that it may be possible to replay messages ... if the
//!   server has crashed"): a cached-out replay right after the
//!   verifier's restart versus one delayed past the IDS window. The
//!   stealthy variant evades the detector but the authenticator has
//!   gone stale by then — stealth costs the attack itself.
//!
//! [`GROUND_TRUTH`] records, per E1 attack, which detectors the default
//! rule set is *designed* to fire on the attack's primary vulnerable
//! configuration — including the honest empty rows (a passive wiretap
//! emits nothing a sniffer-based IDS could see). The E20 bench scores
//! the engine against this table.

use crate::env::AttackEnv;
use kerberos::messages::{AsRep, AsReq, WireKind};
use kerberos::ProtocolConfig;
use simnet::{Datagram, FaultPlan, SimTime};

/// How noisily the variant's adversary operates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// Fast, repeated, high-volume — the impatient intruder.
    Loud,
    /// Slow, minimal, spaced-out — the patient intruder.
    Stealthy,
}

impl Profile {
    pub fn name(&self) -> &'static str {
        match self {
            Profile::Loud => "loud",
            Profile::Stealthy => "stealthy",
        }
    }
}

/// What one variant run produced (the attacker's scorecard; the
/// defender's scorecard comes from the attached engine).
#[derive(Clone, Debug)]
pub struct VariantOutcome {
    /// Did the attack itself succeed?
    pub succeeded: bool,
    /// What happened, concretely.
    pub evidence: String,
}

/// A re-staged attack with an explicit noise profile.
pub struct Variant {
    /// Variant name, e.g. `"a1-loud"`.
    pub name: &'static str,
    /// The E1 attack it re-stages.
    pub base: &'static str,
    /// The noise profile.
    pub profile: Profile,
    /// Detector labels the default rules are designed to fire on this
    /// variant. Empty: the variant is designed to *evade*.
    pub expected: &'static [&'static str],
    /// Why it is caught or missed.
    pub rationale: &'static str,
    run: fn(u64) -> VariantOutcome,
}

impl Variant {
    /// Runs the variant against a fresh deployment. The environment is
    /// built through [`AttackEnv::new`], so an installed
    /// [`crate::env::with_env_hook`] observer sees its tracer.
    pub fn run(&self, seed: u64) -> VariantOutcome {
        (self.run)(seed)
    }
}

/// All six variants: three attacks × two profiles.
pub fn variants() -> Vec<Variant> {
    vec![
        Variant {
            name: "a1-loud",
            base: "A1",
            profile: Profile::Loud,
            expected: &["replay"],
            rationale: "five identical AP-REQs in seconds on one stream",
            run: |seed| run_a1(seed, 5, 30, 1),
        },
        Variant {
            name: "a1-stealthy",
            base: "A1",
            profile: Profile::Stealthy,
            expected: &["replay"],
            rationale: "900s replay window outlasts the 5-minute authenticator life",
            run: |seed| run_a1(seed, 1, 240, 0),
        },
        Variant {
            name: "a5-loud",
            base: "A5",
            profile: Profile::Loud,
            expected: &["preauth-storm"],
            rationale: "12 AS-REQs for 3 principals in seconds from one endpoint",
            run: |seed| run_a5(seed, 4, 1),
        },
        Variant {
            name: "a5-stealthy",
            base: "A5",
            profile: Profile::Stealthy,
            expected: &[],
            rationale: "probes spaced 120s apart look like ordinary logins (evades)",
            run: |seed| run_a5(seed, 1, 120),
        },
        Variant {
            name: "crash-loud",
            base: "A1",
            profile: Profile::Loud,
            expected: &["replay", "crash-reuse"],
            rationale: "cached-out authenticator re-presented 60s after the restart",
            run: |seed| run_crash(seed, 60, true),
        },
        Variant {
            name: "crash-stealthy",
            base: "A1",
            profile: Profile::Stealthy,
            expected: &[],
            rationale: "waiting out the 900s window leaves a stale authenticator (attack fails)",
            run: |seed| run_crash(seed, 920, false),
        },
    ]
}

/// A1 with a replay count, an initial delay, and per-replay spacing.
fn run_a1(seed: u64, replays: u32, delay_s: u64, spacing_s: u64) -> VariantOutcome {
    let config = ProtocolConfig::v4();
    let mut env = AttackEnv::new(&config, seed);
    if env.victim_session("pat", "files").is_err() {
        return VariantOutcome { succeeded: false, evidence: "victim session failed".into() };
    }
    let pat = env.user("pat");
    let files_ep = env.realm.service_ep("files");
    let captured: Vec<Datagram> = env
        .net
        .traffic_log()
        .iter()
        .filter(|r| {
            r.is_request
                && r.dgram.dst == files_ep
                && matches!(
                    r.dgram.payload.first().copied().and_then(WireKind::from_u8),
                    Some(WireKind::ApReq) | Some(WireKind::ChallengeResp)
                )
        })
        .map(|r| r.dgram.clone())
        .collect();
    if captured.is_empty() {
        return VariantOutcome { succeeded: false, evidence: "no AP exchange captured".into() };
    }
    let before = env.realm.with_app_server(&mut env.net, "files", |s| s.accepted_count(&pat));
    env.advance_secs(delay_s);
    for i in 0..replays {
        env.adversary_note(&format!("adversary replay {} of {replays}", i + 1));
        for d in &captured {
            let _ = env.net.inject(d.clone());
        }
        env.advance_secs(spacing_s);
    }
    let after = env.realm.with_app_server(&mut env.net, "files", |s| s.accepted_count(&pat));
    VariantOutcome {
        succeeded: after > before,
        evidence: format!(
            "{replays} replay(s) {delay_s}s after capture: {before} -> {after} accepted"
        ),
    }
}

/// A5 as a harvest campaign: `rounds` probes per principal against
/// pat, sam, and zach, spaced `spacing_s` apart.
fn run_a5(seed: u64, rounds: u64, spacing_s: u64) -> VariantOutcome {
    let config = ProtocolConfig::v4();
    let mut env = AttackEnv::new(&config, seed);
    let attacker_ep = env.attacker_ep();
    let users = ["pat", "sam", "zach"];
    let mut probes = 0u64;
    let mut harvested = 0u64;
    for round in 0..rounds {
        for user in users {
            let req = AsReq {
                client: env.user(user),
                service: kerberos::Principal::tgs(&env.realm.name),
                nonce: 0x5EED ^ (round << 8) ^ probes,
                lifetime_us: config.ticket_lifetime_us,
                addr: attacker_ep.addr.0,
                options: kerberos::flags::KdcOptions::empty(),
                padata: Vec::new(),
            };
            probes += 1;
            if let Ok(reply) = env.net.rpc(attacker_ep, env.realm.kdc_ep, req.encode(config.codec))
            {
                if AsRep::decode(config.codec, &reply).is_ok() {
                    harvested += 1;
                }
            }
            env.advance_secs(spacing_s);
        }
    }
    VariantOutcome {
        succeeded: harvested > 0,
        evidence: format!(
            "harvested {harvested}/{probes} AS replies at one probe per {spacing_s}s"
        ),
    }
}

/// The replay-cache-wipe attack: a replay-caching file server crashes
/// (losing its cache), and the captured authenticator is re-presented
/// `wait_s` after its restart.
fn run_crash(seed: u64, wait_s: u64, probe_live_cache: bool) -> VariantOutcome {
    let mut config = ProtocolConfig::v4();
    config.replay_cache = true;
    config.name = "v4+replay-cache";
    let mut env = AttackEnv::new(&config, seed);
    if env.victim_session("pat", "files").is_err() {
        return VariantOutcome { succeeded: false, evidence: "victim session failed".into() };
    }
    let pat = env.user("pat");
    let files_ep = env.realm.service_ep("files");
    let captured: Vec<Datagram> = env
        .net
        .traffic_log()
        .iter()
        .filter(|r| {
            r.is_request
                && r.dgram.dst == files_ep
                && matches!(
                    r.dgram.payload.first().copied().and_then(WireKind::from_u8),
                    Some(WireKind::ApReq) | Some(WireKind::ChallengeResp)
                )
        })
        .map(|r| r.dgram.clone())
        .collect();
    if captured.is_empty() {
        return VariantOutcome { succeeded: false, evidence: "no AP exchange captured".into() };
    }
    let before = env.realm.with_app_server(&mut env.net, "files", |s| s.accepted_count(&pat));

    // The loud adversary probes the live cache first (refused, and a
    // replay the defender sees); the stealthy one skips the probe and
    // stays quiet until after the crash.
    if probe_live_cache {
        env.adversary_note("adversary replays against the live cache (expected: refused)");
        for d in &captured {
            let _ = env.net.inject(d.clone());
        }
        let cached = env.realm.with_app_server(&mut env.net, "files", |s| s.accepted_count(&pat));
        if cached > before {
            return VariantOutcome {
                succeeded: true,
                evidence: "BUG: cache accepted a plain replay".into(),
            };
        }
    }

    // The server rides out a 20 s crash window; its replay cache is
    // volatile (no persistence on this config), so the restart reboots
    // it empty.
    let now = env.net.now();
    env.net.set_fault_plan(FaultPlan::new(seed).crash(
        files_ep.addr,
        SimTime(now.0 + 10 * 1_000_000),
        SimTime(now.0 + 30 * 1_000_000),
    ));
    env.advance_secs(40);
    // Benign traffic triggers the restart the defender's telemetry sees.
    let _ = env.victim_session("sam", "files");

    env.advance_secs(wait_s);
    env.adversary_note(&format!("adversary re-presents the authenticator {wait_s}s after restart"));
    for d in &captured {
        let _ = env.net.inject(d.clone());
    }
    let after = env.realm.with_app_server(&mut env.net, "files", |s| s.accepted_count(&pat));
    VariantOutcome {
        succeeded: after > before,
        evidence: format!(
            "replay vs live cache refused; {wait_s}s after restart: {before} -> {after} accepted"
        ),
    }
}

/// Per-attack detection ground truth on the attack's primary vulnerable
/// configuration.
pub struct Coverage {
    /// E1 attack id.
    pub attack: &'static str,
    /// Configuration the expectation is scored on.
    pub config: &'static str,
    /// Detectors the default rules are designed to fire. Empty: the
    /// attack is invisible to a wire sniffer, for the stated reason.
    pub expected: &'static [&'static str],
    /// Why those detectors (or none) apply.
    pub note: &'static str,
}

/// The designed coverage of [`krb_ids::DEFAULT_RULES`] over the E1
/// catalog. The E20 bench verifies every non-empty row fires and every
/// empty row is justified prose, not a silent miss.
pub const GROUND_TRUTH: &[Coverage] = &[
    Coverage {
        attack: "A1",
        config: "v4",
        expected: &["replay"],
        note: "identical sealed AP-REQ re-sent on its own stream",
    },
    Coverage {
        attack: "A2",
        config: "v4",
        expected: &["cut-paste"],
        note: "stolen sealed material resurfaces inside the spoofed stream",
    },
    Coverage {
        attack: "A3",
        config: "v4",
        expected: &["replay", "clock-spoof"],
        note: "stale AP-REQ re-sent; time reply contradicts wire arrival time",
    },
    Coverage {
        attack: "A4",
        config: "v4",
        expected: &[],
        note: "passive wiretap: the attacker emits no packets to observe",
    },
    Coverage {
        attack: "A5",
        config: "v4",
        expected: &[],
        note: "one AS-REQ is a legitimate login shape; only volume is anomalous (see a5-loud)",
    },
    Coverage {
        attack: "A6",
        config: "v4",
        expected: &[],
        note: "trojan login box: the spoof is local to the workstation, off the wire",
    },
    Coverage {
        attack: "A7",
        config: "v4",
        expected: &["cut-paste"],
        note: "CBC splice re-uses ciphertext runs from an earlier session message",
    },
    Coverage {
        attack: "A8",
        config: "v4",
        expected: &[],
        note: "in-flight block swap: the unmodified original never crosses the tap, nothing repeats",
    },
    Coverage {
        attack: "A9",
        config: "v5-draft3",
        expected: &[],
        note: "in-flight TGS-REQ rewrite: the original never crosses the tap, and the spliced \
               TGT's ciphertext makes its first wire appearance inside the forgery (KDC \
               replies seal tickets inside enc-part, so nothing it contains ever repeats)",
    },
    Coverage {
        attack: "A10",
        config: "v4",
        expected: &[],
        note: "REUSE-SKEY redirect is a protocol-legal exchange; nothing repeats on the wire",
    },
    Coverage {
        attack: "A11",
        config: "v4",
        expected: &[],
        note: "encode/decode confusion demonstrated off the wire; the attack sends no packets",
    },
    Coverage {
        attack: "A12",
        config: "v4",
        expected: &["cut-paste"],
        note: "the stolen ticket's full ciphertext resurfaces in an AP-REQ from an endpoint \
               that never presented it before (the authenticator itself is fresh)",
    },
    Coverage {
        attack: "A13",
        config: "v4",
        expected: &["replay"],
        note: "the captured sealed command is re-sent verbatim on its own stream",
    },
    Coverage {
        attack: "A14",
        config: "v4",
        expected: &[],
        note: "hijack continues with forged fresh plaintext; no sealed bytes repeat",
    },
];

/// A purpose-built benign workload for the false-positive gate: three
/// rounds of logins and short, pairwise-distinct commands from every
/// user to the echo and file services on a fault-free network. Any
/// alert raised on this run is a false positive. Commands are kept
/// under one ciphertext window (16 bytes) so the plaintext app modes
/// cannot alias in the cut-paste index.
pub fn run_benign(config: &ProtocolConfig, seed: u64) -> (u64, u64) {
    let mut env = AttackEnv::new(config, seed);
    let users = ["pat", "sam", "zach"];
    let services = ["echo", "files"];
    let (mut ok, mut total) = (0u64, 0u64);
    for round in 0..3u32 {
        for (u, user) in users.iter().enumerate() {
            let Ok(tgt) = env.login(user) else {
                total += services.len() as u64;
                continue;
            };
            for (s, service) in services.iter().enumerate() {
                total += 1;
                let cmd = format!("ls r{round}u{u}s{s}");
                let done = env
                    .ticket(user, &tgt, service)
                    .and_then(|st| env.connect(user, &st, service))
                    .and_then(|mut conn| {
                        let mut rng = env.rng.clone();
                        conn.request(&mut env.net, cmd.as_bytes(), &mut rng)
                    });
                if done.is_ok() {
                    ok += 1;
                }
            }
            env.advance_secs(30);
        }
        env.advance_secs(120);
    }
    (ok, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use krb_ids::DETECTOR_LABELS;

    #[test]
    fn loud_variants_succeed_on_vulnerable_configs() {
        for v in variants() {
            if v.profile == Profile::Loud {
                let out = v.run(1);
                assert!(out.succeeded, "{}: {}", v.name, out.evidence);
            }
        }
    }

    #[test]
    fn stealth_has_a_price_crash_variant_fails() {
        let out = variants().into_iter().find(|v| v.name == "crash-stealthy").unwrap().run(1);
        assert!(!out.succeeded, "waiting out the IDS window must stale the authenticator");
    }

    #[test]
    fn a1_stealthy_still_succeeds_as_attack() {
        let out = variants().into_iter().find(|v| v.name == "a1-stealthy").unwrap().run(1);
        assert!(out.succeeded, "{}", out.evidence);
    }

    #[test]
    fn ground_truth_labels_are_valid() {
        for row in GROUND_TRUTH {
            for d in row.expected {
                assert!(DETECTOR_LABELS.contains(d), "{}: unknown detector {d}", row.attack);
            }
        }
        for v in variants() {
            for d in v.expected {
                assert!(DETECTOR_LABELS.contains(d), "{}: unknown detector {d}", v.name);
            }
        }
    }

    #[test]
    fn benign_workload_completes_clean() {
        for config in ProtocolConfig::presets() {
            let (ok, total) = run_benign(&config, 3);
            assert_eq!(ok, total, "benign workload must fully succeed on {}", config.name);
        }
    }
}
