//! A7 — the inter-session chosen-plaintext attack on KRB_PRIV.
//!
//! "The encrypted portion of messages of this type have the form
//! X = (DATA, timestamp+direction, hostaddress, PAD). Since cipher-block
//! chaining has the property that prefixes of encryptions are
//! encryptions of prefixes, if DATA has the form (AUTHENTICATOR,
//! CHECKSUM, REMAINDER) then a prefix of the encryption of X ... can be
//! used to spoof an entire session with the server. ... Mail and file
//! servers are examples of servers susceptible to such attacks."
//!
//! Concretely: the attacker mails the victim a message whose bytes are a
//! complete, *future-dated* KRB_PRIV plaintext containing a command of
//! the attacker's choice. When the victim reads their mail, the server
//! returns those bytes encrypted under the victim's session key — and a
//! ciphertext *prefix* of that reply is a valid KRB_PRIV message, which
//! the attacker replays into the victim's session.

use crate::env::AttackEnv;
use crate::{Attack, AttackReport};
use kerberos::messages::{frame, WireKind};
use kerberos::services::MailServerLogic;
use kerberos::session::{encode_priv_draft3, Direction, PrivPart};
use kerberos::ProtocolConfig;
use simnet::Datagram;

/// The A7 attack object.
pub struct ChosenPlaintextSplice;

impl Attack for ChosenPlaintextSplice {
    fn id(&self) -> &'static str {
        "A7"
    }

    fn name(&self) -> &'static str {
        "chosen-plaintext KRB_PRIV splice"
    }

    fn run(&self, config: &ProtocolConfig, seed: u64) -> AttackReport {
        let mut env = AttackEnv::new(config, seed);
        let report = |succeeded: bool, evidence: String| AttackReport {
            id: "A7",
            name: "chosen-plaintext KRB_PRIV splice",
            config: config.name,
            succeeded,
            evidence,
        };
        let mail_ep = env.realm.service_ep("mail");
        let victim_ep = env.realm.user_ep("pat");
        let second_ep = simnet::Endpoint::new(victim_ep.addr, victim_ep.port + 1);

        // The victim has a live mail session (we keep the credential: it
        // holds the multi-session key that every session under this
        // ticket shares).
        let pat_cred = match env.login("pat").and_then(|tgt| env.ticket("pat", &tgt, "mail")) {
            Ok(c) => c,
            Err(e) => return report(false, format!("victim ticket failed: {e}")),
        };
        let mut pat_conn = match env.connect("pat", &pat_cred, "mail") {
            Ok(c) => c,
            Err(e) => return report(false, format!("victim session failed: {e}")),
        };

        // The attacker (a legitimate user) crafts the chosen plaintext:
        // a complete KRB_PRIV part whose DATA is the command to forge,
        // dated slightly in the future (the attacker controls every
        // byte).
        let now_us = env.net.now().0;
        let crafted = encode_priv_draft3(&PrivPart {
            data: b"SEND zach EXFILTRATED-AS-PAT".to_vec(),
            ts_or_seq: now_us + 10_000_000, // ~10 s ahead: fresh at splice time
            direction: Direction::ClientToServer,
            addr: victim_ep.addr.0,
        });
        let crafted_len = crafted.len();

        // Deliver it as mail to the victim.
        let mut zach_conn = match env.victim_session("zach", "mail") {
            Ok(c) => c,
            Err(e) => return report(false, format!("attacker session failed: {e}")),
        };
        let mut rng = env.rng.clone();
        let mut send_cmd = b"SEND pat ".to_vec();
        send_cmd.extend_from_slice(&crafted);
        if zach_conn.request(&mut env.net, &send_cmd, &mut rng).as_deref() != Ok(b"QUEUED") {
            return report(false, "could not deposit chosen plaintext".into());
        }

        // The victim reads their mail; the wiretap records the encrypted
        // reply that carries the crafted bytes as DATA.
        let mark = env.net.traffic_log().len();
        let n_msgs: usize = pat_conn
            .request(&mut env.net, b"COUNT", &mut rng)
            .ok()
            .and_then(|r| String::from_utf8_lossy(&r).parse().ok())
            .unwrap_or(0);
        for i in 0..n_msgs {
            let _ = pat_conn.request(&mut env.net, format!("READ {i}").as_bytes(), &mut rng);
        }
        let replies: Vec<Vec<u8>> = env.net.traffic_log()[mark..]
            .iter()
            .filter(|r| {
                !r.is_request
                    && r.dgram.src == mail_ep
                    && r.dgram.payload.first() == Some(&(WireKind::Priv as u8))
            })
            .map(|r| r.dgram.payload.to_vec())
            .collect();

        // The victim later opens a second mail window with the same
        // ticket — same multi-session key, fresh session state. The
        // attacker splices into *that* session: the substitution of a
        // message from one session into another which true session keys
        // (recommendation e) preclude.
        let conn2 = kerberos::appserver::connect_app(
            &mut env.net,
            config,
            second_ep,
            mail_ep,
            &pat_cred,
            &mut rng,
        );
        if let Err(e) = conn2 {
            return report(false, format!("victim's second session failed: {e}"));
        }
        drop(conn2); // The second window sits idle.

        // Splice: a block-aligned ciphertext prefix covering (confounder
        // +) crafted bytes. Try each captured reply and each plausible
        // confounder offset; the attacker can afford to try them all.
        let mut attempts = 0;
        for wire in &replies {
            let sealed = &wire[1..];
            for confounder in [8usize, 0] {
                let cut = confounder + crafted_len;
                // The V4 layer carries a leading length word instead of a
                // confounder; include that alignment too.
                for adjust in [0usize, 8] {
                    let cut = cut + adjust;
                    if cut > sealed.len() || !cut.is_multiple_of(8) {
                        continue;
                    }
                    attempts += 1;
                    let spliced = frame(WireKind::Priv, sealed[..cut].to_vec());
                    let _ = env.net.inject(Datagram {
                        src: second_ep,
                        dst: mail_ep,
                        payload: spliced.into(),
                    });
                }
            }
        }

        // Did the mail server execute the crafted command as pat?
        let stolen = env.realm.with_app_server(&mut env.net, "mail", |s| {
            s.logic
                .as_any()
                .and_then(|a| a.downcast_ref::<MailServerLogic>())
                .map(|m| {
                    m.boxes
                        .get("zach")
                        .map(|msgs| msgs.iter().any(|b| b == b"EXFILTRATED-AS-PAT"))
                        .unwrap_or(false)
                })
                .unwrap_or(false)
        });
        if stolen {
            report(
                true,
                format!(
                    "spliced ciphertext prefix accepted: mail server ran the attacker's \
                     command as pat ({attempts} splice attempts)"
                ),
            )
        } else {
            report(false, format!("all {attempts} splice attempts rejected"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draft3_cbc_is_spliceable() {
        assert!(ChosenPlaintextSplice.run(&ProtocolConfig::v5_draft3(), 1).succeeded);
    }

    #[test]
    fn v4_leading_length_blocks_the_simple_splice() {
        // "The simple attack above does not work against Kerberos
        // Version 4, in which ... the leading length(DATA) field
        // disrupts the prefix-based attack."
        assert!(!ChosenPlaintextSplice.run(&ProtocolConfig::v4(), 1).succeeded);
    }

    #[test]
    fn hardened_layer_blocks_it() {
        assert!(!ChosenPlaintextSplice.run(&ProtocolConfig::hardened(), 1).succeeded);
    }

    #[test]
    fn subkeys_alone_block_it() {
        // Recommendation (e): with a true session key, the mail-reading
        // session key differs from any other session's, so the splice
        // cannot cross.
        let mut config = ProtocolConfig::v5_draft3();
        config.subkey_negotiation = true;
        assert!(!ChosenPlaintextSplice.run(&config, 2).succeeded);
    }
}
