//! Overload and abuse scenarios against the gateway-fronted KDC
//! cluster (experiment E17).
//!
//! The paper's E2 discussion ends with the observation that nothing in
//! Kerberos stops an attacker from asking the KDC for material to crack
//! offline, and its suggested countermeasure — limit the request rate
//! from a single source — raises an immediate follow-up: what happens
//! to *legitimate* users when the limiter is in the path and the load
//! is real? These scenarios answer that quantitatively. Each is a
//! seeded, deterministic campaign through [`run_overload`]:
//!
//! - [`Scenario::FlashCrowd`] — every user on campus logs in at shift
//!   change. No adversary at all: the question is whether admission
//!   control turns a thundering herd into backoff-smoothed goodput or
//!   into an outage.
//! - [`Scenario::PreauthStorm`] — a single source guesses passwords at
//!   one principal as fast as it can. Token buckets cap the source;
//!   preauth penalty windows then choke the *principal*, so the KDC
//!   sees a trickle of the storm while other users log in normally.
//! - [`Scenario::MisbehavingHerd`] — a botnet of clients that ignore
//!   SERVER_BUSY and never back off. Per-source buckets mean the herd
//!   competes with itself; the polite majority still gets through.
//! - [`Scenario::CrashRestart`] — the gateway itself crashes mid-storm
//!   and reboots with empty buckets and a clean penalty box. Measures
//!   the cost of volatile admission state: one lost round, then
//!   recovery.
//!
//! Every scenario is byte-replayable from its seed: two runs with the
//! same [`OverloadConfig`] produce identical reports and identical
//! traces.

use kerberos::client::{login_at, LoginInput};
use kerberos::flags::KdcOptions;
use kerberos::messages::{deframe, err_code, AsReq, KrbErrorMsg, PaData, WireKind};
use kerberos::testbed::{deploy_realm, DeployedRealm};
use kerberos::{Principal, ProtocolConfig};
use krb_crypto::rng::Drbg;
use krb_gateway::GatewayConfig;
use simnet::{Endpoint, FaultPlan, Network, SimDuration, SimTime};

/// Which abuse pattern to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scenario {
    /// Legitimate-only thundering herd (shift-change login wave).
    FlashCrowd,
    /// Password-guessing storm from one source at one principal.
    PreauthStorm,
    /// Flooding clients that ignore busy replies and never back off.
    MisbehavingHerd,
    /// Gateway crash and restart in the middle of a preauth storm.
    CrashRestart,
}

impl Scenario {
    /// Stable label used in benches and narratives.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::FlashCrowd => "flash-crowd",
            Scenario::PreauthStorm => "preauth-storm",
            Scenario::MisbehavingHerd => "misbehaving-herd",
            Scenario::CrashRestart => "crash-restart",
        }
    }

    /// All four, in presentation order.
    pub fn all() -> [Scenario; 4] {
        [
            Scenario::FlashCrowd,
            Scenario::PreauthStorm,
            Scenario::MisbehavingHerd,
            Scenario::CrashRestart,
        ]
    }
}

/// One overload campaign.
#[derive(Clone, Debug)]
pub struct OverloadConfig {
    /// Master seed: deployment keys, scripted randomness, fault plan.
    pub seed: u64,
    /// Legitimate users deployed (each on their own workstation).
    pub legit_users: usize,
    /// Abusive hosts deployed (attacker workstations; the preauth storm
    /// uses the first, the herd uses all of them).
    pub abusers: usize,
    /// Waves of traffic; one legit login per user per round.
    pub rounds: u32,
    /// Abusive requests sent per abuser per round.
    pub storm_per_round: u32,
    /// Sim-time gap between abusive requests (µs).
    pub storm_gap_us: u64,
    /// Sim-time between rounds (µs).
    pub round_us: u64,
    /// Gateway tuning under test.
    pub gateway: GatewayConfig,
}

impl OverloadConfig {
    /// The standard campaign: 12 users, 2 abuser hosts, 3 rounds of
    /// 40-request storms, gateway tuned small enough that overload is
    /// real but legitimate traffic fits.
    pub fn standard(seed: u64) -> Self {
        let mut gateway = GatewayConfig::standard();
        // Small-campus scale: the default (datacenter-ish) rates would
        // never saturate with a dozen users.
        gateway.global_rate_per_sec = 40;
        gateway.global_burst = 30;
        gateway.per_source_rate_per_sec = 4;
        gateway.per_source_burst = 6;
        gateway.queue_bound = 16;
        OverloadConfig {
            seed,
            legit_users: 12,
            abusers: 2,
            rounds: 3,
            storm_per_round: 40,
            storm_gap_us: 20_000, // 50 req/s offered per abuser
            round_us: 360_000_000,
            gateway,
        }
    }
}

/// What a campaign observed. All counts are end-of-run totals.
#[derive(Clone, Debug, PartialEq)]
pub struct OverloadReport {
    /// Scenario label.
    pub scenario: &'static str,
    /// Legitimate login flows attempted.
    pub legit_total: u32,
    /// Legitimate login flows that completed.
    pub legit_ok: u32,
    /// Abusive requests put on the wire.
    pub abuse_sent: u32,
    /// Abusive requests the gateway actually forwarded to a KDC (from
    /// the per-source admission counters).
    pub abuse_admitted: u64,
    /// Gateway stats: requests forwarded upstream (all sources).
    pub admitted: u64,
    /// Gateway stats: queue sheds.
    pub shed: u64,
    /// Gateway stats: token-bucket refusals.
    pub throttled: u64,
    /// Gateway stats: penalty-window refusals.
    pub penalized: u64,
    /// Gateway stats: upstream (KDC) failures seen.
    pub upstream_failures: u64,
    /// Gateway crash-restarts.
    pub restarts: u64,
    /// Sim-time cost of each successful legitimate login (µs).
    pub login_latencies_us: Vec<u64>,
}

impl OverloadReport {
    /// Fraction of legitimate logins that completed.
    pub fn legit_success_ratio(&self) -> f64 {
        if self.legit_total == 0 {
            return 1.0;
        }
        f64::from(self.legit_ok) / f64::from(self.legit_total)
    }

    /// Fraction of abusive requests that reached a KDC.
    pub fn abuse_admission_ratio(&self) -> f64 {
        if self.abuse_sent == 0 {
            return 0.0;
        }
        self.abuse_admitted as f64 / f64::from(self.abuse_sent)
    }

    /// Fraction of offered load the gateway refused (shed + throttled +
    /// penalized over everything that arrived).
    pub fn shed_rate(&self) -> f64 {
        let refused = self.shed + self.throttled + self.penalized;
        let offered = self.admitted + refused;
        if offered == 0 {
            return 0.0;
        }
        refused as f64 / offered as f64
    }

    /// p99 of successful-login sim-time latency (µs); 0 if no samples.
    pub fn p99_latency_us(&self) -> u64 {
        if self.login_latencies_us.is_empty() {
            return 0;
        }
        let mut v = self.login_latencies_us.clone();
        v.sort_unstable();
        let idx = (v.len().saturating_sub(1)) * 99 / 100;
        v[idx]
    }
}

/// The deployed overload stage.
struct Stage {
    net: Network,
    realm: DeployedRealm,
    config: ProtocolConfig,
    rng: Drbg,
    /// Deployed legitimate user names, sorted.
    legit: Vec<String>,
    /// Deployed abuser endpoints.
    abuser_eps: Vec<Endpoint>,
}

/// Abuser host names are disjoint from the `user%04` legit population.
fn abuser_name(i: usize) -> String {
    format!("abuser{i:02}")
}

fn build_stage(config: &ProtocolConfig, o: &OverloadConfig) -> Stage {
    let mut net = Network::new();
    net.advance(SimDuration::from_secs(1_000_000));

    // Legit population with era-typical passwords, plus abuser hosts
    // (deployed as ordinary workstations — the abuse is behavioral).
    let population = crate::workload::generate_population(
        o.legit_users,
        &[
            (crate::workload::PasswordClass::DictionaryWord, 1.0),
            (crate::workload::PasswordClass::MutatedWord, 1.0),
            (crate::workload::PasswordClass::Random, 1.0),
        ],
        o.seed,
    );
    let mut users: Vec<(String, String)> =
        population.into_iter().map(|(n, p, _)| (n, p)).collect();
    for i in 0..o.abusers {
        users.push((abuser_name(i), format!("owned-{i}")));
    }
    let users_ref: Vec<(&str, &str)> =
        users.iter().map(|(n, p)| (n.as_str(), p.as_str())).collect();

    let mut realm =
        deploy_realm(&mut net, "ATHENA.MIT.EDU", 0, config, &users_ref, &["echo"], o.seed);
    realm.add_kdc_replicas(&mut net, 1, o.seed ^ 0x0bad);
    realm.add_gateway(&mut net, o.gateway.clone());
    crate::env::publish_tracer(&net.tracer());

    let mut legit: Vec<String> =
        users.iter().take(o.legit_users).map(|(n, _)| n.clone()).collect();
    legit.sort();
    let abuser_eps = (0..o.abusers).map(|i| realm.user_ep(&abuser_name(i))).collect();

    Stage { net, realm, config: config.clone(), rng: Drbg::new(o.seed ^ 0x0e17), legit, abuser_eps }
}

/// A password-guessing AS request: preauth blob sealed under a guessed
/// (wrong) key. The KDC's verdict is PREAUTH_FAILED — exactly what the
/// gateway's penalty box counts as a strike.
fn guess_request(stage: &mut Stage, victim: &Principal, nonce: u64, src: Endpoint) -> Vec<u8> {
    // The key stands in for string_to_key of a bad guess; per-nonce so
    // the preauth replay cache never collapses the storm to one blob.
    let bad_key = krb_crypto::des::DesKey::from_u64(0xbad0_9e55 ^ nonce);
    let now = stage.net.now().0;
    let blob = stage
        .config
        .ticket_layer
        .seal(&bad_key, 0, &now.to_be_bytes(), &mut stage.rng)
        .unwrap_or_default();
    AsReq {
        client: victim.clone(),
        service: Principal::tgs(&victim.realm),
        nonce,
        lifetime_us: stage.config.ticket_lifetime_us,
        addr: src.addr.0,
        options: KdcOptions::empty(),
        padata: vec![PaData::EncTimestamp(blob)],
    }
    .encode(stage.config.codec)
}

/// Sends one raw abusive request, ignoring any busy reply (the abuser
/// by definition does not back off). Returns whether the request got
/// any answer that was NOT a gateway refusal.
fn fire_and_forget(stage: &mut Stage, src: Endpoint, gateway: Endpoint, payload: Vec<u8>) -> bool {
    match stage.net.rpc(src, gateway, payload) {
        Ok(reply) => {
            if let Ok((WireKind::Err, _)) = deframe(&reply) {
                if let Ok(e) = KrbErrorMsg::decode(stage.config.codec, &reply) {
                    return e.code != err_code::SERVER_BUSY;
                }
            }
            true
        }
        Err(_) => false,
    }
}

/// One legitimate login via the gateway; returns sim-time latency on
/// success.
fn legit_login(stage: &mut Stage, user: &str, contact: &[Endpoint]) -> Option<u64> {
    let pw = stage.realm.passwords[user].clone();
    let principal = stage.realm.user(user);
    let ep = stage.realm.user_ep(user);
    let t0 = stage.net.now().0;
    let r = login_at(
        &mut stage.net,
        &stage.config,
        ep,
        contact,
        &principal,
        LoginInput::Password(&pw),
        &mut stage.rng,
    );
    r.ok().map(|_| stage.net.now().0 - t0)
}

/// Runs one overload campaign. Deterministic: the report (and the whole
/// trace) is a pure function of `(config, o, scenario)`.
pub fn run_overload(
    config: &ProtocolConfig,
    o: &OverloadConfig,
    scenario: Scenario,
) -> OverloadReport {
    let mut stage = build_stage(config, o);
    let contact = stage.realm.kdc_contact_eps();
    let gateway_ep = stage.realm.gateway_ep.expect("stage deploys a gateway");
    let victim = stage.realm.user(&stage.legit[0].clone());

    // The crash scenario needs a fault plan before traffic starts: the
    // gateway is dark for the middle round and reboots for the last.
    if scenario == Scenario::CrashRestart {
        let t0 = stage.net.now().0;
        let crash_from = t0 + u64::from(o.rounds) / 3 * o.round_us;
        let plan = FaultPlan::new(o.seed).crash(
            gateway_ep.addr,
            SimTime(crash_from),
            SimTime(crash_from + o.round_us),
        );
        stage.net.set_fault_plan(plan);
    }

    let mut report = OverloadReport {
        scenario: scenario.label(),
        legit_total: 0,
        legit_ok: 0,
        abuse_sent: 0,
        abuse_admitted: 0,
        admitted: 0,
        shed: 0,
        throttled: 0,
        penalized: 0,
        upstream_failures: 0,
        restarts: 0,
        login_latencies_us: Vec::new(),
    };

    for _round in 0..o.rounds {
        // Abuse first: the storm is in full swing when users arrive.
        match scenario {
            Scenario::FlashCrowd => {}
            Scenario::PreauthStorm | Scenario::CrashRestart => {
                // One source, one victim principal, no backoff.
                let src = stage.abuser_eps[0];
                for i in 0..o.storm_per_round {
                    let nonce = u64::from(report.abuse_sent) << 16 | u64::from(i);
                    let req = guess_request(&mut stage, &victim, nonce, src);
                    fire_and_forget(&mut stage, src, gateway_ep, req);
                    report.abuse_sent += 1;
                    stage.net.advance(SimDuration(o.storm_gap_us));
                }
            }
            Scenario::MisbehavingHerd => {
                // Every abuser floods bare AS probes (no preauth: the
                // herd wants service, not guesses) and ignores every
                // busy reply.
                for i in 0..o.storm_per_round {
                    for (a, src) in stage.abuser_eps.clone().into_iter().enumerate() {
                        let herd_user = stage.realm.user(&abuser_name(a));
                        let req = AsReq {
                            client: herd_user,
                            service: Principal::tgs(&stage.realm.name.clone()),
                            nonce: u64::from(report.abuse_sent),
                            lifetime_us: stage.config.ticket_lifetime_us,
                            addr: src.addr.0,
                            options: KdcOptions::empty(),
                            padata: Vec::new(),
                        }
                        .encode(stage.config.codec);
                        fire_and_forget(&mut stage, src, gateway_ep, req);
                        report.abuse_sent += 1;
                    }
                    let _ = i;
                    stage.net.advance(SimDuration(o.storm_gap_us));
                }
            }
        }

        // The shift-change wave: every user logs in, back to back.
        for user in stage.legit.clone() {
            report.legit_total += 1;
            if let Some(lat) = legit_login(&mut stage, &user, &contact) {
                report.legit_ok += 1;
                report.login_latencies_us.push(lat);
            }
        }

        stage.net.advance(SimDuration(o.round_us));
        stage.net.pump();
    }

    // Gateway's own accounting.
    let stats = stage.realm.with_gateway(&mut stage.net, |g| g.stats);
    report.admitted = stats.admitted;
    report.shed = stats.shed;
    report.throttled = stats.throttled;
    report.penalized = stats.penalized;
    report.upstream_failures = stats.upstream_failures;
    report.restarts = stats.restarts;

    // Abusive admissions, from the per-source admission counters.
    let snap = stage.net.tracer().snapshot();
    for src in &stage.abuser_eps {
        let key = format!("gateway.admitted{{{}}}", src.addr);
        report.abuse_admitted += snap.get(&key).copied().unwrap_or(0);
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hardened() -> ProtocolConfig {
        ProtocolConfig::hardened()
    }

    #[test]
    fn flash_crowd_is_survivable() {
        let o = OverloadConfig::standard(0xf1a5);
        let r = run_overload(&hardened(), &o, Scenario::FlashCrowd);
        assert_eq!(r.abuse_sent, 0);
        assert!(
            r.legit_success_ratio() >= 0.90,
            "flash crowd drowned legit logins: {}/{}",
            r.legit_ok,
            r.legit_total
        );
        assert!(r.admitted > 0);
    }

    #[test]
    fn preauth_storm_is_contained() {
        let o = OverloadConfig::standard(0x5702);
        let r = run_overload(&hardened(), &o, Scenario::PreauthStorm);
        // The acceptance bar: the attacker's goodput is capped at the
        // bucket allowance while ≥90% of legitimate logins succeed.
        let bucket_cap = o.gateway.per_source_burst
            + o.gateway.per_source_rate_per_sec
                * (u64::from(o.rounds) * u64::from(o.storm_per_round) * o.storm_gap_us
                    / 1_000_000);
        assert!(
            r.abuse_admitted <= bucket_cap,
            "attacker got {} admissions past a {}-token allowance",
            r.abuse_admitted,
            bucket_cap
        );
        assert!(
            r.penalized > 0,
            "the victim principal's penalty window never engaged"
        );
        assert!(
            r.legit_success_ratio() >= 0.90,
            "storm drowned legit logins: {}/{}",
            r.legit_ok,
            r.legit_total
        );
    }

    #[test]
    fn misbehaving_herd_starves_itself_not_the_campus() {
        let o = OverloadConfig::standard(0x4e8d);
        let r = run_overload(&hardened(), &o, Scenario::MisbehavingHerd);
        assert!(r.throttled > 0, "the herd was never throttled");
        assert!(
            r.abuse_admission_ratio() < 0.5,
            "herd pushed {} of {} floods through",
            r.abuse_admitted,
            r.abuse_sent
        );
        assert!(
            r.legit_success_ratio() >= 0.90,
            "herd drowned legit logins: {}/{}",
            r.legit_ok,
            r.legit_total
        );
    }

    #[test]
    fn crash_restart_recovers() {
        let o = OverloadConfig::standard(0xc4a5);
        let r = run_overload(&hardened(), &o, Scenario::CrashRestart);
        assert!(r.restarts >= 1, "the gateway never rebooted");
        // Losing the dark round is expected (one gateway, no HA); the
        // campaign as a whole must still mostly succeed and the storm
        // must stay contained after the reboot wiped the penalty box.
        assert!(
            r.legit_success_ratio() >= 0.60,
            "no recovery after gateway restart: {}/{}",
            r.legit_ok,
            r.legit_total
        );
        assert!(r.abuse_admission_ratio() < 0.5);
    }

    #[test]
    fn campaigns_replay_byte_identically() {
        for scenario in Scenario::all() {
            let a = run_overload(&hardened(), &OverloadConfig::standard(7), scenario);
            let b = run_overload(&hardened(), &OverloadConfig::standard(7), scenario);
            assert_eq!(a, b, "scenario {} diverged across same-seed runs", scenario.label());
        }
    }
}
