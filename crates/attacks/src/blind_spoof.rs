//! A2 — the Morris '85 blind spoof, carried by a stolen live
//! authenticator.
//!
//! "He demonstrated that it was possible, under certain circumstances,
//! to spoof one half of a preauthenticated TCP connection without ever
//! seeing any responses from the targeted host. In a Kerberos
//! environment, his attack would still work if accompanied by a stolen
//! live authenticator, but not if a challenge/response protocol was
//! used."
//!
//! The victim service here is an rsh-like stream daemon: a 4.2BSD-style
//! predictable-ISN handshake, then a Kerberos AP request as the first
//! data, then plaintext commands. The attacker forges the victim's
//! source address end-to-end and **never reads a single reply**.

use crate::env::AttackEnv;
use crate::{Attack, AttackReport};
use kerberos::authenticator::Authenticator;
use kerberos::messages::{ApReq, KrbErrorMsg};
use kerberos::ticket::Ticket;
use kerberos::{AuthStyle, ProtocolConfig};
use krb_crypto::des::DesKey;
use krb_crypto::rng::{Drbg, RandomSource};
use simnet::stream::{IsnGenerator, Segment};
use simnet::{Endpoint, Service, ServiceCtx};
use std::collections::BTreeMap;

/// The port the kerberized stream daemon listens on.
const KSHD_PORT: u16 = 544;

/// Per-connection state of the stream daemon.
enum ConnState {
    SynReceived { server_isn: u32, client_isn: u32 },
    Established { server_isn: u32, next_seq: u32, authed: Option<kerberos::Principal> },
}

/// An rsh-like kerberized stream service with 4.2BSD ISNs.
pub struct KerbStreamDaemon {
    config: ProtocolConfig,
    principal: kerberos::Principal,
    service_key: DesKey,
    isn: IsnGenerator,
    conns: BTreeMap<Endpoint, ConnState>,
    rng: Drbg,
    /// Commands executed, with the authenticated principal and the
    /// (claimed) source.
    pub executed: Vec<(kerberos::Principal, Endpoint, String)>,
}

impl KerbStreamDaemon {
    fn new(config: ProtocolConfig, principal: kerberos::Principal, service_key: DesKey, seed: u64) -> Self {
        KerbStreamDaemon {
            config,
            principal,
            service_key,
            isn: IsnGenerator::new(5000),
            conns: BTreeMap::new(),
            rng: Drbg::new(seed),
            executed: Vec::new(),
        }
    }

    /// Verifies an AP request per the deployment's auth style. Returns
    /// the authenticated principal, or a challenge the (blind) peer
    /// would have to answer.
    fn verify_ap(&mut self, bytes: &[u8], from: Endpoint, now_us: u64) -> Result<kerberos::Principal, Vec<u8>> {
        let fail = |msg: &str| {
            Err(KrbErrorMsg { code: 1, text: msg.into(), challenge: None }.encode(self.config.codec))
        };
        let Ok(ap) = ApReq::decode(self.config.codec, bytes) else {
            return fail("bad AP request");
        };
        let Ok(ticket) =
            Ticket::unseal(self.config.codec, self.config.ticket_layer, &self.service_key, &ap.ticket)
        else {
            return fail("bad ticket");
        };
        if ticket.service != self.principal || !ticket.valid_at(now_us, self.config.clock_skew_us) {
            return fail("ticket invalid");
        }
        if let (true, Some(a)) = (self.config.address_in_ticket, ticket.addr) {
            if a != from.addr.0 {
                return fail("address mismatch");
            }
        }
        match self.config.auth_style {
            AuthStyle::ChallengeResponse => {
                // The blind spoofer never sees this challenge — and
                // could not answer it anyway.
                let nonce = self.rng.next_u64();
                Err(KrbErrorMsg {
                    code: kerberos::messages::err_code::CHALLENGE_REQUIRED,
                    text: "answer the challenge".into(),
                    challenge: Some(nonce),
                }
                .encode(self.config.codec))
            }
            AuthStyle::Timestamp => {
                let Ok(auth) = Authenticator::unseal(
                    self.config.codec,
                    self.config.ticket_layer,
                    &ticket.session_key,
                    &ap.authenticator,
                ) else {
                    return fail("bad authenticator");
                };
                if auth.timestamp.abs_diff(now_us) > self.config.clock_skew_us {
                    return fail("stale authenticator");
                }
                Ok(ticket.client)
            }
        }
    }
}

impl Service for KerbStreamDaemon {
    fn handle(&mut self, ctx: &mut ServiceCtx, req: &[u8], from: Endpoint) -> Option<Vec<u8>> {
        let seg = Segment::decode(req)?;
        match seg {
            Segment::Syn { isn } => {
                let server_isn = self.isn.next(ctx.local_time);
                self.conns.insert(from, ConnState::SynReceived { server_isn, client_isn: isn });
                Some(Segment::SynAck { isn: server_isn, ack: isn.wrapping_add(1) }.encode())
            }
            Segment::Ack { seq, ack } => match self.conns.get(&from) {
                Some(&ConnState::SynReceived { server_isn, client_isn })
                    if ack == server_isn.wrapping_add(1) && seq == client_isn.wrapping_add(1) =>
                {
                    self.conns.insert(
                        from,
                        ConnState::Established { server_isn, next_seq: seq, authed: None },
                    );
                    None
                }
                _ => Some(Segment::Rst.encode()),
            },
            Segment::Data { seq, ack, payload } => {
                let Some(ConnState::Established { server_isn, next_seq, authed }) = self.conns.get_mut(&from)
                else {
                    return Some(Segment::Rst.encode());
                };
                if seq != *next_seq || ack != server_isn.wrapping_add(1) {
                    return Some(Segment::Rst.encode());
                }
                *next_seq = next_seq.wrapping_add(payload.len() as u32);
                match authed.clone() {
                    None => {
                        // First data must be the AP request.
                        match self.verify_ap(&payload, from, ctx.local_time.0) {
                            Ok(p) => {
                                if let Some(ConnState::Established { authed, .. }) =
                                    self.conns.get_mut(&from)
                                {
                                    *authed = Some(p);
                                }
                                Some(Segment::Data { seq: 0, ack: 0, payload: b"AUTH-OK".to_vec() }.encode())
                            }
                            Err(err_bytes) => {
                                Some(Segment::Data { seq: 0, ack: 0, payload: err_bytes }.encode())
                            }
                        }
                    }
                    Some(principal) => {
                        self.executed.push((
                            principal,
                            from,
                            String::from_utf8_lossy(&payload).into_owned(),
                        ));
                        Some(Segment::Data { seq: 0, ack: 0, payload: b"DONE".to_vec() }.encode())
                    }
                }
            }
            _ => None,
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// The A2 attack object.
pub struct BlindSpoof;

impl Attack for BlindSpoof {
    fn id(&self) -> &'static str {
        "A2"
    }

    fn name(&self) -> &'static str {
        "Morris blind spoof + stolen authenticator"
    }

    fn run(&self, config: &ProtocolConfig, seed: u64) -> AttackReport {
        let mut env = AttackEnv::new(config, seed);
        let report = |succeeded: bool, evidence: String| AttackReport {
            id: "A2",
            name: "Morris blind spoof + stolen authenticator",
            config: config.name,
            succeeded,
            evidence,
        };

        // Bind the stream daemon on the files host (same service
        // principal and key).
        let files_host = env.realm.service_hosts["files"];
        let daemon = KerbStreamDaemon::new(
            config.clone(),
            env.realm.service("files"),
            env.realm.service_keys["files"],
            seed ^ 0xdae0,
        );
        env.net.host_mut(files_host).bind(KSHD_PORT, Box::new(daemon));
        let daemon_ep = Endpoint::new(env.realm.service_ep("files").addr, KSHD_PORT);
        let victim_ep = env.realm.user_ep("pat");

        // The victim runs one legitimate session: handshake, AP request,
        // a command. The wiretap observes the server's ISN and the AP
        // request bytes.
        let tgt = match env.login("pat") {
            Ok(t) => t,
            Err(e) => return report(false, format!("victim login failed: {e}")),
        };
        let st = match env.ticket("pat", &tgt, "files") {
            Ok(t) => t,
            Err(e) => return report(false, format!("victim ticket failed: {e}")),
        };
        let client_isn = 777u32;
        let synack = match env
            .net
            .rpc(victim_ep, daemon_ep, Segment::Syn { isn: client_isn }.encode())
        {
            Ok(r) => r,
            Err(e) => return report(false, format!("victim SYN failed: {e}")),
        };
        let Some(Segment::SynAck { isn: observed_isn, .. }) = Segment::decode(&synack) else {
            return report(false, "no SYN-ACK".into());
        };
        let observed_at = env.net.now();
        let _ = env.net.send_oneway(
            victim_ep,
            daemon_ep,
            Segment::Ack { seq: client_isn + 1, ack: observed_isn + 1 }.encode(),
        );
        // Victim's AP request as first data.
        let now = kerberos::client::client_local_time_us(&env.net, victim_ep).unwrap_or(0);
        let auth = Authenticator::basic(env.user("pat"), victim_ep.addr.0, now);
        let sealed_auth = auth
            .seal(config.codec, config.ticket_layer, &st.session_key, &mut env.rng)
            .expect("seal authenticator");
        let ap = ApReq { ticket: st.sealed_ticket.clone(), authenticator: sealed_auth, mutual: false };
        let ap_bytes = ap.encode(config.codec);
        let _ = env.net.send_oneway(
            victim_ep,
            daemon_ep,
            Segment::Data { seq: client_isn + 1, ack: observed_isn + 1, payload: ap_bytes.clone() }.encode(),
        );

        // === The blind spoof ===
        // The attacker reconstructs the ISN discipline from the single
        // observed ISN, forges the victim's address on a new port, and
        // never reads a reply (send_oneway throughout).
        let predictor = {
            // observed_isn = base + 128*t + 64*n, with n = 1 at the
            // observation; recover base.
            let t = (observed_at.0 / 1_000_000) as u32;
            let base = observed_isn.wrapping_sub(t.wrapping_mul(128)).wrapping_sub(64);
            IsnGenerator::new(base)
        };
        // A few tries bracket any second-boundary slip, exactly as
        // Morris's attacker would retry; each try is a complete blind
        // handshake from a fresh spoofed port.
        for (attempt, slip) in [0i64, 128, -128].into_iter().enumerate() {
            let spoofed_ep = Endpoint::new(victim_ep.addr, 9999 + attempt as u16);
            let my_isn = 31337u32.wrapping_add(attempt as u32);
            let _ = env
                .net
                .send_oneway(spoofed_ep, daemon_ep, Segment::Syn { isn: my_isn }.encode());
            // This SYN was the daemon's (2 + attempt)-th connection.
            let predicted = predictor
                .predict(env.net.now(), 2 + attempt as u32)
                .wrapping_add(slip as u32);
            let _ = env.net.send_oneway(
                spoofed_ep,
                daemon_ep,
                Segment::Ack { seq: my_isn + 1, ack: predicted.wrapping_add(1) }.encode(),
            );
            // Replay the stolen authenticator as the first data, blind.
            let mut seq = my_isn + 1;
            let _ = env.net.send_oneway(
                spoofed_ep,
                daemon_ep,
                Segment::Data { seq, ack: predicted.wrapping_add(1), payload: ap_bytes.clone() }.encode(),
            );
            seq = seq.wrapping_add(ap_bytes.len() as u32);
            // And the command.
            let cmd = b"rm -rf /archive".to_vec();
            let _ = env.net.send_oneway(
                spoofed_ep,
                daemon_ep,
                Segment::Data { seq, ack: predicted.wrapping_add(1), payload: cmd }.encode(),
            );
        }

        // Forensics: did the daemon execute the attacker's command as
        // pat, from the spoofed connection?
        let executed = {
            let svc = env
                .net
                .host_mut(files_host)
                .service_mut(KSHD_PORT)
                .and_then(|s| s.as_any_mut())
                .and_then(|a| a.downcast_mut::<KerbStreamDaemon>())
                .map(|d| d.executed.clone())
                .unwrap_or_default();
            svc
        };
        let hit = executed
            .iter()
            .find(|(p, from, cmd)| p.name == "pat" && from.addr == victim_ep.addr && from.port >= 9999 && cmd.contains("rm -rf"));
        match hit {
            Some((_, _, cmd)) => report(
                true,
                format!("blind-spoofed connection ran {cmd:?} as pat without seeing one reply"),
            ),
            None => report(false, "blind spoof did not achieve command execution".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_configs_fall_to_blind_spoof() {
        let r = BlindSpoof.run(&ProtocolConfig::v4(), 1);
        assert!(r.succeeded, "{}", r.evidence);
        assert!(BlindSpoof.run(&ProtocolConfig::v5_draft3(), 1).succeeded);
    }

    #[test]
    fn challenge_response_blocks_it() {
        assert!(!BlindSpoof.run(&ProtocolConfig::hardened(), 1).succeeded);
    }

    #[test]
    fn challenge_response_alone_blocks_it_even_on_v4() {
        let mut config = ProtocolConfig::v4();
        config.auth_style = AuthStyle::ChallengeResponse;
        assert!(!BlindSpoof.run(&config, 2).succeeded);
    }

}
