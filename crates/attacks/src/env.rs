//! Shared attack environment: a standard campus deployment plus victim
//! and attacker conveniences.

use kerberos::appserver::{connect_app, AppConnection};
use kerberos::client::{get_service_ticket, login, Credential, LoginInput, TgsParams};
use kerberos::testbed::{standard_campus, DeployedRealm};
use kerberos::{KrbError, Principal, ProtocolConfig};
use krb_crypto::rng::Drbg;
use krb_trace::Tracer;
use simnet::{Endpoint, FaultPlan, LinkFaults, Network, SimDuration};
use std::cell::RefCell;
use std::rc::Rc;

/// An installed [`with_env_hook`] observer: called with each freshly
/// built env's tracer.
pub type EnvHook = Rc<dyn Fn(&Tracer)>;

/// Environment faults applied to every [`AttackEnv`] built inside
/// [`with_fault_profile`]: the given link faults on each user↔KDC link
/// (both directions), from the given seed.
///
/// Only the KDC links are faulted: the attack scripts' own raw-wire
/// moves ([`Network::inject`], taps) already bypass the fault layer by
/// design, and faulting application links would change what a *passive*
/// adversary observes rather than what the robustness layer defends.
#[derive(Clone, Copy, Debug)]
pub struct FaultProfile {
    /// Fault-plan seed.
    pub seed: u64,
    /// Per-link fault rates for user↔KDC links.
    pub faults: LinkFaults,
}

thread_local! {
    static FAULT_PROFILE: RefCell<Option<FaultProfile>> = const { RefCell::new(None) };
    /// Outer `None`: capture disarmed. `Some(None)`: armed, no env
    /// built yet. `Some(Some(t))`: the tracer of the last env built.
    static TRACE_CAPTURE: RefCell<Option<Option<Tracer>>> = const { RefCell::new(None) };
    /// Hook invoked with each freshly built env's tracer — how the IDS
    /// bench attaches a subscriber engine to environments that attack
    /// scripts construct internally.
    static ENV_HOOK: RefCell<Option<EnvHook>> = const { RefCell::new(None) };
}

/// Runs `f` with `profile` applied to every [`AttackEnv`] it builds.
pub fn with_fault_profile<R>(profile: FaultProfile, f: impl FnOnce() -> R) -> R {
    FAULT_PROFILE.with(|p| *p.borrow_mut() = Some(profile));
    let out = f();
    FAULT_PROFILE.with(|p| *p.borrow_mut() = None);
    out
}

/// Runs `f` and returns, alongside its result, the [`Tracer`] of the
/// last [`AttackEnv`] built inside — the hook the golden-trace tests
/// use to observe an [`crate::Attack::run`] that builds its own
/// environment internally. The tracer (an `Arc` handle) outlives the
/// env and its network, so the full event log stays readable after the
/// attack returns.
pub fn with_trace_capture<R>(f: impl FnOnce() -> R) -> (R, Option<Tracer>) {
    TRACE_CAPTURE.with(|t| *t.borrow_mut() = Some(None));
    let out = f();
    let tracer = TRACE_CAPTURE.with(|t| t.borrow_mut().take()).flatten();
    (out, tracer)
}

/// Runs `f` with `hook` invoked on the tracer of every [`AttackEnv`]
/// built inside (and on every tracer [`publish_tracer`] announces).
/// This is how an observer like the krb-ids engine taps environments
/// that attack scripts build internally: the hook calls
/// `Tracer::subscribe` and stashes the subscription for later polling.
pub fn with_env_hook<R>(hook: EnvHook, f: impl FnOnce() -> R) -> R {
    ENV_HOOK.with(|h| *h.borrow_mut() = Some(hook));
    let out = f();
    ENV_HOOK.with(|h| *h.borrow_mut() = None);
    out
}

/// Invokes the installed env hook, if any. The `Rc` is cloned out of
/// the thread-local first so a hook that itself builds an env (or
/// publishes a tracer) does not re-enter the `RefCell` borrow.
fn run_env_hook(tracer: &Tracer) {
    let hook = ENV_HOOK.with(|h| h.borrow().clone());
    if let Some(hook) = hook {
        hook(tracer);
    }
}

/// The attack stage: a network, a deployed realm, and a deterministic
/// RNG for the scripted participants.
pub struct AttackEnv {
    /// The simulated network (the adversary's playground).
    pub net: Network,
    /// The deployed realm.
    pub realm: DeployedRealm,
    /// The configuration under attack.
    pub config: ProtocolConfig,
    /// Scripted-participant randomness.
    pub rng: Drbg,
}

impl AttackEnv {
    /// Builds the standard campus at a nonzero epoch.
    pub fn new(config: &ProtocolConfig, seed: u64) -> Self {
        let mut net = Network::new();
        net.advance(SimDuration::from_secs(1_000_000));
        let realm = standard_campus(&mut net, config, seed);
        if let Some(profile) = FAULT_PROFILE.with(|p| *p.borrow()) {
            let mut plan = FaultPlan::new(profile.seed);
            for ep in realm.user_eps.values() {
                plan = plan.with_link_both(ep.addr, realm.kdc_ep.addr, profile.faults);
            }
            net.set_fault_plan(plan);
        }
        TRACE_CAPTURE.with(|t| {
            let mut slot = t.borrow_mut();
            if slot.is_some() {
                *slot = Some(Some(net.tracer()));
            }
        });
        run_env_hook(&net.tracer());
        AttackEnv { net, realm, config: config.clone(), rng: Drbg::new(seed ^ 0xa77a) }
    }

    /// The network's tracer (events, spans, metrics for this env).
    pub fn tracer(&self) -> Tracer {
        self.net.tracer()
    }
}

/// Publishes `tracer` into the armed capture slot — what
/// [`AttackEnv::new`] does automatically, exposed for harnesses like
/// [`crate::overload`] that build their network directly.
pub fn publish_tracer(tracer: &Tracer) {
    TRACE_CAPTURE.with(|t| {
        let mut slot = t.borrow_mut();
        if slot.is_some() {
            *slot = Some(Some(tracer.clone()));
        }
    });
    run_env_hook(tracer);
}

impl AttackEnv {

    /// Records an adversary action as a trace annotation, so narrated
    /// traces interleave the attacker's moves with the protocol flow.
    pub fn adversary_note(&self, text: &str) {
        self.net.tracer().note(self.net.now().0, text);
    }

    /// Logs a deployed user in with their real password.
    pub fn login(&mut self, user: &str) -> Result<Credential, KrbError> {
        let pw = self.realm.passwords[user].clone();
        login(
            &mut self.net,
            &self.config,
            self.realm.user_ep(user),
            self.realm.kdc_ep,
            &self.realm.user(user),
            LoginInput::Password(&pw),
            &mut self.rng,
        )
    }

    /// Obtains a service ticket for `user`.
    pub fn ticket(&mut self, user: &str, tgt: &Credential, service: &str) -> Result<Credential, KrbError> {
        self.ticket_with(user, tgt, service, TgsParams::default())
    }

    /// Obtains a service ticket with explicit TGS parameters.
    pub fn ticket_with(
        &mut self,
        user: &str,
        tgt: &Credential,
        service: &str,
        params: TgsParams,
    ) -> Result<Credential, KrbError> {
        get_service_ticket(
            &mut self.net,
            &self.config,
            self.realm.user_ep(user),
            self.realm.kdc_ep,
            tgt,
            &self.realm.service(service),
            params,
            &mut self.rng,
        )
    }

    /// Connects `user` to `service` with an existing credential.
    pub fn connect(&mut self, user: &str, cred: &Credential, service: &str) -> Result<AppConnection, KrbError> {
        connect_app(
            &mut self.net,
            &self.config,
            self.realm.user_ep(user),
            self.realm.service_ep(service),
            cred,
            &mut self.rng,
        )
    }

    /// Full victim setup: login, ticket, connect. Returns the live
    /// connection.
    pub fn victim_session(&mut self, user: &str, service: &str) -> Result<AppConnection, KrbError> {
        let tgt = self.login(user)?;
        let st = self.ticket(user, &tgt, service)?;
        self.connect(user, &st, service)
    }

    /// The victim principal for a name.
    pub fn user(&self, name: &str) -> Principal {
        self.realm.user(name)
    }

    /// The endpoint the attacker "owns" (zach's workstation).
    pub fn attacker_ep(&self) -> Endpoint {
        self.realm.user_ep("zach")
    }

    /// Advances simulated time.
    pub fn advance_secs(&mut self, s: u64) {
        self.net.advance(SimDuration::from_secs(s));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_builds_and_victim_flows() {
        for config in ProtocolConfig::presets() {
            let mut env = AttackEnv::new(&config, 1);
            let mut conn = env.victim_session("pat", "echo").expect("victim session");
            let mut rng = env.rng.clone();
            let r = conn.request(&mut env.net, b"ping", &mut rng).unwrap();
            assert!(r.ends_with(b"ping"), "config {}", config.name);
        }
    }
}
