//! A3 — time-service spoofing enables stale-authenticator replay.
//!
//! "If a host can be misled about the correct time, a stale
//! authenticator can be replayed without any trouble at all. Since some
//! time synchronization protocols are unauthenticated ... such attacks
//! are not difficult."

use crate::env::AttackEnv;
use crate::{Attack, AttackReport};
use kerberos::messages::WireKind;
use kerberos::ProtocolConfig;
use simnet::time::{sync_unauthenticated, TimeService, TIME_PORT};
use simnet::{Addr, Datagram, Endpoint, Host, ScriptedTap, Verdict};

/// The A3 attack object.
pub struct TimeSpoof;

impl Attack for TimeSpoof {
    fn id(&self) -> &'static str {
        "A3"
    }

    fn name(&self) -> &'static str {
        "time-service spoof + stale authenticator"
    }

    fn run(&self, config: &ProtocolConfig, seed: u64) -> AttackReport {
        let mut env = AttackEnv::new(config, seed);
        let report = |succeeded: bool, evidence: String| AttackReport {
            id: "A3",
            name: "time-service spoof + stale authenticator",
            config: config.name,
            succeeded,
            evidence,
        };

        // An (unauthenticated) time server on the network.
        let ts_addr = Addr::new(10, 0, 9, 9);
        let mut ts_host = Host::new("timehost", vec![ts_addr]);
        ts_host.bind(TIME_PORT, Box::new(TimeService));
        env.net.add_host(ts_host);
        let ts_ep = Endpoint::new(ts_addr, TIME_PORT);

        // The victim authenticates at T0; the wiretap captures the AP
        // exchange.
        if env.victim_session("pat", "files").is_err() {
            return report(false, "victim session failed".into());
        }
        let pat = env.user("pat");
        let files_ep = env.realm.service_ep("files");
        let captured: Vec<Datagram> = env
            .net
            .traffic_log()
            .iter()
            .filter(|r| {
                r.is_request
                    && r.dgram.dst == files_ep
                    && matches!(
                        r.dgram.payload.first().copied().and_then(WireKind::from_u8),
                        Some(WireKind::ApReq) | Some(WireKind::ChallengeResp)
                    )
            })
            .map(|r| r.dgram.clone())
            .collect();

        // Ten minutes pass: the captured authenticator is now stale.
        env.advance_secs(600);
        let before = env.realm.with_app_server(&mut env.net, "files", |s| s.accepted_count(&pat));
        for d in &captured {
            let _ = env.net.inject(d.clone());
        }
        let stale_accepted =
            env.realm.with_app_server(&mut env.net, "files", |s| s.accepted_count(&pat)) > before;
        if stale_accepted {
            // Should not happen: staleness must be enforced before the
            // spoof for the attack to mean anything.
            return report(true, "BUG: stale authenticator accepted without clock spoof".into());
        }

        // The attacker rewrites time-service replies: "it is 11 minutes
        // earlier than it really is" — then triggers the file server's
        // periodic clock synchronization.
        env.net.set_tap(Box::new(ScriptedTap::new(|d: &mut Datagram, _| {
            if d.src.port == TIME_PORT && d.payload.len() >= 4 {
                let old = u32::from_be_bytes(d.payload[..4].try_into().expect("4 bytes"));
                d.payload[..4].copy_from_slice(&old.saturating_sub(660).to_be_bytes());
            }
            Verdict::Deliver
        })));
        let files_host = env.realm.service_hosts["files"];
        let _ = sync_unauthenticated(&mut env.net, files_host, ts_ep);
        let _ = env.net.take_tap();

        // Replay the stale authenticator against the now-misled server.
        let before = env.realm.with_app_server(&mut env.net, "files", |s| s.accepted_count(&pat));
        for d in &captured {
            let _ = env.net.inject(d.clone());
        }
        let after = env.realm.with_app_server(&mut env.net, "files", |s| s.accepted_count(&pat));

        if after > before {
            report(
                true,
                "file server clock set back 11 min via spoofed time service; \
                 10-minute-old authenticator accepted as fresh"
                    .into(),
            )
        } else {
            report(false, "stale authenticator still rejected after clock spoof attempt".into())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_on_timestamp_configs() {
        assert!(TimeSpoof.run(&ProtocolConfig::v4(), 1).succeeded);
        assert!(TimeSpoof.run(&ProtocolConfig::v5_draft3(), 1).succeeded);
    }

    #[test]
    fn fails_on_hardened() {
        assert!(!TimeSpoof.run(&ProtocolConfig::hardened(), 1).succeeded);
    }

    #[test]
    fn replay_cache_does_not_save_a_rewound_clock() {
        // With the clock set back, the cache purge has NOT expired the
        // entry, so the cache does still catch the replay — the paper's
        // point stands only when caching is absent (as it was).
        let mut config = ProtocolConfig::v4();
        config.replay_cache = true;
        assert!(!TimeSpoof.run(&config, 2).succeeded);
    }
}
