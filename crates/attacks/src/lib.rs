//! # attacks
//!
//! Executable implementations of every attack in Bellovin & Merritt
//! (USENIX Winter 1991). Each module is one attack; each attack runs
//! against an arbitrary [`kerberos::ProtocolConfig`] and reports whether
//! it succeeded, with concrete evidence. [`matrix`] runs the full
//! attack × configuration grid — the paper's central claim set as an
//! executable table.
//!
//! | id | attack | paper section |
//! |----|--------|---------------|
//! | A1 | stolen live-authenticator replay | Replay Attacks |
//! | A2 | Morris blind spoof + stolen authenticator | Replay Attacks |
//! | A3 | time-service spoof, stale authenticator | Secure Time Services |
//! | A4 | offline password guessing (passive) | Password-Guessing |
//! | A5 | ticket harvest without eavesdropping | Password-Guessing |
//! | A6 | Trojan login spoofing | Spoofing Login |
//! | A7 | inter-session chosen plaintext (CBC splice) | Chosen Plaintext |
//! | A8 | PCBC block-swap stream modification | Encryption Layer |
//! | A9 | ENC-TKT-IN-SKEY CRC-32 cut-and-paste | Appendix |
//! | A10 | REUSE-SKEY service redirect | Appendix |
//! | A11 | ticket/authenticator type confusion | Message Encoding |
//! | A12 | credential-cache theft (/tmp on NFS) | Environment |
//! | A13 | cross-stream replay between sessions | KRB_SAFE/PRIV |
//! | A14 | post-authentication connection hijack | Scope of Tickets |

pub mod blind_spoof;
pub mod chaos;
pub mod chosen_plaintext;
pub mod cross_stream;
pub mod cut_paste;
pub mod env;
pub mod hijack;
pub mod host_theft;
pub mod login_spoof;
pub mod matrix;
pub mod overload;
pub mod pcbc_swap;
pub mod pw_guess;
pub mod replay;
pub mod reuse_skey;
pub mod stealth;
pub mod time_spoof;
pub mod type_confusion;
pub mod workload;

use kerberos::ProtocolConfig;

/// The outcome of one attack run.
#[derive(Clone, Debug)]
pub struct AttackReport {
    /// Attack id, e.g. `"A1"`.
    pub id: &'static str,
    /// Human-readable attack name.
    pub name: &'static str,
    /// The configuration attacked.
    pub config: &'static str,
    /// Did the attacker win?
    pub succeeded: bool,
    /// What happened, concretely.
    pub evidence: String,
}

/// An executable attack.
pub trait Attack {
    /// Stable id (`"A1"`..`"A14"`).
    fn id(&self) -> &'static str;
    /// Short name.
    fn name(&self) -> &'static str;
    /// Runs the attack against a fresh deployment under `config`.
    fn run(&self, config: &ProtocolConfig, seed: u64) -> AttackReport;
}

/// All fourteen attacks, in paper order.
pub fn all_attacks() -> Vec<Box<dyn Attack>> {
    vec![
        Box::new(replay::StolenAuthenticatorReplay),
        Box::new(blind_spoof::BlindSpoof),
        Box::new(time_spoof::TimeSpoof),
        Box::new(pw_guess::PassiveGuessing),
        Box::new(pw_guess::ActiveHarvest),
        Box::new(login_spoof::LoginSpoof),
        Box::new(chosen_plaintext::ChosenPlaintextSplice),
        Box::new(pcbc_swap::PcbcBlockSwap),
        Box::new(cut_paste::EncTktInSkeyCutPaste),
        Box::new(reuse_skey::ReuseSkeyRedirect),
        Box::new(type_confusion::TypeConfusion),
        Box::new(host_theft::CredCacheTheft),
        Box::new(cross_stream::CrossStreamReplay),
        Box::new(hijack::ConnectionHijack),
    ]
}
