//! A6 — login spoofing (Trojan login program).
//!
//! "It is quite simple for an intruder to replace the login command with
//! a version that records users' passwords ... the Kerberos protocol
//! makes it difficult to employ the standard countermeasure: one-time
//! passwords." The handheld-authenticator login change (recommendation
//! c) is the fix: what the Trojan records is a one-challenge response,
//! useless for future logins.

use crate::env::AttackEnv;
use crate::{Attack, AttackReport};
use hardware::HandheldAuthenticator;
use kerberos::client::{login, LoginInput};
use kerberos::ProtocolConfig;
use krb_crypto::des::DesKey;

/// The A6 attack object.
pub struct LoginSpoof;

impl Attack for LoginSpoof {
    fn id(&self) -> &'static str {
        "A6"
    }

    fn name(&self) -> &'static str {
        "Trojan login spoofing"
    }

    fn run(&self, config: &ProtocolConfig, seed: u64) -> AttackReport {
        let mut env = AttackEnv::new(config, seed);
        let report = |succeeded: bool, evidence: String| AttackReport {
            id: "A6",
            name: "Trojan login spoofing",
            config: config.name,
            succeeded,
            evidence,
        };
        let pat = env.user("pat");
        let password = env.realm.passwords["pat"].clone();

        // What the Trojan records depends on the login protocol.
        enum Loot {
            Password(String),
            OneResponse { r: u64, key: DesKey },
        }
        let loot = if config.hha_login {
            // The user consults the device; the workstation (and hence
            // the Trojan) sees only this login's challenge and response
            // key.
            let mut device = HandheldAuthenticator::enroll(pat.clone(), &password);
            let trojan_seen = std::cell::RefCell::new(None);
            {
                let dev = std::cell::RefCell::new(&mut device);
                let answer = |r: u64| {
                    let k = dev.borrow_mut().respond(r);
                    *trojan_seen.borrow_mut() = Some((r, k));
                    k
                };
                if env_login_with(&mut env, &pat, LoginInput::Handheld(&answer)).is_err() {
                    return report(false, "victim HHA login failed".into());
                }
            }
            let (r, key) = trojan_seen.into_inner().expect("device was consulted");
            Loot::OneResponse { r, key }
        } else {
            // The user typed the password into the Trojan.
            if env_login_with(&mut env, &pat, LoginInput::Password(&password)).is_err() {
                return report(false, "victim login failed".into());
            }
            Loot::Password(password.clone())
        };

        // Later, from the attacker's own workstation, a *fresh* login as
        // the victim using only the recorded loot.
        let attacker_ep = env.attacker_ep();
        let mut rng = env.rng.clone();
        let result = match &loot {
            Loot::Password(pw) => login(
                &mut env.net,
                config,
                attacker_ep,
                env.realm.kdc_ep,
                &pat,
                LoginInput::Password(pw),
                &mut rng,
            ),
            Loot::OneResponse { r, key } => {
                // The attacker's "device" can only answer the one
                // recorded challenge; for any fresh challenge it guesses
                // with the stale key.
                let (r0, k0) = (*r, *key);
                let fake_device = move |challenge: u64| {
                    if challenge == r0 {
                        k0
                    } else {
                        // Best effort: reuse the stale response key.
                        k0
                    }
                };
                login(
                    &mut env.net,
                    config,
                    attacker_ep,
                    env.realm.kdc_ep,
                    &pat,
                    LoginInput::Handheld(&fake_device),
                    &mut rng,
                )
            }
        };

        match result {
            Ok(cred) => report(
                true,
                format!(
                    "Trojan loot yielded a fresh TGT for {} (expires {})",
                    cred.client, cred.end_time
                ),
            ),
            Err(e) => report(false, format!("recorded material useless for new logins: {e}")),
        }
    }
}

/// Runs a login for the victim from their own workstation.
fn env_login_with(
    env: &mut AttackEnv,
    client: &kerberos::Principal,
    input: LoginInput<'_>,
) -> Result<kerberos::Credential, kerberos::KrbError> {
    let ep = env.realm.user_ep(&client.name);
    let kdc = env.realm.kdc_ep;
    let config = env.config.clone();
    login(&mut env.net, &config, ep, kdc, client, input, &mut env.rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn password_logins_are_spoofable() {
        assert!(LoginSpoof.run(&ProtocolConfig::v4(), 1).succeeded);
        assert!(LoginSpoof.run(&ProtocolConfig::v5_draft3(), 1).succeeded);
    }

    #[test]
    fn hha_logins_are_not() {
        assert!(!LoginSpoof.run(&ProtocolConfig::hardened(), 1).succeeded);
    }

    #[test]
    fn hha_option_alone_fixes_v4() {
        let mut config = ProtocolConfig::v4();
        config.hha_login = true;
        assert!(!LoginSpoof.run(&config, 2).succeeded);
    }

    #[test]
    fn trojan_cannot_reuse_response_because_challenges_differ() {
        // Direct check of the mechanism: two logins draw different Rs.
        let kc = krb_crypto::s2k::string_to_key_v5("pw", "salt");
        assert_ne!(kerberos::kdc::hha_key(&kc, 1), kerberos::kdc::hha_key(&kc, 2));
    }
}
