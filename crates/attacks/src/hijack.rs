//! A14 — post-authentication connection hijack.
//!
//! "An attacker can always wait until the connection is set up and
//! authenticated, and then take it over, thus obviating any security
//! provided by the presence of the address." With plain (unprotected)
//! application data — the common 1990 deployment — the attacker simply
//! injects commands with the victim's source address.

use crate::env::AttackEnv;
use crate::{Attack, AttackReport};
use kerberos::messages::{frame, WireKind};
use kerberos::services::FileServerLogic;
use kerberos::ProtocolConfig;
use simnet::Datagram;

/// The A14 attack object.
pub struct ConnectionHijack;

impl Attack for ConnectionHijack {
    fn id(&self) -> &'static str {
        "A14"
    }

    fn name(&self) -> &'static str {
        "post-authentication hijack"
    }

    fn run(&self, config: &ProtocolConfig, seed: u64) -> AttackReport {
        let mut env = AttackEnv::new(config, seed);
        let report = |succeeded: bool, evidence: String| AttackReport {
            id: "A14",
            name: "post-authentication hijack",
            config: config.name,
            succeeded,
            evidence,
        };

        // The victim authenticates and does legitimate work.
        let mut conn = match env.victim_session("pat", "files") {
            Ok(c) => c,
            Err(e) => return report(false, format!("victim session failed: {e}")),
        };
        let mut rng = env.rng.clone();
        let _ = conn.request(&mut env.net, b"PUT thesis.tex ten years of work", &mut rng);

        // The attacker waits for authentication to complete, then takes
        // over: a plaintext command injected with the victim's address.
        let victim_ep = env.realm.user_ep("pat");
        let files_ep = env.realm.service_ep("files");
        let _ = env.net.inject(Datagram {
            src: victim_ep,
            dst: files_ep,
            payload: frame(WireKind::AppData, b"DEL thesis.tex".to_vec()).into(),
        });

        let deleted = env.realm.with_app_server(&mut env.net, "files", |s| {
            s.logic
                .as_any()
                .and_then(|a| a.downcast_ref::<FileServerLogic>())
                .map(|f| f.deletions.clone())
                .unwrap_or_default()
        });
        if deleted.iter().any(|(u, f)| u == "pat" && f == "thesis.tex") {
            report(true, "injected plaintext command executed as pat: thesis.tex deleted".into())
        } else {
            report(false, "injected plaintext command rejected (session protection)".into())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_deployments_are_hijackable() {
        assert!(ConnectionHijack.run(&ProtocolConfig::v4(), 1).succeeded);
    }

    #[test]
    fn priv_deployments_are_not() {
        assert!(!ConnectionHijack.run(&ProtocolConfig::v5_draft3(), 1).succeeded);
        assert!(!ConnectionHijack.run(&ProtocolConfig::hardened(), 1).succeeded);
    }
}
