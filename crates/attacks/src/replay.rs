//! A1 — stolen live-authenticator replay.
//!
//! "An intruder would not start by capturing a ticket and authenticator,
//! and then develop the software to use them; rather, everything would
//! be in place before the ticket-capture was attempted. ... Note that
//! the lifetime of the authenticators — 5 minutes — contributes
//! considerably to this attack."

use crate::env::AttackEnv;
use crate::{Attack, AttackReport};
use kerberos::messages::WireKind;
use kerberos::ProtocolConfig;
use simnet::Datagram;

/// The A1 attack object.
pub struct StolenAuthenticatorReplay;

impl Attack for StolenAuthenticatorReplay {
    fn id(&self) -> &'static str {
        "A1"
    }

    fn name(&self) -> &'static str {
        "stolen live-authenticator replay"
    }

    fn run(&self, config: &ProtocolConfig, seed: u64) -> AttackReport {
        let mut env = AttackEnv::new(config, seed);
        let report = |succeeded: bool, evidence: String| AttackReport {
            id: "A1",
            name: "stolen live-authenticator replay",
            config: config.name,
            succeeded,
            evidence,
        };

        // The victim authenticates to the file server (a mail-check-like
        // short session) — the wiretap records everything.
        if env.victim_session("pat", "files").is_err() {
            return report(false, "victim session failed to establish".into());
        }
        let pat = env.user("pat");
        let files_ep = env.realm.service_ep("files");

        // Passive capture: the AP request (ticket + live authenticator)
        // and, under challenge/response, the victim's challenge answer.
        let captured: Vec<Datagram> = env
            .net
            .traffic_log()
            .iter()
            .filter(|r| {
                r.is_request
                    && r.dgram.dst == files_ep
                    && matches!(
                        r.dgram.payload.first().copied().and_then(WireKind::from_u8),
                        Some(WireKind::ApReq) | Some(WireKind::ChallengeResp)
                    )
            })
            .map(|r| r.dgram.clone())
            .collect();
        if captured.is_empty() {
            return report(false, "no AP exchange captured".into());
        }
        env.adversary_note(&format!(
            "adversary wiretap captured {} AP-exchange datagram(s) for {pat}",
            captured.len()
        ));

        let before = env.realm.with_app_server(&mut env.net, "files", |s| s.accepted_count(&pat));

        // One minute later — well inside the five-minute window — the
        // attacker replays the captured exchange verbatim (source
        // address forged to match, which nothing prevents).
        env.advance_secs(60);
        env.adversary_note("adversary replays the captured ticket+authenticator 60s later");
        for d in &captured {
            let _ = env.net.inject(d.clone());
        }

        let after = env.realm.with_app_server(&mut env.net, "files", |s| s.accepted_count(&pat));
        if after > before {
            report(
                true,
                format!(
                    "server accepted a second authentication as {pat} from a replayed \
                     authenticator ({before} -> {after} accepted)"
                ),
            )
        } else {
            report(false, "replayed authenticator rejected".into())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_on_v4_and_draft3() {
        assert!(StolenAuthenticatorReplay.run(&ProtocolConfig::v4(), 1).succeeded);
        assert!(StolenAuthenticatorReplay.run(&ProtocolConfig::v5_draft3(), 1).succeeded);
    }

    #[test]
    fn fails_on_hardened() {
        assert!(!StolenAuthenticatorReplay.run(&ProtocolConfig::hardened(), 1).succeeded);
    }

    #[test]
    fn verdicts_unchanged_over_wire_codec() {
        // Replay is a freshness failure, not a parsing one — the tagged
        // wire envelope must not change any verdict.
        assert!(StolenAuthenticatorReplay.run(&ProtocolConfig::v4().with_wire_codec(), 1).succeeded);
        assert!(
            StolenAuthenticatorReplay.run(&ProtocolConfig::v5_draft3().with_wire_codec(), 1).succeeded
        );
        assert!(
            !StolenAuthenticatorReplay.run(&ProtocolConfig::hardened().with_wire_codec(), 1).succeeded
        );
    }

    #[test]
    fn replay_cache_alone_stops_it() {
        let mut config = ProtocolConfig::v4();
        config.replay_cache = true;
        assert!(!StolenAuthenticatorReplay.run(&config, 2).succeeded);
    }

    #[test]
    fn challenge_response_alone_stops_it() {
        let mut config = ProtocolConfig::v5_draft3();
        config.auth_style = kerberos::AuthStyle::ChallengeResponse;
        assert!(!StolenAuthenticatorReplay.run(&config, 3).succeeded);
    }
}
