//! Chaos soak (experiment E12): honest traffic under an adversarial
//! *environment* rather than an adversarial wiretapper — drops,
//! duplicates, reordering, and KDC crash windows — asserting two
//! properties the paper takes for granted and real deployments must
//! earn:
//!
//! - **Liveness**: every honest client authenticates within the
//!   bounded retry budget (backoff + replica failover), for any seed.
//! - **Safety**: the fault layer changes *availability only* — the
//!   attack × configuration verdicts (E1) are bit-identical with and
//!   without environment faults.
//!
//! All faults flow from one seed, so a failing soak replays exactly.

use crate::env::AttackEnv;
use kerberos::appserver::connect_app;
use kerberos::client::{get_service_ticket_at, login_at, LoginInput, TgsParams};
use kerberos::ProtocolConfig;
use simnet::{FaultPlan, FaultStats, LinkFaults, SimDuration, SimTime};

/// One chaos soak campaign.
#[derive(Clone, Copy, Debug)]
pub struct SoakConfig {
    /// Seed for the fault plan (and everything derived from it).
    pub seed: u64,
    /// Rounds of honest traffic; each round is one login → TGS → AP →
    /// command flow per user, ~6 simulated minutes apart (so hardened
    /// rate limiting never conflates rounds).
    pub rounds: u32,
    /// Fault rates applied to every user↔KDC link, both directions.
    pub faults: LinkFaults,
    /// Slave-KDC replicas to deploy (clients walk master + replicas).
    pub replicas: usize,
    /// Crash the master KDC for a window covering the middle rounds.
    pub crash_master: bool,
}

impl SoakConfig {
    /// The standard soak: 10% drop + duplication + reordering, one
    /// replica, a master crash mid-campaign.
    pub fn standard(seed: u64) -> Self {
        SoakConfig {
            seed,
            rounds: 6,
            faults: LinkFaults {
                drop: 0.10,
                duplicate: 0.10,
                reorder: 0.10,
                ..LinkFaults::none()
            },
            replicas: 1,
            crash_master: true,
        }
    }
}

/// What a soak campaign observed.
#[derive(Clone, Debug)]
pub struct SoakReport {
    /// Total authentication flows attempted (rounds × users).
    pub auth_total: u32,
    /// Flows that authenticated and ran their command.
    pub auth_ok: u32,
    /// Flows that failed despite the retry budget, as `(round, user,
    /// error)` — liveness violations.
    pub failures: Vec<(u32, String, String)>,
    /// What the fault layer actually did.
    pub stats: FaultStats,
}

impl SoakReport {
    /// Liveness: every honest flow completed.
    pub fn all_authenticated(&self) -> bool {
        self.auth_ok == self.auth_total && self.failures.is_empty()
    }
}

/// Runs one soak campaign against `config`.
pub fn run_soak(config: &ProtocolConfig, soak: &SoakConfig) -> SoakReport {
    let mut env = AttackEnv::new(config, soak.seed);
    env.realm.add_kdc_replicas(&mut env.net, soak.replicas, soak.seed ^ 0x5afe);

    // One plan covers every user↔KDC link (master and replicas alike);
    // the master additionally rides out a crash window spanning the
    // middle third of the campaign.
    let mut plan = FaultPlan::new(soak.seed);
    let kdc_addrs: Vec<_> =
        env.realm.kdc_eps().iter().map(|ep| ep.addr).collect();
    for user_ep in env.realm.user_eps.values() {
        for kdc in &kdc_addrs {
            plan = plan.with_link_both(user_ep.addr, *kdc, soak.faults);
        }
    }
    let round_us: u64 = 360_000_000; // 6 simulated minutes per round
    if soak.crash_master {
        let t0 = env.net.now().0;
        plan = plan.crash(
            env.realm.kdc_ep.addr,
            SimTime(t0 + (soak.rounds as u64 / 3) * round_us),
            SimTime(t0 + (2 * soak.rounds as u64 / 3) * round_us),
        );
    }
    env.net.set_fault_plan(plan);

    let users: Vec<String> = {
        let mut v: Vec<String> = env.realm.user_eps.keys().cloned().collect();
        v.sort(); // HashMap order must not leak into the simulation
        v
    };
    let kdcs = env.realm.kdc_eps();

    let mut report = SoakReport {
        auth_total: 0,
        auth_ok: 0,
        failures: Vec::new(),
        stats: FaultStats::default(),
    };

    for round in 0..soak.rounds {
        for user in &users {
            report.auth_total += 1;
            let pw = env.realm.passwords[user].clone();
            let user_ep = env.realm.user_ep(user);
            let principal = env.realm.user(user);
            let flow = login_at(
                &mut env.net,
                &env.config,
                user_ep,
                &kdcs,
                &principal,
                LoginInput::Password(&pw),
                &mut env.rng,
            )
            .and_then(|tgt| {
                get_service_ticket_at(
                    &mut env.net,
                    &env.config,
                    user_ep,
                    &kdcs,
                    &tgt,
                    &env.realm.service("echo"),
                    TgsParams::default(),
                    &mut env.rng,
                )
            })
            .and_then(|st| {
                connect_app(
                    &mut env.net,
                    &env.config,
                    user_ep,
                    env.realm.service_ep("echo"),
                    &st,
                    &mut env.rng,
                )
            })
            .and_then(|mut conn| {
                let mut rng = env.rng.clone();
                conn.request(&mut env.net, format!("soak r{round}").as_bytes(), &mut rng)
            });
            match flow {
                Ok(_) => report.auth_ok += 1,
                Err(e) => report.failures.push((round, user.clone(), e.to_string())),
            }
        }
        env.net.advance(SimDuration(round_us));
        env.net.pump();
    }

    if let Some(plan) = env.net.fault_plan() {
        report.stats = plan.stats;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_soak_is_live_for_hardened() {
        let report = run_soak(&ProtocolConfig::hardened(), &SoakConfig::standard(0xC0A0));
        assert!(
            report.all_authenticated(),
            "liveness violations: {:?}",
            report.failures
        );
        assert!(report.stats.dropped > 0, "the soak actually faulted something");
    }

    #[test]
    fn soak_is_replayable_from_its_seed() {
        let a = run_soak(&ProtocolConfig::v5_draft3(), &SoakConfig::standard(7));
        let b = run_soak(&ProtocolConfig::v5_draft3(), &SoakConfig::standard(7));
        assert_eq!(a.auth_ok, b.auth_ok);
        assert_eq!(a.stats.dropped, b.stats.dropped);
        assert_eq!(a.stats.duplicated, b.stats.duplicated);
    }
}
