//! A4/A5 — password-guessing attacks.
//!
//! A4 (passive): "an intruder recording login dialogs in order to mount
//! a password-guessing assault ... A guess at the user's password can be
//! confirmed by calculating Kc and using it to decrypt the recorded
//! answer." Defeated by the exponential-key-exchange layer.
//!
//! A5 (active): "an attacker could simply request ticket-granting
//! tickets for many different users" — no eavesdropping required.
//! Defeated by preauthentication (and slowed by rate limiting).

use crate::env::AttackEnv;
use crate::workload::guess_list;
use crate::{Attack, AttackReport};
use kerberos::encoding::MsgType;
use kerberos::kdc::hha_key;
use kerberos::messages::{deframe, AsRep, AsReq, EncKdcRepPart, KrbErrorMsg, WireKind};
use kerberos::{Principal, ProtocolConfig};
use krb_crypto::s2k;

/// Attempts to confirm a password guess against a recorded (or
/// harvested) AS reply sealed under `K_c` or `{R}K_c`.
///
/// Returns the recovered password if any guess verifies.
pub fn crack_as_reply(
    config: &ProtocolConfig,
    client: &Principal,
    enc_part: &[u8],
    challenge_r: Option<u64>,
    guesses: &[String],
) -> Option<String> {
    for guess in guesses {
        let kc = s2k::string_to_key_v5(guess, &client.salt());
        let key = match challenge_r {
            Some(r) => hha_key(&kc, r),
            None => kc,
        };
        let Ok(pt) = config.ticket_layer.open(&key, 0, enc_part) else { continue };
        let Ok(part) = EncKdcRepPart::decode(config.codec, MsgType::EncAsRepPart, &pt) else {
            continue;
        };
        // Sanity screens against legacy-codec false positives: session
        // keys are parity-correct and times are sane.
        if part.session_key.has_odd_parity() && part.server_time <= part.end_time {
            return Some(guess.clone());
        }
    }
    None
}

/// A4: passive (wiretap) password guessing.
pub struct PassiveGuessing;

impl Attack for PassiveGuessing {
    fn id(&self) -> &'static str {
        "A4"
    }

    fn name(&self) -> &'static str {
        "offline password guessing (passive)"
    }

    fn run(&self, config: &ProtocolConfig, seed: u64) -> AttackReport {
        let mut env = AttackEnv::new(config, seed);
        let report = |succeeded: bool, evidence: String| AttackReport {
            id: "A4",
            name: "offline password guessing (passive)",
            config: config.name,
            succeeded,
            evidence,
        };

        // The victim (sam, whose password is a mutated dictionary word)
        // logs in; the wiretap records the dialog.
        if env.login("sam").is_err() {
            return report(false, "victim login failed".into());
        }
        let sam = env.user("sam");
        let sam_ep = env.realm.user_ep("sam");

        // Recover the AS reply (and the challenge R, if the deployment
        // uses handheld authenticators — R travels in the clear).
        let mut challenge_r = None;
        let mut enc_part = None;
        for r in env.net.traffic_log() {
            if r.dgram.dst != sam_ep {
                continue;
            }
            match r.dgram.payload.first().copied().and_then(WireKind::from_u8) {
                Some(WireKind::Err) => {
                    if let Ok(e) = KrbErrorMsg::decode(config.codec, &r.dgram.payload) {
                        if let Some(c) = e.challenge {
                            challenge_r = Some(c);
                        }
                    }
                }
                Some(WireKind::AsRep) => {
                    if let Ok(rep) = AsRep::decode(config.codec, &r.dgram.payload) {
                        if rep.dh_public.is_some() {
                            return report(
                                false,
                                "exponential key exchange seals the reply; passive guesses \
                                 cannot even be tested"
                                    .into(),
                            );
                        }
                        enc_part = Some(rep.enc_part);
                    }
                }
                _ => {}
            }
        }
        let Some(enc_part) = enc_part else {
            return report(false, "no AS reply captured".into());
        };

        match crack_as_reply(config, &sam, &enc_part, challenge_r, &guess_list()) {
            Some(pw) => report(true, format!("recovered sam's password {pw:?} from the wiretap")),
            None => report(false, "no dictionary guess verified".into()),
        }
    }
}

/// A5: active ticket harvest — no eavesdropping.
pub struct ActiveHarvest;

impl Attack for ActiveHarvest {
    fn id(&self) -> &'static str {
        "A5"
    }

    fn name(&self) -> &'static str {
        "ticket harvest without eavesdropping"
    }

    fn run(&self, config: &ProtocolConfig, seed: u64) -> AttackReport {
        let mut env = AttackEnv::new(config, seed);
        let report = |succeeded: bool, evidence: String| AttackReport {
            id: "A5",
            name: "ticket harvest without eavesdropping",
            config: config.name,
            succeeded,
            evidence,
        };
        let attacker_ep = env.attacker_ep();
        let sam = env.user("sam");

        // The attacker requests an AS reply *for sam* from its own
        // workstation. As an active participant it can complete the DH
        // exchange itself — DH does not stop this attack; only
        // preauthentication does.
        let mut padata = Vec::new();
        let dh_group = krb_crypto::dh::DhGroup::oakley768();
        let dh_keypair = if config.dh_login {
            let kp = dh_group.keypair(160, &mut env.rng).expect("keypair");
            padata.push(kerberos::messages::PaData::DhPublic(kp.public.to_bytes_be()));
            Some(kp)
        } else {
            None
        };
        let req = AsReq {
            client: sam.clone(),
            service: Principal::tgs(&env.realm.name),
            nonce: 7,
            lifetime_us: config.ticket_lifetime_us,
            addr: attacker_ep.addr.0,
            options: kerberos::flags::KdcOptions::empty(),
            padata,
        };
        // The attacker sits on the same lossy wire as everyone else
        // (chaos soak): resend the identical request on loss, like any
        // UDP client would. On a perfect network this is a single shot.
        let wire = req.encode(config.codec);
        let mut sent = 0u32;
        let reply = loop {
            sent += 1;
            match env.net.rpc(attacker_ep, env.realm.kdc_ep, wire.clone()) {
                Ok(r) => break r,
                Err(_) if sent < 8 && env.net.faults_enabled() => {
                    env.net.advance(simnet::SimDuration::from_millis(100 * sent as u64));
                    env.net.pump();
                }
                Err(e) => return report(false, format!("harvest request failed: {e}")),
            }
        };
        if let Ok((WireKind::Err, _)) = deframe(&reply) {
            let e = KrbErrorMsg::decode(config.codec, &reply)
                .map(|e| e.text)
                .unwrap_or_else(|_| "?".into());
            return report(false, format!("KDC refused unauthenticated request: {e}"));
        }
        let Ok(rep) = AsRep::decode(config.codec, &reply) else {
            return report(false, "unparseable reply".into());
        };

        // Peel the attacker's own DH layer if present.
        let enc_part = match (&dh_keypair, &rep.dh_public) {
            (Some(kp), Some(server_pub)) => {
                let their = krb_crypto::bignum::BigUint::from_bytes_be(server_pub);
                let secret = dh_group.shared_secret(&their, &kp.private).expect("shared");
                let dh_key = krb_crypto::dh::DhGroup::derive_key(&secret);
                match config.ticket_layer.open(&dh_key, 0, &rep.enc_part) {
                    Ok(inner) => inner,
                    Err(e) => return report(false, format!("DH unseal failed: {e}")),
                }
            }
            _ => rep.enc_part.clone(),
        };

        match crack_as_reply(config, &sam, &enc_part, rep.challenge_r, &guess_list()) {
            Some(pw) => {
                report(true, format!("harvested {{...}}K_sam without eavesdropping; cracked {pw:?}"))
            }
            None => report(false, "no dictionary guess verified".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passive_cracks_v4_and_draft3() {
        assert!(PassiveGuessing.run(&ProtocolConfig::v4(), 1).succeeded);
        assert!(PassiveGuessing.run(&ProtocolConfig::v5_draft3(), 1).succeeded);
    }

    #[test]
    fn dh_layer_blocks_passive() {
        assert!(!PassiveGuessing.run(&ProtocolConfig::hardened(), 1).succeeded);
        // Even v4 + DH alone blocks the passive attack.
        let mut config = ProtocolConfig::v4();
        config.dh_login = true;
        assert!(!PassiveGuessing.run(&config, 2).succeeded);
    }

    #[test]
    fn active_harvest_cracks_v4_and_draft3() {
        assert!(ActiveHarvest.run(&ProtocolConfig::v4(), 1).succeeded);
        assert!(ActiveHarvest.run(&ProtocolConfig::v5_draft3(), 1).succeeded);
    }

    #[test]
    fn dh_alone_does_not_block_active_harvest() {
        // The paper's caveat: the attacker can do the key exchange
        // itself.
        let mut config = ProtocolConfig::v4();
        config.dh_login = true;
        assert!(ActiveHarvest.run(&config, 2).succeeded);
    }

    #[test]
    fn preauth_blocks_active_harvest() {
        assert!(!ActiveHarvest.run(&ProtocolConfig::hardened(), 1).succeeded);
        let mut config = ProtocolConfig::v4();
        config.preauth = kerberos::PreauthMode::EncTimestamp;
        assert!(!ActiveHarvest.run(&config, 3).succeeded);
    }

    #[test]
    fn strong_passwords_resist_even_when_protocol_is_weak() {
        // pat's passphrase is not in any dictionary; cracking the
        // captured reply fails even on V4.
        let config = ProtocolConfig::v4();
        let mut env = AttackEnv::new(&config, 9);
        env.login("pat").unwrap();
        let pat = env.user("pat");
        let pat_ep = env.realm.user_ep("pat");
        let rep = env
            .net
            .traffic_log()
            .iter()
            .find(|r| {
                r.dgram.dst == pat_ep
                    && r.dgram.payload.first().copied().and_then(WireKind::from_u8)
                        == Some(WireKind::AsRep)
            })
            .map(|r| AsRep::decode(config.codec, &r.dgram.payload).unwrap())
            .unwrap();
        assert!(crack_as_reply(&config, &pat, &rep.enc_part, None, &guess_list()).is_none());
    }
}
