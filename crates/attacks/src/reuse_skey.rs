//! A10 — the REUSE-SKEY redirect.
//!
//! "If two tickets, T1 and T2, share the same key, the attacker can
//! intercept a request for one service, and redirect it to the other.
//! Since the two tickets share the same key, the authenticator will be
//! accepted. ... If, say, a file server and a backup server were invoked
//! this way, an attacker might redirect some requests to destroy
//! archival copies of files being edited."

use crate::env::AttackEnv;
use crate::{Attack, AttackReport};
use kerberos::flags::KdcOptions;
use kerberos::messages::{ApReq, WireKind};
use kerberos::services::BackupServerLogic;
use kerberos::{ProtocolConfig, TgsParams};
use simnet::{Datagram, ScriptedTap, Verdict};

/// The A10 attack object.
pub struct ReuseSkeyRedirect;

impl Attack for ReuseSkeyRedirect {
    fn id(&self) -> &'static str {
        "A10"
    }

    fn name(&self) -> &'static str {
        "REUSE-SKEY service redirect"
    }

    fn run(&self, config: &ProtocolConfig, seed: u64) -> AttackReport {
        let mut env = AttackEnv::new(config, seed);
        let report = |succeeded: bool, evidence: String| AttackReport {
            id: "A10",
            name: "REUSE-SKEY service redirect",
            config: config.name,
            succeeded,
            evidence,
        };

        // The victim legitimately uses REUSE-SKEY (its intended purpose:
        // shared-key/multicast distribution): a files ticket, then a
        // backup ticket sharing its session key.
        let tgt = match env.login("pat") {
            Ok(t) => t,
            Err(e) => return report(false, format!("login failed: {e}")),
        };
        let t_files = match env.ticket("pat", &tgt, "files") {
            Ok(t) => t,
            Err(e) => return report(false, format!("files ticket failed: {e}")),
        };
        let t_backup = match env.ticket_with(
            "pat",
            &tgt,
            "backup",
            TgsParams {
                options: KdcOptions::empty().with(KdcOptions::REUSE_SKEY),
                additional_ticket: Some(t_files.sealed_ticket.clone()),
                ..Default::default()
            },
        ) {
            Ok(t) => t,
            Err(e) => return report(false, format!("KDC refused REUSE-SKEY: {e}")),
        };
        if !t_backup.session_key.ct_eq(&t_files.session_key) {
            return report(false, "KDC did not actually share the session key".into());
        }

        // The victim archives a file on the backup server, exposing the
        // sealed backup ticket on the wire.
        let mut bconn = match env.connect("pat", &t_backup, "backup") {
            Ok(c) => c,
            Err(e) => return report(false, format!("backup session refused: {e}")),
        };
        let mut rng = env.rng.clone();
        let _ = bconn.request(&mut env.net, b"ARCHIVE old-draft v1", &mut rng);
        let backup_ep = env.realm.service_ep("backup");
        let t_backup_wire = env
            .net
            .traffic_log()
            .iter()
            .filter(|r| {
                r.is_request
                    && r.dgram.dst == backup_ep
                    && r.dgram.payload.first() == Some(&(WireKind::ApReq as u8))
            })
            .filter_map(|r| ApReq::decode(config.codec, &r.dgram.payload).ok())
            .map(|ap| ap.ticket)
            .next_back();
        let Some(t_backup_wire) = t_backup_wire else {
            return report(false, "backup ticket not observed on the wire".into());
        };

        // Now the victim turns to the file server. The in-path attacker
        // substitutes the backup ticket and redirects everything to the
        // backup server.
        let files_ep = env.realm.service_ep("files");
        let codec = config.codec;
        env.net.set_tap(Box::new(ScriptedTap::new(move |d: &mut Datagram, _| {
            if d.dst == files_ep {
                if d.payload.first() == Some(&(WireKind::ApReq as u8)) {
                    if let Ok(mut ap) = ApReq::decode(codec, &d.payload) {
                        ap.ticket = t_backup_wire.clone();
                        d.payload = ap.encode(codec).into();
                    }
                }
                d.dst = backup_ep;
            }
            Verdict::Deliver
        })));

        // The victim "deletes an old draft from the file server" — or so
        // they believe.
        let outcome = (|| -> Result<Vec<u8>, kerberos::KrbError> {
            let mut conn = env.connect("pat", &t_files, "files")?;
            let mut rng = env.rng.clone();
            conn.request(&mut env.net, b"DEL old-draft", &mut rng)
        })();
        let _ = env.net.take_tap();

        let destroyed = env.realm.with_app_server(&mut env.net, "backup", |s| {
            s.logic
                .as_any()
                .and_then(|a| a.downcast_ref::<BackupServerLogic>())
                .map(|b| b.destroyed.iter().any(|(u, f)| u == "pat" && f == "old-draft"))
                .unwrap_or(false)
        });
        match (outcome, destroyed) {
            (Ok(_), true) => report(
                true,
                "victim's file-server request executed on the BACKUP server: archive of \
                 old-draft destroyed, mutual auth spoofed by key sharing"
                    .into(),
            ),
            (_, true) => report(true, "redirected request destroyed the archive".into()),
            (Err(e), false) => report(false, format!("redirect rejected: {e}")),
            (Ok(_), false) => report(false, "redirect had no effect".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draft3_redirect_destroys_archives() {
        let r = ReuseSkeyRedirect.run(&ProtocolConfig::v5_draft3(), 1);
        assert!(r.succeeded, "{}", r.evidence);
    }

    #[test]
    fn v4_has_no_such_option() {
        assert!(!ReuseSkeyRedirect.run(&ProtocolConfig::v4(), 1).succeeded);
    }

    #[test]
    fn hardened_is_safe() {
        assert!(!ReuseSkeyRedirect.run(&ProtocolConfig::hardened(), 1).succeeded);
    }

    #[test]
    fn obeying_the_duplicate_skey_warning_stops_the_auth() {
        // "Servers that obey this restriction are not vulnerable."
        let mut config = ProtocolConfig::v5_draft3();
        config.forbid_duplicate_skey_auth = true;
        assert!(!ReuseSkeyRedirect.run(&config, 2).succeeded);
    }

    #[test]
    fn service_binding_stops_the_redirect() {
        // "A solution to this particular attack is to include either the
        // service name [or] a collision-proof checksum of the ticket ...
        // in the authenticator."
        let mut config = ProtocolConfig::v5_draft3();
        config.service_binding = true;
        assert!(!ReuseSkeyRedirect.run(&config, 3).succeeded);
    }
}
