//! A13 — cross-stream replay between concurrent sessions.
//!
//! "If two authenticated or encrypted sessions run concurrently, the
//! cache must be shared between them, or messages from one session can
//! be replayed into the other." With a multi-session key and per-session
//! timestamp caches, replaying a KRB_PRIV message across sessions works;
//! per-session subkeys and sequence numbers stop it.

use crate::env::AttackEnv;
use crate::{Attack, AttackReport};
use kerberos::appserver::connect_app;
use kerberos::messages::{frame, WireKind};
use kerberos::services::FileServerLogic;
use kerberos::{AppProtection, ProtocolConfig};
use simnet::{Datagram, Endpoint};

/// The A13 attack object.
pub struct CrossStreamReplay;

impl Attack for CrossStreamReplay {
    fn id(&self) -> &'static str {
        "A13"
    }

    fn name(&self) -> &'static str {
        "cross-stream replay between sessions"
    }

    fn run(&self, config: &ProtocolConfig, seed: u64) -> AttackReport {
        let mut env = AttackEnv::new(config, seed);
        let report = |succeeded: bool, evidence: String| AttackReport {
            id: "A13",
            name: "cross-stream replay between sessions",
            config: config.name,
            succeeded,
            evidence,
        };
        let files_ep = env.realm.service_ep("files");
        let victim_ep = env.realm.user_ep("pat");
        let second_ep = Endpoint::new(victim_ep.addr, victim_ep.port + 1);

        if config.app_protection == AppProtection::Plain {
            // In a plain deployment the "cross-stream" question is moot:
            // any captured command replays anywhere.
            let mut conn = match env.victim_session("pat", "files") {
                Ok(c) => c,
                Err(e) => return report(false, format!("victim session failed: {e}")),
            };
            let mut rng = env.rng.clone();
            let _ = conn.request(&mut env.net, b"PUT scratch v1", &mut rng);
            let _ = conn.request(&mut env.net, b"DEL scratch", &mut rng);
            let _ = env.net.inject(Datagram {
                src: victim_ep,
                dst: files_ep,
                payload: frame(WireKind::AppData, b"DEL scratch".to_vec()).into(),
            });
            let dels = deletions(&mut env);
            return if dels.iter().filter(|(_, f)| f == "scratch").count() >= 2 {
                report(true, "plaintext command replayed; deletion executed twice".into())
            } else {
                report(false, "plaintext replay rejected".into())
            };
        }

        // Two concurrent sessions from the same credential (two windows
        // on the same workstation) — same ticket, same multi-session key
        // when subkeys are off.
        let tgt = match env.login("pat") {
            Ok(t) => t,
            Err(e) => return report(false, format!("login failed: {e}")),
        };
        let st = match env.ticket("pat", &tgt, "files") {
            Ok(t) => t,
            Err(e) => return report(false, format!("ticket failed: {e}")),
        };
        let mut rng = env.rng.clone();
        let mut conn_a = match connect_app(&mut env.net, config, victim_ep, files_ep, &st, &mut rng) {
            Ok(c) => c,
            Err(e) => return report(false, format!("session A failed: {e}")),
        };
        let conn_b = match connect_app(&mut env.net, config, second_ep, files_ep, &st, &mut rng) {
            Ok(c) => c,
            Err(e) => return report(false, format!("session B failed: {e}")),
        };
        drop(conn_b); // The victim's second window sits idle.

        // The victim deletes a scratch file in session A.
        let _ = conn_a.request(&mut env.net, b"PUT scratch v1", &mut rng);
        let _ = conn_a.request(&mut env.net, b"DEL scratch", &mut rng);

        // The attacker captures that KRB_PRIV message and replays it
        // into session B (source address forged to B's endpoint).
        let priv_msgs: Vec<Datagram> = env
            .net
            .traffic_log()
            .iter()
            .filter(|r| {
                r.is_request
                    && r.dgram.dst == files_ep
                    && r.dgram.src == victim_ep
                    && r.dgram.payload.first().copied().and_then(WireKind::from_u8) == Some(WireKind::Priv)
            })
            .map(|r| r.dgram.clone())
            .collect();
        let Some(del_msg) = priv_msgs.last() else {
            return report(false, "no KRB_PRIV traffic captured".into());
        };
        let _ = env.net.inject(Datagram { src: second_ep, dst: files_ep, payload: del_msg.payload.clone() });

        let dels = deletions(&mut env);
        let count = dels.iter().filter(|(u, f)| u == "pat" && f == "scratch").count();
        if count >= 2 {
            report(
                true,
                format!("DEL executed {count} times though the victim sent it once: replayed across sessions"),
            )
        } else {
            report(false, "cross-session replay rejected (distinct session keys/sequence state)".into())
        }
    }
}

fn deletions(env: &mut AttackEnv) -> Vec<(String, String)> {
    let realm = &env.realm;
    let mut out = Vec::new();
    realm.with_app_server(&mut env.net, "files", |s| {
        if let Some(f) = s.logic.as_any().and_then(|a| a.downcast_ref::<FileServerLogic>()) {
            out = f.deletions.clone();
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_on_v4_and_draft3() {
        assert!(CrossStreamReplay.run(&ProtocolConfig::v4(), 1).succeeded);
        assert!(CrossStreamReplay.run(&ProtocolConfig::v5_draft3(), 1).succeeded);
    }

    #[test]
    fn fails_on_hardened() {
        assert!(!CrossStreamReplay.run(&ProtocolConfig::hardened(), 1).succeeded);
    }

    #[test]
    fn subkeys_alone_stop_it() {
        let mut config = ProtocolConfig::v5_draft3();
        config.subkey_negotiation = true;
        assert!(!CrossStreamReplay.run(&config, 2).succeeded);
    }
}
