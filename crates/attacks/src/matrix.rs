//! The attack × configuration matrix: the paper's claim set as an
//! executable table (experiment E1).

use crate::{all_attacks, AttackReport};
use kerberos::ProtocolConfig;

/// The expected outcome grid, straight from the paper's analysis:
/// (attack id, config name, attack succeeds).
pub const EXPECTED: &[(&str, &str, bool)] = &[
    ("A1", "v4", true),
    ("A1", "v5-draft3", true),
    ("A1", "hardened", false),
    ("A2", "v4", true),
    ("A2", "v5-draft3", true),
    ("A2", "hardened", false),
    ("A3", "v4", true),
    ("A3", "v5-draft3", true),
    ("A3", "hardened", false),
    ("A4", "v4", true),
    ("A4", "v5-draft3", true),
    ("A4", "hardened", false),
    ("A5", "v4", true),
    ("A5", "v5-draft3", true),
    ("A5", "hardened", false),
    ("A6", "v4", true),
    ("A6", "v5-draft3", true),
    ("A6", "hardened", false),
    // A7: "the simple attack above does not work against Kerberos
    // Version 4, in which ... the leading length(DATA) field disrupts
    // the prefix-based attack."
    ("A7", "v4", false),
    ("A7", "v5-draft3", true),
    ("A7", "hardened", false),
    ("A8", "v4", true),
    ("A8", "v5-draft3", true),
    ("A8", "hardened", false),
    // A9/A10 target Draft-3 options V4 did not have.
    ("A9", "v4", false),
    ("A9", "v5-draft3", true),
    ("A9", "hardened", false),
    ("A10", "v4", false),
    ("A10", "v5-draft3", true),
    ("A10", "hardened", false),
    // A11 targets the untyped encoding Draft 3 already fixed via ASN.1.
    ("A11", "v4", true),
    ("A11", "v5-draft3", false),
    ("A11", "hardened", false),
    ("A12", "v4", true),
    ("A12", "v5-draft3", true),
    ("A12", "hardened", false),
    ("A13", "v4", true),
    ("A13", "v5-draft3", true),
    ("A13", "hardened", false),
    // A14 needs unprotected post-auth data; Draft 3's KRB_PRIV already
    // prevents the trivial take-over (the session-level replays are
    // A7/A13's business).
    ("A14", "v4", true),
    ("A14", "v5-draft3", false),
    ("A14", "hardened", false),
];

/// Runs every attack against every preset.
pub fn run_matrix(seed: u64) -> Vec<AttackReport> {
    let mut out = Vec::new();
    for config in ProtocolConfig::presets() {
        for attack in all_attacks() {
            out.push(attack.run(&config, seed));
        }
    }
    out
}

/// Looks up the expected outcome for (attack, config).
pub fn expected(id: &str, config: &str) -> Option<bool> {
    EXPECTED.iter().find(|(a, c, _)| *a == id && *c == config).map(|(_, _, s)| *s)
}

/// Renders the matrix as an aligned text table (rows = attacks, columns
/// = configurations; `BREACH` / `safe`).
pub fn render_table(reports: &[AttackReport]) -> String {
    let configs: Vec<&str> = {
        let mut v: Vec<&str> = reports.iter().map(|r| r.config).collect();
        v.dedup();
        let mut seen = Vec::new();
        for c in v {
            if !seen.contains(&c) {
                seen.push(c);
            }
        }
        seen
    };
    let mut attacks: Vec<(&str, &str)> = Vec::new();
    for r in reports {
        if !attacks.iter().any(|(id, _)| *id == r.id) {
            attacks.push((r.id, r.name));
        }
    }

    let mut s = String::new();
    s.push_str(&format!("{:<4} {:<42}", "id", "attack"));
    for c in &configs {
        s.push_str(&format!(" {c:>10}"));
    }
    s.push('\n');
    s.push_str(&"-".repeat(47 + 11 * configs.len()));
    s.push('\n');
    for (id, name) in &attacks {
        s.push_str(&format!("{id:<4} {name:<42}"));
        for c in &configs {
            let cell = reports
                .iter()
                .find(|r| r.id == *id && r.config == *c)
                .map(|r| if r.succeeded { "BREACH" } else { "safe" })
                .unwrap_or("?");
            s.push_str(&format!(" {cell:>10}"));
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_grid_is_complete() {
        // 14 attacks x 3 configs.
        assert_eq!(EXPECTED.len(), 42);
        for id in 1..=14 {
            for config in ["v4", "v5-draft3", "hardened"] {
                assert!(
                    expected(&format!("A{id}"), config).is_some(),
                    "missing expectation for A{id}/{config}"
                );
            }
        }
    }

    #[test]
    fn hardened_blocks_everything() {
        for (id, config, succeeded) in EXPECTED {
            if *config == "hardened" {
                assert!(!succeeded, "{id} expected to breach hardened?");
            }
        }
    }

    #[test]
    fn render_produces_all_rows() {
        let reports = vec![
            AttackReport { id: "A1", name: "x", config: "v4", succeeded: true, evidence: String::new() },
            AttackReport { id: "A1", name: "x", config: "hardened", succeeded: false, evidence: String::new() },
        ];
        let t = render_table(&reports);
        assert!(t.contains("BREACH"));
        assert!(t.contains("safe"));
        assert!(t.contains("A1"));
    }
}
