//! A11 — ticket/authenticator type confusion under the legacy encoding.
//!
//! "The most simple analysis of the security of the Kerberos protocols
//! should check that there is no possibility of ambiguity between
//! messages sent in different contexts. That is, a ticket should never
//! be interpretable as an authenticator, or vice versa."
//!
//! This module *constructs* the ambiguity: a single byte string that
//! parses as a well-formed [`Authenticator`] AND as a well-formed
//! [`Ticket`] naming `root` — valid far into the future — under the
//! legacy encoding. The typed encoding rejects both cross-readings.

use crate::{Attack, AttackReport};
use kerberos::authenticator::Authenticator;
#[cfg(test)]
use kerberos::encoding::Codec;
use kerberos::error::KrbError;
use kerberos::principal::Principal;
use kerberos::ticket::Ticket;
use kerberos::ProtocolConfig;

/// Builds the ambiguity: a [`Ticket`] whose field values make its
/// legacy encoding parse as an [`Authenticator`] too.
///
/// ```text
/// Ticket encode:  [flags u32][Ln][name][Li][inst][Lr][realm]
///                 [addr_opt=1][addr u32][auth u64][start u64][end u64]
///                 [skey u64][ntrans u32][Lt][trans0]...
/// Auth decode:    [Ln'][name'][Li'][inst'][Lr'][realm'][addr' u32]
///                 [ts' u64][ck_opt][bind_opt][subkey_opt][seq_opt]
/// ```
///
/// Field-by-field alignment (legacy encodings, all lengths u32 BE):
///
/// ```text
/// ticket bytes:   [flags=8][L=4]["root"][L=0][L=14][realm]
///                 [L=8]["rlogin00"][L=0][L=14][realm][addr_opt]...
/// auth reading:   [Ln'=8][name'=[0,0,0,4,r,o,o,t]][Li'=0][Lr'=14][realm]
///                 [addr'=8][ts'="rlogin00"][ck=0][bind=0][sub=0][seq=0]
///                 (trailing ticket bytes ignored)
/// ```
///
/// `flags = 8` makes the authenticator parser read the ticket's
/// length-prefixed client name as its own name; the 8-character service
/// name becomes the "timestamp"; the zero-length service instance
/// supplies the four absent-option bytes. Everything an attacker
/// requesting a ticket influences (names, flags) does the work.
pub fn craft_ambiguous_ticket() -> Ticket {
    Ticket {
        flags: kerberos::flags::TicketFlags(8),
        client: Principal { name: "root".into(), instance: String::new(), realm: "ATHENA.MIT.EDU".into() },
        // The 8-byte service name doubles as the authenticator's
        // timestamp; the empty instance supplies four zero option
        // bytes.
        service: Principal { name: "rlogin00".into(), instance: String::new(), realm: "ATHENA.MIT.EDU".into() },
        addr: Some(0x0a00_0001),
        auth_time: 1_000_000,
        start_time: 1_000_000,
        end_time: u64::MAX / 2,
        session_key: krb_crypto::des::DesKey::from_u64(0x1357_9bdf_0246_8ace),
        transited: vec![],
    }
}

/// The A11 attack object.
pub struct TypeConfusion;

impl Attack for TypeConfusion {
    fn id(&self) -> &'static str {
        "A11"
    }

    fn name(&self) -> &'static str {
        "ticket/authenticator type confusion"
    }

    fn run(&self, config: &ProtocolConfig, _seed: u64) -> AttackReport {
        let report = |succeeded: bool, evidence: String| AttackReport {
            id: "A11",
            name: "ticket/authenticator type confusion",
            config: config.name,
            succeeded,
            evidence,
        };

        let ticket = craft_ambiguous_ticket();
        let bytes = ticket.encode(config.codec);

        // Can the same bytes be read as an authenticator in a context
        // expecting one?
        match Authenticator::decode(config.codec, &bytes) {
            Ok(auth) => {
                // Round-trip sanity: the ticket reading survives too.
                let ticket_again = Ticket::decode(config.codec, &bytes);
                report(
                    true,
                    format!(
                        "one byte string reads as ticket(client={}) AND authenticator(client={}); \
                         ticket parse ok={}",
                        ticket.client,
                        auth.client,
                        ticket_again.is_ok()
                    ),
                )
            }
            Err(KrbError::WrongType { .. }) => {
                report(false, "typed envelope rejected the cross-reading deterministically".into())
            }
            Err(e) => report(false, format!("cross-reading failed structurally: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_is_ambiguous() {
        let r = TypeConfusion.run(&ProtocolConfig::v4(), 1);
        assert!(r.succeeded, "{}", r.evidence);
    }

    #[test]
    fn typed_is_not() {
        assert!(!TypeConfusion.run(&ProtocolConfig::v5_draft3(), 1).succeeded);
        assert!(!TypeConfusion.run(&ProtocolConfig::hardened(), 1).succeeded);
    }

    #[test]
    fn crafted_ticket_cross_reads_with_sensible_fields() {
        let t = craft_ambiguous_ticket();
        let bytes = t.encode(Codec::Legacy);
        let auth = Authenticator::decode(Codec::Legacy, &bytes).expect("parses as authenticator");
        // The authenticator reading names the same privileged client.
        assert!(auth.client.name.ends_with("root"));
        let t2 = Ticket::decode(Codec::Legacy, &bytes).expect("still parses as ticket");
        assert_eq!(t2.client.name, "root");
    }

    #[test]
    fn sealed_blob_is_ambiguous_in_both_roles() {
        // The operational flavor: the same ciphertext, under the same
        // key, unseals as either object — context alone decides.
        use kerberos::enclayer::EncLayer;
        use krb_crypto::rng::Drbg;
        let key = krb_crypto::des::DesKey::from_u64(0xDEADBEEF).with_odd_parity();
        let mut rng = Drbg::new(5);
        let t = craft_ambiguous_ticket();
        let sealed = t.seal(Codec::Legacy, EncLayer::V4Pcbc, &key, &mut rng).unwrap();
        assert!(Ticket::unseal(Codec::Legacy, EncLayer::V4Pcbc, &key, &sealed).is_ok());
        assert!(Authenticator::unseal(Codec::Legacy, EncLayer::V4Pcbc, &key, &sealed).is_ok());
    }

}
