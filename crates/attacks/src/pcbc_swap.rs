//! A8 — message-stream modification of KRB_PRIV traffic.
//!
//! "\[PCBC\] mode was observed to have poor propagation properties that
//! permit message-stream modification: specifically, if two blocks of
//! ciphertext are interchanged, only the corresponding blocks are
//! garbled on decryption." Draft 3's CBC without a MAC fares no better
//! against an in-path modifier; only the hardened layer's MAC detects
//! the tampering.

use crate::env::AttackEnv;
use crate::{Attack, AttackReport};
use kerberos::messages::WireKind;
use kerberos::services::FileServerLogic;
use kerberos::{AppProtection, ProtocolConfig};
use simnet::{Datagram, ScriptedTap, Verdict};

/// The A8 attack object.
pub struct PcbcBlockSwap;

impl Attack for PcbcBlockSwap {
    fn id(&self) -> &'static str {
        "A8"
    }

    fn name(&self) -> &'static str {
        "ciphertext block-swap modification"
    }

    fn run(&self, config: &ProtocolConfig, seed: u64) -> AttackReport {
        // The attack targets KRB_PRIV; run the deployment with session
        // encryption on even for the V4 era ("servers using the KRB_PRIV
        // format").
        let mut config = config.clone();
        config.app_protection = AppProtection::Priv;
        let mut env = AttackEnv::new(&config, seed);
        let report = |succeeded: bool, evidence: String| AttackReport {
            id: "A8",
            name: "ciphertext block-swap modification",
            config: env_name(&config),
            succeeded,
            evidence,
        };

        let mut conn = match env.victim_session("pat", "files") {
            Ok(c) => c,
            Err(e) => return report(false, format!("victim session failed: {e}")),
        };

        // The in-path modifier swaps ciphertext blocks 4 and 5 of the
        // first KRB_PRIV request it sees — deep inside the file content
        // for the command below, in every layer's layout.
        let files_port = env.realm.service_ep("files").port;
        let armed = std::cell::Cell::new(true);
        env.net.set_tap(Box::new(ScriptedTap::new(move |d: &mut Datagram, _| {
            if armed.get()
                && d.dst.port == files_port
                && d.payload.first() == Some(&(WireKind::Priv as u8))
                && d.payload.len() > 1 + 48
            {
                armed.set(false);
                let (a, b) = (1 + 32, 1 + 40);
                for i in 0..8 {
                    d.payload.swap(a + i, b + i);
                }
            }
            Verdict::Deliver
        })));

        let content = b"The quick brown fox jumps over the lazy dog, repeatedly and at length.";
        let mut cmd = b"PUT doc.txt ".to_vec();
        cmd.extend_from_slice(content);
        let mut rng = env.rng.clone();
        let send_result = conn.request(&mut env.net, &cmd, &mut rng);
        let _ = env.net.take_tap();

        // What did the server actually store?
        let stored = env.realm.with_app_server(&mut env.net, "files", |s| {
            s.logic
                .as_any()
                .and_then(|a| a.downcast_ref::<FileServerLogic>())
                .and_then(|f| f.files.get(&("pat".into(), "doc.txt".into())).cloned())
        });

        match (send_result, stored) {
            (Ok(_), Some(bytes)) if bytes != content => report(
                true,
                format!(
                    "server stored modified content without detecting tampering \
                     ({} of {} bytes differ)",
                    bytes.iter().zip(content.iter()).filter(|(a, b)| a != b).count(),
                    content.len()
                ),
            ),
            (Ok(_), Some(_)) => report(false, "modification had no effect".into()),
            (Err(_), _) | (_, None) => {
                report(false, "tampered message rejected by the integrity layer".into())
            }
        }
    }
}

fn env_name(config: &ProtocolConfig) -> &'static str {
    config.name
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v4_pcbc_and_draft3_cbc_are_modifiable() {
        assert!(PcbcBlockSwap.run(&ProtocolConfig::v4(), 1).succeeded);
        assert!(PcbcBlockSwap.run(&ProtocolConfig::v5_draft3(), 1).succeeded);
    }

    #[test]
    fn hardened_mac_detects_it() {
        assert!(!PcbcBlockSwap.run(&ProtocolConfig::hardened(), 1).succeeded);
    }
}
