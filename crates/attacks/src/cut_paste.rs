//! A9 — the ENC-TKT-IN-SKEY cut-and-paste attack (paper appendix, "Weak
//! Checksums and Cut-and-Paste Attacks").
//!
//! "The enemy intercepts this request and modifies it. First, the
//! ENC-TKT-IN-SKEY bit is set ... Second, the attacker's own
//! ticket-granting ticket is enclosed. Obviously, the attacker knows its
//! session key. Finally, the additional authorization data field is
//! filled in with whatever information is needed to make the CRC match
//! the original version. ... The client may request bidirectional
//! authentication; however, since the attacker has decrypted the ticket,
//! the session key for that service request is available. Consequently,
//! the bidirectional authentication dialog may be spoofed without
//! trouble."

use crate::env::AttackEnv;
use crate::{Attack, AttackReport};
use kerberos::authenticator::Authenticator;
use kerberos::client::Credential;
use kerberos::encoding::Codec;
use kerberos::enclayer::EncLayer;
use kerberos::flags::KdcOptions;
use kerberos::messages::{ApRep, ApReq, EncApRepPart, TgsReq, WireKind};
use kerberos::session::{decode_priv_draft3, encode_priv_draft3, Direction, PrivPart};
use kerberos::ticket::Ticket;
use kerberos::{ProtocolConfig};
use krb_crypto::crc32::{crc32, forge_suffix};
use krb_crypto::des::DesKey;
use krb_crypto::rng::Drbg;
use simnet::{Addr, Datagram, Endpoint, Host, ScriptedTap, Service, ServiceCtx, Verdict};
use std::cell::RefCell;
use std::rc::Rc;

/// The man-in-the-middle endpoint that impersonates the real service
/// once it has recovered the session key from the mis-encrypted ticket.
struct FakeServer {
    codec: Codec,
    layer: EncLayer,
    priv_layer: EncLayer,
    /// The attacker's TGT session key (which the forged ticket was
    /// sealed under).
    zach_session_key: DesKey,
    /// Session keys recovered per peer.
    session_key: Option<DesKey>,
    /// The victim's next sequence number (mirrored from the
    /// authenticator, for sequence-mode priv layers).
    client_seq: u64,
    rng: Drbg,
    /// Plaintext commands the victim sent, believing this is the real
    /// server.
    pub captured: Rc<RefCell<Vec<Vec<u8>>>>,
}

impl Service for FakeServer {
    fn handle(&mut self, ctx: &mut ServiceCtx, req: &[u8], _from: Endpoint) -> Option<Vec<u8>> {
        let kind = req.first().copied().and_then(WireKind::from_u8)?;
        match kind {
            WireKind::ApReq => {
                let ap = ApReq::decode(self.codec, req).ok()?;
                // The forged ticket is sealed under the attacker's TGT
                // session key — unseal it and pocket K_{c,s}.
                let t = Ticket::unseal(self.codec, self.layer, &self.zach_session_key, &ap.ticket).ok()?;
                let k = t.session_key;
                self.session_key = Some(k);
                let auth = Authenticator::unseal(self.codec, self.layer, &k, &ap.authenticator).ok()?;
                self.client_seq = auth.seq_init.unwrap_or(0);
                // Spoof the bidirectional authentication dialog.
                let part = EncApRepPart {
                    ts_echo: auth.timestamp.wrapping_add(1),
                    subkey: auth.subkey, // mirror, so negotiation degenerates
                    seq_init: auth.seq_init,
                };
                let sealed = self.layer.seal(&k, 0, &part.encode(self.codec), &mut self.rng).ok()?;
                Some(ApRep { enc_part: sealed }.encode(self.codec))
            }
            WireKind::Priv => {
                let k = self.session_key?;
                // Mirrored subkeys mean the negotiated key equals the
                // multi-session key even when subkeys are nominally on.
                // Sequence-mode layers use the mirrored sequence number
                // as the IV — the attacker tracks it like any endpoint.
                let iv = if self.priv_layer == EncLayer::HardenedCbc { self.client_seq } else { 0 };
                let pt = self.priv_layer.open(&k, iv, &req[1..]).ok()?;
                self.client_seq = self.client_seq.wrapping_add(1);
                let part = match self.priv_layer {
                    EncLayer::HardenedCbc => decode_priv_hardened_mirror(&pt).ok()?,
                    _ => decode_priv_draft3(&pt).ok()?,
                };
                self.captured.borrow_mut().push(part.data.clone());
                // Keep the victim happy with a well-formed reply. A
                // draft3-style victim accepts a timestamped reply; a
                // sequence-mode victim would need the server-side
                // sequence too (mirrored at establish time); evidence is
                // already recorded either way.
                let reply = encode_priv_draft3(&PrivPart {
                    data: b"OK".to_vec(),
                    ts_or_seq: part.ts_or_seq,
                    direction: Direction::ServerToClient,
                    addr: ctx.host_addr.0,
                });
                let sealed = self.priv_layer.seal(&k, 0, &reply, &mut self.rng).ok()?;
                Some(kerberos::messages::frame(WireKind::Priv, sealed))
            }
            _ => None,
        }
    }
}

/// Decodes the hardened priv layout ([len u32][data][ts][dir][addr]) —
/// the attacker implements the format just like any endpoint.
fn decode_priv_hardened_mirror(pt: &[u8]) -> Result<PrivPart, kerberos::KrbError> {
    use kerberos::KrbError;
    if pt.len() < 4 {
        return Err(KrbError::Decode("short"));
    }
    let len = u32::from_be_bytes(pt[..4].try_into().expect("4 bytes")) as usize;
    if 4 + len + 13 > pt.len() {
        return Err(KrbError::Decode("length out of range"));
    }
    let data = pt[4..4 + len].to_vec();
    let mut off = 4 + len;
    let ts_or_seq = u64::from_be_bytes(pt[off..off + 8].try_into().expect("8 bytes"));
    off += 8;
    let direction =
        if pt[off] == 0 { Direction::ClientToServer } else { Direction::ServerToClient };
    off += 1;
    let addr = u32::from_be_bytes(pt[off..off + 4].try_into().expect("4 bytes"));
    Ok(PrivPart { data, ts_or_seq, direction, addr })
}

/// The A9 attack object.
pub struct EncTktInSkeyCutPaste;

impl Attack for EncTktInSkeyCutPaste {
    fn id(&self) -> &'static str {
        "A9"
    }

    fn name(&self) -> &'static str {
        "ENC-TKT-IN-SKEY CRC cut-and-paste"
    }

    fn run(&self, config: &ProtocolConfig, seed: u64) -> AttackReport {
        let mut env = AttackEnv::new(config, seed);
        let report = |succeeded: bool, evidence: String| AttackReport {
            id: "A9",
            name: "ENC-TKT-IN-SKEY CRC cut-and-paste",
            config: config.name,
            succeeded,
            evidence,
        };

        // The attacker holds a perfectly ordinary TGT of its own.
        let zach_tgt: Credential = match env.login("zach") {
            Ok(t) => t,
            Err(e) => return report(false, format!("attacker login failed: {e}")),
        };

        // The attacker's fake-server host, ready before the capture
        // ("everything would be in place before the ticket-capture was
        // attempted").
        let fake_addr = Addr::new(10, 0, 66, 6);
        let captured = Rc::new(RefCell::new(Vec::new()));
        let mut fake_host = Host::new("definitely-the-file-server", vec![fake_addr]);
        fake_host.bind(
            2001,
            Box::new(FakeServer {
                codec: config.codec,
                layer: config.ticket_layer,
                priv_layer: config.priv_layer,
                zach_session_key: zach_tgt.session_key,
                session_key: None,
                client_seq: 0,
                rng: Drbg::new(seed ^ 0xfa4e),
                captured: Rc::clone(&captured),
            }),
        );
        env.net.add_host(fake_host);
        let fake_ep = Endpoint::new(fake_addr, 2001);

        // The in-path tap: (1) rewrite pat's TGS request for `files`,
        // patching the CRC; (2) redirect pat's subsequent traffic to the
        // fake server.
        let files_ep = env.realm.service_ep("files");
        let kdc_port = env.realm.kdc_ep.port;
        let codec = config.codec;
        let zach_tgt_bytes = zach_tgt.sealed_ticket.clone();
        env.net.set_tap(Box::new(ScriptedTap::new(move |d: &mut Datagram, _| {
            if d.dst.port == kdc_port && d.payload.first() == Some(&(WireKind::TgsReq as u8)) {
                if let Ok(req) = TgsReq::decode(codec, &d.payload) {
                    if req.service.name == "files" {
                        let original_crc = crc32(&req.checksum_body());
                        let mut forged = req.clone();
                        forged.options = forged.options.with(KdcOptions::ENC_TKT_IN_SKEY);
                        forged.additional_ticket = Some(zach_tgt_bytes.clone());
                        // Fill authorization data so the CRC matches:
                        // encode with a 4-byte placeholder, then solve
                        // for the bytes.
                        forged.authz_data = vec![0; 4];
                        let body = forged.checksum_body();
                        let prefix = &body[..body.len() - 4];
                        forged.authz_data = forge_suffix(prefix, original_crc).to_vec();
                        debug_assert_eq!(crc32(&forged.checksum_body()), original_crc);
                        d.payload = forged.encode(codec).into();
                    }
                }
            } else if d.dst == files_ep {
                // Redirect the victim's service traffic to the fake.
                d.dst = fake_ep;
            }
            Verdict::Deliver
        })));

        // The victim goes about their business: ticket for `files`, then
        // a "private" session.
        let outcome = (|| -> Result<Vec<u8>, kerberos::KrbError> {
            let tgt = env.login("pat")?;
            let st = env.ticket("pat", &tgt, "files")?;
            let mut conn = env.connect("pat", &st, "files")?;
            let mut rng = env.rng.clone();
            conn.request(&mut env.net, b"PUT diary.txt my deepest secrets", &mut rng)
        })();
        let _ = env.net.take_tap();

        let stolen = captured.borrow();
        match (&outcome, stolen.iter().any(|c| c.starts_with(b"PUT diary.txt"))) {
            (Ok(_), true) => report(
                true,
                "victim completed 'mutual' authentication with the attacker and sent \
                 private data; session key recovered from the mis-encrypted ticket"
                    .into(),
            ),
            (_, true) => report(true, "attacker read the victim's private command".into()),
            (Err(e), false) => report(false, format!("attack broke the exchange instead: {e}")),
            (Ok(_), false) => report(false, "victim talked to the real server; nothing captured".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draft3_with_crc_is_owned() {
        let r = EncTktInSkeyCutPaste.run(&ProtocolConfig::v5_draft3(), 1);
        assert!(r.succeeded, "{}", r.evidence);
    }

    #[test]
    fn v4_has_no_such_option() {
        assert!(!EncTktInSkeyCutPaste.run(&ProtocolConfig::v4(), 1).succeeded);
    }

    #[test]
    fn hardened_is_safe() {
        assert!(!EncTktInSkeyCutPaste.run(&ProtocolConfig::hardened(), 1).succeeded);
    }

    #[test]
    fn verdicts_unchanged_over_wire_codec() {
        // The attack is about checksums and ticket routing, not the
        // envelope — moving a preset onto the tagged wire format must
        // not change any verdict.
        let r = EncTktInSkeyCutPaste.run(&ProtocolConfig::v5_draft3().with_wire_codec(), 1);
        assert!(r.succeeded, "{}", r.evidence);
        assert!(!EncTktInSkeyCutPaste.run(&ProtocolConfig::v4().with_wire_codec(), 1).succeeded);
        assert!(!EncTktInSkeyCutPaste.run(&ProtocolConfig::hardened().with_wire_codec(), 1).succeeded);
    }

    #[test]
    fn collision_proof_checksum_alone_stops_it() {
        // "If a collision-proof checksum were used, the attack would be
        // infeasible."
        let mut config = ProtocolConfig::v5_draft3();
        config.checksum = krb_crypto::checksum::ChecksumType::Md4Des;
        assert!(!EncTktInSkeyCutPaste.run(&config, 2).succeeded);
    }

    #[test]
    fn cname_check_alone_stops_it() {
        // "The designers intended to require that the cname in the
        // additional ticket match the name of the server ... the
        // requirement was inadvertently omitted from Draft 3."
        let mut config = ProtocolConfig::v5_draft3();
        config.enforce_cname_match = true;
        assert!(!EncTktInSkeyCutPaste.run(&config, 3).succeeded);
    }
}
