//! A12 — credential-cache theft via insecure storage.
//!
//! "The original code used /tmp. But this is highly insecure on diskless
//! workstations, where /tmp exists on a file server ... a modification
//! was made to store keys in shared memory. However, there is no
//! guarantee that shared memory is not paged; if this entails network
//! traffic, an intruder can capture these keys."
//!
//! The storage location follows the configuration era: V4 wrote /tmp on
//! NFS, the Draft-3-era workaround paged shared memory over the network,
//! and the hardened deployment pins and wipes memory (or uses the
//! hardware keystore).

use crate::env::AttackEnv;
use crate::{Attack, AttackReport};
use kerberos::appserver::connect_app;
use kerberos::ccache::{deserialize_credentials, CacheLocation, CredCache};
use kerberos::services::FileServerLogic;
use kerberos::ProtocolConfig;
use simnet::Endpoint;

/// The A12 attack object.
pub struct CredCacheTheft;

impl Attack for CredCacheTheft {
    fn id(&self) -> &'static str {
        "A12"
    }

    fn name(&self) -> &'static str {
        "credential-cache theft (/tmp on NFS)"
    }

    fn run(&self, config: &ProtocolConfig, seed: u64) -> AttackReport {
        let mut env = AttackEnv::new(config, seed);
        let report = |succeeded: bool, evidence: String| AttackReport {
            id: "A12",
            name: "credential-cache theft (/tmp on NFS)",
            config: config.name,
            succeeded,
            evidence,
        };
        let files_ep = env.realm.service_ep("files");

        // Era-appropriate cache location.
        let location = match config.name {
            "v4" => CacheLocation::TmpNfs { file_server: files_ep },
            "v5-draft3" => CacheLocation::SharedMemoryPageable { pager: files_ep },
            _ => CacheLocation::WipedMemory,
        };

        // The victim logs in, gets a files ticket, and the workstation
        // persists the credential cache per its storage model.
        let tgt = match env.login("pat") {
            Ok(t) => t,
            Err(e) => return report(false, format!("login failed: {e}")),
        };
        let st = match env.ticket("pat", &tgt, "files") {
            Ok(t) => t,
            Err(e) => return report(false, format!("ticket failed: {e}")),
        };
        let mut cache = CredCache::new(env.user("pat"), location);
        let victim_ep = env.realm.user_ep("pat");
        if let Err(e) = cache.store(&mut env.net, victim_ep, st.clone()) {
            return report(false, format!("cache store failed: {e}"));
        }
        // Victim does some legitimate work, then logs out (wipe).
        if let Ok(mut conn) = env.connect("pat", &st, "files") {
            let mut rng = env.rng.clone();
            let _ = conn.request(&mut env.net, b"PUT thesis.tex all my work", &mut rng);
        }
        cache.wipe();

        // The wiretap scans for cache bytes that crossed the wire.
        let stolen = env
            .net
            .traffic_log()
            .iter()
            .filter_map(|r| {
                let p = &r.dgram.payload;
                let tag_end = if p.starts_with(b"NFSWRITE") {
                    p.iter().position(|&b| b == b' ').and_then(|i| {
                        p[i + 1..].iter().position(|&b| b == b' ').map(|j| i + 1 + j + 1)
                    })
                } else if p.starts_with(b"PAGEOUT ") {
                    Some(8)
                } else {
                    None
                }?;
                deserialize_credentials(&p[tag_end..]).ok()
            })
            .flatten()
            .find(|c| c.service.name == "files");

        let Some(stolen) = stolen else {
            return report(false, "no credential bytes observed on the wire".into());
        };

        // Use the stolen credential from a forged source port on the
        // victim's address (nothing authenticates addresses).
        let forged_ep = Endpoint::new(victim_ep.addr, 4444);
        let mut rng = env.rng.clone();
        match connect_app(&mut env.net, config, forged_ep, files_ep, &stolen, &mut rng) {
            Ok(mut conn) => {
                let _ = conn.request(&mut env.net, b"DEL thesis.tex", &mut rng);
                let deleted = env.realm.with_app_server(&mut env.net, "files", |s| {
                    s.logic
                        .as_any()
                        .and_then(|a| a.downcast_ref::<FileServerLogic>())
                        .map(|f| f.deletions.iter().any(|(u, f)| u == "pat" && f == "thesis.tex"))
                        .unwrap_or(false)
                });
                if deleted {
                    report(
                        true,
                        "session key and ticket recovered from network-backed cache; \
                         attacker deleted the victim's file"
                            .into(),
                    )
                } else {
                    report(false, "stolen credential did not yield command execution".into())
                }
            }
            Err(e) => report(false, format!("stolen credential rejected: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nfs_and_paged_caches_leak() {
        assert!(CredCacheTheft.run(&ProtocolConfig::v4(), 1).succeeded);
        assert!(CredCacheTheft.run(&ProtocolConfig::v5_draft3(), 1).succeeded);
    }

    #[test]
    fn wiped_memory_does_not() {
        assert!(!CredCacheTheft.run(&ProtocolConfig::hardened(), 1).succeeded);
    }
}
