//! krb-ids: trace-driven online intrusion detection for the simulated
//! Kerberos deployment — the defender's side of the attack matrix.
//!
//! The paper's catalog (replay, clock spoofing, cut-and-paste,
//! password-guessing storms, replay-cache wipe on crash) is executable
//! as E1 attack scripts and observable as byte-stable krb-trace event
//! streams. This crate closes the loop: a Suricata-style rule grammar
//! ([`rules`]) is compiled ([`compile`]) into stateful detectors run by
//! an [`Engine`] attached as a subscriber tap on the run's [`Tracer`] —
//! events are observed pre-eviction, online in sim time, and every
//! finding goes back into the same trace as an `ids.alert` event plus
//! `ids.*` metrics.
//!
//! Determinism contract: detector state is keyed by event content and
//! sim-time only; polling cadence is irrelevant; two same-seed runs
//! produce byte-identical alert streams (the A1 alert golden locks
//! this down). Totality contract: parser and compiler return typed
//! errors on any input, never panic (proptests drive arbitrary bytes
//! through both).
//!
//! The detectors are honest wire observers. They never read simulator
//! metadata (fault tags, injection origins), so an
//! environment-duplicated datagram alerts exactly like an attacker's
//! replay — on a real network the defender cannot tell either. The
//! classifier scoring in the E20 bench therefore gates false positives
//! on the *zero-fault* workload and reports the chaos/overload alert
//! rates as what they are: the cost of faults that look like attacks.

pub mod compile;
pub mod engine;
pub mod rules;

pub use compile::{compile, CompileError, DetectorBody, DetectorSpec, Per};
pub use engine::{Alert, Engine};
pub use rules::{Match, MsgKind, ParseError, Rule, RuleSet};

use std::fmt;

/// The production rule set: one rule per detector the paper motivates.
///
/// Ports: 88 is both the KDC and its gateway front door (the testbed
/// binds the gateway on the KDC port), 37 the UDP time service. The
/// `krb_ports` option tells the cut-and-paste detector which
/// destinations legitimately repeat cleartext request structure
/// (service principals, realm names) so AS/TGS traffic is not
/// splice-sensitive source material.
pub const DEFAULT_RULES: &str = r#"
# E20 default detection rules, in the Suricata krb5-keyword shape.
alert krb any any -> any any (msg:"sealed message replayed on its own stream"; detector:replay; kinds:ap-req,challenge-resp,safe,priv,app-data; window:900s; sid:2001; rev:1;)
alert krb any 37 -> any any (msg:"time reply strays from wire time"; detector:clock-spoof; tolerance:120s; sid:2002; rev:1;)
alert krb any any -> any any (msg:"ciphertext windows resurface in the wrong message"; detector:cut-paste; krb_ports:88; sid:2003; rev:1;)
alert krb any any -> any 88 (msg:"AS-REQ storm from one endpoint"; detector:preauth-storm; per:src; threshold:10; window:30s; sid:2004; rev:1;)
alert krb any any -> any any (msg:"preauth failure storm at one principal"; detector:preauth-storm; per:principal; threshold:8; window:60s; sid:2005; rev:1;)
alert krb any any -> any any (msg:"pre-crash authenticator replayed after verifier restart"; detector:crash-reuse; window:900s; sid:2006; rev:1;)
"#;

/// The five detector labels, in rule order (matrix column order).
pub const DETECTOR_LABELS: [&str; 5] =
    ["replay", "clock-spoof", "cut-paste", "preauth-storm", "crash-reuse"];

/// Anything that can go wrong building an engine from rule text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IdsError {
    Parse(ParseError),
    Compile(CompileError),
}

impl fmt::Display for IdsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdsError::Parse(e) => write!(f, "rule parse error: {e}"),
            IdsError::Compile(e) => write!(f, "rule compile error: {e}"),
        }
    }
}

impl std::error::Error for IdsError {}

impl From<ParseError> for IdsError {
    fn from(e: ParseError) -> Self {
        IdsError::Parse(e)
    }
}

impl From<CompileError> for IdsError {
    fn from(e: CompileError) -> Self {
        IdsError::Compile(e)
    }
}

/// Parses and compiles `text` into a fresh engine.
pub fn engine_from_rules(text: &str) -> Result<Engine, IdsError> {
    let rules = RuleSet::parse(text)?;
    let specs = compile(&rules)?;
    Ok(Engine::new(specs))
}

/// An engine over [`DEFAULT_RULES`].
pub fn default_engine() -> Result<Engine, IdsError> {
    engine_from_rules(DEFAULT_RULES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_rules_cover_all_five_detectors() {
        let rules = RuleSet::parse(DEFAULT_RULES).unwrap();
        let specs = compile(&rules).unwrap();
        let mut labels: Vec<&str> = specs.iter().map(|s| s.body.label()).collect();
        labels.dedup();
        assert_eq!(labels, DETECTOR_LABELS.to_vec());
    }

    #[test]
    fn errors_display_and_convert() {
        let e = engine_from_rules("").unwrap_err();
        assert!(matches!(e, IdsError::Compile(CompileError::Empty)));
        assert!(e.to_string().contains("compile"));
        let e = engine_from_rules("nonsense").unwrap_err();
        assert!(matches!(e, IdsError::Parse(_)));
        assert!(e.to_string().contains("parse"));
    }
}
