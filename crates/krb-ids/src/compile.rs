//! Rule compilation: parsed [`Rule`]s become typed [`DetectorSpec`]s —
//! the state machines the engine instantiates. Compilation validates
//! option combinations; like the parser it is total (typed
//! [`CompileError`]s, no panics).

use crate::rules::{Match, MsgKind, Rule, RuleSet};
use std::fmt;

/// Which key a behavioral counter aggregates by.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Per {
    /// Source endpoint (`addr:port`), from the wire.
    Src,
    /// Client principal, from KDC preauth-failure telemetry.
    Principal,
}

/// A compiled detector: the header matchers plus the detector-specific
/// parameters, all durations in sim-time microseconds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DetectorSpec {
    pub sid: u64,
    pub msg: String,
    pub src_addr: Match<String>,
    pub src_port: Match<u16>,
    pub dst_addr: Match<String>,
    pub dst_port: Match<u16>,
    pub body: DetectorBody,
}

/// The detector-specific compiled parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DetectorBody {
    /// The same sealed bytes from the same source to the same
    /// destination, again within `window_us`.
    Replay { window_us: u64, kinds: Vec<MsgKind> },
    /// A time-service reply whose claimed clock strays more than
    /// `tolerance_us` from when it crossed the wire.
    ClockSpoof { tolerance_us: u64 },
    /// Ciphertext windows re-surfacing in the wrong message: splices of
    /// KDC replies (chimera tickets), reply bytes echoed inside private
    /// messages, stolen session material re-used from a new flow.
    /// `krb_ports` names the ports where AS/TGS traffic legitimately
    /// repeats cleartext structure (those sources are not
    /// splice-sensitive); `min_run` is the matched-window width;
    /// `min_stolen` is how many windows must re-surface from one
    /// foreign request before the stolen-material path fires —
    /// deterministic seals (no confounder) alias short envelope and
    /// leading-block runs between honest messages, so a single shared
    /// window is not evidence of theft.
    CutPaste { krb_ports: Vec<u16>, min_run: usize, min_stolen: usize },
    /// More than `threshold` AS-REQs (per `Per::Src`) or preauth
    /// failures (per `Per::Principal`) inside a sliding `window_us`.
    PreauthStorm { window_us: u64, threshold: u64, per: Per },
    /// An authenticator first seen before a verifier host restarted,
    /// re-presented within `window_us` after the restart — the
    /// replay-cache-wipe exposure.
    CrashReuse { window_us: u64 },
}

impl DetectorBody {
    /// The stable detector label (`ids.alerts` metric scope, matrix
    /// column name).
    pub fn label(&self) -> &'static str {
        match self {
            DetectorBody::Replay { .. } => "replay",
            DetectorBody::ClockSpoof { .. } => "clock-spoof",
            DetectorBody::CutPaste { .. } => "cut-paste",
            DetectorBody::PreauthStorm { .. } => "preauth-storm",
            DetectorBody::CrashReuse { .. } => "crash-reuse",
        }
    }
}

/// Typed compile failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// The rule has no `detector:` option.
    MissingDetector { line: usize },
    /// The `detector:` value is not a known detector.
    UnknownDetector { line: usize, got: String },
    /// A required option is absent; `opt` names it.
    MissingOption { line: usize, opt: &'static str },
    /// An option value did not parse; `opt` names it.
    BadValue { line: usize, opt: &'static str, got: String },
    /// A `kinds:` entry is not a known message kind.
    UnknownKind { line: usize, got: String },
    /// The rule has no `sid:` option (alerts must be attributable).
    MissingSid { line: usize },
    /// The rule set compiled to nothing.
    Empty,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::MissingDetector { line } => {
                write!(f, "line {line}: rule has no detector: option")
            }
            CompileError::UnknownDetector { line, got } => {
                write!(f, "line {line}: unknown detector {got:?}")
            }
            CompileError::MissingOption { line, opt } => {
                write!(f, "line {line}: detector requires option {opt}:")
            }
            CompileError::BadValue { line, opt, got } => {
                write!(f, "line {line}: bad value {got:?} for option {opt}:")
            }
            CompileError::UnknownKind { line, got } => {
                write!(f, "line {line}: unknown message kind {got:?}")
            }
            CompileError::MissingSid { line } => {
                write!(f, "line {line}: rule has no sid: option")
            }
            CompileError::Empty => write!(f, "rule set compiled to no detectors"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Compiles every rule of the set; order is preserved.
pub fn compile(rules: &RuleSet) -> Result<Vec<DetectorSpec>, CompileError> {
    let mut specs = Vec::new();
    for rule in &rules.rules {
        specs.push(compile_rule(rule)?);
    }
    if specs.is_empty() {
        return Err(CompileError::Empty);
    }
    Ok(specs)
}

fn compile_rule(rule: &Rule) -> Result<DetectorSpec, CompileError> {
    let line = rule.line;
    let sid = match rule.option("sid") {
        None => return Err(CompileError::MissingSid { line }),
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| CompileError::BadValue { line, opt: "sid", got: v.to_string() })?,
    };
    let detector = rule.option("detector").ok_or(CompileError::MissingDetector { line })?;
    let body = match detector {
        "replay" => DetectorBody::Replay {
            window_us: duration_us(rule, "window")?.ok_or(CompileError::MissingOption {
                line,
                opt: "window",
            })?,
            kinds: kinds(rule)?.ok_or(CompileError::MissingOption { line, opt: "kinds" })?,
        },
        "clock-spoof" => DetectorBody::ClockSpoof {
            tolerance_us: duration_us(rule, "tolerance")?.ok_or(CompileError::MissingOption {
                line,
                opt: "tolerance",
            })?,
        },
        "cut-paste" => DetectorBody::CutPaste {
            krb_ports: ports(rule, "krb_ports")?.unwrap_or_default(),
            min_run: match rule.option("min_run") {
                None => 16,
                Some(v) => v.parse::<usize>().map_err(|_| CompileError::BadValue {
                    line,
                    opt: "min_run",
                    got: v.to_string(),
                })?,
            },
            min_stolen: match rule.option("min_stolen") {
                None => 40,
                Some(v) => v.parse::<usize>().map_err(|_| CompileError::BadValue {
                    line,
                    opt: "min_stolen",
                    got: v.to_string(),
                })?,
            },
        },
        "preauth-storm" => DetectorBody::PreauthStorm {
            window_us: duration_us(rule, "window")?.ok_or(CompileError::MissingOption {
                line,
                opt: "window",
            })?,
            threshold: match rule.option("threshold") {
                None => return Err(CompileError::MissingOption { line, opt: "threshold" }),
                Some(v) => v.parse::<u64>().map_err(|_| CompileError::BadValue {
                    line,
                    opt: "threshold",
                    got: v.to_string(),
                })?,
            },
            per: match rule.option("per") {
                None => return Err(CompileError::MissingOption { line, opt: "per" }),
                Some("src") => Per::Src,
                Some("principal") => Per::Principal,
                Some(v) => {
                    return Err(CompileError::BadValue { line, opt: "per", got: v.to_string() })
                }
            },
        },
        "crash-reuse" => DetectorBody::CrashReuse {
            window_us: duration_us(rule, "window")?.ok_or(CompileError::MissingOption {
                line,
                opt: "window",
            })?,
        },
        other => {
            return Err(CompileError::UnknownDetector { line, got: other.to_string() })
        }
    };
    Ok(DetectorSpec {
        sid,
        msg: rule.option("msg").unwrap_or(body.label()).to_string(),
        src_addr: rule.src_addr.clone(),
        src_port: rule.src_port.clone(),
        dst_addr: rule.dst_addr.clone(),
        dst_port: rule.dst_port.clone(),
        body,
    })
}

/// `window:300s` / `tolerance:2m` / `window:1500000us` -> microseconds.
fn duration_us(rule: &Rule, opt: &'static str) -> Result<Option<u64>, CompileError> {
    let Some(v) = rule.option(opt) else { return Ok(None) };
    let line = rule.line;
    let bad = || CompileError::BadValue { line, opt, got: v.to_string() };
    let (num, mult) = if let Some(n) = v.strip_suffix("us") {
        (n, 1)
    } else if let Some(n) = v.strip_suffix('s') {
        (n, 1_000_000)
    } else if let Some(n) = v.strip_suffix('m') {
        (n, 60_000_000)
    } else {
        (v, 1_000_000)
    };
    let n = num.parse::<u64>().map_err(|_| bad())?;
    n.checked_mul(mult).map(Some).ok_or_else(bad)
}

/// `kinds:ap-req,priv,...` -> kind list.
fn kinds(rule: &Rule) -> Result<Option<Vec<MsgKind>>, CompileError> {
    let Some(v) = rule.option("kinds") else { return Ok(None) };
    let mut out = Vec::new();
    for name in v.split(',') {
        let name = name.trim();
        match MsgKind::from_name(name) {
            Some(k) => out.push(k),
            None => {
                return Err(CompileError::UnknownKind { line: rule.line, got: name.to_string() })
            }
        }
    }
    Ok(Some(out))
}

/// `krb_ports:88,750` -> port list.
fn ports(rule: &Rule, opt: &'static str) -> Result<Option<Vec<u16>>, CompileError> {
    let Some(v) = rule.option(opt) else { return Ok(None) };
    let mut out = Vec::new();
    for p in v.split(',') {
        let p = p.trim();
        out.push(p.parse::<u16>().map_err(|_| CompileError::BadValue {
            line: rule.line,
            opt,
            got: p.to_string(),
        })?);
    }
    Ok(Some(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleSet;

    fn one(text: &str) -> Result<DetectorSpec, CompileError> {
        let rs = RuleSet::parse(text).expect("parse");
        compile(&rs).map(|mut v| v.remove(0))
    }

    #[test]
    fn compiles_every_detector_shape() {
        let s = one("alert krb any any -> any any (detector:replay; kinds:ap-req,priv; window:300s; sid:1;)").unwrap();
        assert_eq!(
            s.body,
            DetectorBody::Replay {
                window_us: 300_000_000,
                kinds: vec![MsgKind::ApReq, MsgKind::Priv]
            }
        );
        let s = one("alert krb any 37 -> any any (detector:clock-spoof; tolerance:2m; sid:2;)")
            .unwrap();
        assert_eq!(s.body, DetectorBody::ClockSpoof { tolerance_us: 120_000_000 });
        let s = one("alert krb any any -> any any (detector:cut-paste; krb_ports:88,750; sid:3;)")
            .unwrap();
        assert_eq!(
            s.body,
            DetectorBody::CutPaste { krb_ports: vec![88, 750], min_run: 16, min_stolen: 40 }
        );
        let s = one("alert krb any any -> any 88 (detector:preauth-storm; per:src; threshold:10; window:30s; sid:4;)").unwrap();
        assert_eq!(
            s.body,
            DetectorBody::PreauthStorm { window_us: 30_000_000, threshold: 10, per: Per::Src }
        );
        let s =
            one("alert krb any any -> any any (detector:crash-reuse; window:900s; sid:5;)").unwrap();
        assert_eq!(s.body, DetectorBody::CrashReuse { window_us: 900_000_000 });
    }

    #[test]
    fn typed_compile_errors() {
        assert!(matches!(
            one("alert krb any any -> any any (sid:1;)"),
            Err(CompileError::MissingDetector { line: 1 })
        ));
        assert!(matches!(
            one("alert krb any any -> any any (detector:magic; sid:1;)"),
            Err(CompileError::UnknownDetector { .. })
        ));
        assert!(matches!(
            one("alert krb any any -> any any (detector:replay; kinds:ap-req; sid:1;)"),
            Err(CompileError::MissingOption { opt: "window", .. })
        ));
        assert!(matches!(
            one("alert krb any any -> any any (detector:replay; kinds:bogus; window:1s; sid:1;)"),
            Err(CompileError::UnknownKind { .. })
        ));
        assert!(matches!(
            one("alert krb any any -> any any (detector:replay; kinds:ap-req; window:1s;)"),
            Err(CompileError::MissingSid { line: 1 })
        ));
        assert!(matches!(
            one("alert krb any any -> any any (detector:crash-reuse; window:zzz; sid:1;)"),
            Err(CompileError::BadValue { opt: "window", .. })
        ));
        assert!(matches!(compile(&RuleSet::default()), Err(CompileError::Empty)));
    }
}
