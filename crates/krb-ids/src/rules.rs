//! The detection-rule grammar and its parser.
//!
//! Rules follow the Suricata shape the snippet corpus documents for the
//! Kerberos keywords (`alert krb5 ... (msg:"..."; krb5_msg_type:10;
//! sid:3; rev:1;)`), narrowed to what the simulated wire carries:
//!
//! ```text
//! alert krb <src-addr> <src-port> -> <dst-addr> <dst-port> (option; option; ...)
//! ```
//!
//! Addresses are `any` or a dotted quad; ports are `any` or a decimal
//! port number. Options are `key:value` pairs (values optionally
//! `"quoted"`), terminated by `;`. `#` starts a comment; rules are one
//! per line.
//!
//! The parser is *total*: any input yields `Ok` or a typed
//! [`ParseError`] — never a panic. The proptests in
//! `tests/rule_props.rs` drive arbitrary bytes through it to hold that
//! line.

use std::fmt;

/// Wire message kinds a rule can match on, mirroring the one-byte
/// frame tags of the sim's wire format (`krb5_msg_type` in the
/// Suricata vocabulary).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum MsgKind {
    AsReq,
    AsRep,
    TgsReq,
    TgsRep,
    ApReq,
    ApRep,
    Err,
    Safe,
    Priv,
    ChallengeResp,
    AppData,
}

impl MsgKind {
    /// All kinds, in tag order.
    pub const ALL: [MsgKind; 11] = [
        MsgKind::AsReq,
        MsgKind::AsRep,
        MsgKind::TgsReq,
        MsgKind::TgsRep,
        MsgKind::ApReq,
        MsgKind::ApRep,
        MsgKind::Err,
        MsgKind::Safe,
        MsgKind::Priv,
        MsgKind::ChallengeResp,
        MsgKind::AppData,
    ];

    /// The rule-text name of this kind.
    pub fn name(self) -> &'static str {
        match self {
            MsgKind::AsReq => "as-req",
            MsgKind::AsRep => "as-rep",
            MsgKind::TgsReq => "tgs-req",
            MsgKind::TgsRep => "tgs-rep",
            MsgKind::ApReq => "ap-req",
            MsgKind::ApRep => "ap-rep",
            MsgKind::Err => "err",
            MsgKind::Safe => "safe",
            MsgKind::Priv => "priv",
            MsgKind::ChallengeResp => "challenge-resp",
            MsgKind::AppData => "app-data",
        }
    }

    /// Kind from a rule-text name.
    pub fn from_name(s: &str) -> Option<MsgKind> {
        MsgKind::ALL.iter().copied().find(|k| k.name() == s)
    }

    /// Kind sniffed from the first payload byte (the frame tag).
    pub fn sniff(payload: &[u8]) -> Option<MsgKind> {
        let tag = *payload.first()?;
        match tag {
            1 => Some(MsgKind::AsReq),
            2 => Some(MsgKind::AsRep),
            3 => Some(MsgKind::TgsReq),
            4 => Some(MsgKind::TgsRep),
            5 => Some(MsgKind::ApReq),
            6 => Some(MsgKind::ApRep),
            7 => Some(MsgKind::Err),
            8 => Some(MsgKind::Safe),
            9 => Some(MsgKind::Priv),
            10 => Some(MsgKind::ChallengeResp),
            11 => Some(MsgKind::AppData),
            _ => None,
        }
    }
}

/// `any` or an exact value — the header's address/port matchers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Match<T> {
    Any,
    Exact(T),
}

impl<T: PartialEq> Match<T> {
    /// Whether `v` satisfies this matcher.
    pub fn accepts(&self, v: &T) -> bool {
        match self {
            Match::Any => true,
            Match::Exact(want) => want == v,
        }
    }
}

/// One parsed rule: the header matchers plus its raw options, in
/// source order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rule {
    /// 1-based source line, for diagnostics.
    pub line: usize,
    pub src_addr: Match<String>,
    pub src_port: Match<u16>,
    pub dst_addr: Match<String>,
    pub dst_port: Match<u16>,
    /// `key -> value` options in source order (`("msg", "...")`,
    /// `("sid", "2001")`, ...). Bare options carry an empty value.
    pub options: Vec<(String, String)>,
}

impl Rule {
    /// First value of option `name`, if present.
    pub fn option(&self, name: &str) -> Option<&str> {
        self.options.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// A parsed rule file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuleSet {
    pub rules: Vec<Rule>,
}

/// Typed parse failure. Every variant carries the 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The action keyword was not `alert`.
    UnknownAction { line: usize, got: String },
    /// The protocol keyword was not `krb`.
    UnknownProto { line: usize, got: String },
    /// A structural element (arrow, parens, matcher) was missing or
    /// malformed; `what` names the element.
    Malformed { line: usize, what: &'static str },
    /// A port matcher was neither `any` nor a valid port number.
    BadPort { line: usize, got: String },
    /// An option had no key before `:` or was not terminated.
    BadOption { line: usize, got: String },
    /// Two rules carry the same `sid`.
    DuplicateSid { line: usize, sid: u64 },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnknownAction { line, got } => {
                write!(f, "line {line}: unknown action {got:?} (expected \"alert\")")
            }
            ParseError::UnknownProto { line, got } => {
                write!(f, "line {line}: unknown protocol {got:?} (expected \"krb\")")
            }
            ParseError::Malformed { line, what } => {
                write!(f, "line {line}: malformed rule: expected {what}")
            }
            ParseError::BadPort { line, got } => {
                write!(f, "line {line}: bad port matcher {got:?} (expected \"any\" or 0-65535)")
            }
            ParseError::BadOption { line, got } => {
                write!(f, "line {line}: bad option {got:?} (expected key or key:value, `;`-terminated)")
            }
            ParseError::DuplicateSid { line, sid } => {
                write!(f, "line {line}: duplicate sid {sid}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl RuleSet {
    /// Parses a rule file: one rule per non-comment line.
    pub fn parse(text: &str) -> Result<RuleSet, ParseError> {
        let mut rules = Vec::new();
        let mut sids: Vec<(u64, usize)> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let src = raw.split('#').next().unwrap_or("").trim();
            if src.is_empty() {
                continue;
            }
            let rule = parse_rule(line, src)?;
            if let Some(sid) = rule.option("sid").and_then(|v| v.parse::<u64>().ok()) {
                if sids.iter().any(|(s, _)| *s == sid) {
                    return Err(ParseError::DuplicateSid { line, sid });
                }
                sids.push((sid, line));
            }
            rules.push(rule);
        }
        Ok(RuleSet { rules })
    }
}

fn parse_rule(line: usize, src: &str) -> Result<Rule, ParseError> {
    // Header: `alert krb <addr> <port> -> <addr> <port> (`
    let (head, opts) = match src.find('(') {
        Some(i) => (&src[..i], &src[i + 1..]),
        None => return Err(ParseError::Malformed { line, what: "options in `(...)`" }),
    };
    let opts = match opts.rfind(')') {
        Some(i) => &opts[..i],
        None => return Err(ParseError::Malformed { line, what: "closing `)`" }),
    };
    let mut words = head.split_whitespace();
    let action = words.next().unwrap_or("");
    if action != "alert" {
        return Err(ParseError::UnknownAction { line, got: action.to_string() });
    }
    let proto = words.next().unwrap_or("");
    if proto != "krb" {
        return Err(ParseError::UnknownProto { line, got: proto.to_string() });
    }
    let src_addr = parse_addr(words.next(), line)?;
    let src_port = parse_port(words.next(), line)?;
    if words.next() != Some("->") {
        return Err(ParseError::Malformed { line, what: "`->` between endpoints" });
    }
    let dst_addr = parse_addr(words.next(), line)?;
    let dst_port = parse_port(words.next(), line)?;
    if words.next().is_some() {
        return Err(ParseError::Malformed { line, what: "end of header at `(`" });
    }
    let options = parse_options(line, opts)?;
    Ok(Rule { line, src_addr, src_port, dst_addr, dst_port, options })
}

fn parse_addr(w: Option<&str>, line: usize) -> Result<Match<String>, ParseError> {
    match w {
        None => Err(ParseError::Malformed { line, what: "an address matcher" }),
        Some("any") => Ok(Match::Any),
        Some(a) => Ok(Match::Exact(a.to_string())),
    }
}

fn parse_port(w: Option<&str>, line: usize) -> Result<Match<u16>, ParseError> {
    match w {
        None => Err(ParseError::Malformed { line, what: "a port matcher" }),
        Some("any") => Ok(Match::Any),
        Some(p) => match p.parse::<u16>() {
            Ok(n) => Ok(Match::Exact(n)),
            Err(_) => Err(ParseError::BadPort { line, got: p.to_string() }),
        },
    }
}

/// Splits `key:value; key; key:"quoted; value";` option lists. A `;`
/// inside double quotes does not terminate the option.
fn parse_options(line: usize, text: &str) -> Result<Vec<(String, String)>, ParseError> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chunks: Vec<String> = Vec::new();
    for c in text.chars() {
        match c {
            '"' => {
                in_quotes = !in_quotes;
                cur.push(c);
            }
            ';' if !in_quotes => {
                chunks.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if in_quotes {
        return Err(ParseError::Malformed { line, what: "closing `\"`" });
    }
    if !cur.trim().is_empty() {
        // Trailing content without a `;` terminator.
        return Err(ParseError::BadOption { line, got: cur.trim().to_string() });
    }
    for chunk in chunks {
        let chunk = chunk.trim();
        if chunk.is_empty() {
            return Err(ParseError::BadOption { line, got: ";".to_string() });
        }
        let (k, v) = match chunk.find(':') {
            Some(i) => (&chunk[..i], chunk[i + 1..].trim()),
            None => (chunk, ""),
        };
        let k = k.trim();
        if k.is_empty() || !k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-') {
            return Err(ParseError::BadOption { line, got: chunk.to_string() });
        }
        let v = v.strip_prefix('"').and_then(|s| s.strip_suffix('"')).unwrap_or(v);
        out.push((k.to_string(), v.to_string()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_suricata_shaped_rule() {
        let rs = RuleSet::parse(
            "alert krb any 37 -> any any (msg:\"time reply implausible\"; detector:clock-spoof; tolerance:120s; sid:2002;)\n",
        )
        .unwrap();
        assert_eq!(rs.rules.len(), 1);
        let r = &rs.rules[0];
        assert_eq!(r.src_port, Match::Exact(37));
        assert_eq!(r.dst_port, Match::Any);
        assert_eq!(r.option("msg"), Some("time reply implausible"));
        assert_eq!(r.option("detector"), Some("clock-spoof"));
        assert_eq!(r.option("sid"), Some("2002"));
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let rs = RuleSet::parse("# a comment\n\n  # another\n").unwrap();
        assert!(rs.rules.is_empty());
    }

    #[test]
    fn quoted_semicolons_do_not_split() {
        let rs = RuleSet::parse("alert krb any any -> any any (msg:\"a; b\"; sid:1;)").unwrap();
        assert_eq!(rs.rules[0].option("msg"), Some("a; b"));
    }

    #[test]
    fn typed_errors_name_the_line() {
        let e = RuleSet::parse("drop krb any any -> any any (sid:1;)").unwrap_err();
        assert!(matches!(e, ParseError::UnknownAction { line: 1, .. }));
        let e = RuleSet::parse("alert tcp any any -> any any (sid:1;)").unwrap_err();
        assert!(matches!(e, ParseError::UnknownProto { .. }));
        let e = RuleSet::parse("alert krb any 99999 -> any any (sid:1;)").unwrap_err();
        assert!(matches!(e, ParseError::BadPort { .. }));
        let e = RuleSet::parse("alert krb any any -> any any (sid:1)").unwrap_err();
        assert!(matches!(e, ParseError::BadOption { .. }));
        let e = RuleSet::parse(
            "alert krb any any -> any any (sid:7;)\nalert krb any any -> any any (sid:7;)",
        )
        .unwrap_err();
        assert!(matches!(e, ParseError::DuplicateSid { line: 2, sid: 7 }));
    }

    #[test]
    fn kind_names_roundtrip() {
        for k in MsgKind::ALL {
            assert_eq!(MsgKind::from_name(k.name()), Some(k));
        }
        assert_eq!(MsgKind::from_name("bogus"), None);
        assert_eq!(MsgKind::sniff(&[5, 0, 0]), Some(MsgKind::ApReq));
        assert_eq!(MsgKind::sniff(&[99]), None);
        assert_eq!(MsgKind::sniff(&[]), None);
    }
}
