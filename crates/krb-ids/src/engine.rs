//! The online detection engine: compiled rules attached as a
//! subscriber tap on a [`Tracer`].
//!
//! The engine is a *pull* consumer: [`Engine::poll`] drains the
//! subscription, runs every buffered event through every detector in
//! sequence order, then emits one `ids.alert` trace event and an
//! `ids.alerts{detector}` counter per finding. All detector state is
//! keyed by sim-time and event content only — polling cadence cannot
//! change what is detected or when the alerts are timestamped, so
//! same-seed runs produce byte-identical alert streams.
//!
//! The detectors see exactly what a wire sniffer would: datagram
//! source/destination, direction, and payload bytes (plus host-level
//! restart and preauth-failure telemetry a defender's agents would
//! export). They never read the simulator's fault/origin metadata — an
//! environment-duplicated datagram is indistinguishable from an
//! attacker's replay on a real wire, and is reported as one.

use crate::compile::{DetectorBody, DetectorSpec, Per};
use crate::rules::MsgKind;
use krb_trace::{Event, EventKind, Subscription, Tracer, Value};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One detector finding. `evidence_seq` is the trace sequence number
/// of the event that tripped the detector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Alert {
    pub detector: &'static str,
    pub sid: u64,
    pub at_us: u64,
    pub subject: String,
    pub detail: String,
    pub evidence_seq: u64,
}

/// 64-bit FNV-1a over `bytes`, from `seed`.
fn fnv64(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Two independent FNV lanes — 128 bits of payload identity, enough
/// that distinct sealed messages never collide in a sim-scale run.
fn payload_id(bytes: &[u8]) -> (u64, u64) {
    (fnv64(0xcbf2_9ce4_8422_2325, bytes), fnv64(0x6c62_272e_07bb_0142, bytes))
}

/// Dotted-quad rendering of the packed address the wire events carry.
fn fmt_ip(packed: u64) -> String {
    let a = u32::try_from(packed).unwrap_or(u32::MAX);
    format!("{}.{}.{}.{}", (a >> 24) & 255, (a >> 16) & 255, (a >> 8) & 255, a & 255)
}

/// A wire hop as the sniffer sees it.
struct Hop<'a> {
    seq: u64,
    at_us: u64,
    /// `ip:port` of the claimed source.
    src: String,
    src_addr: String,
    src_port: u16,
    /// `ip:port` of the destination.
    dst: String,
    dst_addr: String,
    dst_port: u16,
    dst_host: &'a str,
    req: bool,
    payload: &'a [u8],
    kind: Option<MsgKind>,
}

impl<'a> Hop<'a> {
    fn from_event(ev: &'a Event) -> Option<Hop<'a>> {
        if ev.kind != EventKind::WireHop {
            return None;
        }
        let src_packed = ev.u64_field("src_addr")?;
        let src_port = ev.u64_field("src_port")?;
        let dst_packed = ev.u64_field("dst_addr")?;
        let dst_port = ev.u64_field("dst_port")?;
        let payload = ev.bytes_field("payload")?.as_slice();
        let src_addr = fmt_ip(src_packed);
        let dst_addr = fmt_ip(dst_packed);
        Some(Hop {
            seq: ev.seq,
            at_us: ev.at_us,
            src: format!("{src_addr}:{src_port}"),
            src_addr,
            src_port: u16::try_from(src_port).unwrap_or(u16::MAX),
            dst: format!("{dst_addr}:{dst_port}"),
            dst_addr,
            dst_port: u16::try_from(dst_port).unwrap_or(u16::MAX),
            dst_host: ev.str_field("dst_host").unwrap_or("?"),
            req: ev.bool_field("req").unwrap_or(false),
            payload,
            kind: MsgKind::sniff(payload),
        })
    }

    /// Whether this hop passes `spec`'s header matchers.
    fn matches(&self, spec: &DetectorSpec) -> bool {
        spec.src_addr.accepts(&self.src_addr)
            && spec.src_port.accepts(&self.src_port)
            && spec.dst_addr.accepts(&self.dst_addr)
            && spec.dst_port.accepts(&self.dst_port)
    }

    fn kind_name(&self) -> &'static str {
        self.kind.map(MsgKind::name).unwrap_or("message")
    }
}

/// Where a ciphertext window was first seen.
#[derive(Clone, Debug, PartialEq, Eq)]
enum WinOrigin {
    /// In a reply; the value is the evidence sequence number.
    Reply { seq: u64 },
    /// In a request; splice-sensitive iff the destination port is not
    /// a Kerberos service port AND a later message from a *different*
    /// source re-uses it. `src` is the endpoint that first presented
    /// the material — its own retransmissions and its next tickets
    /// (which share deterministic-seal prefixes) are not theft.
    Request { seq: u64, dst_port: u16, src: String },
}

/// Per-detector mutable state.
#[derive(Debug, Default)]
struct DetectorState {
    /// replay / crash-reuse: (src, dst, payload-id) -> first-seen time.
    first_sight: BTreeMap<(String, String, u64, u64), u64>,
    /// cut-paste: 16-byte window -> first origin (first-source-wins).
    windows: BTreeMap<[u8; 16], WinOrigin>,
    /// cut-paste: full-payload ids seen anywhere, any direction.
    payloads_seen: BTreeSet<(u64, u64)>,
    /// cut-paste: (dst, payload-id) -> first source endpoint.
    stream_first: BTreeMap<(String, u64, u64), String>,
    /// preauth-storm: key -> (event times in window, alerted latch).
    storm: BTreeMap<String, (VecDeque<u64>, bool)>,
    /// crash-reuse: host name -> last restart time.
    restarts: BTreeMap<String, u64>,
}

#[derive(Debug)]
struct Detector {
    spec: DetectorSpec,
    state: DetectorState,
}

/// The rule engine. Build with [`Engine::new`] (or
/// [`crate::default_engine`]), wire it to a run with
/// [`Engine::attach`], and [`Engine::poll`] between simulation steps
/// (or once at the end — detection is cadence-independent).
#[derive(Debug)]
pub struct Engine {
    detectors: Vec<Detector>,
    tracer: Option<Tracer>,
    sub: Option<Subscription>,
    alerts: Vec<Alert>,
    events_seen: u64,
}

impl Engine {
    /// An engine over compiled detector specs.
    pub fn new(specs: Vec<DetectorSpec>) -> Engine {
        Engine {
            detectors: specs
                .into_iter()
                .map(|spec| Detector { spec, state: DetectorState::default() })
                .collect(),
            tracer: None,
            sub: None,
            alerts: Vec::new(),
            events_seen: 0,
        }
    }

    /// Subscribes to `tracer`: every event recorded from now on is
    /// observed (pre-eviction) at the next [`Engine::poll`], and
    /// alerts/metrics are emitted back through the same tracer.
    pub fn attach(&mut self, tracer: &Tracer) {
        self.sub = Some(tracer.subscribe());
        self.tracer = Some(tracer.clone());
    }

    /// Drains the subscription and runs every buffered event through
    /// every detector; returns how many alerts this poll raised.
    pub fn poll(&mut self) -> usize {
        let Some(sub) = &self.sub else { return 0 };
        let events = sub.drain();
        let mut fresh: Vec<Alert> = Vec::new();
        for ev in &events {
            // The engine's own alert events come back around the tap.
            if ev.kind == EventKind::IdsAlert {
                continue;
            }
            self.events_seen += 1;
            for d in &mut self.detectors {
                observe(&d.spec, &mut d.state, ev, &mut fresh);
            }
        }
        let raised = fresh.len();
        if let Some(t) = &self.tracer {
            if !events.is_empty() {
                t.counter("ids.events", "engine", events.len() as u64);
            }
            for a in &fresh {
                t.counter("ids.alerts", a.detector, 1);
                t.emit(
                    EventKind::IdsAlert,
                    a.at_us,
                    vec![
                        ("detector", Value::str(a.detector)),
                        ("sid", Value::U64(a.sid)),
                        ("subject", Value::str(&a.subject)),
                        ("detail", Value::str(&a.detail)),
                        ("evidence", Value::U64(a.evidence_seq)),
                    ],
                );
            }
        }
        self.alerts.append(&mut fresh);
        raised
    }

    /// Every alert raised so far, in detection order.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Total trace events observed (the `ids.events` counter's view).
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Distinct detector labels that have fired so far.
    pub fn fired(&self) -> BTreeSet<&'static str> {
        self.alerts.iter().map(|a| a.detector).collect()
    }
}

/// Routes one event into one detector.
fn observe(spec: &DetectorSpec, state: &mut DetectorState, ev: &Event, out: &mut Vec<Alert>) {
    match &spec.body {
        DetectorBody::Replay { window_us, kinds } => {
            if let Some(hop) = Hop::from_event(ev).filter(|h| h.matches(spec)) {
                observe_replay(spec, state, &hop, *window_us, kinds, out);
            }
        }
        DetectorBody::ClockSpoof { tolerance_us } => {
            if let Some(hop) = Hop::from_event(ev).filter(|h| h.matches(spec)) {
                observe_clock(spec, &hop, *tolerance_us, out);
            }
        }
        DetectorBody::CutPaste { krb_ports, min_run, min_stolen } => {
            if let Some(hop) = Hop::from_event(ev).filter(|h| h.matches(spec)) {
                observe_cut_paste(spec, state, &hop, krb_ports, *min_run, *min_stolen, out);
            }
        }
        DetectorBody::PreauthStorm { window_us, threshold, per } => match per {
            Per::Src => {
                if let Some(hop) = Hop::from_event(ev).filter(|h| h.matches(spec)) {
                    if hop.req && hop.kind == Some(MsgKind::AsReq) {
                        observe_storm(
                            spec,
                            state,
                            hop.src.clone(),
                            hop.at_us,
                            hop.seq,
                            *window_us,
                            *threshold,
                            out,
                        );
                    }
                }
            }
            Per::Principal => {
                if ev.kind == EventKind::PreauthFailed {
                    if let Some(client) = ev.str_field("client") {
                        observe_storm(
                            spec,
                            state,
                            client.to_string(),
                            ev.at_us,
                            ev.seq,
                            *window_us,
                            *threshold,
                            out,
                        );
                    }
                }
            }
        },
        DetectorBody::CrashReuse { window_us } => {
            if ev.kind == EventKind::HostRestart {
                if let Some(host) = ev.str_field("host") {
                    state.restarts.insert(host.to_string(), ev.at_us);
                }
                return;
            }
            if let Some(hop) = Hop::from_event(ev).filter(|h| h.matches(spec)) {
                observe_crash_reuse(spec, state, &hop, *window_us, out);
            }
        }
    }
}

fn push_alert(
    spec: &DetectorSpec,
    out: &mut Vec<Alert>,
    at_us: u64,
    subject: String,
    detail: String,
    seq: u64,
) {
    out.push(Alert {
        detector: spec.body.label(),
        sid: spec.sid,
        at_us,
        subject,
        detail,
        evidence_seq: seq,
    });
}

fn observe_replay(
    spec: &DetectorSpec,
    state: &mut DetectorState,
    hop: &Hop<'_>,
    window_us: u64,
    kinds: &[MsgKind],
    out: &mut Vec<Alert>,
) {
    if !hop.req {
        return;
    }
    let Some(kind) = hop.kind else { return };
    if !kinds.contains(&kind) {
        return;
    }
    let (h1, h2) = payload_id(hop.payload);
    let sight = (hop.src.clone(), hop.dst.clone(), h1, h2);
    match state.first_sight.get(&sight) {
        Some(&t0) if hop.at_us.saturating_sub(t0) <= window_us => {
            let dt = hop.at_us.saturating_sub(t0);
            push_alert(
                spec,
                out,
                hop.at_us,
                hop.src.clone(),
                format!(
                    "identical {} to {} re-sent {}.{:06}s after first sight",
                    kind.name(),
                    hop.dst,
                    dt / 1_000_000,
                    dt % 1_000_000
                ),
                hop.seq,
            );
        }
        Some(_) => {}
        None => {
            state.first_sight.insert(sight, hop.at_us);
        }
    }
}

fn observe_clock(spec: &DetectorSpec, hop: &Hop<'_>, tolerance_us: u64, out: &mut Vec<Alert>) {
    if hop.req {
        return;
    }
    let Some(chunk) = hop.payload.get(0..4) else { return };
    let Ok(raw) = <[u8; 4]>::try_from(chunk) else { return };
    let claimed_s = u32::from_be_bytes(raw) as u64;
    let claimed_us = claimed_s.saturating_mul(1_000_000);
    let skew = claimed_us.abs_diff(hop.at_us);
    if skew > tolerance_us {
        push_alert(
            spec,
            out,
            hop.at_us,
            hop.src.clone(),
            format!(
                "time reply claims {claimed_s}s but arrived at {}s ({}s apart)",
                hop.at_us / 1_000_000,
                skew / 1_000_000
            ),
            hop.seq,
        );
    }
}

fn observe_cut_paste(
    spec: &DetectorSpec,
    state: &mut DetectorState,
    hop: &Hop<'_>,
    krb_ports: &[u16],
    min_run: usize,
    min_stolen: usize,
    out: &mut Vec<Alert>,
) {
    // Windows are fixed 16-byte content keys; `min_run` only raises
    // the minimum message size worth scanning.
    if hop.payload.len() < min_run.max(16) {
        return;
    }
    let id = payload_id(hop.payload);
    let exact_copy = state.payloads_seen.contains(&id);

    if hop.req && exact_copy {
        // Exact bytes seen before. Same stream (same src): that is the
        // replay detector's case. Different src to the same
        // destination: a whole sealed message cut-and-pasted across
        // streams.
        let stream = (hop.dst.clone(), id.0, id.1);
        if let Some(first_src) = state.stream_first.get(&stream) {
            let spliceable = matches!(
                hop.kind,
                Some(MsgKind::ApReq | MsgKind::Safe | MsgKind::Priv | MsgKind::ChallengeResp)
            );
            if spliceable && first_src != &hop.src {
                let detail = format!(
                    "sealed {} first sent by {first_src} re-sent to {} from {}",
                    hop.kind_name(),
                    hop.dst,
                    hop.src
                );
                push_alert(spec, out, hop.at_us, hop.src.clone(), detail, hop.seq);
            }
        }
    } else if hop.req {
        // Fresh request bytes: scan for re-surfacing ciphertext
        // windows from earlier messages. Request-origin matches count
        // per source message: deterministic seals (v4-style, no
        // confounder) make honest messages share envelope bytes and
        // leading ciphertext blocks, so only a *long* run of someone
        // else's material — `min_stolen` windows from one foreign,
        // non-KDC-bound request — is evidence of theft.
        let mut reply_sources: BTreeSet<u64> = BTreeSet::new();
        let mut stolen_counts: BTreeMap<u64, usize> = BTreeMap::new();
        for win in hop.payload.windows(16) {
            let Ok(arr) = <[u8; 16]>::try_from(win) else { continue };
            if !lively(&arr) {
                continue;
            }
            match state.windows.get(&arr) {
                Some(WinOrigin::Reply { seq }) => {
                    reply_sources.insert(*seq);
                }
                Some(WinOrigin::Request { seq, dst_port, src })
                    if !krb_ports.contains(dst_port) && *src != hop.src =>
                {
                    *stolen_counts.entry(*seq).or_default() += 1;
                }
                Some(WinOrigin::Request { .. }) | None => {}
            }
        }
        // Deterministic best pick: highest count, then earliest source.
        let request_source = stolen_counts
            .iter()
            .filter(|(_, &n)| n >= min_stolen)
            .max_by_key(|(&seq, &n)| (n, std::cmp::Reverse(seq)))
            .map(|(&seq, &n)| (seq, n));
        let ticket_bearing = matches!(hop.kind, Some(MsgKind::TgsReq | MsgKind::ApReq));
        let sealed_session =
            matches!(hop.kind, Some(MsgKind::Safe | MsgKind::Priv | MsgKind::ChallengeResp));
        if ticket_bearing && reply_sources.len() >= 2 {
            let srcs: Vec<String> = reply_sources.iter().map(|s| format!("#{s}")).collect();
            push_alert(
                spec,
                out,
                hop.at_us,
                hop.src.clone(),
                format!(
                    "{} to {} splices ciphertext from {} distinct KDC replies ({})",
                    hop.kind_name(),
                    hop.dst,
                    reply_sources.len(),
                    srcs.join(", ")
                ),
                hop.seq,
            );
        } else if sealed_session && !reply_sources.is_empty() {
            let first = reply_sources.iter().next().copied().unwrap_or(0);
            push_alert(
                spec,
                out,
                hop.at_us,
                hop.src.clone(),
                format!("{} to {} echoes ciphertext from reply #{first}", hop.kind_name(), hop.dst),
                hop.seq,
            );
        } else if let Some((seq, n)) = request_source {
            push_alert(
                spec,
                out,
                hop.at_us,
                hop.src.clone(),
                format!(
                    "message from {} to {} re-uses {n} ciphertext windows of another \
                     endpoint's session material (request #{seq})",
                    hop.src, hop.dst
                ),
                hop.seq,
            );
        }
    }

    // Index this message (first-source-wins per window, so later
    // copies — faulted duplicates, legitimate echoes — never
    // re-attribute a window).
    if !exact_copy {
        state.payloads_seen.insert(id);
        if hop.req {
            state
                .stream_first
                .entry((hop.dst.clone(), id.0, id.1))
                .or_insert_with(|| hop.src.clone());
        }
        for win in hop.payload.windows(16) {
            let Ok(arr) = <[u8; 16]>::try_from(win) else { continue };
            if !lively(&arr) {
                continue;
            }
            let origin = if hop.req {
                WinOrigin::Request { seq: hop.seq, dst_port: hop.dst_port, src: hop.src.clone() }
            } else {
                WinOrigin::Reply { seq: hop.seq }
            };
            state.windows.entry(arr).or_insert(origin);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn observe_storm(
    spec: &DetectorSpec,
    state: &mut DetectorState,
    subject: String,
    at_us: u64,
    seq: u64,
    window_us: u64,
    threshold: u64,
    out: &mut Vec<Alert>,
) {
    let fire = {
        let (times, alerted) = state.storm.entry(subject.clone()).or_default();
        times.push_back(at_us);
        while times.front().is_some_and(|&t| at_us.saturating_sub(t) > window_us) {
            times.pop_front();
        }
        if (times.len() as u64) < threshold {
            *alerted = false;
            None
        } else if !*alerted {
            *alerted = true;
            Some(times.len())
        } else {
            None
        }
    };
    if let Some(n) = fire {
        let detail = format!("{}: {n} events inside {}s window", spec.msg, window_us / 1_000_000);
        push_alert(spec, out, at_us, subject, detail, seq);
    }
}

fn observe_crash_reuse(
    spec: &DetectorSpec,
    state: &mut DetectorState,
    hop: &Hop<'_>,
    window_us: u64,
    out: &mut Vec<Alert>,
) {
    if !hop.req || !matches!(hop.kind, Some(MsgKind::ApReq | MsgKind::ChallengeResp)) {
        return;
    }
    let (h1, h2) = payload_id(hop.payload);
    let sight = (hop.src.clone(), hop.dst.clone(), h1, h2);
    if let Some(&t0) = state.first_sight.get(&sight) {
        if let Some(&restarted) = state.restarts.get(hop.dst_host) {
            if t0 < restarted
                && hop.at_us >= restarted
                && hop.at_us.saturating_sub(restarted) <= window_us
            {
                push_alert(
                    spec,
                    out,
                    hop.at_us,
                    hop.src.clone(),
                    format!(
                        "authenticator first seen at {}s re-presented to {} {}s after its restart",
                        t0 / 1_000_000,
                        hop.dst_host,
                        hop.at_us.saturating_sub(restarted) / 1_000_000
                    ),
                    hop.seq,
                );
                return;
            }
        }
    }
    state.first_sight.entry(sight).or_insert(hop.at_us);
}

/// Entropy screen for 16-byte windows: padding and zero runs carry no
/// identity, so they neither index nor match.
fn lively(win: &[u8; 16]) -> bool {
    let mut distinct: BTreeSet<u8> = BTreeSet::new();
    for &b in win {
        distinct.insert(b);
    }
    distinct.len() >= 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{default_engine, DEFAULT_RULES};
    use krb_trace::Tracer;
    use std::sync::Arc;

    fn hop(
        t: &Tracer,
        at_us: u64,
        src: (u64, u64),
        dst: (u64, u64),
        dst_host: &str,
        req: bool,
        payload: Vec<u8>,
    ) {
        t.emit(
            EventKind::WireHop,
            at_us,
            vec![
                ("src_host", Value::str("src-host")),
                ("src_addr", Value::U64(src.0)),
                ("src_port", Value::U64(src.1)),
                ("dst_host", Value::str(dst_host)),
                ("dst_addr", Value::U64(dst.0)),
                ("dst_port", Value::U64(dst.1)),
                ("req", Value::Bool(req)),
                ("origin", Value::str("send")),
                ("payload", Value::bytes(Arc::new(payload))),
            ],
        );
    }

    fn sealed(tag: u8, fill: u8) -> Vec<u8> {
        sealed_n(tag, fill, 48)
    }

    fn sealed_n(tag: u8, fill: u8, n: u8) -> Vec<u8> {
        let mut v = vec![tag];
        v.extend((0u8..n).map(|i| i.wrapping_mul(37).wrapping_add(fill)));
        v
    }

    #[test]
    fn default_rules_compile() {
        assert!(default_engine().is_ok(), "DEFAULT_RULES must parse and compile");
        assert!(DEFAULT_RULES.contains("detector:replay"));
    }

    #[test]
    fn replay_detector_fires_on_identical_resend_only() {
        let t = Tracer::new();
        let mut eng = default_engine().unwrap();
        eng.attach(&t);
        let ap = sealed(5, 1);
        hop(&t, 1_000_000, (10, 1024), (20, 2001), "files", true, ap.clone());
        hop(&t, 2_000_000, (10, 1024), (20, 2001), "files", true, sealed(5, 2));
        eng.poll();
        assert!(eng.alerts().is_empty(), "distinct payloads must not alert");
        hop(&t, 61_000_000, (10, 1024), (20, 2001), "files", true, ap);
        eng.poll();
        let alerts = eng.alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].detector, "replay");
        assert_eq!(alerts[0].subject, "0.0.0.10:1024");
        assert_eq!(t.snapshot()["ids.alerts{replay}"], 1);
    }

    #[test]
    fn replay_ignores_as_req_retries() {
        // Client retry semantics: a lost AS-REQ is re-sent verbatim —
        // kinds: excludes as-req so retries never alias as replays.
        let t = Tracer::new();
        let mut eng = default_engine().unwrap();
        eng.attach(&t);
        let req = sealed(1, 9);
        hop(&t, 1_000_000, (10, 1024), (20, 88), "kdc", true, req.clone());
        hop(&t, 2_000_000, (10, 1024), (20, 88), "kdc", true, req);
        eng.poll();
        assert!(eng.fired().is_empty());
    }

    #[test]
    fn clock_spoof_detector_checks_claimed_time() {
        let t = Tracer::new();
        let mut eng = default_engine().unwrap();
        eng.attach(&t);
        let now_s: u32 = 1_000_000;
        // Honest time reply from port 37.
        hop(
            &t,
            now_s as u64 * 1_000_000,
            (30, 37),
            (10, 1024),
            "ws",
            false,
            now_s.to_be_bytes().to_vec(),
        );
        eng.poll();
        assert!(eng.fired().is_empty());
        // Spoofed reply: claims 11 minutes earlier.
        hop(
            &t,
            now_s as u64 * 1_000_000,
            (30, 37),
            (10, 1024),
            "ws",
            false,
            (now_s - 660).to_be_bytes().to_vec(),
        );
        eng.poll();
        assert_eq!(eng.alerts().len(), 1);
        assert_eq!(eng.alerts()[0].detector, "clock-spoof");
    }

    #[test]
    fn clock_spoof_ignores_other_ports() {
        let t = Tracer::new();
        let mut eng = default_engine().unwrap();
        eng.attach(&t);
        // An app reply that merely *looks* like a bad timestamp, from a
        // non-time port: out of rule scope.
        hop(&t, 1_000_000, (30, 2001), (10, 1024), "ws", false, vec![0, 0, 0, 1]);
        eng.poll();
        assert!(eng.fired().is_empty());
    }

    #[test]
    fn cut_paste_chimera_needs_two_reply_sources() {
        let t = Tracer::new();
        let mut eng = default_engine().unwrap();
        eng.attach(&t);
        let rep_a = sealed(2, 10);
        let rep_b = sealed(2, 200);
        hop(&t, 1_000_000, (20, 88), (10, 1024), "ws-a", false, rep_a.clone());
        hop(&t, 2_000_000, (20, 88), (11, 1024), "ws-b", false, rep_b.clone());
        // Legit TGS-REQ echoing ticket bytes from ONE reply: no alert.
        let mut legit = vec![3u8];
        legit.extend_from_slice(&rep_a[1..33]);
        legit.extend((0u8..24).map(|i| i.wrapping_mul(11).wrapping_add(3)));
        hop(&t, 3_000_000, (10, 1024), (20, 88), "kdc", true, legit);
        eng.poll();
        assert!(eng.fired().is_empty(), "one reply source is the legitimate shape");
        // Chimera: ticket bytes from BOTH replies in one request.
        let mut forged = vec![3u8];
        forged.extend_from_slice(&rep_a[1..33]);
        forged.extend_from_slice(&rep_b[1..33]);
        hop(&t, 4_000_000, (11, 1024), (20, 88), "kdc", true, forged);
        eng.poll();
        assert_eq!(eng.alerts().len(), 1);
        assert_eq!(eng.alerts()[0].detector, "cut-paste");
        assert!(eng.alerts()[0].detail.contains("2 distinct KDC replies"));
    }

    #[test]
    fn cut_paste_flags_reply_echo_and_cross_stream() {
        let t = Tracer::new();
        let mut eng = default_engine().unwrap();
        eng.attach(&t);
        // Reply-echo: a PRIV request carrying a reply's ciphertext.
        let reply = sealed(9, 77);
        hop(&t, 1_000_000, (20, 2001), (10, 1024), "ws", false, reply.clone());
        let mut echo = vec![9u8];
        echo.extend_from_slice(&reply[1..25]);
        hop(&t, 2_000_000, (66, 7000), (20, 2001), "mail", true, echo);
        eng.poll();
        assert_eq!(eng.alerts().len(), 1);
        assert!(eng.alerts()[0].detail.contains("echoes ciphertext from reply"));
        // Cross-stream: same sealed PRIV, same dst, different src.
        let msg = sealed(9, 140);
        hop(&t, 3_000_000, (10, 1024), (20, 2001), "mail", true, msg.clone());
        hop(&t, 4_000_000, (10, 1025), (20, 2001), "mail", true, msg);
        eng.poll();
        assert_eq!(eng.alerts().len(), 2);
        assert!(eng.alerts()[1].detail.contains("re-sent to"));
    }

    #[test]
    fn cut_paste_flags_stolen_material_from_new_source() {
        // An AP-REQ's sealed material (ticket + authenticator) sent to
        // an app port, then a *different* endpoint re-presenting a long
        // run of it: the stolen-material path.
        let t = Tracer::new();
        let mut eng = default_engine().unwrap();
        eng.attach(&t);
        let victim = sealed_n(5, 33, 90);
        hop(&t, 1_000_000, (10, 1024), (20, 2001), "files", true, victim.clone());
        let mut thief = vec![5u8, 0xEE, 0x17, 0x99];
        thief.extend_from_slice(&victim[1..80]); // 79 shared bytes = 64 windows
        hop(&t, 5_000_000, (66, 7000), (20, 2001), "files", true, thief);
        eng.poll();
        let alerts = eng.alerts();
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].detector, "cut-paste");
        assert!(alerts[0].detail.contains("another endpoint's session material"));
    }

    #[test]
    fn cut_paste_tolerates_deterministic_prefix_aliasing() {
        // Under a deterministic seal two honest messages share leading
        // blocks: the owner's next ticket re-uses its own prefix, and a
        // *different* user's ticket shares the envelope + service-name
        // blocks. Neither is theft — only a long foreign run alerts.
        let t = Tracer::new();
        let mut eng = default_engine().unwrap();
        eng.attach(&t);
        let first = sealed_n(5, 70, 90);
        hop(&t, 1_000_000, (10, 1024), (20, 2001), "files", true, first.clone());
        // Same source, long shared prefix (round-over-round ticket).
        let mut own_next = first[..70].to_vec();
        own_next.extend_from_slice(&sealed_n(5, 140, 40)[1..]);
        hop(&t, 2_000_000, (10, 1024), (20, 2001), "files", true, own_next);
        // Different source, short shared head (cross-user envelope +
        // leading ciphertext blocks): 29 shared bytes = 14 windows.
        let mut other_user = first[..30].to_vec();
        other_user.extend_from_slice(&sealed_n(5, 200, 60)[1..]);
        hop(&t, 3_000_000, (11, 1024), (20, 2001), "files", true, other_user);
        eng.poll();
        assert!(eng.fired().is_empty(), "{:?}", eng.alerts());
    }

    #[test]
    fn cut_paste_ignores_kdc_bound_request_structure() {
        // Two users' AS-REQs share cleartext structure (service
        // principal, realm). KDC-port sources are not splice-sensitive,
        // so the shared run must not alert.
        let t = Tracer::new();
        let mut eng = default_engine().unwrap();
        eng.attach(&t);
        let shared: Vec<u8> = (0u8..32).map(|i| i.wrapping_mul(7).wrapping_add(5)).collect();
        let mut req_a = vec![1u8, 0xAA];
        req_a.extend_from_slice(&shared);
        let mut req_b = vec![1u8, 0xBB];
        req_b.extend_from_slice(&shared);
        hop(&t, 1_000_000, (10, 1024), (20, 88), "kdc", true, req_a);
        hop(&t, 2_000_000, (11, 1024), (20, 88), "kdc", true, req_b);
        eng.poll();
        assert!(eng.fired().is_empty());
    }

    #[test]
    fn preauth_storm_latches_once_per_burst() {
        let t = Tracer::new();
        let mut eng = default_engine().unwrap();
        eng.attach(&t);
        for i in 0..20u64 {
            // Distinct nonces: each AS-REQ is a fresh payload.
            let mut req = sealed(1, i as u8);
            req.push(i as u8);
            hop(&t, 1_000_000 + i * 100_000, (10, 1024), (20, 88), "kdc", true, req);
        }
        eng.poll();
        let storm: Vec<_> = eng.alerts().iter().filter(|a| a.detector == "preauth-storm").collect();
        assert_eq!(storm.len(), 1, "one latched alert per burst, not one per packet");
    }

    #[test]
    fn preauth_storm_counts_failures_per_principal() {
        let t = Tracer::new();
        let mut eng = default_engine().unwrap();
        eng.attach(&t);
        for i in 0..10u64 {
            t.emit(
                EventKind::PreauthFailed,
                1_000_000 + i * 1_000_000,
                vec![
                    ("site", Value::str("kdc.preauth")),
                    ("client", Value::str("sam")),
                    ("error", Value::str("preauthentication failed")),
                ],
            );
        }
        eng.poll();
        let storm: Vec<_> = eng.alerts().iter().filter(|a| a.detector == "preauth-storm").collect();
        assert_eq!(storm.len(), 1);
        assert_eq!(storm[0].subject, "sam");
    }

    #[test]
    fn crash_reuse_requires_restart_between_sightings() {
        let t = Tracer::new();
        let mut eng = default_engine().unwrap();
        eng.attach(&t);
        let ap = sealed(5, 50);
        hop(&t, 1_000_000, (10, 1024), (20, 2001), "files", true, ap.clone());
        // Same bytes again with no restart: replay fires, crash-reuse not.
        hop(&t, 2_000_000, (10, 1024), (20, 2001), "files", true, ap.clone());
        eng.poll();
        assert!(!eng.fired().contains("crash-reuse"));
        t.emit(EventKind::HostRestart, 3_000_000, vec![("host", Value::str("files"))]);
        hop(&t, 4_000_000, (10, 1024), (20, 2001), "files", true, ap);
        eng.poll();
        assert!(eng.fired().contains("crash-reuse"));
        assert!(eng.fired().contains("replay"));
    }

    #[test]
    fn poll_cadence_does_not_change_alerts() {
        let drive = |poll_each: bool| -> Vec<Alert> {
            let t = Tracer::new();
            let mut eng = default_engine().unwrap();
            eng.attach(&t);
            let ap = sealed(5, 7);
            hop(&t, 1_000_000, (10, 1024), (20, 2001), "files", true, ap.clone());
            if poll_each {
                eng.poll();
            }
            hop(&t, 5_000_000, (10, 1024), (20, 2001), "files", true, ap);
            eng.poll();
            eng.alerts().to_vec()
        };
        assert_eq!(drive(true), drive(false));
    }

    #[test]
    fn alerts_emit_back_into_the_trace_without_feedback() {
        let t = Tracer::new();
        let mut eng = default_engine().unwrap();
        eng.attach(&t);
        let ap = sealed(5, 7);
        hop(&t, 1_000_000, (10, 1024), (20, 2001), "files", true, ap.clone());
        hop(&t, 2_000_000, (10, 1024), (20, 2001), "files", true, ap);
        eng.poll();
        let n = eng.alerts().len();
        assert_eq!(n, 1);
        // The emitted ids.alert event is in the trace...
        let kinds: Vec<_> = t.events().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::IdsAlert));
        // ...and re-polling (which drains it back) neither re-alerts
        // nor loops.
        eng.poll();
        eng.poll();
        assert_eq!(eng.alerts().len(), n);
    }
}
