//! Totality proptests for the rule parser and compiler: any input —
//! arbitrary bytes, mangled near-valid rules, random option soup —
//! yields `Ok` or a typed error. A panic anywhere is a test failure
//! (the krb-lint P001 contract, exercised rather than asserted).

use krb_ids::{compile, engine_from_rules, MsgKind, RuleSet};
use testkit::prop::{any, collection, string, Strategy};

/// Near-grammar fragments: much better at reaching deep parser states
/// than uniform bytes.
fn rule_soup() -> impl Strategy<Value = String> {
    let frag = testkit::prop_oneof![
        string::of("a-z0-9:;,()\"#->. ", 0..=24),
        string::of("alert krb any", 1..=13),
        string::of("0-9", 1..=6),
    ];
    collection::vec(frag, 0..8).prop_map(|parts| parts.join(" "))
}

testkit::prop! {
    /// Arbitrary bytes (lossy-decoded) never panic the parser.
    fn parser_total_on_arbitrary_bytes(bytes in collection::vec(any::<u8>(), 0..256)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = RuleSet::parse(&text);
    }

    /// Near-grammar soup never panics parser or compiler.
    fn parser_and_compiler_total_on_rule_soup(text in rule_soup()) {
        if let Ok(rules) = RuleSet::parse(&text) {
            let _ = compile(&rules);
        }
    }

    /// The end-to-end constructor is total too.
    fn engine_construction_total(text in rule_soup()) {
        let _ = engine_from_rules(&text);
    }

    /// Structured almost-valid rules: every option key the compiler
    /// knows, with arbitrary values, in arbitrary order.
    fn compiler_total_on_option_fuzz(
        detector in string::of("a-z-", 0..=16),
        window in string::of("0-9a-z", 0..=10),
        threshold in string::of("0-9", 0..=8),
        per in string::of("a-z", 0..=10),
        kinds in string::of("a-z-,", 0..=24),
        sid in string::of("0-9", 0..=8),
    ) {
        let text = format!(
            "alert krb any any -> any any (detector:{detector}; window:{window}; \
             threshold:{threshold}; per:{per}; kinds:{kinds}; sid:{sid};)"
        );
        let _ = engine_from_rules(&text);
    }

    /// Kind sniffing is total over arbitrary payload bytes.
    fn sniff_total(payload in collection::vec(any::<u8>(), 0..64)) {
        let _ = MsgKind::sniff(&payload);
    }
}
