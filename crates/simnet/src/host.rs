//! Hosts and the services they run.

use crate::clock::{Clock, SimTime};
use crate::net::{Addr, Endpoint};
use krb_trace::Tracer;
use std::collections::BTreeMap;

/// Index of a host within its network.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct HostId(pub usize);

/// Context handed to a service for one request.
#[derive(Clone, Debug)]
pub struct ServiceCtx {
    /// The *local* clock reading of the host running the service — NOT
    /// true time. Timestamp checks use this, which is what makes
    /// clock-spoofing attacks effective.
    pub local_time: SimTime,
    /// Host name, for logs.
    pub host_name: String,
    /// The address the request arrived on.
    pub host_addr: Addr,
    /// Whether this host is a multi-user machine (affects the
    /// environment-model attacks on cached credentials).
    pub multi_user: bool,
    /// The network's *true* time at delivery. Trace events are stamped
    /// with this so one run yields one totally-ordered timeline even
    /// across skewed host clocks; services must keep using
    /// [`ServiceCtx::local_time`] for protocol timestamp checks.
    pub true_time: SimTime,
    /// The network-wide tracer; services emit protocol events and
    /// per-principal metrics through it.
    pub tracer: Tracer,
    /// A pending upstream forward, set via [`ServiceCtx::forward_to`].
    /// When [`Service::handle`] returns `None` with this set, the
    /// network runs the forwarded request over the wire (latency, tap,
    /// faults all apply) and hands the outcome back to the same service
    /// through [`Service::on_forward_reply`].
    pub forward: Option<(Endpoint, Vec<u8>)>,
}

impl ServiceCtx {
    /// A detached context for driving a service outside a network
    /// (tests, robustness harnesses): true time equals local time and
    /// events go to a private tracer.
    pub fn detached(local_time: SimTime, host_name: &str, host_addr: Addr, multi_user: bool) -> Self {
        ServiceCtx {
            local_time,
            host_name: host_name.to_string(),
            host_addr,
            multi_user,
            true_time: local_time,
            tracer: Tracer::new(),
            forward: None,
        }
    }

    /// Requests that the network forward `payload` to `to` on this
    /// service's behalf (proxy/front-end pattern). Only honored when
    /// [`Service::handle`] returns `None`; a direct reply wins.
    pub fn forward_to(&mut self, to: Endpoint, payload: Vec<u8>) {
        self.forward = Some((to, payload));
    }
}

/// A network service bound to a port: handles one datagram, optionally
/// replies. All Kerberos exchanges in this reproduction are
/// query/response, matching the original UDP transport.
pub trait Service {
    /// Handles `req` from `from`; returns the reply payload, if any.
    fn handle(&mut self, ctx: &mut ServiceCtx, req: &[u8], from: Endpoint) -> Option<Vec<u8>>;

    /// Downcast support so tests and attack forensics can inspect a
    /// bound service's internal state. Implementations that want to be
    /// inspectable return `Some(self)`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }

    /// Called when the host reboots after a scheduled crash window (see
    /// [`crate::fault::FaultPlan::crash`]). The default does nothing;
    /// services with volatile state should clear it here — what survives
    /// a restart is exactly what the service chose to persist.
    fn on_restart(&mut self, _ctx: &mut ServiceCtx) {}

    /// Called with the outcome of a forward this service requested via
    /// [`ServiceCtx::forward_to`]: the upstream's reply payload, or the
    /// network error the forwarded leg died of. The return value is the
    /// reply sent to the original requester (`from`), if any. The
    /// default drops the exchange — only proxy-style services override
    /// this.
    fn on_forward_reply(
        &mut self,
        _ctx: &mut ServiceCtx,
        _upstream: Result<&[u8], &crate::net::NetError>,
        _from: Endpoint,
    ) -> Option<Vec<u8>> {
        None
    }
}

/// A machine on the network.
pub struct Host {
    /// Human-readable name.
    pub name: String,
    /// Addresses this host answers on (multi-homing: the V4 ticket
    /// address-binding problem).
    pub addrs: Vec<Addr>,
    /// This host's clock.
    pub clock: Clock,
    /// Bound services, by port.
    pub(crate) services: BTreeMap<u16, Box<dyn Service>>,
    /// Whether other users may be logged in concurrently (the paper's
    /// workstation vs. multi-user-host distinction).
    pub multi_user: bool,
}

impl Host {
    /// A single-user workstation with a synchronized clock.
    pub fn new(name: &str, addrs: Vec<Addr>) -> Self {
        Host {
            name: name.to_string(),
            addrs,
            clock: Clock::synced(),
            services: BTreeMap::new(),
            multi_user: false,
        }
    }

    /// Marks the host as multi-user (server-class machine).
    pub fn multi_user(mut self) -> Self {
        self.multi_user = true;
        self
    }

    /// Sets the host clock.
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.clock = clock;
        self
    }

    /// Binds a service to a port, replacing any previous binding.
    pub fn bind(&mut self, port: u16, service: Box<dyn Service>) {
        self.services.insert(port, service);
    }

    /// Removes the service on `port`.
    pub fn unbind(&mut self, port: u16) -> Option<Box<dyn Service>> {
        self.services.remove(&port)
    }

    /// Borrows the service bound to `port`.
    pub fn service(&self, port: u16) -> Option<&dyn Service> {
        self.services.get(&port).map(|b| b.as_ref())
    }

    /// Mutably borrows the service bound to `port`.
    pub fn service_mut(&mut self, port: u16) -> Option<&mut (dyn Service + 'static)> {
        self.services.get_mut(&port).map(|b| b.as_mut())
    }

    /// The host's primary address.
    ///
    /// # Panics
    ///
    /// Panics if the host has no addresses.
    pub fn primary_addr(&self) -> Addr {
        self.addrs[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_flags() {
        let h = Host::new("ws1", vec![Addr::new(10, 0, 0, 1)]);
        assert!(!h.multi_user);
        let m = Host::new("srv", vec![Addr::new(10, 0, 0, 2)]).multi_user();
        assert!(m.multi_user);
        assert_eq!(m.primary_addr(), Addr::new(10, 0, 0, 2));
    }

    #[test]
    fn bind_unbind() {
        struct Nop;
        impl Service for Nop {
            fn handle(&mut self, _: &mut ServiceCtx, _: &[u8], _: Endpoint) -> Option<Vec<u8>> {
                None
            }
        }
        let mut h = Host::new("x", vec![Addr::new(1, 2, 3, 4)]);
        h.bind(88, Box::new(Nop));
        assert!(h.unbind(88).is_some());
        assert!(h.unbind(88).is_none());
    }
}
