//! Time services: the unauthenticated protocol hosts actually used in
//! 1990, and an authenticated alternative.
//!
//! "Since some time synchronization protocols are unauthenticated, and
//! hosts are still using these protocols despite the existence of better
//! ones, such attacks are not difficult." The unauthenticated service
//! here is RFC-868-shaped: a 4-byte seconds value, no integrity. The
//! adversary tap can rewrite it at will, which is the lever for the
//! stale-authenticator replay attack (A3).

use crate::host::{HostId, Service, ServiceCtx};
use crate::net::{Endpoint, NetError, Network};

/// The conventional port for the time service.
pub const TIME_PORT: u16 = 37;

/// An RFC-868-style time server: replies with the server's local clock
/// reading in seconds, unauthenticated.
pub struct TimeService;

impl Service for TimeService {
    fn handle(&mut self, ctx: &mut ServiceCtx, _req: &[u8], _from: Endpoint) -> Option<Vec<u8>> {
        let secs = (ctx.local_time.0 / 1_000_000) as u32;
        Some(secs.to_be_bytes().to_vec())
    }
}

/// An authenticated time server: appends a MAC over the time value,
/// keyed with a key shared with legitimate clients. (In a full Kerberos
/// deployment this would itself be a kerberized service — the circular
/// bootstrap the paper points out; here the key is pre-shared.)
pub struct AuthTimeService {
    key: krb_key::MacKey,
}

/// A tiny keyed-MAC namespace so `simnet` does not depend on
/// `krb-crypto`. The MAC is a 64-bit mix; adequate for distinguishing
/// "adversary rewrote the bytes" in the simulation (the adversary in our
/// model cannot invert it), not a real MAC design.
pub mod krb_key {
    /// Key for the toy MAC.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct MacKey(pub u64);

    /// A 64-bit keyed mix over `data`.
    pub fn mac(key: MacKey, data: &[u8]) -> u64 {
        let mut h = key.0 ^ 0x9e37_79b9_7f4a_7c15;
        for &b in data {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
            h ^= h >> 29;
        }
        h
    }
}

impl AuthTimeService {
    /// A server sharing `key` with its clients.
    pub fn new(key: krb_key::MacKey) -> Self {
        AuthTimeService { key }
    }
}

impl Service for AuthTimeService {
    fn handle(&mut self, ctx: &mut ServiceCtx, req: &[u8], _from: Endpoint) -> Option<Vec<u8>> {
        let secs = (ctx.local_time.0 / 1_000_000) as u32;
        let mut reply = secs.to_be_bytes().to_vec();
        // Echo the client's nonce under the MAC to prevent replay of old
        // time responses.
        let mut mac_input = reply.clone();
        mac_input.extend_from_slice(req);
        reply.extend_from_slice(&krb_key::mac(self.key, &mac_input).to_be_bytes());
        Some(reply)
    }
}

/// Outcome of a time synchronization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncOutcome {
    /// The host accepted the server's time.
    Synced,
    /// The (authenticated) reply failed verification and was ignored.
    Rejected,
}

/// Synchronizes `host`'s clock from an unauthenticated time server: the
/// host believes whatever 4-byte value arrives.
/// Reads a big-endian u32 from the first 4 bytes (length pre-checked).
fn be_u32(b: &[u8]) -> u32 {
    let mut a = [0u8; 4];
    a.copy_from_slice(&b[..4]);
    u32::from_be_bytes(a)
}

/// Reads a big-endian u64 from the first 8 bytes (length pre-checked).
fn be_u64(b: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[..8]);
    u64::from_be_bytes(a)
}

pub fn sync_unauthenticated(
    net: &mut Network,
    host: HostId,
    server: Endpoint,
) -> Result<SyncOutcome, NetError> {
    let from = Endpoint::new(net.host(host).primary_addr(), 1023);
    let reply = net.rpc(from, server, b"time?".to_vec())?;
    if reply.len() < 4 {
        return Err(NetError::NoReply);
    }
    let secs = be_u32(&reply);
    let target = crate::clock::SimTime(u64::from(secs) * 1_000_000);
    let true_now = net.now();
    net.host_mut(host).clock.sync_to(true_now, target);
    Ok(SyncOutcome::Synced)
}

/// Synchronizes from an authenticated server; forged or tampered replies
/// are rejected and the clock is left alone.
pub fn sync_authenticated(
    net: &mut Network,
    host: HostId,
    server: Endpoint,
    key: krb_key::MacKey,
    nonce: u64,
) -> Result<SyncOutcome, NetError> {
    let from = Endpoint::new(net.host(host).primary_addr(), 1023);
    let reply = net.rpc(from, server, nonce.to_be_bytes().to_vec())?;
    if reply.len() < 12 {
        return Ok(SyncOutcome::Rejected);
    }
    let secs = be_u32(&reply);
    let claimed_mac = be_u64(&reply[4..]);
    let mut mac_input = reply[..4].to_vec();
    mac_input.extend_from_slice(&nonce.to_be_bytes());
    // Constant-time MAC check: fold the difference to a single word
    // before branching (krb-lint C001).
    let diff = krb_key::mac(key, &mac_input) ^ claimed_mac;
    if diff != 0 {
        return Ok(SyncOutcome::Rejected);
    }
    let target = crate::clock::SimTime(u64::from(secs) * 1_000_000);
    let true_now = net.now();
    net.host_mut(host).clock.sync_to(true_now, target);
    Ok(SyncOutcome::Synced)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{ScriptedTap, Verdict};
    use crate::clock::{Clock, SimDuration, SimTime};
    use crate::host::Host;
    use crate::net::{Addr, Datagram, Network};

    fn build() -> (Network, HostId, Endpoint) {
        let mut net = Network::new();
        let ws = net.add_host(
            Host::new("ws", vec![Addr::new(10, 0, 0, 1)]).with_clock(Clock::skewed(3_000_000, 0)),
        );
        let mut ts = Host::new("timehost", vec![Addr::new(10, 0, 0, 9)]);
        ts.bind(TIME_PORT, Box::new(TimeService));
        net.add_host(ts);
        (net, ws, Endpoint::new(Addr::new(10, 0, 0, 9), TIME_PORT))
    }

    #[test]
    fn unauthenticated_sync_corrects_skew() {
        let (mut net, ws, server) = build();
        net.advance(SimDuration::from_secs(100));
        assert_ne!(net.host_time(ws), net.now());
        sync_unauthenticated(&mut net, ws, server).unwrap();
        // Local now matches the server's second-granularity reading.
        let diff = net.host_time(ws).abs_diff(net.now());
        assert!(diff < SimDuration::from_secs(2), "diff {diff:?}");
    }

    #[test]
    fn unauthenticated_sync_is_spoofable() {
        let (mut net, ws, server) = build();
        net.advance(SimDuration::from_secs(1000));
        // The adversary rewrites the reply: "it is now t - 600s".
        net.set_tap(Box::new(ScriptedTap::new(|d: &mut Datagram, _| {
            if d.src.port == TIME_PORT {
                let old = u32::from_be_bytes(d.payload[..4].try_into().unwrap());
                d.payload[..4].copy_from_slice(&(old - 600).to_be_bytes());
            }
            Verdict::Deliver
        })));
        sync_unauthenticated(&mut net, ws, server).unwrap();
        // The workstation's clock is now ~10 minutes slow.
        let behind = net.now().abs_diff(net.host_time(ws));
        assert!(behind > SimDuration::from_secs(590), "behind {behind:?}");
    }

    #[test]
    fn authenticated_sync_rejects_spoof() {
        let mut net = Network::new();
        let key = krb_key::MacKey(0xdead_beef_cafe_f00d);
        let ws = net.add_host(
            Host::new("ws", vec![Addr::new(10, 0, 0, 1)]).with_clock(Clock::skewed(3_000_000, 0)),
        );
        let mut ts = Host::new("timehost", vec![Addr::new(10, 0, 0, 9)]);
        ts.bind(TIME_PORT, Box::new(AuthTimeService::new(key)));
        net.add_host(ts);
        let server = Endpoint::new(Addr::new(10, 0, 0, 9), TIME_PORT);

        net.advance(SimDuration::from_secs(1000));
        net.set_tap(Box::new(ScriptedTap::new(|d: &mut Datagram, _| {
            if d.src.port == TIME_PORT {
                let old = u32::from_be_bytes(d.payload[..4].try_into().unwrap());
                d.payload[..4].copy_from_slice(&(old - 600).to_be_bytes());
            }
            Verdict::Deliver
        })));
        let before = net.host(ws).clock.offset_us();
        let out = sync_authenticated(&mut net, ws, server, key, 42).unwrap();
        assert_eq!(out, SyncOutcome::Rejected);
        assert_eq!(net.host(ws).clock.offset_us(), before);
    }

    #[test]
    fn authenticated_sync_accepts_genuine() {
        let mut net = Network::new();
        let key = krb_key::MacKey(7);
        let ws = net.add_host(
            Host::new("ws", vec![Addr::new(10, 0, 0, 1)]).with_clock(Clock::skewed(-2_000_000, 0)),
        );
        let mut ts = Host::new("timehost", vec![Addr::new(10, 0, 0, 9)]);
        ts.bind(TIME_PORT, Box::new(AuthTimeService::new(key)));
        net.add_host(ts);
        let server = Endpoint::new(Addr::new(10, 0, 0, 9), TIME_PORT);
        net.advance(SimDuration::from_secs(50));
        let out = sync_authenticated(&mut net, ws, server, key, 1).unwrap();
        assert_eq!(out, SyncOutcome::Synced);
        assert!(net.host_time(ws).abs_diff(net.now()) < SimDuration::from_secs(2));
    }

    #[test]
    fn auth_reply_nonce_prevents_time_replay() {
        // A recorded old authenticated reply cannot satisfy a new nonce.
        let key = krb_key::MacKey(9);
        let mut old_reply = 100u32.to_be_bytes().to_vec();
        let mut mac_in = old_reply.clone();
        mac_in.extend_from_slice(&1u64.to_be_bytes());
        old_reply.extend_from_slice(&krb_key::mac(key, &mac_in).to_be_bytes());

        // Verify against nonce 2: mismatch.
        let secs_bytes = &old_reply[..4];
        let claimed = u64::from_be_bytes(old_reply[4..12].try_into().unwrap());
        let mut check = secs_bytes.to_vec();
        check.extend_from_slice(&2u64.to_be_bytes());
        assert_ne!(krb_key::mac(key, &check), claimed);
    }

    #[test]
    fn time_service_reports_local_not_true_time() {
        let mut net = Network::new();
        // The time server itself can be skewed — trusting it propagates
        // the skew.
        let mut ts = Host::new("t", vec![Addr::new(1, 1, 1, 1)]).with_clock(Clock::skewed(60_000_000, 0));
        ts.bind(TIME_PORT, Box::new(TimeService));
        net.add_host(ts);
        net.add_host(Host::new("c", vec![Addr::new(1, 1, 1, 2)]));
        let reply = net
            .rpc(
                Endpoint::new(Addr::new(1, 1, 1, 2), 1023),
                Endpoint::new(Addr::new(1, 1, 1, 1), TIME_PORT),
                vec![],
            )
            .unwrap();
        let secs = u32::from_be_bytes(reply[..4].try_into().unwrap());
        assert!(secs >= 60);
        let _ = SimTime(0);
    }
}
