//! # simnet
//!
//! A deterministic simulated network for the Kerberos-limitations
//! reproduction. It substitutes for MIT's campus network while granting
//! the adversary exactly the powers the paper's threat model assumes:
//!
//! - **Passive wiretap** — every datagram is recorded in
//!   [`net::Network::traffic_log`].
//! - **Active wiretap** — an in-path [`adversary::Tap`] may rewrite or
//!   drop any datagram.
//! - **Forgery & replay** — [`net::Network::inject`] puts arbitrary
//!   datagrams (any source address) on the wire.
//! - **Clock games** — per-host [`clock::Clock`]s with offset and drift,
//!   synced through spoofable ([`time::TimeService`]) or authenticated
//!   ([`time::AuthTimeService`]) time protocols.
//! - **Blind spoofing** — [`stream`] reproduces the 4.2BSD
//!   predictable-ISN stream layer of Morris '85.

//! - **Environment faults** — a seeded [`fault::FaultPlan`] injects
//!   loss, duplication, reordering, delay, corruption, partitions, and
//!   host crash/restart events, deterministically and distinctly from
//!   the adversary.

pub mod adversary;
pub mod clock;
pub mod fault;
pub mod host;
pub mod net;
pub mod stream;
pub mod time;

pub use adversary::{RecordingTap, ScriptedTap, Tap, Verdict};
pub use clock::{Clock, SimDuration, SimTime};
pub use fault::{FaultKind, FaultPlan, FaultStats, LinkFaults};
pub use host::{Host, HostId, Service, ServiceCtx};
pub use krb_trace::Tracer;
pub use net::{Addr, Datagram, Endpoint, NetError, Network, TrafficRecord};
