//! Deterministic fault injection: the network as an *environment*
//! hazard, distinct from the adversary.
//!
//! The paper's threat model grants the adversary total control of the
//! wire, but a real campus network also misbehaves on its own: UDP
//! datagrams are lost, duplicated, reordered, delayed, and occasionally
//! corrupted; links partition; servers crash and reboot. A [`FaultPlan`]
//! is a seeded schedule of exactly those hazards. It composes with the
//! in-path [`crate::adversary::Tap`] (the tap sees every original
//! datagram first — faults happen downstream of the wiretap point), and
//! every fault is annotated in the traffic log.
//!
//! Division of powers, by design:
//!
//! - **FaultPlan** (the environment): random per-link loss, duplication,
//!   reordering, delay, bit corruption; scheduled partitions; host
//!   crash/restart windows. All decisions come from a seeded generator —
//!   replaying a seed replays the exact fault schedule.
//! - **Tap / inject** (the adversary): targeted inspection, rewriting,
//!   dropping, forgery, and replay. Adversary traffic sent through
//!   [`crate::net::Network::send_oneway`] and
//!   [`crate::net::Network::inject`] bypasses the fault layer entirely —
//!   the adversary writes to the wire directly and is not at the mercy
//!   of last-hop packet loss. Only the query/response path
//!   ([`crate::net::Network::rpc`]) is faulted.

use crate::clock::SimTime;
use crate::net::Addr;

/// SplitMix64, inlined so `simnet` stays dependency-free. Same
/// algorithm as the testkit RNG base, so fault schedules replay from
/// the same kind of seed.
#[derive(Clone, Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// True with probability `p` (clamped to [0, 1]).
    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            // Still consume a draw so toggling one rate does not shift
            // every later decision in the schedule.
            self.next();
            return false;
        }
        if p >= 1.0 {
            self.next();
            return true;
        }
        ((self.next() >> 11) as f64) < p * (1u64 << 53) as f64
    }

    /// Uniform draw in `[0, n)`; 0 when `n == 0`.
    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.next() % n
    }
}

/// Per-link fault probabilities and magnitudes. All probabilities are
/// per-datagram and independent; the first that fires wins, checked in
/// the order: drop, duplicate, reorder, corrupt, delay.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LinkFaults {
    /// Probability the datagram is silently lost.
    pub drop: f64,
    /// Probability the datagram is delivered twice (the copy arrives
    /// one latency later).
    pub duplicate: f64,
    /// Probability the datagram is held back and delivered late, out of
    /// order with respect to traffic sent after it.
    pub reorder: f64,
    /// Probability one payload byte is flipped in transit.
    pub corrupt: f64,
    /// Probability the datagram is delayed (but stays in order).
    pub delay: f64,
    /// Maximum extra latency for a delayed datagram, µs.
    pub delay_max_us: u64,
    /// How long a reordered datagram is held before late delivery, µs.
    pub reorder_hold_us: u64,
}

impl LinkFaults {
    /// A perfect link: no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// A uniformly lossy link: `rate` applied to drop, duplication, and
    /// reordering, with sensible hold/delay magnitudes.
    pub fn lossy(rate: f64) -> Self {
        LinkFaults {
            drop: rate,
            duplicate: rate,
            reorder: rate,
            corrupt: 0.0,
            delay: 0.0,
            delay_max_us: 50_000,
            reorder_hold_us: 40_000,
        }
    }

    fn is_zero(&self) -> bool {
        self.drop <= 0.0
            && self.duplicate <= 0.0
            && self.reorder <= 0.0
            && self.corrupt <= 0.0
            && self.delay <= 0.0
    }
}

/// What the fault layer did to a datagram, for traffic-log annotation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Lost in transit.
    Dropped,
    /// A duplicate delivery of an earlier datagram.
    Duplicated,
    /// Held back and delivered out of order.
    Reordered,
    /// Payload corrupted (one byte flipped).
    Corrupted,
    /// Delivered in order but late.
    Delayed,
    /// Blocked by a scheduled link partition.
    Partitioned,
    /// The destination host was crashed at delivery time.
    HostDown,
}

impl FaultKind {
    /// Stable lowercase label used in trace events.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Dropped => "dropped",
            FaultKind::Duplicated => "duplicated",
            FaultKind::Reordered => "reordered",
            FaultKind::Corrupted => "corrupted",
            FaultKind::Delayed => "delayed",
            FaultKind::Partitioned => "partitioned",
            FaultKind::HostDown => "host_down",
        }
    }

    /// Inverse of [`FaultKind::label`].
    pub fn from_label(s: &str) -> Option<FaultKind> {
        match s {
            "dropped" => Some(FaultKind::Dropped),
            "duplicated" => Some(FaultKind::Duplicated),
            "reordered" => Some(FaultKind::Reordered),
            "corrupted" => Some(FaultKind::Corrupted),
            "delayed" => Some(FaultKind::Delayed),
            "partitioned" => Some(FaultKind::Partitioned),
            "host_down" => Some(FaultKind::HostDown),
            _ => None,
        }
    }
}

/// Lifetime fault counters, for tables and soak reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Datagrams lost.
    pub dropped: u64,
    /// Duplicate copies created.
    pub duplicated: u64,
    /// Datagrams held for out-of-order delivery.
    pub reordered: u64,
    /// Datagrams corrupted.
    pub corrupted: u64,
    /// Datagrams delayed in order.
    pub delayed: u64,
    /// Datagrams blocked by partitions.
    pub partitioned: u64,
    /// Deliveries refused because the host was down.
    pub host_down: u64,
    /// Host restarts processed (crash windows that ended).
    pub restarts: u64,
}

/// The outcome of one per-datagram decision.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum FaultDecision {
    /// Deliver untouched.
    Deliver,
    /// Lose it.
    Drop,
    /// Deliver it, and also deliver a copy later.
    Duplicate,
    /// Hold it for `hold_us`, delivering out of order.
    Reorder {
        /// Hold time, µs.
        hold_us: u64,
    },
    /// Flip a payload byte chosen by `noise`.
    Corrupt {
        /// Deterministic corruption selector.
        noise: u64,
    },
    /// Deliver after `extra_us` of additional latency.
    Delay {
        /// Extra latency, µs.
        extra_us: u64,
    },
}

/// A scheduled crash window: the host at `addr` is unreachable from
/// `from` until `until`; on the first delivery attempt after `until`
/// every service on the host observes a restart.
#[derive(Clone, Debug)]
struct CrashWindow {
    addr: Addr,
    from: SimTime,
    until: SimTime,
    restart_pending: bool,
}

/// A scheduled bidirectional partition between two addresses.
#[derive(Clone, Debug)]
struct Partition {
    a: Addr,
    b: Addr,
    from: SimTime,
    until: SimTime,
}

/// A seeded, deterministic fault schedule for a [`crate::net::Network`].
#[derive(Clone, Debug)]
pub struct FaultPlan {
    rng: SplitMix64,
    default_faults: LinkFaults,
    /// Directed (src, dst) overrides, first match wins.
    links: Vec<((Addr, Addr), LinkFaults)>,
    partitions: Vec<Partition>,
    crashes: Vec<CrashWindow>,
    /// Lifetime counters.
    pub stats: FaultStats,
}

impl FaultPlan {
    /// A plan with no faults anywhere: behaviorally identical to having
    /// no plan at all (the zero-fault determinism guarantee).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            rng: SplitMix64(seed),
            default_faults: LinkFaults::none(),
            links: Vec::new(),
            partitions: Vec::new(),
            crashes: Vec::new(),
            stats: FaultStats::default(),
        }
    }

    /// Sets the fault rates applied to every link without an override.
    pub fn with_default(mut self, faults: LinkFaults) -> Self {
        self.default_faults = faults;
        self
    }

    /// Overrides the fault rates for the directed link `src -> dst`.
    pub fn with_link(mut self, src: Addr, dst: Addr, faults: LinkFaults) -> Self {
        self.links.push(((src, dst), faults));
        self
    }

    /// Overrides the fault rates in both directions between two hosts.
    pub fn with_link_both(self, a: Addr, b: Addr, faults: LinkFaults) -> Self {
        self.with_link(a, b, faults).with_link(b, a, faults)
    }

    /// Schedules a bidirectional partition between `a` and `b` during
    /// `[from, until)`.
    pub fn partition(mut self, a: Addr, b: Addr, from: SimTime, until: SimTime) -> Self {
        self.partitions.push(Partition { a, b, from, until });
        self
    }

    /// Schedules a crash of the host at `addr` during `[from, until)`.
    /// While down the host answers nothing; the first delivery attempt
    /// after `until` triggers [`crate::host::Service::on_restart`] on
    /// every service bound to the host.
    pub fn crash(mut self, addr: Addr, from: SimTime, until: SimTime) -> Self {
        self.crashes.push(CrashWindow { addr, from, until, restart_pending: true });
        self
    }

    fn faults_for(&self, src: Addr, dst: Addr) -> LinkFaults {
        self.links
            .iter()
            .find(|((s, d), _)| *s == src && *d == dst)
            .map(|(_, f)| *f)
            .unwrap_or(self.default_faults)
    }

    /// Whether `a <-> b` is partitioned at `now`.
    pub(crate) fn partitioned(&mut self, a: Addr, b: Addr, now: SimTime) -> bool {
        let hit = self.partitions.iter().any(|p| {
            now >= p.from && now < p.until && ((p.a == a && p.b == b) || (p.a == b && p.b == a))
        });
        if hit {
            self.stats.partitioned += 1;
        }
        hit
    }

    /// Whether the host at `addr` is crashed at `now`.
    pub(crate) fn host_down(&mut self, addr: Addr, now: SimTime) -> bool {
        let down = self.crashes.iter().any(|c| c.addr == addr && now >= c.from && now < c.until);
        if down {
            self.stats.host_down += 1;
        }
        down
    }

    /// Consumes a pending restart for `addr`: true exactly once per
    /// crash window, on the first call after the window has ended.
    pub(crate) fn take_restart(&mut self, addr: Addr, now: SimTime) -> bool {
        let mut fired = false;
        for c in &mut self.crashes {
            if c.addr == addr && c.restart_pending && now >= c.until {
                c.restart_pending = false;
                fired = true;
            }
        }
        if fired {
            self.stats.restarts += 1;
        }
        fired
    }

    /// Decides the fate of one datagram on `src -> dst`. Consumes a
    /// fixed number of random draws per probability so schedules stay
    /// stable under rate tweaks.
    pub(crate) fn decide(&mut self, src: Addr, dst: Addr) -> FaultDecision {
        let f = self.faults_for(src, dst);
        if f.is_zero() {
            return FaultDecision::Deliver;
        }
        if self.rng.chance(f.drop) {
            self.stats.dropped += 1;
            return FaultDecision::Drop;
        }
        if self.rng.chance(f.duplicate) {
            self.stats.duplicated += 1;
            return FaultDecision::Duplicate;
        }
        if self.rng.chance(f.reorder) {
            self.stats.reordered += 1;
            let hold = f.reorder_hold_us.max(1);
            return FaultDecision::Reorder { hold_us: hold / 2 + self.rng.below(hold / 2 + 1) };
        }
        if self.rng.chance(f.corrupt) {
            self.stats.corrupted += 1;
            return FaultDecision::Corrupt { noise: self.rng.next() };
        }
        if self.rng.chance(f.delay) {
            self.stats.delayed += 1;
            return FaultDecision::Delay { extra_us: self.rng.below(f.delay_max_us.max(1)) };
        }
        FaultDecision::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_always_delivers() {
        let mut p = FaultPlan::new(42);
        for _ in 0..1000 {
            assert_eq!(p.decide(Addr::new(1, 0, 0, 1), Addr::new(1, 0, 0, 2)), FaultDecision::Deliver);
        }
        assert_eq!(p.stats, FaultStats::default());
    }

    #[test]
    fn same_seed_same_schedule() {
        let a_src = Addr::new(10, 0, 0, 1);
        let a_dst = Addr::new(10, 0, 0, 2);
        let run = |seed| {
            let mut p = FaultPlan::new(seed).with_default(LinkFaults::lossy(0.3));
            (0..200).map(|_| p.decide(a_src, a_dst)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn link_override_beats_default() {
        let mut p = FaultPlan::new(1)
            .with_default(LinkFaults::lossy(1.0))
            .with_link(Addr::new(1, 1, 1, 1), Addr::new(2, 2, 2, 2), LinkFaults::none());
        // The overridden link never faults; the default link always does.
        for _ in 0..50 {
            assert_eq!(p.decide(Addr::new(1, 1, 1, 1), Addr::new(2, 2, 2, 2)), FaultDecision::Deliver);
            assert_ne!(p.decide(Addr::new(3, 3, 3, 3), Addr::new(4, 4, 4, 4)), FaultDecision::Deliver);
        }
    }

    #[test]
    fn lossy_rates_are_roughly_honored() {
        let mut p = FaultPlan::new(99).with_default(LinkFaults { drop: 0.2, ..LinkFaults::none() });
        let n = 10_000;
        for _ in 0..n {
            p.decide(Addr::new(1, 0, 0, 1), Addr::new(1, 0, 0, 2));
        }
        let rate = p.stats.dropped as f64 / n as f64;
        assert!((0.17..0.23).contains(&rate), "drop rate {rate}");
    }

    #[test]
    fn partition_window_applies_both_directions() {
        let a = Addr::new(1, 0, 0, 1);
        let b = Addr::new(1, 0, 0, 2);
        let mut p = FaultPlan::new(0).partition(a, b, SimTime(100), SimTime(200));
        assert!(!p.partitioned(a, b, SimTime(99)));
        assert!(p.partitioned(a, b, SimTime(100)));
        assert!(p.partitioned(b, a, SimTime(150)));
        assert!(!p.partitioned(a, b, SimTime(200)));
    }

    #[test]
    fn crash_window_and_single_restart() {
        let h = Addr::new(1, 0, 0, 9);
        let mut p = FaultPlan::new(0).crash(h, SimTime(10), SimTime(20));
        assert!(!p.host_down(h, SimTime(9)));
        assert!(p.host_down(h, SimTime(10)));
        assert!(!p.take_restart(h, SimTime(15)));
        assert!(!p.host_down(h, SimTime(20)));
        assert!(p.take_restart(h, SimTime(20)));
        assert!(!p.take_restart(h, SimTime(21)), "restart fires exactly once");
    }
}
