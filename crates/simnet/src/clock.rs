//! Simulated time and per-host clocks.
//!
//! "The security of Kerberos depends critically on synchronized clocks."
//! Each host owns a [`Clock`] that derives its local reading from the
//! network's true time plus a settable offset and a drift rate. The time
//! services in [`crate::time`] adjust offsets; the adversary can spoof
//! the unauthenticated one.

/// A point in simulated time, in microseconds since the simulation epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds. Negative spans are
/// expressed at use sites via [`Clock::set_offset_us`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// Milliseconds constructor.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Seconds constructor.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Minutes constructor.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000_000)
    }

    /// The span in whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }
}

impl SimTime {
    /// Adds a duration.
    pub fn plus(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }

    /// Absolute difference between two times.
    pub fn abs_diff(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.abs_diff(other.0))
    }

    /// Saturating subtraction of a duration.
    pub fn minus(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

/// A host's clock: local = true + offset + drift.
#[derive(Clone, Debug, Default)]
pub struct Clock {
    offset_us: i64,
    /// Drift in parts per million of true elapsed time.
    drift_ppm: i64,
}

impl Clock {
    /// A perfectly synchronized clock.
    pub fn synced() -> Self {
        Clock { offset_us: 0, drift_ppm: 0 }
    }

    /// A clock with a fixed offset (positive = fast) and drift rate.
    pub fn skewed(offset_us: i64, drift_ppm: i64) -> Self {
        Clock { offset_us, drift_ppm }
    }

    /// Reads the local time given the network's true time.
    pub fn now(&self, true_time: SimTime) -> SimTime {
        let drift = (true_time.0 as i64).saturating_mul(self.drift_ppm) / 1_000_000;
        let local = true_time.0 as i64 + self.offset_us + drift;
        SimTime(local.max(0) as u64)
    }

    /// Overwrites the offset so that the local reading at `true_time`
    /// becomes `target` (what a time-sync protocol does).
    pub fn sync_to(&mut self, true_time: SimTime, target: SimTime) {
        let drift = (true_time.0 as i64).saturating_mul(self.drift_ppm) / 1_000_000;
        self.offset_us = target.0 as i64 - true_time.0 as i64 - drift;
    }

    /// Directly sets the offset in microseconds.
    pub fn set_offset_us(&mut self, offset_us: i64) {
        self.offset_us = offset_us;
    }

    /// Current offset in microseconds.
    pub fn offset_us(&self) -> i64 {
        self.offset_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synced_clock_tracks_truth() {
        let c = Clock::synced();
        assert_eq!(c.now(SimTime(1_000_000)), SimTime(1_000_000));
    }

    #[test]
    fn offset_applies() {
        let c = Clock::skewed(5_000_000, 0);
        assert_eq!(c.now(SimTime(1_000_000)), SimTime(6_000_000));
        let slow = Clock::skewed(-500_000, 0);
        assert_eq!(slow.now(SimTime(1_000_000)), SimTime(500_000));
    }

    #[test]
    fn negative_local_clamps_to_zero() {
        let c = Clock::skewed(-10_000_000, 0);
        assert_eq!(c.now(SimTime(1_000_000)), SimTime(0));
    }

    #[test]
    fn drift_accumulates() {
        // 100 ppm fast: after 10^6 us true, +100 us.
        let c = Clock::skewed(0, 100);
        assert_eq!(c.now(SimTime(1_000_000)), SimTime(1_000_100));
        assert_eq!(c.now(SimTime(10_000_000)), SimTime(10_001_000));
    }

    #[test]
    fn sync_to_cancels_skew() {
        let mut c = Clock::skewed(123_456, 42);
        let t = SimTime(9_999_999);
        c.sync_to(t, SimTime(5_000_000));
        assert_eq!(c.now(t), SimTime(5_000_000));
    }

    #[test]
    fn durations() {
        assert_eq!(SimDuration::from_secs(2).0, 2_000_000);
        assert_eq!(SimDuration::from_mins(5).as_secs(), 300);
        assert_eq!(SimTime(10).plus(SimDuration(5)), SimTime(15));
        assert_eq!(SimTime(10).abs_diff(SimTime(4)), SimDuration(6));
        assert_eq!(SimTime(3).minus(SimDuration(10)), SimTime(0));
    }
}
