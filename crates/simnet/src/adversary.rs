//! The in-path adversary.
//!
//! A [`Tap`] sits on the wire and sees every datagram before delivery.
//! It may pass, rewrite, or drop each one. Combined with the traffic log
//! (passive capture) and [`crate::net::Network::inject`] (forgery and
//! replay), this grants the adversary the full powers the paper assumes:
//! "the network is ... under the complete control of an adversary".

use crate::clock::SimTime;
use crate::net::Datagram;

/// What to do with an intercepted datagram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver (possibly after in-place modification).
    Deliver,
    /// Silently discard.
    Drop,
}

/// An in-path wiretap.
pub trait Tap {
    /// Called for every datagram crossing the wire. May mutate the
    /// datagram in place before returning [`Verdict::Deliver`].
    fn on_packet(&mut self, dgram: &mut Datagram, now: SimTime) -> Verdict;

    /// Downcast support so attack code can recover a concrete tap from
    /// [`crate::net::Network::take_tap`].
    fn as_any(&self) -> &dyn std::any::Any;
}

/// A purely passive tap that copies every datagram it sees.
#[derive(Default)]
pub struct RecordingTap {
    /// Everything observed, in order.
    pub captured: Vec<(SimTime, Datagram)>,
}

impl RecordingTap {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// All captured datagrams destined for `port`.
    pub fn to_port(&self, port: u16) -> Vec<&Datagram> {
        self.captured.iter().map(|(_, d)| d).filter(|d| d.dst.port == port).collect()
    }
}

impl Tap for RecordingTap {
    fn on_packet(&mut self, dgram: &mut Datagram, now: SimTime) -> Verdict {
        self.captured.push((now, dgram.clone()));
        Verdict::Deliver
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// An active tap driven by a closure: the general-purpose
/// man-in-the-middle used by the attack library.
pub struct ScriptedTap<F>
where
    F: FnMut(&mut Datagram, SimTime) -> Verdict,
{
    script: F,
}

impl<F> ScriptedTap<F>
where
    F: FnMut(&mut Datagram, SimTime) -> Verdict,
{
    /// Wraps a closure as a tap.
    pub fn new(script: F) -> Self {
        ScriptedTap { script }
    }
}

impl<F> Tap for ScriptedTap<F>
where
    F: FnMut(&mut Datagram, SimTime) -> Verdict + 'static,
{
    fn on_packet(&mut self, dgram: &mut Datagram, now: SimTime) -> Verdict {
        (self.script)(dgram, now)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{Host, Service, ServiceCtx};
    use crate::net::{Addr, Endpoint, NetError, Network};

    struct Echo;
    impl Service for Echo {
        fn handle(&mut self, _: &mut ServiceCtx, req: &[u8], _: Endpoint) -> Option<Vec<u8>> {
            Some(req.to_vec())
        }
    }

    fn build() -> (Network, Endpoint, Endpoint) {
        let mut net = Network::new();
        let a = Addr::new(10, 0, 0, 1);
        let b = Addr::new(10, 0, 0, 2);
        net.add_host(Host::new("client", vec![a]));
        let mut server = Host::new("server", vec![b]);
        server.bind(7, Box::new(Echo));
        net.add_host(server);
        (net, Endpoint::new(a, 1024), Endpoint::new(b, 7))
    }

    #[test]
    fn recording_tap_sees_everything() {
        let (mut net, c, s) = build();
        net.set_tap(Box::new(RecordingTap::new()));
        net.rpc(c, s, b"one".to_vec()).unwrap();
        net.rpc(c, s, b"two".to_vec()).unwrap();
        let tap = net.take_tap().unwrap();
        let rec = tap.as_any().downcast_ref::<RecordingTap>().unwrap();
        assert_eq!(rec.captured.len(), 4); // 2 requests + 2 replies
        assert_eq!(rec.to_port(7).len(), 2);
    }

    #[test]
    fn scripted_tap_modifies_in_flight() {
        let (mut net, c, s) = build();
        net.set_tap(Box::new(ScriptedTap::new(|d: &mut Datagram, _| {
            if d.dst.port == 7 {
                d.payload = b"EVIL".to_vec().into();
            }
            Verdict::Deliver
        })));
        let reply = net.rpc(c, s, b"good".to_vec()).unwrap();
        assert_eq!(reply, b"EVIL");
    }

    #[test]
    fn scripted_tap_drops() {
        let (mut net, c, s) = build();
        net.set_tap(Box::new(ScriptedTap::new(|_: &mut Datagram, _| Verdict::Drop)));
        assert_eq!(net.rpc(c, s, b"x".to_vec()), Err(NetError::Dropped));
    }

    #[test]
    fn drop_only_one_direction() {
        let (mut net, c, s) = build();
        // Drop replies only: the request reaches the server (side
        // effects happen) but the client never learns. The caller must
        // see this as the ambiguous `ReplyLost`, not `Dropped` — retry
        // logic that treats it as "never sent" would violate
        // at-most-once semantics.
        net.set_tap(Box::new(ScriptedTap::new(|d: &mut Datagram, _| {
            if d.src.port == 7 {
                Verdict::Drop
            } else {
                Verdict::Deliver
            }
        })));
        assert_eq!(net.rpc(c, s, b"x".to_vec()), Err(NetError::ReplyLost));
    }
}
