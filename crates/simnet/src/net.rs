//! The network core: addresses, datagrams, routing, and the adversary's
//! hooks.
//!
//! The threat model is the paper's: "the protocols should be secure even
//! if the network is under the complete control of an adversary." Every
//! datagram that crosses the network is recorded in a traffic log the
//! attack code can read (passive wiretap), passes through an optional
//! in-path [`crate::adversary::Tap`] that may drop or rewrite it (active
//! wiretap), and can be re-sent later with any source address via
//! [`Network::inject`] (replay / spoofing). Nothing about a source
//! address is authenticated, exactly as on a 1990 campus network.
//!
//! Independently of the adversary, an optional seeded
//! [`crate::fault::FaultPlan`] models the *environment*: random loss,
//! duplication, reordering, delay, corruption, partitions, and host
//! crashes on the query/response path. See [`crate::fault`] for the
//! division of powers between the two.

use crate::adversary::{Tap, Verdict};
use crate::clock::{SimDuration, SimTime};
use crate::fault::{FaultDecision, FaultKind, FaultPlan};
use crate::host::{Host, HostId, ServiceCtx};
use krb_trace::{EventKind, Tracer, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A network address (an IPv4-style 32-bit value).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr(pub u32);

impl Addr {
    /// Convenience constructor from dotted-quad-style parts.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Addr(u32::from_be_bytes([a, b, c, d]))
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0.to_be_bytes();
        write!(f, "{}.{}.{}.{}", b[0], b[1], b[2], b[3])
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A (address, port) pair.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Endpoint {
    /// Network address.
    pub addr: Addr,
    /// Port number.
    pub port: u16,
}

impl Endpoint {
    /// Constructor.
    pub fn new(addr: Addr, port: u16) -> Self {
        Endpoint { addr, port }
    }
}

/// A datagram payload: shared, cheaply cloneable bytes.
///
/// The delivery path clones every datagram at least once (into the
/// traffic log) and faulted runs clone again for duplicates, reorders,
/// and late replies. Sharing the buffer turns all of those bookkeeping
/// clones into reference-count bumps; bytes are copied only when a
/// holder actually mutates (copy-on-write via [`Arc::make_mut`]) or
/// explicitly exports with [`Payload::to_vec`].
///
/// Derefs to `[u8]` both ways, so reads (`.first()`, slicing,
/// `.starts_with`) and in-place edits (`p[i] ^= x`, `p.swap(a, b)`)
/// work as they did when this was a `Vec<u8>`.
#[derive(Clone, PartialEq, Eq)]
pub struct Payload(Arc<Vec<u8>>);

impl Payload {
    /// Wraps owned bytes.
    pub fn new(bytes: Vec<u8>) -> Self {
        Payload(Arc::new(bytes))
    }

    /// Copies the bytes out (the one deliberate copy at API boundaries).
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.as_ref().clone()
    }

    /// Borrows the bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// The shared buffer itself (a refcount bump) — how the trace
    /// records payloads without copying them.
    pub fn shared(&self) -> Arc<Vec<u8>> {
        Arc::clone(&self.0)
    }

    /// Rewraps a shared buffer (the inverse of [`Payload::shared`]).
    pub fn from_shared(bytes: Arc<Vec<u8>>) -> Self {
        Payload(bytes)
    }
}

impl std::ops::Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl std::ops::DerefMut for Payload {
    fn deref_mut(&mut self) -> &mut [u8] {
        Arc::make_mut(&mut self.0).as_mut_slice()
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        Payload::new(v)
    }
}

impl From<&[u8]> for Payload {
    fn from(v: &[u8]) -> Self {
        Payload::new(v.to_vec())
    }
}

impl<const N: usize> From<&[u8; N]> for Payload {
    fn from(v: &[u8; N]) -> Self {
        Payload::new(v.to_vec())
    }
}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Payload {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Payload {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other as &[u8]
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// One datagram on the wire.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Datagram {
    /// Claimed source (forgeable!).
    pub src: Endpoint,
    /// Destination.
    pub dst: Endpoint,
    /// Payload bytes.
    pub payload: Payload,
}

/// An entry in the traffic log: what crossed the wire, and when (true
/// time).
#[derive(Clone, Debug)]
pub struct TrafficRecord {
    /// When the datagram crossed the network, in true time.
    pub at: SimTime,
    /// The datagram as actually delivered (post-tap).
    pub dgram: Datagram,
    /// Whether this was a request (`true`) or a reply.
    pub is_request: bool,
    /// What the fault layer did to this datagram, if anything. `None`
    /// for clean deliveries and for adversary (tap) drops.
    pub fault: Option<FaultKind>,
}

/// Network-level errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// No host owns the destination address.
    NoRoute(Addr),
    /// The destination host has no service on that port.
    PortClosed(Endpoint),
    /// The request was lost before reaching the server: the side effect
    /// definitely did NOT happen.
    Dropped,
    /// The service did not produce a reply.
    NoReply,
    /// The request was delivered and processed, but the reply was lost:
    /// the side effect DID happen. Retry logic must treat this as an
    /// ambiguous outcome, not "never sent". (A real client cannot tell
    /// this from [`NetError::Dropped`]; the simulator surfaces the
    /// distinction so tests can assert at-most-once semantics.)
    ReplyLost,
    /// The caller's patience window expired before an answer arrived
    /// (the datagram may still be delivered later): ambiguous outcome.
    TimedOut,
    /// The destination host is crashed (scheduled fault window).
    HostDown(Addr),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::NoRoute(a) => write!(f, "no route to {a}"),
            NetError::PortClosed(e) => write!(f, "port closed: {}:{}", e.addr, e.port),
            NetError::Dropped => write!(f, "datagram dropped in transit"),
            NetError::NoReply => write!(f, "no reply from service"),
            NetError::ReplyLost => write!(f, "reply lost in transit (request was processed)"),
            NetError::TimedOut => write!(f, "request timed out"),
            NetError::HostDown(a) => write!(f, "host {a} is down"),
        }
    }
}

impl std::error::Error for NetError {}

/// How long an undeliverable in-flight datagram survives past its due
/// time before the simulator discards it.
const STALE_TTL_US: u64 = 60_000_000;

/// Longest chain of [`crate::host::ServiceCtx::forward_to`] hops one
/// request may traverse before the network refuses to recurse further
/// (loop guard for misconfigured proxy meshes).
const MAX_FORWARD_DEPTH: u32 = 4;

/// A datagram held by the fault layer: a duplicate copy, a reordered
/// original, or a reply nobody was waiting for.
#[derive(Clone, Debug)]
struct StaleDgram {
    /// When it becomes deliverable.
    due: SimTime,
    dgram: Datagram,
    is_request: bool,
    kind: FaultKind,
    /// Trace sequence number of the wire event this datagram descends
    /// from (the original of a duplicate, the held copy of a reorder) —
    /// the causal parent of its eventual delivery.
    parent: u64,
}

/// Outcome of one transit leg (tap + fault layer). Delivered and Held
/// carry the wire event's trace sequence number for causal linking.
enum LegOutcome {
    /// Delivered to the destination side.
    Delivered(Datagram, u64),
    /// Lost (tap drop, fault drop, or partition).
    Lost,
    /// Held by the fault layer for later delivery.
    Held,
}

/// The simulated network.
pub struct Network {
    hosts: Vec<Host>,
    addr_map: BTreeMap<Addr, HostId>,
    true_time: SimTime,
    /// Fixed one-way latency applied to every hop.
    pub latency: SimDuration,
    tap: Option<Box<dyn Tap>>,
    tracer: Tracer,
    /// Wire events at or after this trace sequence number form the
    /// visible [`Network::traffic_log`] view; `clear_log` advances it.
    log_from_seq: u64,
    fault: Option<FaultPlan>,
    /// Datagrams in flight past their exchange: duplicates, reordered
    /// originals, and late replies.
    stale: Vec<StaleDgram>,
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

impl Network {
    /// An empty network at time zero.
    pub fn new() -> Self {
        Network {
            hosts: Vec::new(),
            addr_map: BTreeMap::new(),
            true_time: SimTime(0),
            latency: SimDuration::from_millis(2),
            tap: None,
            tracer: Tracer::new(),
            log_from_seq: 0,
            fault: None,
            stale: Vec::new(),
        }
    }

    /// Adds a host; its addresses must be unique on the network.
    ///
    /// # Panics
    ///
    /// Panics if any of the host's addresses is already claimed.
    pub fn add_host(&mut self, host: Host) -> HostId {
        let id = HostId(self.hosts.len());
        for &a in &host.addrs {
            let prev = self.addr_map.insert(a, id);
            assert!(prev.is_none(), "duplicate address {a}");
        }
        self.hosts.push(host);
        id
    }

    /// Installs the in-path adversary tap (replacing any previous one).
    pub fn set_tap(&mut self, tap: Box<dyn Tap>) {
        self.tap = Some(tap);
    }

    /// Removes and returns the tap, for inspection of recorded state.
    pub fn take_tap(&mut self) -> Option<Box<dyn Tap>> {
        self.tap.take()
    }

    /// Installs the environment fault plan (replacing any previous one).
    /// A plan with all-zero rates and no windows behaves exactly like no
    /// plan at all.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = Some(plan);
    }

    /// Removes and returns the fault plan, e.g. to read its stats.
    pub fn take_fault_plan(&mut self) -> Option<FaultPlan> {
        self.fault.take()
    }

    /// Borrows the installed fault plan.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// Whether an environment fault plan is installed. Clients use this
    /// to decide whether a garbled reply could be the network's fault
    /// (retry) or must be genuine (fail).
    pub fn faults_enabled(&self) -> bool {
        self.fault.is_some()
    }

    /// The network's true time.
    pub fn now(&self) -> SimTime {
        self.true_time
    }

    /// Advances true time.
    pub fn advance(&mut self, d: SimDuration) {
        self.true_time = self.true_time.plus(d);
    }

    /// Local clock reading of a host.
    pub fn host_time(&self, id: HostId) -> SimTime {
        self.hosts[id.0].clock.now(self.true_time)
    }

    /// Immutable host access.
    pub fn host(&self, id: HostId) -> &Host {
        &self.hosts[id.0]
    }

    /// Mutable host access.
    pub fn host_mut(&mut self, id: HostId) -> &mut Host {
        &mut self.hosts[id.0]
    }

    /// Looks up the host owning `addr`.
    pub fn host_by_addr(&self, addr: Addr) -> Option<HostId> {
        self.addr_map.get(&addr).copied()
    }

    /// The shared tracer: every wire hop, fault, and service-level
    /// protocol event of this network feeds it. The handle stays valid
    /// (and keeps its events) after the network is dropped.
    pub fn tracer(&self) -> Tracer {
        self.tracer.clone()
    }

    /// The full traffic log (the passive wiretap): a typed view over
    /// the trace's `wire.hop` events since the last
    /// [`Network::clear_log`]. The event layer is the primary record;
    /// this view is what replay/cracking attack code iterates.
    pub fn traffic_log(&self) -> Vec<TrafficRecord> {
        self.tracer
            .events()
            .into_iter()
            .filter(|e| e.kind == EventKind::WireHop && e.seq >= self.log_from_seq)
            .filter_map(|e| {
                let src = Endpoint::new(
                    Addr(e.u64_field("src_addr")? as u32),
                    e.u64_field("src_port")? as u16,
                );
                let dst = Endpoint::new(
                    Addr(e.u64_field("dst_addr")? as u32),
                    e.u64_field("dst_port")? as u16,
                );
                let payload = Payload::from_shared(Arc::clone(e.bytes_field("payload")?));
                Some(TrafficRecord {
                    at: SimTime(e.at_us),
                    dgram: Datagram { src, dst, payload },
                    is_request: e.bool_field("req")?,
                    fault: e.str_field("fault").and_then(FaultKind::from_label),
                })
            })
            .collect()
    }

    /// Resets the traffic-log view (the trace itself is append-only;
    /// earlier events stay available to sinks).
    pub fn clear_log(&mut self) {
        self.log_from_seq = self.tracer.next_seq();
    }

    /// Records one wire hop as a trace event and bumps the per-host
    /// datagram/byte counters; returns the event's sequence number for
    /// causal linking. Purely observational — consumes no randomness,
    /// advances no clock.
    fn wire_event(
        &self,
        dgram: &Datagram,
        is_request: bool,
        fault: Option<FaultKind>,
        origin: &'static str,
        parent: Option<u64>,
    ) -> u64 {
        let host_name = |a: Addr| -> String {
            match self.addr_map.get(&a) {
                Some(id) => self.hosts[id.0].name.clone(),
                None => format!("external({a})"),
            }
        };
        let dst_host = host_name(dgram.dst.addr);
        let mut fields = vec![
            ("src_host", Value::str(host_name(dgram.src.addr))),
            ("src_addr", Value::U64(dgram.src.addr.0 as u64)),
            ("src_port", Value::U64(dgram.src.port as u64)),
            ("dst_host", Value::str(dst_host.clone())),
            ("dst_addr", Value::U64(dgram.dst.addr.0 as u64)),
            ("dst_port", Value::U64(dgram.dst.port as u64)),
            ("req", Value::Bool(is_request)),
            ("origin", Value::str(origin)),
        ];
        if let Some(k) = fault {
            fields.push(("fault", Value::str(k.label())));
        }
        if let Some(p) = parent {
            fields.push(("parent", Value::U64(p)));
        }
        fields.push(("payload", Value::bytes(dgram.payload.shared())));
        self.tracer.counter("net.datagrams", &dst_host, 1);
        self.tracer.counter("net.bytes", &dst_host, dgram.payload.len() as u64);
        if let Some(k) = fault {
            self.tracer.counter("net.faults", k.label(), 1);
        }
        self.tracer.emit(EventKind::WireHop, self.true_time.0, fields)
    }

    /// Sends `payload` from `from` to `to` and waits for the (single)
    /// reply: the universal query/response primitive. Both directions
    /// cross the adversary and the fault layer.
    pub fn rpc(&mut self, from: Endpoint, to: Endpoint, payload: Vec<u8>) -> Result<Vec<u8>, NetError> {
        self.rpc_with_timeout(from, to, payload, None)
    }

    /// [`Network::rpc`] with an explicit patience window: if more than
    /// `timeout` elapses before the reply is in hand (delay faults), the
    /// caller gives up with [`NetError::TimedOut`] and the reply — if
    /// one is still in flight — may surface during a later exchange.
    pub fn rpc_with_timeout(
        &mut self,
        from: Endpoint,
        to: Endpoint,
        payload: Vec<u8>,
        timeout: Option<SimDuration>,
    ) -> Result<Vec<u8>, NetError> {
        let start = self.true_time;
        if self.fault.is_some() {
            // Datagrams held from earlier exchanges arrive first.
            self.pump();
        }
        let request = Datagram { src: from, dst: to, payload: payload.into() };
        let delivered = match self.transit(request, true, true) {
            LegOutcome::Delivered(d, _) => d,
            LegOutcome::Lost => return Err(NetError::Dropped),
            // The request is still in flight; its fate is unknown.
            LegOutcome::Held => return Err(NetError::TimedOut),
        };
        let reply = self.dispatch(delivered)?.ok_or(NetError::NoReply)?;
        match self.transit(reply, false, true) {
            LegOutcome::Delivered(d, seq) => {
                if let Some(t) = timeout {
                    if self.true_time.0.saturating_sub(start.0) > t.0 {
                        // Too late: the caller already gave up; the
                        // reply stays in flight.
                        self.stale.push(StaleDgram {
                            due: self.true_time,
                            dgram: d,
                            is_request: false,
                            kind: FaultKind::Delayed,
                            parent: seq,
                        });
                        return Err(NetError::TimedOut);
                    }
                }
                // The awaited reply arrived: older duplicates still in
                // flight stay queued (the caller reads until it sees a
                // matching reply, discarding strays).
                Ok(d.payload.to_vec())
            }
            outcome @ (LegOutcome::Lost | LegOutcome::Held) => {
                // The fresh reply went missing. If an older reply from
                // this same peer is in flight (a duplicate or reorder
                // from an earlier exchange), the caller reads THAT one
                // instead — it is on the caller's own matching logic
                // (nonces) to notice the substitution.
                if let Some(s) =
                    if self.fault.is_some() { self.pop_due_stale_reply(from, to) } else { None }
                {
                    self.wire_event(&s.dgram, false, Some(s.kind), "stale", Some(s.parent));
                    return Ok(s.dgram.payload.to_vec());
                }
                match outcome {
                    LegOutcome::Lost => Err(NetError::ReplyLost),
                    _ => Err(NetError::TimedOut),
                }
            }
        }
    }

    /// Sends a datagram without expecting a reply (e.g. one-way
    /// notifications). Returns the service's optional reply payload
    /// *undelivered* — used by attack code that impersonates. Adversary
    /// sends bypass the fault layer (raw wire access).
    pub fn send_oneway(&mut self, from: Endpoint, to: Endpoint, payload: Vec<u8>) -> Result<(), NetError> {
        let d = Datagram { src: from, dst: to, payload: payload.into() };
        match self.transit(d, true, false) {
            LegOutcome::Delivered(d, _) => {
                self.dispatch(d)?;
                Ok(())
            }
            _ => Err(NetError::Dropped),
        }
    }

    /// The adversary's injection primitive: put an arbitrary datagram on
    /// the wire — any source address, any content (forgery, replay) —
    /// and collect the reply the victim service produces, if the reply
    /// routes somewhere the adversary can see. Injection does NOT pass
    /// the tap (the adversary does not attack itself) nor the fault
    /// layer (raw wire access), but IS logged.
    pub fn inject(&mut self, dgram: Datagram) -> Result<Option<Vec<u8>>, NetError> {
        let seq = self.wire_event(&dgram, true, None, "inject", None);
        let reply = self.dispatch(dgram)?;
        if let Some(r) = &reply {
            self.wire_event(r, false, None, "send", Some(seq));
        }
        Ok(reply.map(|d| d.payload.to_vec()))
    }

    /// Delivers every held datagram that has come due: duplicate and
    /// reordered requests reach their destination (late side effects);
    /// the replies they provoke go into flight as late replies. Held
    /// datagrams past their TTL are discarded.
    pub fn pump(&mut self) {
        if self.stale.is_empty() {
            return;
        }
        let now = self.true_time;
        let mut keep = Vec::new();
        let mut due_requests = Vec::new();
        for s in std::mem::take(&mut self.stale) {
            if now.0 > s.due.0 + STALE_TTL_US {
                continue; // expired in flight
            }
            if s.is_request && s.due <= now {
                due_requests.push(s);
            } else {
                keep.push(s);
            }
        }
        // Stable order: by due time, ties by original insertion order.
        due_requests.sort_by_key(|s| s.due);
        self.stale = keep;
        for s in due_requests {
            let seq = self.wire_event(&s.dgram, true, Some(s.kind), "stale", Some(s.parent));
            if let Ok(Some(reply)) = self.dispatch(s.dgram) {
                self.stale.push(StaleDgram {
                    due: SimTime(now.0 + self.latency.0),
                    dgram: reply,
                    is_request: false,
                    kind: s.kind,
                    parent: seq,
                });
            }
        }
    }

    /// Pops the earliest-due held reply addressed to `to` and claiming
    /// to come from `peer`, if any is deliverable now. The source match
    /// models a connected UDP socket: a stale duplicate from the KDC
    /// cannot be mistaken for an application server's reply — only for
    /// a later reply from the KDC itself (which the client's nonce
    /// matching then sorts out).
    fn pop_due_stale_reply(&mut self, to: Endpoint, peer: Endpoint) -> Option<StaleDgram> {
        let now = self.true_time;
        let mut best: Option<usize> = None;
        for (i, s) in self.stale.iter().enumerate() {
            if !s.is_request
                && s.due <= now
                && s.dgram.dst == to
                && s.dgram.src == peer
                && best.is_none_or(|b| self.stale[b].due > s.due)
            {
                best = Some(i);
            }
        }
        best.map(|i| self.stale.remove(i))
    }

    /// Runs one datagram across the wire: latency, adversary tap, and
    /// (for the rpc path) the fault layer.
    fn transit(&mut self, mut dgram: Datagram, is_request: bool, faulted: bool) -> LegOutcome {
        self.advance(self.latency);
        // The adversary taps the wire upstream of the lossy last hop:
        // it sees every original datagram exactly once, before the
        // environment has a chance to mangle it.
        if let Some(mut tap) = self.tap.take() {
            let verdict = tap.on_packet(&mut dgram, self.true_time);
            self.tap = Some(tap);
            match verdict {
                Verdict::Deliver => {}
                Verdict::Drop => {
                    self.wire_event(&dgram, is_request, None, "tap.drop", None);
                    return LegOutcome::Lost;
                }
            }
        }
        if faulted {
            if let Some(mut plan) = self.fault.take() {
                let outcome = self.apply_fault(&mut plan, dgram, is_request);
                self.fault = Some(plan);
                return outcome;
            }
        }
        let seq = self.wire_event(&dgram, is_request, None, "send", None);
        LegOutcome::Delivered(dgram, seq)
    }

    /// The fault-layer half of [`Network::transit`].
    fn apply_fault(&mut self, plan: &mut FaultPlan, mut dgram: Datagram, is_request: bool) -> LegOutcome {
        let now = self.true_time;
        if plan.partitioned(dgram.src.addr, dgram.dst.addr, now) {
            self.wire_event(&dgram, is_request, Some(FaultKind::Partitioned), "send", None);
            return LegOutcome::Lost;
        }
        match plan.decide(dgram.src.addr, dgram.dst.addr) {
            FaultDecision::Deliver => {
                let seq = self.wire_event(&dgram, is_request, None, "send", None);
                LegOutcome::Delivered(dgram, seq)
            }
            FaultDecision::Drop => {
                self.wire_event(&dgram, is_request, Some(FaultKind::Dropped), "send", None);
                LegOutcome::Lost
            }
            FaultDecision::Duplicate => {
                // The original delivers now; its duplicate goes into
                // flight carrying the original's trace seq as causal
                // parent, so the late redelivery is attributable.
                let seq = self.wire_event(&dgram, is_request, None, "send", None);
                self.stale.push(StaleDgram {
                    due: SimTime(now.0 + self.latency.0),
                    dgram: dgram.clone(),
                    is_request,
                    kind: FaultKind::Duplicated,
                    parent: seq,
                });
                LegOutcome::Delivered(dgram, seq)
            }
            FaultDecision::Reorder { hold_us } => {
                let seq =
                    self.wire_event(&dgram, is_request, Some(FaultKind::Reordered), "send", None);
                self.stale.push(StaleDgram {
                    due: SimTime(now.0 + hold_us),
                    dgram,
                    is_request,
                    kind: FaultKind::Reordered,
                    parent: seq,
                });
                LegOutcome::Held
            }
            FaultDecision::Corrupt { noise } => {
                if !dgram.payload.is_empty() {
                    let idx = (noise as usize) % dgram.payload.len();
                    // Guarantee a real flip.
                    dgram.payload[idx] ^= ((noise >> 32) as u8) | 1;
                }
                let seq =
                    self.wire_event(&dgram, is_request, Some(FaultKind::Corrupted), "send", None);
                LegOutcome::Delivered(dgram, seq)
            }
            FaultDecision::Delay { extra_us } => {
                self.advance(SimDuration(extra_us));
                let seq =
                    self.wire_event(&dgram, is_request, Some(FaultKind::Delayed), "send", None);
                LegOutcome::Delivered(dgram, seq)
            }
        }
    }

    /// Hands a datagram to the destination service and returns its reply.
    fn dispatch(&mut self, dgram: Datagram) -> Result<Option<Datagram>, NetError> {
        self.dispatch_at(dgram, 0)
    }

    /// [`Network::dispatch`] with a forward-chain depth: a service that
    /// requests a forward ([`ServiceCtx::forward_to`]) re-enters here
    /// one level deeper, and chains longer than
    /// [`MAX_FORWARD_DEPTH`] are refused rather than recursed.
    fn dispatch_at(&mut self, dgram: Datagram, depth: u32) -> Result<Option<Datagram>, NetError> {
        let hid = self.host_by_addr(dgram.dst.addr).ok_or(NetError::NoRoute(dgram.dst.addr))?;
        if let Some(mut plan) = self.fault.take() {
            let down = plan.host_down(dgram.dst.addr, self.true_time);
            let rebooted = !down && plan.take_restart(dgram.dst.addr, self.true_time);
            self.fault = Some(plan);
            if down {
                self.tracer.emit(
                    EventKind::HostDown,
                    self.true_time.0,
                    vec![
                        ("host", Value::str(self.hosts[hid.0].name.clone())),
                        ("port", Value::U64(dgram.dst.port as u64)),
                    ],
                );
                return Err(NetError::HostDown(dgram.dst.addr));
            }
            if rebooted {
                self.restart_host(hid, dgram.dst.addr);
            }
        }
        // Temporarily detach the service to satisfy the borrow checker.
        let mut service = self.hosts[hid.0]
            .services
            .remove(&dgram.dst.port)
            .ok_or(NetError::PortClosed(dgram.dst))?;

        let host = &self.hosts[hid.0];
        let mut ctx = ServiceCtx {
            local_time: host.clock.now(self.true_time),
            host_name: host.name.clone(),
            host_addr: dgram.dst.addr,
            multi_user: host.multi_user,
            true_time: self.true_time,
            tracer: self.tracer.clone(),
            forward: None,
        };
        let mut reply = service.handle(&mut ctx, &dgram.payload, dgram.src);
        if let (None, Some((up, fwd_payload))) = (&reply, ctx.forward.take()) {
            // Proxy leg: the forwarded request keeps the ORIGINAL
            // client as its source (transparent forwarding), so the
            // backend's per-source accounting and any address binding
            // still see the real client. Both forwarded legs cross the
            // wire like any other traffic: latency, the adversary tap,
            // and the fault plan all apply.
            let upstream = self.forward_leg(dgram.src, dgram.dst, up, fwd_payload, depth);
            let host = &self.hosts[hid.0];
            let mut fctx = ServiceCtx {
                // Re-read the clock: the forwarded round trip advanced
                // time.
                local_time: host.clock.now(self.true_time),
                host_name: host.name.clone(),
                host_addr: dgram.dst.addr,
                multi_user: host.multi_user,
                true_time: self.true_time,
                tracer: self.tracer.clone(),
                forward: None,
            };
            reply = match &upstream {
                Ok(bytes) => service.on_forward_reply(&mut fctx, Ok(bytes), dgram.src),
                Err(e) => service.on_forward_reply(&mut fctx, Err(e), dgram.src),
            };
        }
        self.hosts[hid.0].services.insert(dgram.dst.port, service);

        Ok(reply.map(|payload| Datagram { src: dgram.dst, dst: dgram.src, payload: payload.into() }))
    }

    /// Runs one forwarded request leg on behalf of a proxy service at
    /// `via`: `src -> to` across the wire, dispatch at the upstream,
    /// and the upstream's reply carried back to the proxy.
    fn forward_leg(
        &mut self,
        src: Endpoint,
        via: Endpoint,
        to: Endpoint,
        payload: Vec<u8>,
        depth: u32,
    ) -> Result<Vec<u8>, NetError> {
        if depth + 1 >= MAX_FORWARD_DEPTH {
            // A forwarding loop (or an absurdly deep proxy chain) is
            // refused rather than recursed into.
            return Err(NetError::NoRoute(to.addr));
        }
        let request = Datagram { src, dst: to, payload: payload.into() };
        let delivered = match self.transit(request, true, true) {
            LegOutcome::Delivered(d, _) => d,
            LegOutcome::Lost => return Err(NetError::Dropped),
            LegOutcome::Held => return Err(NetError::TimedOut),
        };
        let mut upstream_reply =
            self.dispatch_at(delivered, depth + 1)?.ok_or(NetError::NoReply)?;
        // The upstream addressed its reply to the original client; it
        // physically travels back to the proxy, which is what the trace
        // should show.
        upstream_reply.dst = via;
        match self.transit(upstream_reply, false, true) {
            LegOutcome::Delivered(d, _) => Ok(d.payload.to_vec()),
            LegOutcome::Lost => Err(NetError::ReplyLost),
            LegOutcome::Held => Err(NetError::TimedOut),
        }
    }

    /// Runs [`crate::host::Service::on_restart`] on every service bound
    /// to a host that has come back from a crash window. Volatile
    /// in-memory state is the service's to lose.
    fn restart_host(&mut self, hid: HostId, addr: Addr) {
        self.tracer.emit(
            EventKind::HostRestart,
            self.true_time.0,
            vec![("host", Value::str(self.hosts[hid.0].name.clone()))],
        );
        self.tracer.counter("net.restarts", &self.hosts[hid.0].name, 1);
        let mut ports: Vec<u16> = self.hosts[hid.0].services.keys().copied().collect();
        ports.sort_unstable();
        for port in ports {
            let Some(mut service) = self.hosts[hid.0].services.remove(&port) else { continue };
            let host = &self.hosts[hid.0];
            let mut ctx = ServiceCtx {
                local_time: host.clock.now(self.true_time),
                host_name: host.name.clone(),
                host_addr: addr,
                multi_user: host.multi_user,
                true_time: self.true_time,
                tracer: self.tracer.clone(),
                forward: None,
            };
            service.on_restart(&mut ctx);
            self.hosts[hid.0].services.insert(port, service);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::LinkFaults;
    use crate::host::Service;

    /// A service that replies with its payload reversed.
    struct Echo;
    impl Service for Echo {
        fn handle(&mut self, _ctx: &mut ServiceCtx, req: &[u8], _from: Endpoint) -> Option<Vec<u8>> {
            let mut v = req.to_vec();
            v.reverse();
            Some(v)
        }
    }

    fn build() -> (Network, Endpoint, Endpoint) {
        let mut net = Network::new();
        let a = Addr::new(10, 0, 0, 1);
        let b = Addr::new(10, 0, 0, 2);
        net.add_host(Host::new("client", vec![a]));
        let mut server = Host::new("server", vec![b]);
        server.bind(7, Box::new(Echo));
        net.add_host(server);
        (net, Endpoint::new(a, 1024), Endpoint::new(b, 7))
    }

    #[test]
    fn rpc_roundtrip() {
        let (mut net, c, s) = build();
        let reply = net.rpc(c, s, b"hello".to_vec()).unwrap();
        assert_eq!(reply, b"olleh");
    }

    #[test]
    fn rpc_advances_time() {
        let (mut net, c, s) = build();
        let t0 = net.now();
        net.rpc(c, s, b"x".to_vec()).unwrap();
        assert!(net.now() > t0);
    }

    #[test]
    fn no_route() {
        let (mut net, c, _) = build();
        let bogus = Endpoint::new(Addr::new(192, 168, 9, 9), 7);
        assert!(matches!(net.rpc(c, bogus, vec![]), Err(NetError::NoRoute(_))));
    }

    #[test]
    fn port_closed() {
        let (mut net, c, s) = build();
        let closed = Endpoint::new(s.addr, 9999);
        assert!(matches!(net.rpc(c, closed, vec![]), Err(NetError::PortClosed(_))));
    }

    #[test]
    fn traffic_is_logged_both_directions() {
        let (mut net, c, s) = build();
        net.rpc(c, s, b"secret".to_vec()).unwrap();
        let log = net.traffic_log();
        assert_eq!(log.len(), 2);
        assert!(log[0].is_request);
        assert_eq!(log[0].dgram.payload, b"secret");
        assert!(!log[1].is_request);
        assert_eq!(log[1].dgram.payload, b"terces");
    }

    #[test]
    fn inject_with_forged_source() {
        let (mut net, _, s) = build();
        // The adversary claims to be 10.9.9.9 — nothing stops it.
        let forged = Endpoint::new(Addr::new(10, 9, 9, 9), 5555);
        let reply = net
            .inject(Datagram { src: forged, dst: s, payload: b"spoof".to_vec().into() })
            .unwrap();
        assert_eq!(reply.unwrap(), b"foops");
    }

    #[test]
    fn replay_from_log() {
        let (mut net, c, s) = build();
        net.rpc(c, s, b"original".to_vec()).unwrap();
        let recorded = net.traffic_log()[0].dgram.clone();
        let replayed = net.inject(recorded).unwrap();
        assert_eq!(replayed.unwrap(), b"lanigiro");
    }

    #[test]
    fn duplicate_addr_panics() {
        let mut net = Network::new();
        let a = Addr::new(1, 1, 1, 1);
        net.add_host(Host::new("one", vec![a]));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            net.add_host(Host::new("two", vec![a]));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn multi_homed_host_reachable_on_all_addrs() {
        let mut net = Network::new();
        let a1 = Addr::new(10, 0, 0, 5);
        let a2 = Addr::new(192, 168, 0, 5);
        let mut h = Host::new("gateway", vec![a1, a2]);
        h.bind(7, Box::new(Echo));
        net.add_host(h);
        let c = Endpoint::new(Addr::new(10, 0, 0, 6), 1);
        net.add_host(Host::new("c", vec![Addr::new(10, 0, 0, 6)]));
        assert_eq!(net.rpc(c, Endpoint::new(a1, 7), b"ab".to_vec()).unwrap(), b"ba");
        assert_eq!(net.rpc(c, Endpoint::new(a2, 7), b"cd".to_vec()).unwrap(), b"dc");
    }

    // ---- fault layer ----

    #[test]
    fn zero_fault_plan_is_byte_identical() {
        let run = |with_plan: bool| {
            let (mut net, c, s) = build();
            if with_plan {
                net.set_fault_plan(FaultPlan::new(7));
            }
            for i in 0..20u8 {
                net.rpc(c, s, vec![i, i + 1]).unwrap();
            }
            net.traffic_log()
                .iter()
                .map(|r| (r.at, r.dgram.clone(), r.is_request, r.fault))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn full_drop_loses_request() {
        let (mut net, c, s) = build();
        net.set_fault_plan(
            FaultPlan::new(1).with_default(LinkFaults { drop: 1.0, ..LinkFaults::none() }),
        );
        assert_eq!(net.rpc(c, s, b"x".to_vec()), Err(NetError::Dropped));
        assert_eq!(net.traffic_log()[0].fault, Some(FaultKind::Dropped));
    }

    #[test]
    fn reply_only_drop_is_reply_lost() {
        let (mut net, c, s) = build();
        // Faults on the server->client direction only.
        net.set_fault_plan(
            FaultPlan::new(1).with_link(s.addr, c.addr, LinkFaults { drop: 1.0, ..LinkFaults::none() }),
        );
        assert_eq!(net.rpc(c, s, b"x".to_vec()), Err(NetError::ReplyLost));
    }

    #[test]
    fn duplicate_request_is_redelivered_by_pump() {
        struct Counter(u32);
        impl Service for Counter {
            fn handle(&mut self, _: &mut ServiceCtx, _: &[u8], _: Endpoint) -> Option<Vec<u8>> {
                self.0 += 1;
                Some(vec![self.0 as u8])
            }
        }
        let mut net = Network::new();
        let a = Addr::new(10, 0, 0, 1);
        let b = Addr::new(10, 0, 0, 2);
        net.add_host(Host::new("client", vec![a]));
        let mut server = Host::new("server", vec![b]);
        server.bind(7, Box::new(Counter(0)));
        net.add_host(server);
        let c = Endpoint::new(a, 1024);
        let s = Endpoint::new(b, 7);
        net.set_fault_plan(
            FaultPlan::new(1).with_link(a, b, LinkFaults { duplicate: 1.0, ..LinkFaults::none() }),
        );
        assert_eq!(net.rpc(c, s, b"x".to_vec()).unwrap(), vec![1]);
        net.advance(SimDuration::from_millis(10));
        net.pump(); // the duplicate arrives: the server handles it again
        assert_eq!(
            net.traffic_log().iter().filter(|r| r.fault == Some(FaultKind::Duplicated)).count(),
            1,
            "duplicate request redelivered"
        );
        // The duplicate's reply ([2]) is in flight toward the client,
        // but the next exchange's awaited reply arrives and wins.
        net.advance(SimDuration::from_millis(10));
        assert_eq!(net.rpc(c, s, b"y".to_vec()).unwrap(), vec![3]);
        // When the awaited reply goes missing, the client reads the
        // stale duplicate instead: a client without duplicate-response
        // matching would accept it.
        net.set_fault_plan(
            FaultPlan::new(2).with_link(b, a, LinkFaults { drop: 1.0, ..LinkFaults::none() }),
        );
        assert_eq!(net.rpc(c, s, b"z".to_vec()).unwrap(), vec![2]);
    }

    #[test]
    fn corruption_flips_a_byte() {
        let (mut net, c, s) = build();
        net.set_fault_plan(
            FaultPlan::new(3).with_link(c.addr, s.addr, LinkFaults { corrupt: 1.0, ..LinkFaults::none() }),
        );
        let reply = net.rpc(c, s, b"aaaa".to_vec()).unwrap();
        assert_ne!(reply, b"aaaa", "echo of corrupted payload differs");
    }

    #[test]
    fn partition_blocks_and_heals() {
        let (mut net, c, s) = build();
        let t0 = net.now();
        net.set_fault_plan(FaultPlan::new(0).partition(
            c.addr,
            s.addr,
            t0,
            SimTime(t0.0 + 1_000_000),
        ));
        assert_eq!(net.rpc(c, s, b"x".to_vec()), Err(NetError::Dropped));
        net.advance(SimDuration::from_secs(2));
        assert!(net.rpc(c, s, b"x".to_vec()).is_ok(), "partition healed");
    }

    #[test]
    fn crashed_host_is_down_then_restarts() {
        struct Flagged {
            restarted: bool,
        }
        impl Service for Flagged {
            fn handle(&mut self, _: &mut ServiceCtx, _: &[u8], _: Endpoint) -> Option<Vec<u8>> {
                Some(vec![u8::from(self.restarted)])
            }
            fn on_restart(&mut self, _: &mut ServiceCtx) {
                self.restarted = true;
            }
        }
        let mut net = Network::new();
        let a = Addr::new(10, 0, 0, 1);
        let b = Addr::new(10, 0, 0, 2);
        net.add_host(Host::new("client", vec![a]));
        let mut server = Host::new("server", vec![b]);
        server.bind(7, Box::new(Flagged { restarted: false }));
        net.add_host(server);
        let c = Endpoint::new(a, 1024);
        let s = Endpoint::new(b, 7);
        let t0 = net.now();
        net.set_fault_plan(FaultPlan::new(0).crash(b, t0, SimTime(t0.0 + 1_000_000)));
        assert_eq!(net.rpc(c, s, b"x".to_vec()), Err(NetError::HostDown(b)));
        net.advance(SimDuration::from_secs(2));
        // First contact after the window: the service restarted.
        assert_eq!(net.rpc(c, s, b"x".to_vec()).unwrap(), vec![1]);
    }

    // ---- forwarding (proxy services) ----

    /// A proxy that forwards every request to a fixed upstream and
    /// relays the upstream's reply, prefixed with a marker byte; on an
    /// upstream failure it answers with `b"busy"`.
    struct Proxy {
        upstream: Endpoint,
    }
    impl Service for Proxy {
        fn handle(&mut self, ctx: &mut ServiceCtx, req: &[u8], _from: Endpoint) -> Option<Vec<u8>> {
            ctx.forward_to(self.upstream, req.to_vec());
            None
        }
        fn on_forward_reply(
            &mut self,
            _ctx: &mut ServiceCtx,
            upstream: Result<&[u8], &NetError>,
            _from: Endpoint,
        ) -> Option<Vec<u8>> {
            match upstream {
                Ok(bytes) => {
                    let mut v = vec![b'>'];
                    v.extend_from_slice(bytes);
                    Some(v)
                }
                Err(_) => Some(b"busy".to_vec()),
            }
        }
    }

    fn build_proxied() -> (Network, Endpoint, Endpoint, Endpoint) {
        let mut net = Network::new();
        let a = Addr::new(10, 0, 0, 1);
        let g = Addr::new(10, 0, 0, 2);
        let b = Addr::new(10, 0, 0, 3);
        net.add_host(Host::new("client", vec![a]));
        let mut server = Host::new("server", vec![b]);
        server.bind(7, Box::new(Echo));
        net.add_host(server);
        let upstream = Endpoint::new(b, 7);
        let mut gw = Host::new("proxy", vec![g]);
        gw.bind(7, Box::new(Proxy { upstream }));
        net.add_host(gw);
        (net, Endpoint::new(a, 1024), Endpoint::new(g, 7), upstream)
    }

    #[test]
    fn forwarded_rpc_reaches_upstream_and_returns() {
        let (mut net, c, gw, _) = build_proxied();
        assert_eq!(net.rpc(c, gw, b"abc".to_vec()).unwrap(), b">cba");
    }

    #[test]
    fn forwarded_legs_cost_extra_latency() {
        let (mut net, c, gw, up) = build_proxied();
        let t0 = net.now();
        net.rpc(c, gw, b"x".to_vec()).unwrap();
        let proxied = net.now().0 - t0.0;
        let t1 = net.now();
        net.rpc(c, up, b"x".to_vec()).unwrap();
        let direct = net.now().0 - t1.0;
        assert_eq!(proxied, 2 * direct, "proxy adds one round trip of wire time");
    }

    #[test]
    fn forwarded_request_preserves_original_source() {
        struct From;
        impl Service for From {
            fn handle(&mut self, _: &mut ServiceCtx, _: &[u8], from: Endpoint) -> Option<Vec<u8>> {
                Some(from.addr.0.to_be_bytes().to_vec())
            }
        }
        let (mut net, c, gw, up) = build_proxied();
        let hid = net.host_by_addr(up.addr).unwrap();
        net.host_mut(hid).bind(7, Box::new(From));
        let reply = net.rpc(c, gw, b"who?".to_vec()).unwrap();
        assert_eq!(&reply[1..], c.addr.0.to_be_bytes(), "upstream saw the real client");
    }

    #[test]
    fn upstream_crash_surfaces_via_on_forward_reply() {
        let (mut net, c, gw, up) = build_proxied();
        let t0 = net.now();
        net.set_fault_plan(FaultPlan::new(0).crash(up.addr, t0, SimTime(t0.0 + 1_000_000)));
        assert_eq!(net.rpc(c, gw, b"x".to_vec()).unwrap(), b"busy");
        net.advance(SimDuration::from_secs(2));
        assert_eq!(net.rpc(c, gw, b"x".to_vec()).unwrap(), b">x");
    }

    #[test]
    fn forward_loop_is_refused_not_recursed() {
        // Two proxies pointing at each other: the loop breaks (a
        // service already detached for dispatch cannot be re-entered,
        // and the depth cap bounds longer chains) and the outcome
        // surfaces as a typed failure reply at the inner proxy, which
        // the outer proxy relays.
        let mut net = Network::new();
        let a = Addr::new(10, 0, 0, 1);
        let g1 = Addr::new(10, 0, 0, 2);
        let g2 = Addr::new(10, 0, 0, 3);
        net.add_host(Host::new("client", vec![a]));
        let mut h1 = Host::new("p1", vec![g1]);
        h1.bind(7, Box::new(Proxy { upstream: Endpoint::new(g2, 7) }));
        net.add_host(h1);
        let mut h2 = Host::new("p2", vec![g2]);
        h2.bind(7, Box::new(Proxy { upstream: Endpoint::new(g1, 7) }));
        net.add_host(h2);
        let c = Endpoint::new(a, 1024);
        let reply = net.rpc(c, Endpoint::new(g1, 7), b"x".to_vec()).unwrap();
        assert_eq!(reply, b">busy");
    }

    #[test]
    fn timeout_on_delayed_reply() {
        let (mut net, c, s) = build();
        net.set_fault_plan(FaultPlan::new(1).with_link(
            s.addr,
            c.addr,
            LinkFaults { delay: 1.0, delay_max_us: 5_000_000, ..LinkFaults::none() },
        ));
        let r = net.rpc_with_timeout(c, s, b"x".to_vec(), Some(SimDuration::from_millis(10)));
        // Either the delay draw exceeded 10ms (timeout) or it landed
        // under it (delivered); with a 5s max it times out for seed 1.
        assert_eq!(r, Err(NetError::TimedOut));
    }
}
