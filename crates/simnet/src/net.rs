//! The network core: addresses, datagrams, routing, and the adversary's
//! hooks.
//!
//! The threat model is the paper's: "the protocols should be secure even
//! if the network is under the complete control of an adversary." Every
//! datagram that crosses the network is recorded in a traffic log the
//! attack code can read (passive wiretap), passes through an optional
//! in-path [`crate::adversary::Tap`] that may drop or rewrite it (active
//! wiretap), and can be re-sent later with any source address via
//! [`Network::inject`] (replay / spoofing). Nothing about a source
//! address is authenticated, exactly as on a 1990 campus network.

use crate::adversary::{Tap, Verdict};
use crate::clock::{SimDuration, SimTime};
use crate::host::{Host, HostId, ServiceCtx};
use std::collections::HashMap;
use std::fmt;

/// A network address (an IPv4-style 32-bit value).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr(pub u32);

impl Addr {
    /// Convenience constructor from dotted-quad-style parts.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Addr(u32::from_be_bytes([a, b, c, d]))
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0.to_be_bytes();
        write!(f, "{}.{}.{}.{}", b[0], b[1], b[2], b[3])
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A (address, port) pair.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Endpoint {
    /// Network address.
    pub addr: Addr,
    /// Port number.
    pub port: u16,
}

impl Endpoint {
    /// Constructor.
    pub fn new(addr: Addr, port: u16) -> Self {
        Endpoint { addr, port }
    }
}

/// One datagram on the wire.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Datagram {
    /// Claimed source (forgeable!).
    pub src: Endpoint,
    /// Destination.
    pub dst: Endpoint,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// An entry in the traffic log: what crossed the wire, and when (true
/// time).
#[derive(Clone, Debug)]
pub struct TrafficRecord {
    /// When the datagram crossed the network, in true time.
    pub at: SimTime,
    /// The datagram as actually delivered (post-tap).
    pub dgram: Datagram,
    /// Whether this was a request (`true`) or a reply.
    pub is_request: bool,
}

/// Network-level errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// No host owns the destination address.
    NoRoute(Addr),
    /// The destination host has no service on that port.
    PortClosed(Endpoint),
    /// The in-path adversary dropped the datagram.
    Dropped,
    /// The service did not produce a reply.
    NoReply,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::NoRoute(a) => write!(f, "no route to {a}"),
            NetError::PortClosed(e) => write!(f, "port closed: {}:{}", e.addr, e.port),
            NetError::Dropped => write!(f, "datagram dropped in transit"),
            NetError::NoReply => write!(f, "no reply from service"),
        }
    }
}

impl std::error::Error for NetError {}

/// The simulated network.
pub struct Network {
    hosts: Vec<Host>,
    addr_map: HashMap<Addr, HostId>,
    true_time: SimTime,
    /// Fixed one-way latency applied to every hop.
    pub latency: SimDuration,
    tap: Option<Box<dyn Tap>>,
    log: Vec<TrafficRecord>,
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

impl Network {
    /// An empty network at time zero.
    pub fn new() -> Self {
        Network {
            hosts: Vec::new(),
            addr_map: HashMap::new(),
            true_time: SimTime(0),
            latency: SimDuration::from_millis(2),
            tap: None,
            log: Vec::new(),
        }
    }

    /// Adds a host; its addresses must be unique on the network.
    ///
    /// # Panics
    ///
    /// Panics if any of the host's addresses is already claimed.
    pub fn add_host(&mut self, host: Host) -> HostId {
        let id = HostId(self.hosts.len());
        for &a in &host.addrs {
            let prev = self.addr_map.insert(a, id);
            assert!(prev.is_none(), "duplicate address {a}");
        }
        self.hosts.push(host);
        id
    }

    /// Installs the in-path adversary tap (replacing any previous one).
    pub fn set_tap(&mut self, tap: Box<dyn Tap>) {
        self.tap = Some(tap);
    }

    /// Removes and returns the tap, for inspection of recorded state.
    pub fn take_tap(&mut self) -> Option<Box<dyn Tap>> {
        self.tap.take()
    }

    /// The network's true time.
    pub fn now(&self) -> SimTime {
        self.true_time
    }

    /// Advances true time.
    pub fn advance(&mut self, d: SimDuration) {
        self.true_time = self.true_time.plus(d);
    }

    /// Local clock reading of a host.
    pub fn host_time(&self, id: HostId) -> SimTime {
        self.hosts[id.0].clock.now(self.true_time)
    }

    /// Immutable host access.
    pub fn host(&self, id: HostId) -> &Host {
        &self.hosts[id.0]
    }

    /// Mutable host access.
    pub fn host_mut(&mut self, id: HostId) -> &mut Host {
        &mut self.hosts[id.0]
    }

    /// Looks up the host owning `addr`.
    pub fn host_by_addr(&self, addr: Addr) -> Option<HostId> {
        self.addr_map.get(&addr).copied()
    }

    /// The full traffic log (the passive wiretap).
    pub fn traffic_log(&self) -> &[TrafficRecord] {
        &self.log
    }

    /// Clears the traffic log.
    pub fn clear_log(&mut self) {
        self.log.clear();
    }

    /// Sends `payload` from `from` to `to` and waits for the (single)
    /// reply: the universal query/response primitive. Both directions
    /// cross the adversary.
    pub fn rpc(&mut self, from: Endpoint, to: Endpoint, payload: Vec<u8>) -> Result<Vec<u8>, NetError> {
        let request = Datagram { src: from, dst: to, payload };
        let reply = self.deliver(request, true)?.ok_or(NetError::NoReply)?;
        // The reply crosses the wire too.
        match self.transit(reply, false)? {
            Some(d) => Ok(d.payload),
            None => Err(NetError::Dropped),
        }
    }

    /// Sends a datagram without expecting a reply (e.g. one-way
    /// notifications). Returns the service's optional reply payload
    /// *undelivered* — used by attack code that impersonates.
    pub fn send_oneway(&mut self, from: Endpoint, to: Endpoint, payload: Vec<u8>) -> Result<(), NetError> {
        let d = Datagram { src: from, dst: to, payload };
        self.deliver(d, true)?;
        Ok(())
    }

    /// The adversary's injection primitive: put an arbitrary datagram on
    /// the wire — any source address, any content (forgery, replay) —
    /// and collect the reply the victim service produces, if the reply
    /// routes somewhere the adversary can see. Injection does NOT pass
    /// the tap (the adversary does not attack itself) but IS logged.
    pub fn inject(&mut self, dgram: Datagram) -> Result<Option<Vec<u8>>, NetError> {
        self.log.push(TrafficRecord { at: self.true_time, dgram: dgram.clone(), is_request: true });
        let reply = self.dispatch(dgram)?;
        if let Some(r) = &reply {
            self.log.push(TrafficRecord { at: self.true_time, dgram: r.clone(), is_request: false });
        }
        Ok(reply.map(|d| d.payload))
    }

    /// Runs one datagram through tap + log + dispatch. Returns the
    /// service's reply datagram (not yet transited back).
    fn deliver(&mut self, dgram: Datagram, is_request: bool) -> Result<Option<Datagram>, NetError> {
        let dgram = match self.transit(dgram, is_request)? {
            Some(d) => d,
            None => return Err(NetError::Dropped),
        };
        self.dispatch(dgram)
    }

    /// Tap + log for one hop; `None` means dropped.
    fn transit(&mut self, mut dgram: Datagram, is_request: bool) -> Result<Option<Datagram>, NetError> {
        self.advance(self.latency);
        if let Some(tap) = &mut self.tap {
            match tap.on_packet(&mut dgram, self.true_time) {
                Verdict::Deliver => {}
                Verdict::Drop => {
                    self.log.push(TrafficRecord { at: self.true_time, dgram, is_request });
                    return Ok(None);
                }
            }
        }
        self.log.push(TrafficRecord { at: self.true_time, dgram: dgram.clone(), is_request });
        Ok(Some(dgram))
    }

    /// Hands a datagram to the destination service and returns its reply.
    fn dispatch(&mut self, dgram: Datagram) -> Result<Option<Datagram>, NetError> {
        let hid = self.host_by_addr(dgram.dst.addr).ok_or(NetError::NoRoute(dgram.dst.addr))?;
        // Temporarily detach the service to satisfy the borrow checker.
        let mut service = self.hosts[hid.0]
            .services
            .remove(&dgram.dst.port)
            .ok_or(NetError::PortClosed(dgram.dst))?;

        let host = &self.hosts[hid.0];
        let mut ctx = ServiceCtx {
            local_time: host.clock.now(self.true_time),
            host_name: host.name.clone(),
            host_addr: dgram.dst.addr,
            multi_user: host.multi_user,
        };
        let reply = service.handle(&mut ctx, &dgram.payload, dgram.src);
        self.hosts[hid.0].services.insert(dgram.dst.port, service);

        Ok(reply.map(|payload| Datagram { src: dgram.dst, dst: dgram.src, payload }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::Service;

    /// A service that replies with its payload reversed.
    struct Echo;
    impl Service for Echo {
        fn handle(&mut self, _ctx: &mut ServiceCtx, req: &[u8], _from: Endpoint) -> Option<Vec<u8>> {
            let mut v = req.to_vec();
            v.reverse();
            Some(v)
        }
    }

    fn build() -> (Network, Endpoint, Endpoint) {
        let mut net = Network::new();
        let a = Addr::new(10, 0, 0, 1);
        let b = Addr::new(10, 0, 0, 2);
        net.add_host(Host::new("client", vec![a]));
        let mut server = Host::new("server", vec![b]);
        server.bind(7, Box::new(Echo));
        net.add_host(server);
        (net, Endpoint::new(a, 1024), Endpoint::new(b, 7))
    }

    #[test]
    fn rpc_roundtrip() {
        let (mut net, c, s) = build();
        let reply = net.rpc(c, s, b"hello".to_vec()).unwrap();
        assert_eq!(reply, b"olleh");
    }

    #[test]
    fn rpc_advances_time() {
        let (mut net, c, s) = build();
        let t0 = net.now();
        net.rpc(c, s, b"x".to_vec()).unwrap();
        assert!(net.now() > t0);
    }

    #[test]
    fn no_route() {
        let (mut net, c, _) = build();
        let bogus = Endpoint::new(Addr::new(192, 168, 9, 9), 7);
        assert!(matches!(net.rpc(c, bogus, vec![]), Err(NetError::NoRoute(_))));
    }

    #[test]
    fn port_closed() {
        let (mut net, c, s) = build();
        let closed = Endpoint::new(s.addr, 9999);
        assert!(matches!(net.rpc(c, closed, vec![]), Err(NetError::PortClosed(_))));
    }

    #[test]
    fn traffic_is_logged_both_directions() {
        let (mut net, c, s) = build();
        net.rpc(c, s, b"secret".to_vec()).unwrap();
        let log = net.traffic_log();
        assert_eq!(log.len(), 2);
        assert!(log[0].is_request);
        assert_eq!(log[0].dgram.payload, b"secret");
        assert!(!log[1].is_request);
        assert_eq!(log[1].dgram.payload, b"terces");
    }

    #[test]
    fn inject_with_forged_source() {
        let (mut net, _, s) = build();
        // The adversary claims to be 10.9.9.9 — nothing stops it.
        let forged = Endpoint::new(Addr::new(10, 9, 9, 9), 5555);
        let reply = net
            .inject(Datagram { src: forged, dst: s, payload: b"spoof".to_vec() })
            .unwrap();
        assert_eq!(reply.unwrap(), b"foops");
    }

    #[test]
    fn replay_from_log() {
        let (mut net, c, s) = build();
        net.rpc(c, s, b"original".to_vec()).unwrap();
        let recorded = net.traffic_log()[0].dgram.clone();
        let replayed = net.inject(recorded).unwrap();
        assert_eq!(replayed.unwrap(), b"lanigiro");
    }

    #[test]
    fn duplicate_addr_panics() {
        let mut net = Network::new();
        let a = Addr::new(1, 1, 1, 1);
        net.add_host(Host::new("one", vec![a]));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            net.add_host(Host::new("two", vec![a]));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn multi_homed_host_reachable_on_all_addrs() {
        let mut net = Network::new();
        let a1 = Addr::new(10, 0, 0, 5);
        let a2 = Addr::new(192, 168, 0, 5);
        let mut h = Host::new("gateway", vec![a1, a2]);
        h.bind(7, Box::new(Echo));
        net.add_host(h);
        let c = Endpoint::new(Addr::new(10, 0, 0, 6), 1);
        net.add_host(Host::new("c", vec![Addr::new(10, 0, 0, 6)]));
        assert_eq!(net.rpc(c, Endpoint::new(a1, 7), b"ab".to_vec()).unwrap(), b"ba");
        assert_eq!(net.rpc(c, Endpoint::new(a2, 7), b"cd".to_vec()).unwrap(), b"dc");
    }
}
