//! A minimal TCP-shaped stream layer with 4.2BSD-style predictable
//! initial sequence numbers.
//!
//! "Morris described an attack based on the slow increment rate of the
//! initial sequence number counter in some TCP implementations ... it was
//! possible to spoof one half of a preauthenticated TCP connection
//! without ever seeing any responses from the targeted host."
//! [`IsnGenerator`] reproduces the 4.2BSD discipline (+128/second,
//! +64/connection); [`StreamListener`] implements enough of the handshake
//! and sequencing that the blind-spoof attack (A2) can be run for real.

use crate::clock::SimTime;
use crate::host::{Service, ServiceCtx};
use crate::net::Endpoint;
use std::collections::BTreeMap;

/// The 4.2BSD initial-sequence-number discipline: a global counter
/// bumped 128 times a second and by 64 on every connection.
#[derive(Clone, Debug)]
pub struct IsnGenerator {
    base: u32,
    connections: u32,
}

impl IsnGenerator {
    /// Starts the counter at `base`.
    pub fn new(base: u32) -> Self {
        IsnGenerator { base, connections: 0 }
    }

    /// Issues the ISN for a new connection at local time `now`.
    pub fn next(&mut self, now: SimTime) -> u32 {
        self.connections += 1;
        self.predict(now, self.connections)
    }

    /// What the ISN *will be* for the `nth` connection at time `now` —
    /// the attacker's computation is identical to the victim's.
    pub fn predict(&self, now: SimTime, nth_connection: u32) -> u32 {
        let ticks = (now.0 / 1_000_000) as u32;
        self.base
            .wrapping_add(ticks.wrapping_mul(128))
            .wrapping_add(nth_connection.wrapping_mul(64))
    }

    /// Number of connections issued so far.
    pub fn connections(&self) -> u32 {
        self.connections
    }
}

/// A stream segment. Wire format: tag byte, then fixed fields big-endian,
/// then payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Segment {
    /// Connection request with the client's ISN.
    Syn {
        /// Client ISN.
        isn: u32,
    },
    /// Server's response: its own ISN, acknowledging the client's.
    SynAck {
        /// Server ISN.
        isn: u32,
        /// Client ISN + 1.
        ack: u32,
    },
    /// Handshake completion.
    Ack {
        /// Client sequence (client ISN + 1).
        seq: u32,
        /// Server ISN + 1.
        ack: u32,
    },
    /// Application data.
    Data {
        /// Sequence number of the first payload byte.
        seq: u32,
        /// Acknowledgement of the server's stream.
        ack: u32,
        /// Application bytes.
        payload: Vec<u8>,
    },
    /// Reset.
    Rst,
}

impl Segment {
    /// Serializes the segment.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Segment::Syn { isn } => {
                let mut v = vec![1u8];
                v.extend_from_slice(&isn.to_be_bytes());
                v
            }
            Segment::SynAck { isn, ack } => {
                let mut v = vec![2u8];
                v.extend_from_slice(&isn.to_be_bytes());
                v.extend_from_slice(&ack.to_be_bytes());
                v
            }
            Segment::Ack { seq, ack } => {
                let mut v = vec![3u8];
                v.extend_from_slice(&seq.to_be_bytes());
                v.extend_from_slice(&ack.to_be_bytes());
                v
            }
            Segment::Data { seq, ack, payload } => {
                let mut v = vec![4u8];
                v.extend_from_slice(&seq.to_be_bytes());
                v.extend_from_slice(&ack.to_be_bytes());
                v.extend_from_slice(payload);
                v
            }
            Segment::Rst => vec![5u8],
        }
    }

    /// Parses a segment; `None` on malformed input.
    pub fn decode(data: &[u8]) -> Option<Segment> {
        let be32 = |s: &[u8]| -> Option<u32> { Some(u32::from_be_bytes(s.try_into().ok()?)) };
        match data.first()? {
            1 => Some(Segment::Syn { isn: be32(data.get(1..5)?)? }),
            2 => Some(Segment::SynAck { isn: be32(data.get(1..5)?)?, ack: be32(data.get(5..9)?)? }),
            3 => Some(Segment::Ack { seq: be32(data.get(1..5)?)?, ack: be32(data.get(5..9)?)? }),
            4 => Some(Segment::Data {
                seq: be32(data.get(1..5)?)?,
                ack: be32(data.get(5..9)?)?,
                payload: data.get(9..)?.to_vec(),
            }),
            5 => Some(Segment::Rst),
            _ => None,
        }
    }
}

/// Per-connection server state.
#[derive(Clone, Debug, PartialEq, Eq)]
enum ConnState {
    SynReceived {
        server_isn: u32,
        client_isn: u32,
    },
    Established {
        server_isn: u32,
        client_next_seq: u32,
    },
}

/// A listening stream endpoint that trusts data by *source address* once
/// the three-way handshake completes — the pre-Kerberos "rsh" trust
/// model the paper's replay discussion starts from.
pub struct StreamListener {
    isn_gen: IsnGenerator,
    conns: BTreeMap<Endpoint, ConnState>,
    /// Data accepted on established connections: (peer, bytes). For the
    /// blind-spoof experiment this is the smoking gun — data recorded
    /// here under a trusted peer's address means the attack landed.
    pub delivered: Vec<(Endpoint, Vec<u8>)>,
}

impl StreamListener {
    /// A listener whose ISN counter starts at `isn_base`.
    pub fn new(isn_base: u32) -> Self {
        StreamListener { isn_gen: IsnGenerator::new(isn_base), conns: BTreeMap::new(), delivered: Vec::new() }
    }

    /// Read-only view of the ISN generator (for attacker prediction in
    /// white-box tests; the real attacker reconstructs it from one
    /// observed ISN).
    pub fn isn_generator(&self) -> &IsnGenerator {
        &self.isn_gen
    }
}

impl Service for StreamListener {
    fn handle(&mut self, ctx: &mut ServiceCtx, req: &[u8], from: Endpoint) -> Option<Vec<u8>> {
        let seg = Segment::decode(req)?;
        match seg {
            Segment::Syn { isn } => {
                let server_isn = self.isn_gen.next(ctx.local_time);
                self.conns.insert(from, ConnState::SynReceived { server_isn, client_isn: isn });
                Some(Segment::SynAck { isn: server_isn, ack: isn.wrapping_add(1) }.encode())
            }
            Segment::Ack { seq, ack } => {
                match self.conns.get(&from) {
                    Some(&ConnState::SynReceived { server_isn, client_isn })
                        if ack == server_isn.wrapping_add(1) && seq == client_isn.wrapping_add(1) =>
                    {
                        self.conns.insert(
                            from,
                            ConnState::Established { server_isn, client_next_seq: seq },
                        );
                        None
                    }
                    _ => Some(Segment::Rst.encode()),
                }
            }
            Segment::Data { seq, ack, payload } => match self.conns.get(&from) {
                Some(&ConnState::Established { server_isn, client_next_seq })
                    if seq == client_next_seq && ack == server_isn.wrapping_add(1) =>
                {
                    let next = client_next_seq.wrapping_add(payload.len() as u32);
                    self.conns.insert(from, ConnState::Established { server_isn, client_next_seq: next });
                    self.delivered.push((from, payload));
                    Some(Segment::Ack { seq: 0, ack: next }.encode())
                }
                _ => Some(Segment::Rst.encode()),
            },
            Segment::SynAck { .. } | Segment::Rst => None,
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_codec_roundtrip() {
        for seg in [
            Segment::Syn { isn: 42 },
            Segment::SynAck { isn: 7, ack: 43 },
            Segment::Ack { seq: 43, ack: 8 },
            Segment::Data { seq: 43, ack: 8, payload: b"rm -rf /".to_vec() },
            Segment::Rst,
        ] {
            assert_eq!(Segment::decode(&seg.encode()), Some(seg));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Segment::decode(&[]), None);
        assert_eq!(Segment::decode(&[9, 9, 9]), None);
        assert_eq!(Segment::decode(&[1, 0]), None); // truncated SYN
    }

    #[test]
    fn isn_is_predictable() {
        let mut victim = IsnGenerator::new(1000);
        let t = SimTime(5_000_000);
        let observed = victim.next(t); // Attacker learns this (conn #1).
        // Attacker predicts connection #2 at t+1s without further
        // observation.
        let predictor = IsnGenerator::new(1000);
        let t2 = SimTime(6_000_000);
        let predicted = predictor.predict(t2, 2);
        assert_eq!(victim.next(t2), predicted);
        assert_eq!(predicted, observed.wrapping_add(128 + 64));
    }

    #[test]
    fn handshake_and_data() {
        let mut l = StreamListener::new(77);
        let mut ctx =
            ServiceCtx::detached(SimTime(1_000_000), "srv", crate::net::Addr::new(1, 1, 1, 1), false);
        let peer = Endpoint::new(crate::net::Addr::new(2, 2, 2, 2), 1024);

        let synack = l.handle(&mut ctx, &Segment::Syn { isn: 500 }.encode(), peer).unwrap();
        let (sisn, ack) = match Segment::decode(&synack).unwrap() {
            Segment::SynAck { isn, ack } => (isn, ack),
            other => panic!("expected SynAck, got {other:?}"),
        };
        assert_eq!(ack, 501);

        assert!(l.handle(&mut ctx, &Segment::Ack { seq: 501, ack: sisn + 1 }.encode(), peer).is_none());
        let reply = l
            .handle(&mut ctx, &Segment::Data { seq: 501, ack: sisn + 1, payload: b"ls".to_vec() }.encode(), peer)
            .unwrap();
        assert!(matches!(Segment::decode(&reply), Some(Segment::Ack { .. })));
        assert_eq!(l.delivered, vec![(peer, b"ls".to_vec())]);
    }

    #[test]
    fn wrong_ack_resets() {
        let mut l = StreamListener::new(77);
        let mut ctx =
            ServiceCtx::detached(SimTime(0), "srv", crate::net::Addr::new(1, 1, 1, 1), false);
        let peer = Endpoint::new(crate::net::Addr::new(2, 2, 2, 2), 1024);
        l.handle(&mut ctx, &Segment::Syn { isn: 500 }.encode(), peer);
        // A wrong guess at the server ISN gets a reset — the blind
        // spoofer only has one shot per handshake.
        let reply = l.handle(&mut ctx, &Segment::Ack { seq: 501, ack: 12345 }.encode(), peer).unwrap();
        assert_eq!(Segment::decode(&reply), Some(Segment::Rst));
        assert!(l.delivered.is_empty());
    }

    #[test]
    fn out_of_order_data_rejected() {
        let mut l = StreamListener::new(1);
        let mut ctx =
            ServiceCtx::detached(SimTime(0), "srv", crate::net::Addr::new(1, 1, 1, 1), false);
        let peer = Endpoint::new(crate::net::Addr::new(2, 2, 2, 2), 9);
        let synack = l.handle(&mut ctx, &Segment::Syn { isn: 0 }.encode(), peer).unwrap();
        let sisn = match Segment::decode(&synack).unwrap() {
            Segment::SynAck { isn, .. } => isn,
            _ => unreachable!(),
        };
        l.handle(&mut ctx, &Segment::Ack { seq: 1, ack: sisn + 1 }.encode(), peer);
        let reply = l
            .handle(&mut ctx, &Segment::Data { seq: 999, ack: sisn + 1, payload: b"x".to_vec() }.encode(), peer)
            .unwrap();
        assert_eq!(Segment::decode(&reply), Some(Segment::Rst));
    }
}
