//! Property tests for the simulator substrate: segment codec, clock
//! algebra, and network invariants. Runs on `testkit::prop`.

use simnet::clock::Clock;
use simnet::stream::{IsnGenerator, Segment};
use simnet::{Addr, Datagram, Endpoint, Host, Network, Service, ServiceCtx, SimDuration, SimTime};
use testkit::prelude::*;

testkit::prop! {
    fn segment_codec_roundtrip(tag in 1u8..=5, a in any::<u32>(), b in any::<u32>(), payload in collection::vec(any::<u8>(), 0..64)) {
        let seg = match tag {
            1 => Segment::Syn { isn: a },
            2 => Segment::SynAck { isn: a, ack: b },
            3 => Segment::Ack { seq: a, ack: b },
            4 => Segment::Data { seq: a, ack: b, payload },
            _ => Segment::Rst,
        };
        prop_assert_eq!(Segment::decode(&seg.encode()), Some(seg));
    }

    fn segment_decode_never_panics(junk in collection::vec(any::<u8>(), 0..64)) {
        let _ = Segment::decode(&junk);
    }

    /// sync_to always lands the clock exactly on target, whatever the
    /// prior offset and drift.
    fn clock_sync_is_exact(offset in -1_000_000_000i64..1_000_000_000, drift in -500i64..500, t in 0u64..10_000_000_000, target in 0u64..10_000_000_000) {
        let mut c = Clock::skewed(offset, drift);
        c.sync_to(SimTime(t), SimTime(target));
        prop_assert_eq!(c.now(SimTime(t)), SimTime(target));
    }

    /// ISN prediction from (base, time, count) always matches the
    /// generator: the attacker's model is exact.
    fn isn_prediction_exact(base in any::<u32>(), secs in 0u64..100_000, n in 1u32..1000) {
        let mut gen = IsnGenerator::new(base);
        let t = SimTime(secs * 1_000_000);
        let mut last = 0;
        for _ in 0..n {
            last = gen.next(t);
        }
        let predictor = IsnGenerator::new(base);
        prop_assert_eq!(predictor.predict(t, n), last);
    }

    /// Every delivered datagram appears in the traffic log: the passive
    /// wiretap is complete.
    fn traffic_log_is_complete(payloads in collection::vec(collection::vec(any::<u8>(), 0..32), 1..8)) {
        struct Sink;
        impl Service for Sink {
            fn handle(&mut self, _: &mut ServiceCtx, req: &[u8], _: Endpoint) -> Option<Vec<u8>> {
                Some(req.to_vec())
            }
        }
        let mut net = Network::new();
        let a = Addr::new(10, 0, 0, 1);
        let b = Addr::new(10, 0, 0, 2);
        net.add_host(Host::new("c", vec![a]));
        let mut srv = Host::new("s", vec![b]);
        srv.bind(7, Box::new(Sink));
        net.add_host(srv);
        for p in &payloads {
            net.rpc(Endpoint::new(a, 1), Endpoint::new(b, 7), p.clone()).unwrap();
        }
        // Two log records per rpc (request + reply), in order.
        prop_assert_eq!(net.traffic_log().len(), payloads.len() * 2);
        for (i, p) in payloads.iter().enumerate() {
            prop_assert_eq!(&net.traffic_log()[2 * i].dgram.payload, p);
            prop_assert!(net.traffic_log()[2 * i].is_request);
        }
    }

    /// Injection with any source reaches the service; replies route back
    /// to the forged source without complaint.
    fn forged_sources_always_accepted(src_addr in any::<u32>(), src_port in any::<u16>(), payload in collection::vec(any::<u8>(), 0..32)) {
        struct Sink;
        impl Service for Sink {
            fn handle(&mut self, _: &mut ServiceCtx, req: &[u8], _: Endpoint) -> Option<Vec<u8>> {
                Some(req.to_vec())
            }
        }
        let mut net = Network::new();
        let b = Addr::new(10, 0, 0, 2);
        let mut srv = Host::new("s", vec![b]);
        srv.bind(7, Box::new(Sink));
        net.add_host(srv);
        let forged = Endpoint::new(Addr(src_addr), src_port);
        let reply = net
            .inject(Datagram { src: forged, dst: Endpoint::new(b, 7), payload: payload.clone().into() })
            .unwrap();
        prop_assert_eq!(reply, Some(payload));
    }

    fn durations_add_up(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let t = SimTime(0).plus(SimDuration(a)).plus(SimDuration(b));
        prop_assert_eq!(t, SimTime(a + b));
        prop_assert_eq!(SimTime(a).abs_diff(SimTime(b)), SimDuration(a.abs_diff(b)));
    }
}
