//! Purpose-tagged keys.
//!
//! The paper's hardware section argues that "keys should be tagged with
//! their purpose. A login key should be used only to decrypt the
//! ticket-granting ticket; the key associated with it should be used only
//! for obtaining service tickets, etc." This module provides the tag
//! vocabulary; enforcement lives in the `hardware` crate's encryption
//! unit and, in software, in the hardened encryption layer.

use crate::des::DesKey;

/// What a key is allowed to be used for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KeyPurpose {
    /// A user's long-term password-derived key; may only decrypt AS
    /// replies.
    ClientLogin,
    /// A service's long-term key; may only decrypt tickets.
    Service,
    /// The TGS session key from a ticket-granting ticket; may only seal
    /// TGS requests and unseal TGS replies.
    TgsSession,
    /// An application (multi-)session key from a service ticket.
    AppSession,
    /// A negotiated true session key (subkey).
    Subkey,
    /// The KDC master key protecting the principal database.
    KdcMaster,
    /// The keystore channel key.
    KeyStore,
    /// Unrestricted — models V4, where nothing distinguished key uses.
    Any,
}

impl KeyPurpose {
    /// Whether a key tagged `self` may be used where `required` is
    /// expected. `Any` is the V4 footgun: usable everywhere.
    pub fn permits(self, required: KeyPurpose) -> bool {
        self == KeyPurpose::Any || self == required
    }
}

/// A DES key bound to a declared purpose.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct TaggedKey {
    /// The raw key material.
    pub key: DesKey,
    /// What this key may be used for.
    pub purpose: KeyPurpose,
}

impl core::fmt::Debug for TaggedKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // The purpose tag is public metadata; the key bytes are not.
        write!(f, "TaggedKey(****, {:?})", self.purpose)
    }
}

impl TaggedKey {
    /// Tags `key` with `purpose`.
    pub fn new(key: DesKey, purpose: KeyPurpose) -> Self {
        TaggedKey { key, purpose }
    }

    /// An untagged (V4-semantics) key.
    pub fn untagged(key: DesKey) -> Self {
        TaggedKey { key, purpose: KeyPurpose::Any }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_permits_everything() {
        for p in [
            KeyPurpose::ClientLogin,
            KeyPurpose::Service,
            KeyPurpose::TgsSession,
            KeyPurpose::AppSession,
            KeyPurpose::Subkey,
            KeyPurpose::KdcMaster,
        ] {
            assert!(KeyPurpose::Any.permits(p));
        }
    }

    #[test]
    fn specific_purpose_is_exclusive() {
        assert!(KeyPurpose::ClientLogin.permits(KeyPurpose::ClientLogin));
        assert!(!KeyPurpose::ClientLogin.permits(KeyPurpose::Service));
        assert!(!KeyPurpose::Service.permits(KeyPurpose::Any));
    }
}
