//! Discrete-logarithm attackers: baby-step/giant-step and Pollard rho.
//!
//! These implement the adversary side of the LaMacchia-Odlyzko point the
//! paper cites: "exchanging small numbers is quite insecure". Experiment
//! E4 runs these against exponential-key-exchange transcripts with small
//! exponents/moduli and records the time-to-break curve.

use crate::bignum::{mod_exp, mod_inverse, BigUint};
use crate::error::CryptoError;
use crate::rng::RandomSource;
use std::collections::HashMap;

/// Solves `g^x = h (mod p)` for `x < bound` by baby-step/giant-step.
/// Memory O(sqrt(bound)), time O(sqrt(bound)) group operations.
pub fn bsgs(g: &BigUint, h: &BigUint, p: &BigUint, bound: u64) -> Result<u64, CryptoError> {
    if bound == 0 {
        return Err(CryptoError::DlogNotFound);
    }
    let m = (bound as f64).sqrt().ceil() as u64;

    // Baby steps: table of g^j for j in [0, m).
    let mut table: HashMap<Vec<u8>, u64> = HashMap::with_capacity(m as usize);
    let mut cur = BigUint::one();
    for j in 0..m {
        table.entry(cur.to_bytes_be()).or_insert(j);
        cur = cur.mul(g).rem(p)?;
    }

    // Giant steps: multiply h by g^{-m} repeatedly.
    let g_inv = mod_inverse(g, p).ok_or(CryptoError::DlogNotFound)?;
    let g_inv_m = mod_exp(&g_inv, &BigUint::from_u64(m), p)?;
    let target = h.rem(p)?;
    let mut y = target.clone();
    let mut i = 0u64;
    while i * m <= bound {
        if let Some(&j) = table.get(&y.to_bytes_be()) {
            let x = i * m + j;
            if mod_exp(g, &BigUint::from_u64(x), p)? == target {
                return Ok(x);
            }
        }
        y = y.mul(&g_inv_m).rem(p)?;
        i += 1;
    }
    Err(CryptoError::DlogNotFound)
}

/// Solves `g^x = h (mod p)` where `g` has known prime order `q`, by
/// Pollard's rho with Floyd cycle detection. Expected time
/// O(sqrt(q)) group operations, O(1) memory.
pub fn pollard_rho(
    g: &BigUint,
    h: &BigUint,
    p: &BigUint,
    q: &BigUint,
    rng: &mut dyn RandomSource,
) -> Result<BigUint, CryptoError> {
    let h = h.rem(p)?;
    if h == BigUint::one() {
        return Ok(BigUint::zero());
    }

    // Walk state: (x, a, b) with x = g^a * h^b.
    #[derive(Clone)]
    struct State {
        x: BigUint,
        a: BigUint,
        b: BigUint,
    }

    let step = |s: &State,
                g: &BigUint,
                h: &BigUint,
                p: &BigUint,
                q: &BigUint|
     -> Result<State, CryptoError> {
        // Partition by the low limb of x into three classes.
        let class = s.x.to_bytes_be().last().copied().unwrap_or(0) % 3;
        Ok(match class {
            0 => State {
                x: s.x.mul(h).rem(p)?,
                a: s.a.clone(),
                b: s.b.add(&BigUint::one()).rem(q)?,
            },
            1 => State {
                x: s.x.mul(&s.x).rem(p)?,
                a: s.a.mul(&BigUint::from_u64(2)).rem(q)?,
                b: s.b.mul(&BigUint::from_u64(2)).rem(q)?,
            },
            _ => State {
                x: s.x.mul(g).rem(p)?,
                a: s.a.add(&BigUint::one()).rem(q)?,
                b: s.b.clone(),
            },
        })
    };

    // Multiple restarts with random starting points guard against
    // degenerate cycles.
    for _ in 0..32 {
        let a0 = crate::bignum::random_below(q, rng);
        let b0 = crate::bignum::random_below(q, rng);
        let x0 = mod_exp(g, &a0, p)?.mul(&mod_exp(&h, &b0, p)?).rem(p)?;
        let mut tortoise = State { x: x0.clone(), a: a0.clone(), b: b0.clone() };
        let mut hare = tortoise.clone();

        // Bounded walk: ~8 sqrt(q) steps before a restart.
        let max_steps = 8 * (1u64 << (q.bit_len() / 2 + 1));
        for _ in 0..max_steps {
            tortoise = step(&tortoise, g, &h, p, q)?;
            hare = step(&step(&hare, g, &h, p, q)?, g, &h, p, q)?;
            if tortoise.x == hare.x {
                // g^(a1 - a2) = h^(b2 - b1); solve for x = log_g h.
                let da = sub_mod(&tortoise.a, &hare.a, q)?;
                let db = sub_mod(&hare.b, &tortoise.b, q)?;
                if db.is_zero() {
                    break; // Useless collision; restart.
                }
                let db_inv = match mod_inverse(&db, q) {
                    Some(i) => i,
                    None => break,
                };
                let x = da.mul(&db_inv).rem(q)?;
                if mod_exp(g, &x, p)? == h {
                    return Ok(x);
                }
                break;
            }
        }
    }
    Err(CryptoError::DlogNotFound)
}

/// Computes `(a - b) mod q`.
fn sub_mod(a: &BigUint, b: &BigUint, q: &BigUint) -> Result<BigUint, CryptoError> {
    let a = a.rem(q)?;
    let b = b.rem(q)?;
    match a.checked_sub(&b) {
        Some(d) => Ok(d),
        None => q.sub(&b).add(&a).rem(q),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dh::DhGroup;
    use crate::rng::Drbg;

    #[test]
    fn bsgs_small() {
        // 2^x = 1024 mod p: x = 10.
        let p = BigUint::from_u64(1_000_003);
        let g = BigUint::from_u64(2);
        let h = mod_exp(&g, &BigUint::from_u64(10), &p).unwrap();
        assert_eq!(bsgs(&g, &h, &p, 1 << 16).unwrap(), 10);
    }

    #[test]
    fn bsgs_recovers_dh_private_key() {
        let mut rng = Drbg::new(20);
        let group = DhGroup::toy64();
        let kp = group.keypair(20, &mut rng).unwrap();
        let x = bsgs(&group.g, &kp.public, &group.p, 1 << 20).unwrap();
        assert_eq!(BigUint::from_u64(x), kp.private);
    }

    #[test]
    fn bsgs_not_found() {
        let p = BigUint::from_u64(1_000_003);
        let g = BigUint::from_u64(2);
        let h = mod_exp(&g, &BigUint::from_u64(1 << 30), &p).unwrap();
        // Bound far below the actual exponent (and the exponent is not
        // congruent to anything small).
        assert!(bsgs(&g, &h, &p, 1 << 8).is_err());
    }

    #[test]
    fn bsgs_edge_exponents() {
        let p = BigUint::from_u64(1_000_003);
        let g = BigUint::from_u64(5);
        for x in [0u64, 1, 2, 255, 256] {
            let h = mod_exp(&g, &BigUint::from_u64(x), &p).unwrap();
            assert_eq!(bsgs(&g, &h, &p, 300).unwrap(), x, "x={x}");
        }
    }

    #[test]
    fn rho_recovers_exponent() {
        let mut rng = Drbg::new(21);
        let group = DhGroup::toy_safe();
        let q = group.order.clone().unwrap();
        let secret = crate::bignum::random_below(&q, &mut rng);
        let h = mod_exp(&group.g, &secret, &group.p).unwrap();
        let x = pollard_rho(&group.g, &h, &group.p, &q, &mut rng).unwrap();
        assert_eq!(x, secret.rem(&q).unwrap());
    }

    #[test]
    fn rho_identity() {
        let mut rng = Drbg::new(22);
        let group = DhGroup::toy_safe();
        let q = group.order.clone().unwrap();
        let x = pollard_rho(&group.g, &BigUint::one(), &group.p, &q, &mut rng).unwrap();
        assert!(x.is_zero());
    }

    #[test]
    fn sub_mod_wraps() {
        let q = BigUint::from_u64(7);
        let sm = |a: u64, b: u64| {
            sub_mod(&BigUint::from_u64(a), &BigUint::from_u64(b), &q).unwrap().to_u64()
        };
        assert_eq!(sm(3, 5), Some(5));
        assert_eq!(sm(5, 3), Some(2));
    }
}
