//! Triple DES (EDE3), the era's alternative cipher.
//!
//! "Version 5 supports alternative encryption algorithms as options" —
//! this is the one a 1991 deployment worried about 56-bit keys would
//! have reached for. Encrypt–decrypt–encrypt keying keeps backward
//! compatibility: with all three keys equal, EDE3 degenerates to single
//! DES (tested below).

use crate::des::{decrypt_block, encrypt_block, DesKey, KeySchedule};
use crate::error::CryptoError;

/// A 168-bit (3 × 56) triple-DES key.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct TripleDesKey(pub [DesKey; 3]);

impl core::fmt::Debug for TripleDesKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "TripleDesKey(****)")
    }
}

/// Expanded schedules for one EDE3 key.
pub struct TripleSchedule {
    k1: KeySchedule,
    k2: KeySchedule,
    k3: KeySchedule,
}

impl TripleDesKey {
    /// Builds from three independent keys (keying option 1).
    pub fn new(k1: DesKey, k2: DesKey, k3: DesKey) -> Self {
        TripleDesKey([k1, k2, k3])
    }

    /// Two-key variant (keying option 2): K1, K2, K1.
    pub fn two_key(k1: DesKey, k2: DesKey) -> Self {
        TripleDesKey([k1, k2, k1])
    }

    /// Expands all three schedules.
    pub fn schedule(&self) -> TripleSchedule {
        TripleSchedule { k1: self.0[0].schedule(), k2: self.0[1].schedule(), k3: self.0[2].schedule() }
    }

    /// Encrypts one block: `E_k3(D_k2(E_k1(p)))`.
    pub fn encrypt_block(&self, block: u64) -> u64 {
        let s = self.schedule();
        encrypt_block(&s.k3, decrypt_block(&s.k2, encrypt_block(&s.k1, block)))
    }

    /// Decrypts one block: `D_k1(E_k2(D_k3(c)))`.
    pub fn decrypt_block(&self, block: u64) -> u64 {
        let s = self.schedule();
        decrypt_block(&s.k1, encrypt_block(&s.k2, decrypt_block(&s.k3, block)))
    }
}

/// EDE3-CBC encryption. `data` must be a whole number of blocks.
pub fn ede3_cbc_encrypt(key: &TripleDesKey, iv: u64, data: &[u8]) -> Result<Vec<u8>, CryptoError> {
    if !data.len().is_multiple_of(8) {
        return Err(CryptoError::BadLength { what: "EDE3-CBC input", len: data.len() });
    }
    let s = key.schedule();
    let mut out = vec![0u8; data.len()];
    let mut prev = iv;
    for (i, chunk) in data.chunks_exact(8).enumerate() {
        let p = u64::from_be_bytes(chunk.try_into().expect("8 bytes"));
        let c = encrypt_block(&s.k3, decrypt_block(&s.k2, encrypt_block(&s.k1, p ^ prev)));
        out[i * 8..i * 8 + 8].copy_from_slice(&c.to_be_bytes());
        prev = c;
    }
    Ok(out)
}

/// EDE3-CBC decryption.
pub fn ede3_cbc_decrypt(key: &TripleDesKey, iv: u64, data: &[u8]) -> Result<Vec<u8>, CryptoError> {
    if !data.len().is_multiple_of(8) {
        return Err(CryptoError::BadLength { what: "EDE3-CBC input", len: data.len() });
    }
    let s = key.schedule();
    let mut out = vec![0u8; data.len()];
    let mut prev = iv;
    for (i, chunk) in data.chunks_exact(8).enumerate() {
        let c = u64::from_be_bytes(chunk.try_into().expect("8 bytes"));
        let p = decrypt_block(&s.k1, encrypt_block(&s.k2, decrypt_block(&s.k3, c))) ^ prev;
        out[i * 8..i * 8 + 8].copy_from_slice(&p.to_be_bytes());
        prev = c;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Drbg, RandomSource};

    fn keys() -> (DesKey, DesKey, DesKey) {
        let mut rng = Drbg::new(3);
        (rng.gen_des_key(), rng.gen_des_key(), rng.gen_des_key())
    }

    #[test]
    fn block_roundtrip() {
        let (a, b, c) = keys();
        let k = TripleDesKey::new(a, b, c);
        for pt in [0u64, 1, u64::MAX, 0x0123456789ABCDEF] {
            assert_eq!(k.decrypt_block(k.encrypt_block(pt)), pt);
        }
    }

    /// The EDE compatibility property: all keys equal -> single DES.
    #[test]
    fn degenerates_to_single_des() {
        let (a, _, _) = keys();
        let k = TripleDesKey::new(a, a, a);
        for pt in [0u64, 42, 0xFEDCBA9876543210] {
            assert_eq!(k.encrypt_block(pt), a.encrypt_block(pt));
            assert_eq!(k.decrypt_block(pt), a.decrypt_block(pt));
        }
    }

    #[test]
    fn two_key_matches_explicit_three() {
        let (a, b, _) = keys();
        let two = TripleDesKey::two_key(a, b);
        let three = TripleDesKey::new(a, b, a);
        assert_eq!(two.encrypt_block(7), three.encrypt_block(7));
    }

    #[test]
    fn cbc_roundtrip_and_iv_sensitivity() {
        let (a, b, c) = keys();
        let k = TripleDesKey::new(a, b, c);
        let data = crate::modes::pad_zero(b"triple-DES protects long-term keys against 56-bit search");
        let ct = ede3_cbc_encrypt(&k, 9, &data).unwrap();
        assert_eq!(ede3_cbc_decrypt(&k, 9, &ct).unwrap(), data);
        assert_ne!(ede3_cbc_encrypt(&k, 10, &data).unwrap(), ct);
        assert!(ede3_cbc_encrypt(&k, 0, b"short").is_err());
    }

    #[test]
    fn distinct_from_single_des_with_distinct_keys() {
        let (a, b, c) = keys();
        let k = TripleDesKey::new(a, b, c);
        assert_ne!(k.encrypt_block(1), a.encrypt_block(1));
    }

    /// CBC under EDE3 retains the prefix property — the chosen-plaintext
    /// splice is a property of the *mode*, not the cipher, so switching
    /// algorithms alone would not have fixed A7.
    #[test]
    fn cbc_prefix_property_survives_cipher_upgrade() {
        let (a, b, c) = keys();
        let k = TripleDesKey::new(a, b, c);
        let data = crate::modes::pad_zero(b"AUTHENTICATOR+CHECKSUM+remainder-to-splice-away!");
        let ct = ede3_cbc_encrypt(&k, 5, &data).unwrap();
        let pt = ede3_cbc_decrypt(&k, 5, &ct[..16]).unwrap();
        assert_eq!(pt, &data[..16]);
    }
}
