//! Triple DES (EDE3), the era's alternative cipher.
//!
//! "Version 5 supports alternative encryption algorithms as options" —
//! this is the one a 1991 deployment worried about 56-bit keys would
//! have reached for. Encrypt–decrypt–encrypt keying keeps backward
//! compatibility: with all three keys equal, EDE3 degenerates to single
//! DES (tested below).

use crate::des::{self, decrypt_block, encrypt_block, DesKey, KeySchedule};
use crate::error::CryptoError;

/// A 168-bit (3 × 56) triple-DES key.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct TripleDesKey(pub [DesKey; 3]);

impl core::fmt::Debug for TripleDesKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "TripleDesKey(****)")
    }
}

/// Expanded schedules for one EDE3 key.
pub struct TripleSchedule {
    k1: KeySchedule,
    k2: KeySchedule,
    k3: KeySchedule,
}

impl TripleSchedule {
    /// Encrypts one block without rescheduling: `E_k3(D_k2(E_k1(p)))`.
    pub fn encrypt_block(&self, block: u64) -> u64 {
        encrypt_block(&self.k3, decrypt_block(&self.k2, encrypt_block(&self.k1, block)))
    }

    /// Decrypts one block without rescheduling: `D_k1(E_k2(D_k3(c)))`.
    pub fn decrypt_block(&self, block: u64) -> u64 {
        decrypt_block(&self.k1, encrypt_block(&self.k2, decrypt_block(&self.k3, block)))
    }
}

impl TripleDesKey {
    /// Builds from three independent keys (keying option 1).
    pub fn new(k1: DesKey, k2: DesKey, k3: DesKey) -> Self {
        TripleDesKey([k1, k2, k3])
    }

    /// Two-key variant (keying option 2): K1, K2, K1.
    pub fn two_key(k1: DesKey, k2: DesKey) -> Self {
        TripleDesKey([k1, k2, k1])
    }

    /// Expands all three schedules.
    pub fn schedule(&self) -> TripleSchedule {
        TripleSchedule { k1: self.0[0].schedule(), k2: self.0[1].schedule(), k3: self.0[2].schedule() }
    }

    /// Runs `f` with the three schedules from the thread-local cache,
    /// expanding only the ones not already cached.
    fn with_schedules<R>(&self, f: impl FnOnce(&KeySchedule, &KeySchedule, &KeySchedule) -> R) -> R {
        des::with_scheduled(&self.0[0], |s1| {
            des::with_scheduled(&self.0[1], |s2| {
                des::with_scheduled(&self.0[2], |s3| f(s1.schedule(), s2.schedule(), s3.schedule()))
            })
        })
    }

    /// Encrypts one block: `E_k3(D_k2(E_k1(p)))`.
    pub fn encrypt_block(&self, block: u64) -> u64 {
        self.with_schedules(|k1, k2, k3| encrypt_block(k3, decrypt_block(k2, encrypt_block(k1, block))))
    }

    /// Decrypts one block: `D_k1(E_k2(D_k3(c)))`.
    pub fn decrypt_block(&self, block: u64) -> u64 {
        self.with_schedules(|k1, k2, k3| decrypt_block(k1, encrypt_block(k2, decrypt_block(k3, block))))
    }
}

fn check_blocks(data: &[u8]) -> Result<(), CryptoError> {
    if !data.len().is_multiple_of(8) {
        return Err(CryptoError::BadLength { what: "EDE3-CBC input", len: data.len() });
    }
    Ok(())
}

/// EDE3-CBC encryption in place with a precomputed schedule.
pub fn ede3_cbc_encrypt_in_place(
    s: &TripleSchedule,
    iv: u64,
    data: &mut [u8],
) -> Result<(), CryptoError> {
    check_blocks(data)?;
    let mut prev = iv;
    for chunk in data.chunks_exact_mut(8) {
        let p = crate::modes::load_block(chunk);
        prev = s.encrypt_block(p ^ prev);
        chunk.copy_from_slice(&prev.to_be_bytes());
    }
    Ok(())
}

/// EDE3-CBC decryption in place with a precomputed schedule.
pub fn ede3_cbc_decrypt_in_place(
    s: &TripleSchedule,
    iv: u64,
    data: &mut [u8],
) -> Result<(), CryptoError> {
    check_blocks(data)?;
    let mut prev = iv;
    for chunk in data.chunks_exact_mut(8) {
        let c = crate::modes::load_block(chunk);
        let p = s.decrypt_block(c) ^ prev;
        chunk.copy_from_slice(&p.to_be_bytes());
        prev = c;
    }
    Ok(())
}

/// EDE3-CBC encryption. `data` must be a whole number of blocks.
pub fn ede3_cbc_encrypt(key: &TripleDesKey, iv: u64, data: &[u8]) -> Result<Vec<u8>, CryptoError> {
    let mut out = data.to_vec();
    key.with_schedules(|k1, k2, k3| {
        let mut prev = iv;
        check_blocks(&out)?;
        for chunk in out.chunks_exact_mut(8) {
            let p = crate::modes::load_block(chunk);
            prev = encrypt_block(k3, decrypt_block(k2, encrypt_block(k1, p ^ prev)));
            chunk.copy_from_slice(&prev.to_be_bytes());
        }
        Ok(())
    })?;
    Ok(out)
}

/// EDE3-CBC decryption.
pub fn ede3_cbc_decrypt(key: &TripleDesKey, iv: u64, data: &[u8]) -> Result<Vec<u8>, CryptoError> {
    let mut out = data.to_vec();
    key.with_schedules(|k1, k2, k3| {
        check_blocks(&out)?;
        let mut prev = iv;
        for chunk in out.chunks_exact_mut(8) {
            let c = crate::modes::load_block(chunk);
            let p = decrypt_block(k1, encrypt_block(k2, decrypt_block(k3, c))) ^ prev;
            chunk.copy_from_slice(&p.to_be_bytes());
            prev = c;
        }
        Ok(())
    })?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Drbg, RandomSource};

    fn keys() -> (DesKey, DesKey, DesKey) {
        let mut rng = Drbg::new(3);
        (rng.gen_des_key(), rng.gen_des_key(), rng.gen_des_key())
    }

    #[test]
    fn block_roundtrip() {
        let (a, b, c) = keys();
        let k = TripleDesKey::new(a, b, c);
        for pt in [0u64, 1, u64::MAX, 0x0123456789ABCDEF] {
            assert_eq!(k.decrypt_block(k.encrypt_block(pt)), pt);
        }
    }

    /// The EDE compatibility property: all keys equal -> single DES.
    #[test]
    fn degenerates_to_single_des() {
        let (a, _, _) = keys();
        let k = TripleDesKey::new(a, a, a);
        for pt in [0u64, 42, 0xFEDCBA9876543210] {
            assert_eq!(k.encrypt_block(pt), a.encrypt_block(pt));
            assert_eq!(k.decrypt_block(pt), a.decrypt_block(pt));
        }
    }

    #[test]
    fn two_key_matches_explicit_three() {
        let (a, b, _) = keys();
        let two = TripleDesKey::two_key(a, b);
        let three = TripleDesKey::new(a, b, a);
        assert_eq!(two.encrypt_block(7), three.encrypt_block(7));
    }

    #[test]
    fn cbc_roundtrip_and_iv_sensitivity() {
        let (a, b, c) = keys();
        let k = TripleDesKey::new(a, b, c);
        let data = crate::modes::pad_zero(b"triple-DES protects long-term keys against 56-bit search");
        let ct = ede3_cbc_encrypt(&k, 9, &data).unwrap();
        assert_eq!(ede3_cbc_decrypt(&k, 9, &ct).unwrap(), data);
        assert_ne!(ede3_cbc_encrypt(&k, 10, &data).unwrap(), ct);
        assert!(ede3_cbc_encrypt(&k, 0, b"short").is_err());
    }

    #[test]
    fn scheduled_ops_match_key_ops() {
        let (a, b, c) = keys();
        let k = TripleDesKey::new(a, b, c);
        let s = k.schedule();
        assert_eq!(s.encrypt_block(99), k.encrypt_block(99));
        assert_eq!(s.decrypt_block(99), k.decrypt_block(99));
        let data = crate::modes::pad_zero(b"in-place EDE3 must match the allocating path");
        let mut buf = data.clone();
        ede3_cbc_encrypt_in_place(&s, 4, &mut buf).unwrap();
        assert_eq!(buf, ede3_cbc_encrypt(&k, 4, &data).unwrap());
        ede3_cbc_decrypt_in_place(&s, 4, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn distinct_from_single_des_with_distinct_keys() {
        let (a, b, c) = keys();
        let k = TripleDesKey::new(a, b, c);
        assert_ne!(k.encrypt_block(1), a.encrypt_block(1));
    }

    /// CBC under EDE3 retains the prefix property — the chosen-plaintext
    /// splice is a property of the *mode*, not the cipher, so switching
    /// algorithms alone would not have fixed A7.
    #[test]
    fn cbc_prefix_property_survives_cipher_upgrade() {
        let (a, b, c) = keys();
        let k = TripleDesKey::new(a, b, c);
        let data = crate::modes::pad_zero(b"AUTHENTICATOR+CHECKSUM+remainder-to-splice-away!");
        let ct = ede3_cbc_encrypt(&k, 5, &data).unwrap();
        let pt = ede3_cbc_decrypt(&k, 5, &ct[..16]).unwrap();
        assert_eq!(pt, &data[..16]);
    }
}
