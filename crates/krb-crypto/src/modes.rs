//! DES modes of operation: ECB, CBC (FIPS 81), and the nonstandard PCBC
//! mode used by Kerberos V4.
//!
//! The mode-level structure here is load-bearing for the paper's attacks:
//!
//! - CBC has the *prefix property* — a prefix of a ciphertext is a valid
//!   encryption of the corresponding plaintext prefix (used by the
//!   inter-session chosen-plaintext attack on `KRB_PRIV`).
//! - PCBC has the *block-swap property* — exchanging two ciphertext
//!   blocks garbles only the corresponding plaintext blocks, leaving all
//!   later blocks intact (message-stream modification).
//!
//! Each mode has an `_in_place` core that transforms a caller-provided
//! buffer under a precomputed [`KeySchedule`] — the zero-allocation hot
//! path — plus a thin allocating wrapper with the historical
//! `(key, data) -> Vec<u8>` signature that routes through the
//! thread-local schedule cache.

use crate::des::{self, decrypt_block, encrypt_block, DesKey, KeySchedule};
use crate::error::CryptoError;

/// Converts an 8-byte chunk to a big-endian u64.
pub(crate) fn load_block(chunk: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(chunk);
    u64::from_be_bytes(b)
}

/// Writes a u64 as 8 big-endian bytes into `out`.
pub(crate) fn store_block(v: u64, out: &mut [u8]) {
    out.copy_from_slice(&v.to_be_bytes());
}

/// Zero-pads `data` up to a multiple of the DES block size. Kerberos V4
/// framed the true length inside the plaintext, so zero padding is what
/// the historical protocol used.
pub fn pad_zero(data: &[u8]) -> Vec<u8> {
    let mut v = data.to_vec();
    let rem = v.len() % 8;
    if rem != 0 {
        v.resize(v.len() + (8 - rem), 0);
    }
    v
}

/// Requires `data` to be a whole number of blocks.
fn check_blocks(data: &[u8]) -> Result<(), CryptoError> {
    if !data.len().is_multiple_of(8) {
        return Err(CryptoError::BadLength {
            what: "block-mode input",
            len: data.len(),
        });
    }
    Ok(())
}

/// Encrypts `data` in ECB mode in place. `data` must be a multiple of 8
/// bytes.
pub fn ecb_encrypt_in_place(ks: &KeySchedule, data: &mut [u8]) -> Result<(), CryptoError> {
    check_blocks(data)?;
    for chunk in data.chunks_exact_mut(8) {
        store_block(encrypt_block(ks, load_block(chunk)), chunk);
    }
    Ok(())
}

/// Decrypts `data` in ECB mode in place.
pub fn ecb_decrypt_in_place(ks: &KeySchedule, data: &mut [u8]) -> Result<(), CryptoError> {
    check_blocks(data)?;
    for chunk in data.chunks_exact_mut(8) {
        store_block(decrypt_block(ks, load_block(chunk)), chunk);
    }
    Ok(())
}

/// Encrypts `data` in CBC mode in place with the given IV.
pub fn cbc_encrypt_in_place(ks: &KeySchedule, iv: u64, data: &mut [u8]) -> Result<(), CryptoError> {
    check_blocks(data)?;
    let mut prev = iv;
    for chunk in data.chunks_exact_mut(8) {
        prev = encrypt_block(ks, load_block(chunk) ^ prev);
        store_block(prev, chunk);
    }
    Ok(())
}

/// Decrypts `data` in CBC mode in place with the given IV.
pub fn cbc_decrypt_in_place(ks: &KeySchedule, iv: u64, data: &mut [u8]) -> Result<(), CryptoError> {
    check_blocks(data)?;
    let mut prev = iv;
    for chunk in data.chunks_exact_mut(8) {
        let ct = load_block(chunk);
        store_block(decrypt_block(ks, ct) ^ prev, chunk);
        prev = ct;
    }
    Ok(())
}

/// Encrypts `data` in place in Kerberos V4's PCBC (propagating CBC) mode:
/// `C_i = E(P_i ^ P_{i-1} ^ C_{i-1})` with `P_0 ^ C_0` seeded by the IV.
pub fn pcbc_encrypt_in_place(ks: &KeySchedule, iv: u64, data: &mut [u8]) -> Result<(), CryptoError> {
    check_blocks(data)?;
    let mut chain = iv;
    for chunk in data.chunks_exact_mut(8) {
        let p = load_block(chunk);
        let c = encrypt_block(ks, p ^ chain);
        store_block(c, chunk);
        chain = p ^ c;
    }
    Ok(())
}

/// Decrypts PCBC mode in place.
pub fn pcbc_decrypt_in_place(ks: &KeySchedule, iv: u64, data: &mut [u8]) -> Result<(), CryptoError> {
    check_blocks(data)?;
    let mut chain = iv;
    for chunk in data.chunks_exact_mut(8) {
        let c = load_block(chunk);
        let p = decrypt_block(ks, c) ^ chain;
        store_block(p, chunk);
        chain = p ^ c;
    }
    Ok(())
}

/// Encrypts in ECB mode. `data` must be a multiple of 8 bytes.
pub fn ecb_encrypt(key: &DesKey, data: &[u8]) -> Result<Vec<u8>, CryptoError> {
    let mut out = data.to_vec();
    des::with_schedule(key, |ks| ecb_encrypt_in_place(ks, &mut out))?;
    Ok(out)
}

/// Decrypts in ECB mode. `data` must be a multiple of 8 bytes.
pub fn ecb_decrypt(key: &DesKey, data: &[u8]) -> Result<Vec<u8>, CryptoError> {
    let mut out = data.to_vec();
    des::with_schedule(key, |ks| ecb_decrypt_in_place(ks, &mut out))?;
    Ok(out)
}

/// Encrypts in CBC mode with the given IV.
pub fn cbc_encrypt(key: &DesKey, iv: u64, data: &[u8]) -> Result<Vec<u8>, CryptoError> {
    let mut out = data.to_vec();
    des::with_schedule(key, |ks| cbc_encrypt_in_place(ks, iv, &mut out))?;
    Ok(out)
}

/// Decrypts in CBC mode with the given IV.
pub fn cbc_decrypt(key: &DesKey, iv: u64, data: &[u8]) -> Result<Vec<u8>, CryptoError> {
    let mut out = data.to_vec();
    des::with_schedule(key, |ks| cbc_decrypt_in_place(ks, iv, &mut out))?;
    Ok(out)
}

/// Encrypts in PCBC mode with the given IV.
pub fn pcbc_encrypt(key: &DesKey, iv: u64, data: &[u8]) -> Result<Vec<u8>, CryptoError> {
    let mut out = data.to_vec();
    des::with_schedule(key, |ks| pcbc_encrypt_in_place(ks, iv, &mut out))?;
    Ok(out)
}

/// Decrypts PCBC mode.
pub fn pcbc_decrypt(key: &DesKey, iv: u64, data: &[u8]) -> Result<Vec<u8>, CryptoError> {
    let mut out = data.to_vec();
    des::with_schedule(key, |ks| pcbc_decrypt_in_place(ks, iv, &mut out))?;
    Ok(out)
}

/// Encrypts a whole message with a precomputed key schedule in CBC mode.
/// Exposed for the throughput benchmarks, which must not re-run the key
/// schedule per message.
pub fn cbc_encrypt_with(ks: &KeySchedule, iv: u64, data: &[u8]) -> Result<Vec<u8>, CryptoError> {
    let mut out = data.to_vec();
    cbc_encrypt_in_place(ks, iv, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> DesKey {
        DesKey::from_u64(0x0123456789ABCDEF).with_odd_parity()
    }

    #[test]
    fn ecb_roundtrip() {
        let data = b"8 bytes!8 bytes!";
        let ct = ecb_encrypt(&key(), data).unwrap();
        assert_eq!(ecb_decrypt(&key(), &ct).unwrap(), data);
    }

    #[test]
    fn ecb_leaks_equal_blocks() {
        // The motivation for chaining modes: identical plaintext blocks
        // yield identical ciphertext blocks under ECB.
        let ct = ecb_encrypt(&key(), b"samesamesamesame").unwrap();
        assert_eq!(&ct[0..8], &ct[8..16]);
    }

    #[test]
    fn cbc_roundtrip() {
        let data = pad_zero(b"The Kerberos authentication system");
        let ct = cbc_encrypt(&key(), 42, &data).unwrap();
        assert_eq!(cbc_decrypt(&key(), 42, &ct).unwrap(), data);
    }

    #[test]
    fn cbc_hides_equal_blocks() {
        let ct = cbc_encrypt(&key(), 7, b"samesamesamesame").unwrap();
        assert_ne!(&ct[0..8], &ct[8..16]);
    }

    #[test]
    fn cbc_iv_matters() {
        let data = pad_zero(b"identical plaintext");
        let a = cbc_encrypt(&key(), 1, &data).unwrap();
        let b = cbc_encrypt(&key(), 2, &data).unwrap();
        assert_ne!(a, b);
    }

    /// The CBC prefix property the chosen-plaintext attack relies on:
    /// truncating a ciphertext to k blocks yields a valid encryption of
    /// the first k plaintext blocks.
    #[test]
    fn cbc_prefix_property() {
        let data = pad_zero(b"AUTHENTICATOR...CHECKSUM+++remainder of the message");
        let ct = cbc_encrypt(&key(), 99, &data).unwrap();
        let prefix_ct = &ct[..16];
        let prefix_pt = cbc_decrypt(&key(), 99, prefix_ct).unwrap();
        assert_eq!(prefix_pt, &data[..16]);
    }

    #[test]
    fn pcbc_roundtrip() {
        let data = pad_zero(b"propagating cipher block chaining");
        let ct = pcbc_encrypt(&key(), 3, &data).unwrap();
        assert_eq!(pcbc_decrypt(&key(), 3, &ct).unwrap(), data);
    }

    /// PCBC's fatal propagation property (paper, "The Encryption
    /// Layer"): swapping ciphertext blocks i and i+1 garbles only those
    /// two plaintext blocks; every later block decrypts correctly.
    #[test]
    fn pcbc_block_swap_leaves_suffix_intact() {
        let data = pad_zero(b"0000000011111111222222223333333344444444");
        let mut ct = pcbc_encrypt(&key(), 5, &data).unwrap();
        let (a, b) = (load_block(&ct[8..16]), load_block(&ct[16..24]));
        store_block(b, &mut ct[8..16]);
        store_block(a, &mut ct[16..24]);
        let pt = pcbc_decrypt(&key(), 5, &ct).unwrap();
        // Blocks 1 and 2 are garbled...
        assert_ne!(&pt[8..24], &data[8..24]);
        // ...but block 0 and every block after the swap are intact.
        assert_eq!(&pt[..8], &data[..8]);
        assert_eq!(&pt[24..], &data[24..]);
    }

    /// CBC does NOT have the swap-tolerance property: garbling propagates
    /// only one block, so the block after the swap is also damaged — but
    /// crucially, in CBC an attacker splicing blocks garbles a bounded,
    /// predictable region, which is why a MAC is still required.
    #[test]
    fn cbc_block_swap_garbles_bounded_region() {
        let data = pad_zero(b"0000000011111111222222223333333344444444");
        let mut ct = cbc_encrypt(&key(), 5, &data).unwrap();
        let (a, b) = (load_block(&ct[8..16]), load_block(&ct[16..24]));
        store_block(b, &mut ct[8..16]);
        store_block(a, &mut ct[16..24]);
        let pt = cbc_decrypt(&key(), 5, &ct).unwrap();
        assert_eq!(&pt[..8], &data[..8]);
        assert_eq!(&pt[32..], &data[32..]);
    }

    #[test]
    fn rejects_partial_blocks() {
        assert!(ecb_encrypt(&key(), b"short").is_err());
        assert!(cbc_encrypt(&key(), 0, b"123456789").is_err());
        assert!(pcbc_decrypt(&key(), 0, &[0u8; 7]).is_err());
        let ks = key().schedule();
        assert!(cbc_encrypt_in_place(&ks, 0, &mut [0u8; 9]).is_err());
    }

    #[test]
    fn in_place_matches_allocating() {
        let ks = key().schedule();
        let data = pad_zero(b"the in-place drivers and the wrappers must agree");
        let mut buf = data.clone();
        cbc_encrypt_in_place(&ks, 11, &mut buf).unwrap();
        assert_eq!(buf, cbc_encrypt(&key(), 11, &data).unwrap());
        let mut buf = data.clone();
        pcbc_encrypt_in_place(&ks, 11, &mut buf).unwrap();
        assert_eq!(buf, pcbc_encrypt(&key(), 11, &data).unwrap());
        let mut buf = data.clone();
        ecb_encrypt_in_place(&ks, &mut buf).unwrap();
        assert_eq!(buf, ecb_encrypt(&key(), &data).unwrap());
    }

    #[test]
    fn pad_zero_behaviour() {
        assert_eq!(pad_zero(b"").len(), 0);
        assert_eq!(pad_zero(b"1").len(), 8);
        assert_eq!(pad_zero(b"12345678").len(), 8);
        assert_eq!(pad_zero(b"123456789").len(), 16);
    }
}
