//! DES key schedule: PC-1, the sixteen rotations, and PC-2.

use super::{DesKey, PC1, PC2, SHIFTS};

/// The sixteen 48-bit round keys, stored right-aligned in u64s.
pub type RoundKeys = [u64; 16];

/// An expanded DES key.
#[derive(Clone)]
pub struct KeySchedule {
    round_keys: RoundKeys,
}

impl KeySchedule {
    /// Expands `key` into sixteen round keys.
    pub fn new(key: &DesKey) -> Self {
        let k = key.to_u64();

        // PC-1: 64 -> 56 bits, split into C (high 28) and D (low 28).
        let mut cd: u64 = 0;
        for &src in PC1.iter() {
            cd = (cd << 1) | ((k >> (64 - u64::from(src))) & 1);
        }
        let mut c = (cd >> 28) & 0x0fff_ffff;
        let mut d = cd & 0x0fff_ffff;

        let mut round_keys = [0u64; 16];
        for (round, &shift) in SHIFTS.iter().enumerate() {
            c = rotl28(c, shift);
            d = rotl28(d, shift);
            let merged = (c << 28) | d;
            // PC-2: 56 -> 48 bits.
            let mut rk: u64 = 0;
            for &src in PC2.iter() {
                rk = (rk << 1) | ((merged >> (56 - u64::from(src))) & 1);
            }
            round_keys[round] = rk;
        }
        KeySchedule { round_keys }
    }

    /// Returns the round keys in encryption order.
    pub fn round_keys(&self) -> &RoundKeys {
        &self.round_keys
    }
}

/// Rotates a 28-bit value left by `n` bits.
fn rotl28(v: u64, n: u8) -> u64 {
    debug_assert!(n == 1 || n == 2);
    ((v << n) | (v >> (28 - n))) & 0x0fff_ffff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotl28_wraps() {
        assert_eq!(rotl28(0x0800_0000, 1), 1);
        assert_eq!(rotl28(0x0C00_0000, 2), 3);
        assert_eq!(rotl28(1, 1), 2);
    }

    /// First round key from the classic worked example
    /// (key 0x133457799BBCDFF1): K1 = 000110 110000 001011 101111
    /// 111111 000111 000001 110010.
    #[test]
    fn worked_example_round_one() {
        let ks = KeySchedule::new(&DesKey::from_u64(0x133457799BBCDFF1));
        assert_eq!(ks.round_keys()[0], 0b000110_110000_001011_101111_111111_000111_000001_110010);
    }

    /// Last round key from the same example: K16 = 110010 110011 110110
    /// 001011 000011 100001 011111 110101.
    #[test]
    fn worked_example_round_sixteen() {
        let ks = KeySchedule::new(&DesKey::from_u64(0x133457799BBCDFF1));
        assert_eq!(
            ks.round_keys()[15],
            0b110010_110011_110110_001011_000011_100001_011111_110101
        );
    }

    #[test]
    fn weak_key_has_identical_round_keys() {
        let ks = KeySchedule::new(&DesKey::from_u64(0x0101010101010101));
        let first = ks.round_keys()[0];
        assert!(ks.round_keys().iter().all(|&rk| rk == first));
    }
}
