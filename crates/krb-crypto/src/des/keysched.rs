//! DES key schedule: PC-1, the sixteen rotations, and PC-2.
//!
//! Both permuted choices are applied via `const`-built lookup tables
//! (one per input byte for PC-1, one per 7-bit chunk for PC-2) instead
//! of per-bit walks: expanding a key costs 8 + 16×8 table lookups. The
//! tables are derived at compile time from the FIPS `PC1`/`PC2` tables,
//! so there is a single source of truth.
//!
//! Alongside the classic right-aligned 48-bit round keys (kept for the
//! reference kernel and the worked-example tests), the schedule stores
//! each round key pre-split into the two packed halves the fast kernel's
//! round function consumes (see `fast::split_round_key`).

use super::fast::split_round_key;
use super::tables::{PC1, PC2, SHIFTS};
use super::DesKey;

/// The sixteen 48-bit round keys, stored right-aligned in u64s.
pub type RoundKeys = [u64; 16];

/// An expanded DES key.
#[derive(Clone)]
pub struct KeySchedule {
    round_keys: RoundKeys,
    sp_keys: [(u32, u32); 16],
}

/// PC-1 contribution of each key byte: `PC1_T[byte_idx][byte]` is the
/// 56-bit C‖D value with exactly that byte's selected bits placed.
static PC1_T: [[u64; 256]; 8] = build_pc1();

/// PC-2 contribution of each 7-bit C‖D chunk.
static PC2_T: [[u64; 128]; 8] = build_pc2();

const fn build_pc1() -> [[u64; 256]; 8] {
    let mut t = [[0u64; 256]; 8];
    let mut byte_idx = 0;
    while byte_idx < 8 {
        let mut v = 0;
        while v < 256 {
            let mut acc = 0u64;
            let mut j = 0;
            while j < 56 {
                let src = PC1[j] as usize; // 1..=64, MSB-first
                if (src - 1) / 8 == byte_idx {
                    let bit = ((v as u64) >> (7 - (src - 1) % 8)) & 1;
                    acc |= bit << (55 - j);
                }
                j += 1;
            }
            t[byte_idx][v] = acc;
            v += 1;
        }
        byte_idx += 1;
    }
    t
}

const fn build_pc2() -> [[u64; 128]; 8] {
    let mut t = [[0u64; 128]; 8];
    let mut chunk = 0;
    while chunk < 8 {
        let mut v = 0;
        while v < 128 {
            let mut acc = 0u64;
            let mut j = 0;
            while j < 48 {
                let src = PC2[j] as usize; // 1..=56 into C‖D, MSB-first
                if (src - 1) / 7 == chunk {
                    let bit = ((v as u64) >> (6 - (src - 1) % 7)) & 1;
                    acc |= bit << (47 - j);
                }
                j += 1;
            }
            t[chunk][v] = acc;
            v += 1;
        }
        chunk += 1;
    }
    t
}

impl KeySchedule {
    /// Expands `key` into sixteen round keys.
    pub fn new(key: &DesKey) -> Self {
        // PC-1: 64 -> 56 bits, split into C (high 28) and D (low 28).
        let mut cd: u64 = 0;
        for (i, &b) in key.0.iter().enumerate() {
            cd |= PC1_T[i][usize::from(b)];
        }
        let mut c = (cd >> 28) & 0x0fff_ffff;
        let mut d = cd & 0x0fff_ffff;

        let mut round_keys = [0u64; 16];
        let mut sp_keys = [(0u32, 0u32); 16];
        for (round, &shift) in SHIFTS.iter().enumerate() {
            c = rotl28(c, shift);
            d = rotl28(d, shift);
            let merged = (c << 28) | d;
            // PC-2: 56 -> 48 bits, one lookup per 7-bit chunk.
            let mut rk: u64 = 0;
            let mut m = 0;
            while m < 8 {
                rk |= PC2_T[m][((merged >> (49 - 7 * m)) & 0x7f) as usize];
                m += 1;
            }
            round_keys[round] = rk;
            sp_keys[round] = split_round_key(rk);
        }
        KeySchedule { round_keys, sp_keys }
    }

    /// Returns the round keys in encryption order.
    pub fn round_keys(&self) -> &RoundKeys {
        &self.round_keys
    }

    /// Returns the round keys pre-split for the fast kernel.
    pub(crate) fn sp_keys(&self) -> &[(u32, u32); 16] {
        &self.sp_keys
    }
}

/// Rotates a 28-bit value left by `n` bits.
fn rotl28(v: u64, n: u8) -> u64 {
    debug_assert!(n == 1 || n == 2);
    ((v << n) | (v >> (28 - n))) & 0x0fff_ffff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotl28_wraps() {
        assert_eq!(rotl28(0x0800_0000, 1), 1);
        assert_eq!(rotl28(0x0C00_0000, 2), 3);
        assert_eq!(rotl28(1, 1), 2);
    }

    /// First round key from the classic worked example
    /// (key 0x133457799BBCDFF1): K1 = 000110 110000 001011 101111
    /// 111111 000111 000001 110010.
    #[test]
    fn worked_example_round_one() {
        let ks = KeySchedule::new(&DesKey::from_u64(0x133457799BBCDFF1));
        assert_eq!(ks.round_keys()[0], 0b000110_110000_001011_101111_111111_000111_000001_110010);
    }

    /// Last round key from the same example: K16 = 110010 110011 110110
    /// 001011 000011 100001 011111 110101.
    #[test]
    fn worked_example_round_sixteen() {
        let ks = KeySchedule::new(&DesKey::from_u64(0x133457799BBCDFF1));
        assert_eq!(
            ks.round_keys()[15],
            0b110010_110011_110110_001011_000011_100001_011111_110101
        );
    }

    #[test]
    fn weak_key_has_identical_round_keys() {
        let ks = KeySchedule::new(&DesKey::from_u64(0x0101010101010101));
        let first = ks.round_keys()[0];
        assert!(ks.round_keys().iter().all(|&rk| rk == first));
    }

    /// The table-driven PC-1/PC-2 must agree with a per-bit walk of the
    /// FIPS tables for every round, not just the pinned examples.
    #[test]
    fn lookup_tables_match_bitwise_walk() {
        for k in [0x133457799BBCDFF1u64, 0, u64::MAX, 0xA55A_96E1_D00D_FEED] {
            let key = DesKey::from_u64(k);
            let fast = KeySchedule::new(&key);
            let slow = bitwise_schedule(&key);
            assert_eq!(fast.round_keys(), &slow, "key {k:016X}");
        }
    }

    /// The original per-bit schedule, retained as a test oracle.
    fn bitwise_schedule(key: &DesKey) -> RoundKeys {
        let k = key.to_u64();
        let mut cd: u64 = 0;
        for &src in PC1.iter() {
            cd = (cd << 1) | ((k >> (64 - u64::from(src))) & 1);
        }
        let mut c = (cd >> 28) & 0x0fff_ffff;
        let mut d = cd & 0x0fff_ffff;
        let mut round_keys = [0u64; 16];
        for (round, &shift) in SHIFTS.iter().enumerate() {
            c = rotl28(c, shift);
            d = rotl28(d, shift);
            let merged = (c << 28) | d;
            let mut rk: u64 = 0;
            for &src in PC2.iter() {
                rk = (rk << 1) | ((merged >> (56 - u64::from(src))) & 1);
            }
            round_keys[round] = rk;
        }
        round_keys
    }
}
