//! The production DES kernel: fused SP-tables and swap-network IP/FP.
//!
//! The [`reference`](super::reference) module walks the FIPS tables one
//! bit at a time; this module precomputes the same algebra so the round
//! function is pure shifts, XORs, and eight table lookups:
//!
//! - Each S-box is merged with the P permutation into a 64-entry `u32`
//!   table `SP[i]`: `SP[i][six] = P(S_i(six) << (28 - 4*i))`. The eight
//!   lookups are OR-combined, eliminating the per-bit `P` walk.
//! - The E expansion is never materialised. Rotating `R` right by one
//!   makes the eight overlapping 6-bit groups plain bit fields: even
//!   groups of `x = R >>> 1` sit at shifts 26/18/10/2, odd groups at the
//!   same shifts of `x <<< 4`. Round keys are pre-split to match (see
//!   [`split_round_key`]), so key mixing is two XORs.
//! - IP and FP are five delta-swaps each (constant-shift swap networks)
//!   instead of a 64-entry table walk. FP runs the same involutions in
//!   reverse order, so `fp(ip(x)) == x` by construction.
//!
//! All tables are `const`-built from the FIPS tables in
//! [`tables`](super::tables) — a single source of truth — and the
//! differential proptests in `tests/des_kat.rs` pin this kernel
//! bit-exactly to the reference implementation.

use super::tables::{P, SBOXES};
use super::KeySchedule;

/// S-box `i` fused with the P permutation, indexed by the 6-bit group.
static SP: [[u32; 64]; 8] = build_sp();

const fn sp_entry(i: usize, six: usize) -> u32 {
    // Row is the outer two bits, column the inner four (FIPS 46-3).
    let row = ((six & 0x20) >> 4) | (six & 1);
    let col = (six >> 1) & 0xf;
    let s = SBOXES[i][row * 16 + col] as u32;
    // Place the 4-bit output at S-box i's nibble, then apply P.
    let pre = s << (28 - 4 * i);
    let mut out = 0u32;
    let mut j = 0;
    while j < 32 {
        out = (out << 1) | ((pre >> (32 - P[j] as u32)) & 1);
        j += 1;
    }
    out
}

const fn build_sp() -> [[u32; 64]; 8] {
    let mut sp = [[0u32; 64]; 8];
    let mut i = 0;
    while i < 8 {
        let mut six = 0;
        while six < 64 {
            sp[i][six] = sp_entry(i, six);
            six += 1;
        }
        i += 1;
    }
    sp
}

/// Splits a 48-bit round key into the two packed halves the round
/// function consumes: `ka` carries groups 0/2/4/6 at shifts 26/18/10/2,
/// `kb` carries groups 1/3/5/7 at the same shifts.
pub(crate) const fn split_round_key(rk: u64) -> (u32, u32) {
    const fn g(rk: u64, i: u32) -> u32 {
        ((rk >> (42 - 6 * i)) & 0x3f) as u32
    }
    let ka = (g(rk, 0) << 26) | (g(rk, 2) << 18) | (g(rk, 4) << 10) | (g(rk, 6) << 2);
    let kb = (g(rk, 1) << 26) | (g(rk, 3) << 18) | (g(rk, 5) << 10) | (g(rk, 7) << 2);
    (ka, kb)
}

/// f(R, K) with pre-split keys: 2 rotations, 2 XORs, 8 fused lookups.
#[inline(always)]
fn feistel(r: u32, (ka, kb): (u32, u32)) -> u32 {
    let x = r.rotate_right(1);
    let t = x ^ ka;
    let u = x.rotate_left(4) ^ kb;
    SP[0][(t >> 26) as usize]
        | SP[2][((t >> 18) & 0x3f) as usize]
        | SP[4][((t >> 10) & 0x3f) as usize]
        | SP[6][((t >> 2) & 0x3f) as usize]
        | SP[1][(u >> 26) as usize]
        | SP[3][((u >> 18) & 0x3f) as usize]
        | SP[5][((u >> 10) & 0x3f) as usize]
        | SP[7][((u >> 2) & 0x3f) as usize]
}

/// The initial permutation as five delta-swaps (verified against the
/// table-driven reference by `tests/des_kat.rs`).
#[inline(always)]
pub(crate) fn initial_permutation(block: u64) -> (u32, u32) {
    let mut l = (block >> 32) as u32;
    let mut r = block as u32;
    let mut t;
    t = ((l >> 4) ^ r) & 0x0f0f_0f0f;
    r ^= t;
    l ^= t << 4;
    t = ((l >> 16) ^ r) & 0x0000_ffff;
    r ^= t;
    l ^= t << 16;
    t = ((r >> 2) ^ l) & 0x3333_3333;
    l ^= t;
    r ^= t << 2;
    t = ((r >> 8) ^ l) & 0x00ff_00ff;
    l ^= t;
    r ^= t << 8;
    t = ((l >> 1) ^ r) & 0x5555_5555;
    r ^= t;
    l ^= t << 1;
    (l, r)
}

/// The final permutation: the same involutions in reverse order.
#[inline(always)]
pub(crate) fn final_permutation(mut l: u32, mut r: u32) -> u64 {
    let mut t;
    t = ((l >> 1) ^ r) & 0x5555_5555;
    r ^= t;
    l ^= t << 1;
    t = ((r >> 8) ^ l) & 0x00ff_00ff;
    l ^= t;
    r ^= t << 8;
    t = ((r >> 2) ^ l) & 0x3333_3333;
    l ^= t;
    r ^= t << 2;
    t = ((l >> 16) ^ r) & 0x0000_ffff;
    r ^= t;
    l ^= t << 16;
    t = ((l >> 4) ^ r) & 0x0f0f_0f0f;
    r ^= t;
    l ^= t << 4;
    (u64::from(l) << 32) | u64::from(r)
}

/// Encrypts a single 64-bit block.
pub fn encrypt_block(ks: &KeySchedule, block: u64) -> u64 {
    let (mut l, mut r) = initial_permutation(block);
    for &rk in ks.sp_keys() {
        let next_r = l ^ feistel(r, rk);
        l = r;
        r = next_r;
    }
    // The final swap: the preoutput is R16 || L16.
    final_permutation(r, l)
}

/// Decrypts a single 64-bit block.
pub fn decrypt_block(ks: &KeySchedule, block: u64) -> u64 {
    let (mut l, mut r) = initial_permutation(block);
    for &rk in ks.sp_keys().iter().rev() {
        let next_r = l ^ feistel(r, rk);
        l = r;
        r = next_r;
    }
    final_permutation(r, l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::DesKey;

    #[test]
    fn matches_reference_on_worked_example() {
        let ks = DesKey::from_u64(0x133457799BBCDFF1).schedule();
        assert_eq!(encrypt_block(&ks, 0x0123456789ABCDEF), 0x85E813540F0AB405);
        assert_eq!(decrypt_block(&ks, 0x85E813540F0AB405), 0x0123456789ABCDEF);
    }

    #[test]
    fn ip_matches_table_walk() {
        for v in [0u64, u64::MAX, 0x0123456789ABCDEF, 0xFEDCBA9876543210, 1, 1 << 63] {
            let (l, r) = initial_permutation(v);
            let want = super::super::reference::permute(v, 64, &super::super::tables::IP);
            assert_eq!((u64::from(l) << 32) | u64::from(r), want, "IP({v:016X})");
        }
    }

    #[test]
    fn fp_inverts_ip() {
        for v in [0u64, u64::MAX, 0x0123456789ABCDEF, 0xA5A5A5A55A5A5A5A] {
            let (l, r) = initial_permutation(v);
            assert_eq!(final_permutation(l, r), v);
        }
    }

    #[test]
    fn split_round_key_repacks_all_48_bits() {
        let rk = 0x0000_FEDC_BA98_7654u64 & 0xFFFF_FFFF_FFFF;
        let (ka, kb) = split_round_key(rk);
        // Every key bit appears exactly once across the two halves.
        let count = (u64::from(ka) & 0xFCFC_FCFC).count_ones() + (u64::from(kb) & 0xFCFC_FCFC).count_ones();
        assert_eq!(count, rk.count_ones());
    }
}
