//! A small thread-local cache of expanded key schedules.
//!
//! Kerberos reuses a handful of keys per exchange (the client key, the
//! TGS key, one session key per peer), so a tiny MRU cache keyed by
//! `DesKey` removes almost every redundant `KeySchedule::new` on the
//! protocol path without threading schedules through every signature.
//! Hot paths that *can* hold a schedule (mode drivers, `ScheduledKey`
//! holders in the KDC and sessions) still should — the cache is the
//! safety net for the long tail of callers.
//!
//! Entries are `Rc`-shared and the `RefCell` borrow is released before
//! the callback runs, so re-entrant uses (e.g. a seal that computes a
//! checksum under a related key) cannot panic; a nested call simply
//! probes the cache again.

use super::{DesKey, KeySchedule, ScheduledKey};
use std::cell::RefCell;
use std::rc::Rc;

/// Slots per thread. Linear scan + move-to-front; an exchange touches
/// only a few keys, so this stays effectively O(1).
const SLOTS: usize = 8;

thread_local! {
    static CACHE: RefCell<Vec<(DesKey, Rc<ScheduledKey>)>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with the cached [`ScheduledKey`] for `key`, expanding and
/// caching it on a miss.
pub fn with_scheduled<R>(key: &DesKey, f: impl FnOnce(&ScheduledKey) -> R) -> R {
    let entry = CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some(pos) = cache.iter().position(|(k, _)| k.ct_eq(key)) {
            if pos != 0 {
                let hit = cache.remove(pos);
                cache.insert(0, hit);
            }
        } else {
            if cache.len() == SLOTS {
                cache.pop();
            }
            cache.insert(0, (*key, Rc::new(ScheduledKey::new(*key))));
        }
        Rc::clone(&cache[0].1)
    });
    f(&entry)
}

/// Runs `f` with the cached [`KeySchedule`] for `key`.
pub fn with_schedule<R>(key: &DesKey, f: impl FnOnce(&KeySchedule) -> R) -> R {
    with_scheduled(key, |sk| f(sk.schedule()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::encrypt_block;

    #[test]
    fn cached_schedule_matches_fresh() {
        let key = DesKey::from_u64(0x133457799BBCDFF1);
        let fresh = key.schedule();
        with_schedule(&key, |ks| {
            assert_eq!(encrypt_block(ks, 0x0123456789ABCDEF), encrypt_block(&fresh, 0x0123456789ABCDEF));
        });
    }

    #[test]
    fn reentrant_lookup_is_safe() {
        let a = DesKey::from_u64(0x0123456789ABCDEF);
        let b = a.xored(0xf0f0_f0f0_f0f0_f0f0);
        let out = with_scheduled(&a, |ka| {
            with_scheduled(&b, |kb| kb.encrypt_block(ka.encrypt_block(1)))
        });
        assert_eq!(out, b.encrypt_block(a.encrypt_block(1)));
    }

    #[test]
    fn eviction_keeps_results_correct() {
        // Blow through far more keys than SLOTS and re-check each.
        let keys: Vec<DesKey> =
            (0u64..40).map(|i| DesKey::from_u64(0x1111_2222_3333_4444 ^ (i << 8))).collect();
        let expected: Vec<u64> = keys.iter().map(|k| encrypt_block(&k.schedule(), 7)).collect();
        for _ in 0..2 {
            for (k, want) in keys.iter().zip(&expected) {
                assert_eq!(with_schedule(k, |ks| encrypt_block(ks, 7)), *want);
            }
        }
    }
}
