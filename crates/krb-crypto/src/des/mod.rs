//! A from-scratch implementation of the Data Encryption Standard
//! (FIPS 46-3).
//!
//! Kerberos V4 and V5 Draft 3 are built entirely on DES; the attacks in
//! Bellovin & Merritt exploit *mode-level* structure (CBC prefix splicing,
//! PCBC block-swap tolerance), so the block cipher itself must be
//! bit-exact. This implementation is validated against the classic NBS
//! known-answer vectors.
//!
//! This is a *protocol-research* implementation: table lookups are not
//! constant-time and no attempt is made to resist side channels, which are
//! outside the paper's threat model.
//!
//! Two kernels coexist: [`fast`] (fused SP-tables, swap-network IP/FP —
//! the default, re-exported here) and [`reference`] (the original
//! bit-at-a-time table walk, kept as the equivalence oracle). They are
//! proven bit-identical by differential proptests in `tests/des_kat.rs`.

mod cache;
mod fast;
mod keysched;
pub mod reference;
mod tables;

pub use cache::{with_schedule, with_scheduled};
pub use fast::{decrypt_block, encrypt_block};
pub use keysched::{KeySchedule, RoundKeys};

/// A DES key: 8 bytes, of which 56 bits are effective (bit 0 of each byte
/// is an odd-parity bit).
// The manual PartialEq is constant-time byte equality — the same
// relation the derived Hash hashes over, so Hash/Eq stay consistent.
#[allow(clippy::derived_hash_with_manual_eq)]
#[derive(Clone, Copy, Hash)]
pub struct DesKey(pub [u8; 8]);

impl core::fmt::Debug for DesKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print key material in debug output.
        write!(f, "DesKey(****************)")
    }
}

impl PartialEq for DesKey {
    fn eq(&self, other: &Self) -> bool {
        crate::ct::ct_eq(&self.0, &other.0)
    }
}

impl Eq for DesKey {}

impl DesKey {
    /// Constant-time equality; `==` on `DesKey` routes here too.
    pub fn ct_eq(&self, other: &DesKey) -> bool {
        crate::ct::ct_eq(&self.0, &other.0)
    }
}

impl DesKey {
    /// Builds a key from raw bytes without adjusting parity.
    pub fn from_bytes(bytes: [u8; 8]) -> Self {
        DesKey(bytes)
    }

    /// Builds a key from a u64 (big-endian byte order, as in the FIPS
    /// test vectors).
    pub fn from_u64(v: u64) -> Self {
        DesKey(v.to_be_bytes())
    }

    /// Returns the key as a big-endian u64.
    pub fn to_u64(self) -> u64 {
        u64::from_be_bytes(self.0)
    }

    /// Forces odd parity on every byte, as FIPS 46 requires.
    pub fn with_odd_parity(mut self) -> Self {
        for b in &mut self.0 {
            let ones = (*b >> 1).count_ones();
            *b = (*b & 0xfe) | u8::from(ones % 2 == 0);
        }
        self
    }

    /// Reports whether every byte has odd parity.
    pub fn has_odd_parity(&self) -> bool {
        self.0.iter().all(|b| b.count_ones() % 2 == 1)
    }

    /// Reports whether this is one of the four weak keys, for which
    /// encryption is its own inverse.
    pub fn is_weak(&self) -> bool {
        const WEAK: [u64; 4] = [
            0x0101010101010101,
            0xfefefefefefefefe,
            0xe0e0e0e0f1f1f1f1,
            0x1f1f1f1f0e0e0e0e,
        ];
        WEAK.contains(&self.to_u64())
    }

    /// Reports whether this is one of the twelve semi-weak keys, which
    /// pair up so that E_k1(E_k2(x)) = x.
    pub fn is_semi_weak(&self) -> bool {
        const SEMI: [u64; 12] = [
            0x01fe01fe01fe01fe,
            0xfe01fe01fe01fe01,
            0x1fe01fe00ef10ef1,
            0xe01fe01ff10ef10e,
            0x01e001e001f101f1,
            0xe001e001f101f101,
            0x1ffe1ffe0efe0efe,
            0xfe1ffe1ffe0efe0e,
            0x011f011f010e010e,
            0x1f011f010e010e01,
            0xe0fee0fef1fef1fe,
            0xfee0fee0fef1fef1,
        ];
        SEMI.contains(&self.to_u64())
    }

    /// Expands the key into the sixteen 48-bit round keys.
    pub fn schedule(&self) -> KeySchedule {
        KeySchedule::new(self)
    }

    /// XORs a mask into the key, preserving nothing about parity. Used by
    /// protocol variants that derive related keys (e.g. key-usage
    /// separation in the hardened encryption layer).
    pub fn xored(self, mask: u64) -> Self {
        DesKey::from_u64(self.to_u64() ^ mask)
    }

    /// Encrypts one 8-byte block in ECB mode, using the thread-local
    /// schedule cache. Callers encrypting many blocks under one key
    /// should hold a [`ScheduledKey`] instead.
    pub fn encrypt_block(&self, block: u64) -> u64 {
        cache::with_schedule(self, |ks| encrypt_block(ks, block))
    }

    /// Decrypts one 8-byte block in ECB mode, using the thread-local
    /// schedule cache.
    pub fn decrypt_block(&self, block: u64) -> u64 {
        cache::with_schedule(self, |ks| decrypt_block(ks, block))
    }
}

/// A DES key bundled with its expanded schedule — the handle hot paths
/// hold so the schedule is computed exactly once per key.
#[derive(Clone)]
pub struct ScheduledKey {
    key: DesKey,
    sched: KeySchedule,
}

impl ScheduledKey {
    /// Expands `key` once.
    pub fn new(key: DesKey) -> Self {
        ScheduledKey { sched: KeySchedule::new(&key), key }
    }

    /// The raw key.
    pub fn key(&self) -> &DesKey {
        &self.key
    }

    /// The expanded schedule.
    pub fn schedule(&self) -> &KeySchedule {
        &self.sched
    }

    /// Encrypts one block without rescheduling.
    pub fn encrypt_block(&self, block: u64) -> u64 {
        encrypt_block(&self.sched, block)
    }

    /// Decrypts one block without rescheduling.
    pub fn decrypt_block(&self, block: u64) -> u64 {
        decrypt_block(&self.sched, block)
    }
}

impl From<DesKey> for ScheduledKey {
    fn from(key: DesKey) -> Self {
        ScheduledKey::new(key)
    }
}

impl core::fmt::Debug for ScheduledKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "ScheduledKey(****************)")
    }
}

pub(crate) use tables::{E, FP, IP, P, SBOXES};

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic worked example from the FIPS validation literature.
    #[test]
    fn fips_worked_example() {
        let key = DesKey::from_u64(0x133457799BBCDFF1);
        let ks = key.schedule();
        let ct = encrypt_block(&ks, 0x0123456789ABCDEF);
        assert_eq!(ct, 0x85E813540F0AB405);
        assert_eq!(decrypt_block(&ks, ct), 0x0123456789ABCDEF);
    }

    /// NBS variable-plaintext known-answer test, first entry.
    #[test]
    fn nbs_variable_plaintext() {
        let key = DesKey::from_u64(0x0101010101010101);
        let ks = key.schedule();
        assert_eq!(encrypt_block(&ks, 0x8000000000000000), 0x95F8A5E5DD31D900);
        assert_eq!(encrypt_block(&ks, 0x4000000000000000), 0xDD7F121CA5015619);
        assert_eq!(encrypt_block(&ks, 0x2000000000000000), 0x2E8653104F3834EA);
        assert_eq!(encrypt_block(&ks, 0x0000000000000001), 0x166B40B44ABA4BD6);
    }

    /// NBS variable-key known-answer test, first entries.
    #[test]
    fn nbs_variable_key() {
        let pt = 0u64;
        let cases: [(u64, u64); 3] = [
            (0x8001010101010101, 0x95A8D72813DAA94D),
            (0x4001010101010101, 0x0EEC1487DD8C26D5),
            (0x2001010101010101, 0x7AD16FFB79C45926),
        ];
        for (k, ct) in cases {
            let ks = DesKey::from_u64(k).schedule();
            assert_eq!(encrypt_block(&ks, pt), ct, "key {k:016X}");
        }
    }

    /// A sample of the Schneier/NBS round-trip vectors.
    #[test]
    fn nbs_sample_pairs() {
        let cases: [(u64, u64, u64); 4] = [
            (0x7CA110454A1A6E57, 0x01A1D6D039776742, 0x690F5B0D9A26939B),
            (0x0131D9619DC1376E, 0x5CD54CA83DEF57DA, 0x7A389D10354BD271),
            (0x07A1133E4A0B2686, 0x0248D43806F67172, 0x868EBB51CAB4599A),
            (0x3849674C2602319E, 0x51454B582DDF440A, 0x7178876E01F19B2A),
        ];
        for (k, pt, ct) in cases {
            let ks = DesKey::from_u64(k).schedule();
            assert_eq!(encrypt_block(&ks, pt), ct, "key {k:016X}");
            assert_eq!(decrypt_block(&ks, ct), pt, "key {k:016X}");
        }
    }

    #[test]
    fn weak_keys_are_self_inverse() {
        for k in [
            0x0101010101010101u64,
            0xfefefefefefefefe,
            0xe0e0e0e0f1f1f1f1,
            0x1f1f1f1f0e0e0e0e,
        ] {
            let key = DesKey::from_u64(k);
            assert!(key.is_weak());
            let ks = key.schedule();
            let pt = 0x0123456789ABCDEF;
            assert_eq!(encrypt_block(&ks, encrypt_block(&ks, pt)), pt);
        }
    }

    #[test]
    fn parity_adjustment() {
        let key = DesKey::from_bytes([0, 1, 2, 3, 4, 5, 6, 7]).with_odd_parity();
        assert!(key.has_odd_parity());
        // Parity only touches bit 0 of each byte.
        for (orig, adj) in [0u8, 1, 2, 3, 4, 5, 6, 7].iter().zip(key.0.iter()) {
            assert_eq!(orig & 0xfe, adj & 0xfe);
        }
    }

    #[test]
    fn semi_weak_pairs_invert_each_other() {
        let k1 = DesKey::from_u64(0x01fe01fe01fe01fe);
        let k2 = DesKey::from_u64(0xfe01fe01fe01fe01);
        assert!(k1.is_semi_weak() && k2.is_semi_weak());
        let pt = 0xDEADBEEFCAFEF00D;
        assert_eq!(k2.decrypt_block(k1.decrypt_block(k2.encrypt_block(k1.encrypt_block(pt)))), pt);
        // The defining property: encryption under one is decryption under
        // the other.
        assert_eq!(k2.encrypt_block(k1.encrypt_block(pt)), pt);
    }

    #[test]
    fn complementation_property() {
        // DES satisfies E_{~k}(~p) = ~E_k(p).
        let k = DesKey::from_u64(0x133457799BBCDFF1);
        let kc = DesKey::from_u64(!k.to_u64());
        let pt = 0x0123456789ABCDEF;
        assert_eq!(kc.encrypt_block(!pt), !k.encrypt_block(pt));
    }

    #[test]
    fn debug_does_not_leak_key() {
        let key = DesKey::from_u64(0x133457799BBCDFF1);
        let s = format!("{key:?}");
        assert!(!s.contains("1334"));
    }
}
