//! The reference DES kernel: a direct bit-at-a-time transcription of the
//! FIPS 46-3 tables.
//!
//! This was the original production kernel; it is retained verbatim as
//! the equivalence oracle for the fused-table [`fast`](super::fast)
//! kernel (differential proptests in `tests/des_kat.rs` pin
//! `fast == reference` over random keys and blocks) and as the readable
//! specification of the algorithm.

use super::{KeySchedule, E, FP, IP, P, SBOXES};

/// Applies a FIPS-style permutation table to `v`, treating `v` as a
/// `width`-bit value whose bit 1 is the MSB.
pub(crate) fn permute(v: u64, width: u32, table: &[u8]) -> u64 {
    let mut out = 0u64;
    for &src in table {
        out = (out << 1) | ((v >> (width - u32::from(src))) & 1);
    }
    out
}

/// The Feistel function f(R, K): expand, key-mix, substitute, permute.
fn feistel(r: u32, round_key: u64) -> u32 {
    // Expansion: 32 -> 48 bits.
    let expanded = permute(u64::from(r), 32, &E);
    let mixed = expanded ^ round_key;

    // Eight S-box lookups, 6 bits in, 4 bits out.
    let mut s_out: u32 = 0;
    for (i, sbox) in SBOXES.iter().enumerate() {
        let six = ((mixed >> (42 - 6 * i)) & 0x3f) as usize;
        // Row is the outer two bits, column the inner four.
        let row = ((six & 0x20) >> 4) | (six & 1);
        let col = (six >> 1) & 0xf;
        s_out = (s_out << 4) | u32::from(sbox[row * 16 + col]);
    }

    permute(u64::from(s_out), 32, &P) as u32
}

/// Runs the sixteen Feistel rounds over `block` with round keys taken in
/// the order produced by `keys`.
fn rounds(block: u64, keys: impl Iterator<Item = u64>) -> u64 {
    let ip = permute(block, 64, &IP);
    let mut l = (ip >> 32) as u32;
    let mut r = ip as u32;
    for rk in keys {
        let next_r = l ^ feistel(r, rk);
        l = r;
        r = next_r;
    }
    // Note the final swap: the output is R16 || L16.
    let preout = (u64::from(r) << 32) | u64::from(l);
    permute(preout, 64, &FP)
}

/// Encrypts a single 64-bit block.
pub fn encrypt_block(ks: &KeySchedule, block: u64) -> u64 {
    rounds(block, ks.round_keys().iter().copied())
}

/// Decrypts a single 64-bit block.
pub fn decrypt_block(ks: &KeySchedule, block: u64) -> u64 {
    rounds(block, ks.round_keys().iter().rev().copied())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::DesKey;

    #[test]
    fn permute_identity() {
        let table: Vec<u8> = (1..=64).collect();
        assert_eq!(permute(0x0123456789ABCDEF, 64, &table), 0x0123456789ABCDEF);
    }

    #[test]
    fn permute_reverse() {
        let table: Vec<u8> = (1..=64).rev().collect();
        assert_eq!(permute(1, 64, &table), 1u64 << 63);
        assert_eq!(permute(1u64 << 63, 64, &table), 1);
    }

    #[test]
    fn ip_fp_are_inverses() {
        for v in [0u64, u64::MAX, 0x0123456789ABCDEF, 0xFEDCBA9876543210] {
            assert_eq!(permute(permute(v, 64, &IP), 64, &FP), v);
        }
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let ks = DesKey::from_u64(0x0E329232EA6D0D73).schedule();
        for pt in [0u64, 1, u64::MAX, 0x8787878787878787] {
            assert_eq!(decrypt_block(&ks, encrypt_block(&ks, pt)), pt);
        }
    }

    /// Known pair for key 0x0E329232EA6D0D73 ("8787878787878787" ->
    /// "0000000000000000"), widely used in teaching material.
    #[test]
    fn teaching_vector() {
        let ks = DesKey::from_u64(0x0E329232EA6D0D73).schedule();
        assert_eq!(encrypt_block(&ks, 0x8787878787878787), 0);
    }
}
