//! Constant-time comparison and a self-redacting byte container.
//!
//! The paper's intruders sit *on* the wire and *in* the logs: §4.2's
//! password-guessing attacker works offline from captured material, so
//! any channel that leaks key bytes — a `Debug` print reaching a log
//! line, or a byte-by-byte comparison whose timing reveals a prefix —
//! widens the attack surface. Rule C001 of `krb-lint` forbids `==` on
//! key/MAC material; this module is the sanctioned replacement.

use core::fmt;

/// Compares two byte strings in time independent of their contents.
///
/// Length is compared first (lengths are public: checksum and key sizes
/// are fixed by the algorithm), then every byte is XOR-accumulated so a
/// mismatch in the first byte costs the same as one in the last.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

/// Key or MAC bytes that refuse to be formatted and compare in constant
/// time.
///
/// `Debug` prints a redaction marker plus the (public) length; equality
/// routes through [`ct_eq`]. Use this instead of `Vec<u8>` anywhere
/// secret bytes are stored.
// The manual PartialEq is constant-time byte equality — the same
// relation the derived Hash hashes over, so Hash/Eq stay consistent.
#[allow(clippy::derived_hash_with_manual_eq)]
#[derive(Clone, Default, Hash)]
pub struct SecretBytes(Vec<u8>);

impl SecretBytes {
    /// Wraps `bytes`.
    pub fn new(bytes: Vec<u8>) -> Self {
        SecretBytes(bytes)
    }

    /// The wrapped bytes. Callers needing the raw material must ask
    /// explicitly; there is no `Display` and no leaking `Debug`.
    pub fn expose(&self) -> &[u8] {
        &self.0
    }

    /// The (public) length.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Constant-time comparison against raw bytes.
    pub fn ct_eq(&self, other: &[u8]) -> bool {
        ct_eq(&self.0, other)
    }
}

impl fmt::Debug for SecretBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SecretBytes(**** {} bytes)", self.0.len())
    }
}

impl PartialEq for SecretBytes {
    fn eq(&self, other: &Self) -> bool {
        ct_eq(&self.0, &other.0)
    }
}

impl Eq for SecretBytes {}

impl From<Vec<u8>> for SecretBytes {
    fn from(v: Vec<u8>) -> Self {
        SecretBytes(v)
    }
}

impl From<&[u8]> for SecretBytes {
    fn from(v: &[u8]) -> Self {
        SecretBytes(v.to_vec())
    }
}

impl AsRef<[u8]> for SecretBytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl core::ops::Deref for SecretBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl PartialEq<Vec<u8>> for SecretBytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        ct_eq(&self.0, other)
    }
}

impl PartialEq<&[u8]> for SecretBytes {
    fn eq(&self, other: &&[u8]) -> bool {
        ct_eq(&self.0, other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_eq_agrees_with_slice_eq() {
        let cases: &[(&[u8], &[u8])] = &[
            (b"", b""),
            (b"a", b"a"),
            (b"a", b"b"),
            (b"abc", b"abd"),
            (b"abc", b"ab"),
            (b"\x00\x00", b"\x00\x00"),
            (b"\xff\x00", b"\x00\xff"),
        ];
        for (a, b) in cases {
            assert_eq!(ct_eq(a, b), a == b, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn secret_bytes_redacts_debug() {
        let s = SecretBytes::from(vec![0xDE, 0xAD, 0xBE, 0xEF]);
        let printed = format!("{s:?}");
        assert!(printed.contains("****"));
        assert!(!printed.contains("de"), "no hex of the contents: {printed}");
        assert!(printed.contains("4 bytes"));
    }

    #[test]
    fn secret_bytes_eq_and_expose() {
        let a = SecretBytes::from(vec![1, 2, 3]);
        let b = SecretBytes::from(vec![1, 2, 3]);
        let c = SecretBytes::from(vec![1, 2, 4]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.expose(), &[1, 2, 3]);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(a.ct_eq(&[1, 2, 3]));
        assert_eq!(a, vec![1, 2, 3]);
    }
}
