//! # krb-crypto
//!
//! The cryptographic substrate for the reproduction of Bellovin &
//! Merritt, *Limitations of the Kerberos Authentication System* (USENIX
//! Winter 1991). Everything here is implemented from scratch because the
//! paper's attacks live in the details:
//!
//! - [`des`] — FIPS 46-3 DES, validated against the NBS known-answer
//!   vectors.
//! - [`modes`] — ECB/CBC/PCBC, including CBC's prefix property and
//!   PCBC's block-swap tolerance, which two of the paper's attacks
//!   exploit.
//! - [`crc32`] — CRC-32 plus a forgery routine exploiting linearity (the
//!   Draft-3 cut-and-paste attacks).
//! - [`md4`] — RFC 1186 MD4, the era's "collision-proof" checksum.
//! - [`checksum`] — the Draft-3 checksum menu with the collision-proof /
//!   keyed classification the paper says the spec omitted.
//! - [`s2k`] — password-to-key derivation (the dictionary-attack
//!   surface).
//! - [`bignum`], [`dh`], [`dlog`] — exponential key exchange and the
//!   discrete-log attackers for the LaMacchia-Odlyzko trade-off.
//! - [`rng`] — deterministic randomness, including the "bad workstation
//!   RNG" failure mode.
//! - [`key`] — purpose-tagged keys, per the paper's hardware design
//!   criteria.
//! - [`ct`] — constant-time comparison ([`ct_eq`]) and the
//!   [`SecretBytes`] redaction wrapper; the sanctioned fixes for
//!   krb-lint rules C001 and S001.

pub mod bignum;
pub mod checksum;
pub mod crc32;
pub mod ct;
pub mod des;
pub mod des3;
pub mod dh;
pub mod dlog;
pub mod error;
pub mod key;
pub mod md4;
pub mod modes;
pub mod rng;
pub mod s2k;

pub use ct::{ct_eq, SecretBytes};
pub use des::DesKey;
pub use error::CryptoError;
pub use key::{KeyPurpose, TaggedKey};
pub use rng::{BadLcg, Drbg, RandomSource};
