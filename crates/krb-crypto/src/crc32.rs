//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) and a forgery
//! helper exploiting its linearity.
//!
//! Draft 3 of Kerberos V5 permitted CRC-32 as the checksum "sealed within
//! the encrypted portion of the message". The paper's Appendix shows that
//! because CRC-32 is not collision-proof, an attacker who controls any
//! field of the checksummed data (the "additional authorization data"
//! field) can patch a modified request so its CRC matches the original.
//! [`forge_suffix`] implements exactly that computation.

/// The reflected CRC-32 lookup table.
fn table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    })
}

/// Map from the top byte of a table entry back to its index. The top
/// bytes of the 256 CRC-32 table entries are a permutation of 0..=255,
/// which is what makes the backward (forgery) pass possible.
fn top_index() -> &'static [u8; 256] {
    static TOP: std::sync::OnceLock<[u8; 256]> = std::sync::OnceLock::new();
    TOP.get_or_init(|| {
        let t = table();
        let mut m = [0u8; 256];
        for (i, &e) in t.iter().enumerate() {
            m[(e >> 24) as usize] = i as u8;
        }
        m
    })
}

/// Updates a raw (pre-final-XOR) register with one byte.
fn step(r: u32, b: u8) -> u32 {
    (r >> 8) ^ table()[((r ^ u32::from(b)) & 0xff) as usize]
}

/// Computes the CRC-32 of `data` (init 0xFFFFFFFF, final XOR 0xFFFFFFFF).
pub fn crc32(data: &[u8]) -> u32 {
    !data.iter().fold(0xffff_ffffu32, |r, &b| step(r, b))
}

/// Incremental CRC-32, for streaming use.
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    raw: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh CRC computation.
    pub fn new() -> Self {
        Crc32 { raw: 0xffff_ffff }
    }

    /// Absorbs more data.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            self.raw = step(self.raw, b);
        }
    }

    /// Returns the final checksum.
    pub fn finish(&self) -> u32 {
        !self.raw
    }

    /// Exposes the raw register (used by [`forge_suffix`]).
    fn raw(&self) -> u32 {
        self.raw
    }
}

/// Computes the 4-byte suffix `patch` such that
/// `crc32(prefix || patch) == target`.
///
/// This is the paper's cut-and-paste enabler: an attacker who modifies a
/// checksummed request and controls a 4-byte window (e.g. within the
/// "additional authorization data") can make the CRC of the forged
/// message equal that of the legitimate one, defeating any protection
/// the checksum was thought to give — even when the checksum itself is
/// transmitted under encryption, because the attacker never needs to see
/// it, only to *preserve* it.
pub fn forge_suffix(prefix: &[u8], target: u32) -> [u8; 4] {
    let mut cur = Crc32::new();
    cur.update(prefix);
    let current_raw = cur.raw();
    let target_raw = !target;

    // Backward pass: recover the table indices each of the four forged
    // bytes must select, using only the (known) high bytes of the
    // intermediate registers.
    let t = table();
    let top = top_index();
    let mut d = target_raw;
    let mut idx = [0u8; 4];
    for i in (0..4).rev() {
        let ti = top[(d >> 24) as usize];
        idx[i] = ti;
        d = (d ^ t[ti as usize]) << 8;
    }

    // Forward pass: now that every intermediate register is known in
    // full, pick the byte that produces each required index.
    let mut r = current_raw;
    let mut patch = [0u8; 4];
    for i in 0..4 {
        patch[i] = idx[i] ^ (r & 0xff) as u8;
        r = step(r, patch[i]);
    }
    debug_assert_eq!(r, target_raw);
    patch
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The canonical check value: CRC-32("123456789") = 0xCBF43926.
    #[test]
    fn check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
    }

    #[test]
    fn known_values() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7BE43);
        assert_eq!(crc32(b"abc"), 0x352441C2);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414FA339);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"incremental checksum equivalence";
        let mut c = Crc32::new();
        c.update(&data[..7]);
        c.update(&data[7..20]);
        c.update(&data[20..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn forge_hits_arbitrary_target() {
        let msg = b"TGS-REQ: client=zach, service=rlogin.myhost, options=ENC-TKT-IN-SKEY";
        for target in [0u32, 0xDEADBEEF, crc32(b"the original request"), 0xFFFFFFFF] {
            let patch = forge_suffix(msg, target);
            let mut forged = msg.to_vec();
            forged.extend_from_slice(&patch);
            assert_eq!(crc32(&forged), target);
        }
    }

    #[test]
    fn forge_collides_two_distinct_messages() {
        // The actual attack shape: make a *modified* request collide with
        // the CRC of the original request.
        let original = b"options=NONE|tickets=[client-tgt]|authz=";
        let modified = b"options=ENC-TKT-IN-SKEY|tickets=[attacker-tgt]|authz=";
        let patch = forge_suffix(modified, crc32(original));
        let mut forged = modified.to_vec();
        forged.extend_from_slice(&patch);
        assert_eq!(crc32(&forged), crc32(original));
        assert_ne!(forged.as_slice(), original.as_slice());
    }

    #[test]
    fn top_bytes_are_a_permutation() {
        let t = table();
        let mut seen = [false; 256];
        for &e in t.iter() {
            let hi = (e >> 24) as usize;
            assert!(!seen[hi]);
            seen[hi] = true;
        }
    }
}
