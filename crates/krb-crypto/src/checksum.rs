//! The Draft-3 checksum menu, classified the way the paper says it should
//! have been.
//!
//! "Three types are specified: CRC-32, MD4 and MD4 encrypted with DES.
//! However, no mention is made of their attributes ... A better
//! classification is whether or not a checksum is collision-proof."
//! We add an encrypted-CRC-32 variant to demonstrate the paper's point
//! that "encrypting a checksum provides very little protection; if the
//! checksum is not collision-proof and the data is public, an adversary
//! can compute the value and replace the data with another message with
//! the same checksum value."

use crate::crc32::crc32;
use crate::ct::SecretBytes;
use crate::des::DesKey;
use crate::error::CryptoError;
use crate::md4::md4;
use crate::modes;

/// The checksum algorithms available to the protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ChecksumType {
    /// Plain CRC-32: linear, trivially forgeable.
    Crc32,
    /// CRC-32 encrypted under the session key. Keyed but still NOT
    /// collision-proof: equal plaintext CRCs imply equal ciphertexts.
    Crc32Des,
    /// Plain MD4: collision-proof against the 1991 generic adversary,
    /// but unkeyed, so an adversary can simply recompute it.
    Md4,
    /// MD4 encrypted under a DES key: keyed AND collision-proof.
    Md4Des,
}

impl ChecksumType {
    /// Whether an adversary (generic, non-cryptanalytic) can construct a
    /// second message with the same checksum.
    pub fn is_collision_proof(self) -> bool {
        matches!(self, ChecksumType::Md4 | ChecksumType::Md4Des)
    }

    /// Whether computing the checksum requires a key.
    pub fn is_keyed(self) -> bool {
        matches!(self, ChecksumType::Crc32Des | ChecksumType::Md4Des)
    }

    /// Whether the checksum actually authenticates data an adversary can
    /// both read and rewrite: it must be keyed *and* collision-proof.
    /// This is the predicate Draft 3 failed to state.
    pub fn protects_public_data(self) -> bool {
        self.is_keyed() && self.is_collision_proof()
    }
}

/// A computed checksum value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checksum {
    /// Which algorithm produced it.
    pub ctype: ChecksumType,
    /// The checksum bytes (4 for CRC variants, 16 for MD4 variants).
    /// Keyed checksums are MACs, so the bytes live in a redacting,
    /// constant-time-comparing container.
    pub value: SecretBytes,
}

/// Computes a checksum of `data`. `key` is required for (and only for)
/// the keyed types.
pub fn compute(ctype: ChecksumType, key: Option<&DesKey>, data: &[u8]) -> Result<Checksum, CryptoError> {
    let value = match (ctype, key) {
        (ChecksumType::Crc32, None) => crc32(data).to_be_bytes().to_vec(),
        (ChecksumType::Md4, None) => md4(data).to_vec(),
        (ChecksumType::Crc32Des, Some(k)) => {
            let mut block = [0u8; 8];
            block[..4].copy_from_slice(&crc32(data).to_be_bytes());
            modes::ecb_encrypt(k, &block)?
        }
        (ChecksumType::Md4Des, Some(k)) => {
            // Encrypt the digest under a key variant (k XOR F0F0...) so a
            // session key misused elsewhere cannot be replayed into the
            // MAC role — the key-usage separation the paper asks for.
            let variant = k.xored(0xf0f0_f0f0_f0f0_f0f0);
            modes::cbc_encrypt(&variant, 0, &md4(data))?
        }
        _ => return Err(CryptoError::KeyMismatch),
    };
    Ok(Checksum { ctype, value: value.into() })
}

/// Verifies `cksum` over `data` in constant time.
pub fn verify(cksum: &Checksum, key: Option<&DesKey>, data: &[u8]) -> Result<(), CryptoError> {
    let recomputed = compute(cksum.ctype, key, data)?;
    if recomputed.value.ct_eq(cksum.value.expose()) {
        Ok(())
    } else {
        Err(CryptoError::ChecksumMismatch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crc32::forge_suffix;

    fn key() -> DesKey {
        DesKey::from_u64(0x0123456789ABCDEF).with_odd_parity()
    }

    #[test]
    fn all_types_roundtrip() {
        let data = b"KRB_TGS_REQ body";
        for (ct, k) in [
            (ChecksumType::Crc32, None),
            (ChecksumType::Md4, None),
            (ChecksumType::Crc32Des, Some(key())),
            (ChecksumType::Md4Des, Some(key())),
        ] {
            let c = compute(ct, k.as_ref(), data).unwrap();
            verify(&c, k.as_ref(), data).unwrap();
            assert!(verify(&c, k.as_ref(), b"tampered").is_err());
        }
    }

    #[test]
    fn key_misuse_rejected() {
        assert_eq!(compute(ChecksumType::Crc32, Some(&key()), b"x"), Err(CryptoError::KeyMismatch));
        assert_eq!(compute(ChecksumType::Md4Des, None, b"x"), Err(CryptoError::KeyMismatch));
    }

    /// Even the *encrypted* CRC is forgeable without knowing the key: the
    /// adversary patches the modified message so its plain CRC collides,
    /// and the sealed (encrypted) checksum then verifies unchanged.
    #[test]
    fn encrypted_crc_is_still_forgeable() {
        let original = b"options=NONE                    authz=";
        let sealed = compute(ChecksumType::Crc32Des, Some(&key()), original).unwrap();

        let modified = b"options=ENC-TKT-IN-SKEY authz=";
        let patch = forge_suffix(modified, crc32(original));
        let mut forged = modified.to_vec();
        forged.extend_from_slice(&patch);

        // The victim verifies the attacker's message against the original
        // sealed checksum — and it passes.
        assert!(verify(&sealed, Some(&key()), &forged).is_ok());
        assert!(!ChecksumType::Crc32Des.protects_public_data());
    }

    #[test]
    fn md4des_resists_the_same_forgery() {
        let original = b"options=NONE                    authz=";
        let sealed = compute(ChecksumType::Md4Des, Some(&key()), original).unwrap();
        let modified = b"options=ENC-TKT-IN-SKEY authz=PATCHME";
        assert!(verify(&sealed, Some(&key()), modified).is_err());
        assert!(ChecksumType::Md4Des.protects_public_data());
    }

    #[test]
    fn classification_matrix() {
        assert!(!ChecksumType::Crc32.is_collision_proof());
        assert!(!ChecksumType::Crc32Des.is_collision_proof());
        assert!(ChecksumType::Md4.is_collision_proof());
        assert!(ChecksumType::Md4Des.is_collision_proof());
        assert!(!ChecksumType::Crc32.is_keyed());
        assert!(ChecksumType::Md4Des.is_keyed());
        // Only MD4+DES authenticates attacker-rewritable data.
        assert!(!ChecksumType::Crc32.protects_public_data());
        assert!(!ChecksumType::Crc32Des.protects_public_data());
        assert!(!ChecksumType::Md4.protects_public_data());
        assert!(ChecksumType::Md4Des.protects_public_data());
    }

    #[test]
    fn md4des_key_variant_differs_from_raw_key_use() {
        // The MAC must not equal a bare CBC encryption under the session
        // key itself, or ciphertext could be replayed into the MAC role.
        let data = b"some message";
        let mac = compute(ChecksumType::Md4Des, Some(&key()), data).unwrap();
        let naive = modes::cbc_encrypt(&key(), 0, &md4(data)).unwrap();
        assert_ne!(mac.value, naive);
    }
}
