//! String-to-key: deriving a DES key from a typed password.
//!
//! "The client key Kc is derived from a non-invertible transform of the
//! user's typed password. Thus, all privileges depend ultimately on this
//! one key." The transform is *publicly known*, which is exactly what
//! makes the recorded-AS-reply dictionary attack work: a guess at the
//! password can be confirmed offline by deriving the candidate key and
//! trying it against the recorded reply.

use crate::des::{DesKey, KeySchedule};
use crate::modes;

/// Reverses the bits within a byte (the V4 fan-fold flips alternate
/// chunks).
fn reverse_bits(b: u8) -> u8 {
    b.reverse_bits()
}

/// Fan-folds arbitrary-length input into 8 bytes, bit-reversing alternate
/// chunks as the historical V4 algorithm did.
fn fanfold(input: &[u8]) -> [u8; 8] {
    let mut acc = [0u8; 8];
    for (chunk_idx, chunk) in input.chunks(8).enumerate() {
        if chunk_idx % 2 == 0 {
            for (i, &b) in chunk.iter().enumerate() {
                acc[i] ^= b;
            }
        } else {
            // Odd chunks are reversed end-to-end and bit-reversed.
            for (i, &b) in chunk.iter().rev().enumerate() {
                acc[i] ^= reverse_bits(b);
            }
        }
    }
    acc
}

/// Derives a DES key from a password, V4 style (no salt).
///
/// Shape of the historical algorithm: fan-fold the password into a
/// candidate key, then use that key to CBC-MAC the password itself; the
/// final block, parity-adjusted, is the key. Weak keys are perturbed.
pub fn string_to_key_v4(password: &str) -> DesKey {
    string_to_key_salted(password, "")
}

/// Derives a DES key from a password and a salt (V5 added salting with
/// the principal name to stop cross-realm precomputation).
pub fn string_to_key_v5(password: &str, salt: &str) -> DesKey {
    string_to_key_salted(password, salt)
}

fn string_to_key_salted(password: &str, salt: &str) -> DesKey {
    // One buffer serves as password‖salt and, zero-padded in place, as
    // the CBC-MAC input: this is the dictionary-attack inner loop, so it
    // must not allocate per trial beyond this single Vec.
    let mut input = Vec::with_capacity((password.len() + salt.len() + 8) & !7);
    derive_into(&mut input, password, salt)
}

/// Reusable derivation state: holds the single work buffer across calls
/// so bulk provisioning (millions of principals) and dictionary loops
/// pay one allocation total, not one per derivation. Output is
/// byte-identical to [`string_to_key_v5`].
#[derive(Clone, Debug, Default)]
pub struct Deriver {
    buf: Vec<u8>,
}

impl Deriver {
    /// A fresh deriver with no retained capacity.
    pub fn new() -> Self {
        Deriver::default()
    }

    /// Derives the salted V5 key for `(password, salt)`, reusing the
    /// internal buffer.
    pub fn derive(&mut self, password: &str, salt: &str) -> DesKey {
        self.buf.clear();
        derive_into(&mut self.buf, password, salt)
    }
}

/// The shared core of the salted derivation: `input` arrives empty (but
/// possibly with retained capacity) and is used as the password‖salt
/// scratch buffer.
fn derive_into(input: &mut Vec<u8>, password: &str, salt: &str) -> DesKey {
    input.extend_from_slice(password.as_bytes());
    input.extend_from_slice(salt.as_bytes());
    if input.is_empty() {
        input.push(0);
    }

    let candidate = DesKey::from_bytes(fanfold(input)).with_odd_parity();

    // CBC-MAC the padded password under the candidate key, IV = candidate.
    // The candidate is different on every call, so bypass the schedule
    // cache and expand it exactly once, explicitly.
    let rem = input.len() % 8;
    if rem != 0 {
        input.resize(input.len() + (8 - rem), 0);
    }
    let ks = KeySchedule::new(&candidate);
    if modes::cbc_encrypt_in_place(&ks, candidate.to_u64(), input).is_err() {
        // Unreachable: `input` was resized to a block multiple above. The
        // fanfold candidate is still a deterministic derived key.
        return candidate;
    }
    let last = &input[input.len() - 8..];
    let mut key = DesKey::from_u64(modes::load_block(last)).with_odd_parity();

    // Perturb weak and semi-weak keys, as the historical library did.
    if key.is_weak() || key.is_semi_weak() {
        key = key.xored(0xf0).with_odd_parity();
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(string_to_key_v4("hunter2"), string_to_key_v4("hunter2"));
        assert_eq!(
            string_to_key_v5("hunter2", "ATHENA.MIT.EDUpat"),
            string_to_key_v5("hunter2", "ATHENA.MIT.EDUpat")
        );
    }

    #[test]
    fn different_passwords_different_keys() {
        assert_ne!(string_to_key_v4("hunter2"), string_to_key_v4("hunter3"));
        assert_ne!(string_to_key_v4(""), string_to_key_v4(" "));
    }

    #[test]
    fn salt_separates_realms() {
        let k1 = string_to_key_v5("hunter2", "REALM.Apat");
        let k2 = string_to_key_v5("hunter2", "REALM.Bpat");
        assert_ne!(k1, k2);
        // V4, unsalted, gives the same key everywhere — the
        // precomputation weakness V5 fixed.
        assert_eq!(string_to_key_v4("hunter2"), string_to_key_v4("hunter2"));
    }

    #[test]
    fn output_has_parity_and_strength() {
        for pw in ["", "a", "hunter2", "correct horse battery staple", "密码"] {
            let k = string_to_key_v4(pw);
            assert!(k.has_odd_parity(), "password {pw:?}");
            assert!(!k.is_weak() && !k.is_semi_weak(), "password {pw:?}");
        }
    }

    #[test]
    fn deriver_matches_one_shot_path() {
        let mut d = Deriver::new();
        for (pw, salt) in [
            ("", ""),
            ("hunter2", "ATHENA.MIT.EDUpat"),
            ("correct horse battery staple", "Rlong"),
            ("密码", "REALM.Bpat"),
        ] {
            assert_eq!(d.derive(pw, salt), string_to_key_v5(pw, salt), "({pw:?}, {salt:?})");
            // A second call with retained capacity must agree too.
            assert_eq!(d.derive(pw, salt), string_to_key_v5(pw, salt));
        }
    }

    #[test]
    fn long_passwords_fold() {
        let long = "x".repeat(1000);
        let k = string_to_key_v4(&long);
        assert!(k.has_odd_parity());
    }
}
