//! Error type for the crypto substrate.

use std::fmt;

/// Errors produced by the cryptographic primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// Input whose length is not acceptable (e.g. partial DES blocks).
    BadLength {
        /// What was being processed.
        what: &'static str,
        /// The offending length.
        len: usize,
    },
    /// A hex string could not be parsed.
    BadHex,
    /// A checksum did not verify.
    ChecksumMismatch,
    /// A keyed checksum was requested without a key, or vice versa.
    KeyMismatch,
    /// A discrete logarithm was not found within the search bound.
    DlogNotFound,
    /// Division by zero in bignum arithmetic.
    DivideByZero,
    /// A key failed a policy check (weak key, bad parity).
    BadKey(&'static str),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::BadLength { what, len } => {
                write!(f, "bad length {len} for {what}")
            }
            CryptoError::BadHex => write!(f, "invalid hex string"),
            CryptoError::ChecksumMismatch => write!(f, "checksum mismatch"),
            CryptoError::KeyMismatch => write!(f, "keyed/unkeyed checksum misuse"),
            CryptoError::DlogNotFound => write!(f, "discrete log not found within bound"),
            CryptoError::DivideByZero => write!(f, "bignum division by zero"),
            CryptoError::BadKey(why) => write!(f, "bad key: {why}"),
        }
    }
}

impl std::error::Error for CryptoError {}
