//! Multiplication, shifts, and Knuth Algorithm D division for [`BigUint`].

use super::BigUint;
use crate::error::CryptoError;

impl BigUint {
    /// Schoolbook multiplication.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = u64::from(out[i + j]) + u64::from(a) * u64::from(b) + carry;
                out[i + j] = cur as u32;
                carry = cur >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = u64::from(out[k]) + carry;
                out[k] = cur as u32;
                carry = cur >> 32;
                k += 1;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Left shift by `bits`.
    pub fn shl_bits(&self, bits: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = bits / 32;
        let bit_shift = bits % 32;
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u32;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Right shift by `bits`.
    pub fn shr_bits(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 32;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 32;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = if i + 1 < src.len() { src[i + 1] << (32 - bit_shift) } else { 0 };
                out.push(lo | hi);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Division with remainder: returns `(self / divisor, self % divisor)`.
    pub fn divrem(&self, divisor: &BigUint) -> Result<(BigUint, BigUint), CryptoError> {
        if divisor.is_zero() {
            return Err(CryptoError::DivideByZero);
        }
        if self.cmp_big(divisor) == std::cmp::Ordering::Less {
            return Ok((BigUint::zero(), self.clone()));
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.divrem_small(divisor.limbs[0]);
            return Ok((q, BigUint::from_u64(u64::from(r))));
        }
        Ok(self.divrem_knuth(divisor))
    }

    /// Convenience: `self mod m`.
    pub fn rem(&self, m: &BigUint) -> Result<BigUint, CryptoError> {
        Ok(self.divrem(m)?.1)
    }

    /// Divides by a single limb.
    fn divrem_small(&self, d: u32) -> (BigUint, u32) {
        debug_assert!(d != 0);
        let mut out = vec![0u32; self.limbs.len()];
        let mut rem = 0u64;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 32) | u64::from(self.limbs[i]);
            out[i] = (cur / u64::from(d)) as u32;
            rem = cur % u64::from(d);
        }
        let mut q = BigUint { limbs: out };
        q.normalize();
        (q, rem as u32)
    }

    /// Knuth TAOCP vol. 2, Algorithm D (multi-limb division).
    fn divrem_knuth(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        let n = divisor.limbs.len();
        let m = self.limbs.len() - n;

        // D1: normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs[n - 1].leading_zeros() as usize;
        let v = divisor.shl_bits(shift);
        let u_big = self.shl_bits(shift);
        let mut u = u_big.limbs.clone();
        u.resize(self.limbs.len() + 1, 0);

        let v_limbs = &v.limbs;
        debug_assert_eq!(v_limbs.len(), n);
        let vn1 = u128::from(v_limbs[n - 1]);
        let vn2 = u128::from(v_limbs[n - 2]);

        let mut q = vec![0u32; m + 1];
        const B: u128 = 1 << 32;

        // D2-D7: main loop over quotient digits.
        for j in (0..=m).rev() {
            // D3: estimate the quotient digit. Using u128 sidesteps the
            // classical overflow pitfalls in the correction loop.
            let top = (u128::from(u[j + n]) << 32) | u128::from(u[j + n - 1]);
            let mut qhat = top / vn1;
            let mut rhat = top % vn1;
            while qhat >= B || qhat * vn2 > (rhat << 32) + u128::from(u[j + n - 2]) {
                qhat -= 1;
                rhat += vn1;
                if rhat >= B {
                    break;
                }
            }

            // D4: multiply and subtract (Warren, Hacker's Delight,
            // divmnu formulation).
            let qhat64 = qhat as u64;
            let mut k: i64 = 0;
            for i in 0..n {
                let p: u64 = qhat64 * u64::from(v_limbs[i]);
                let t: i64 = i64::from(u[j + i]) - k - (p & 0xffff_ffff) as i64;
                u[j + i] = t as u32;
                k = (p >> 32) as i64 - (t >> 32);
            }
            let t: i64 = i64::from(u[j + n]) - k;
            u[j + n] = t as u32;

            // D5-D6: if we subtracted too much, add one divisor back.
            if t < 0 {
                qhat -= 1;
                let mut carry = 0u64;
                for i in 0..n {
                    let sum = u64::from(u[j + i]) + u64::from(v_limbs[i]) + carry;
                    u[j + i] = sum as u32;
                    carry = sum >> 32;
                }
                u[j + n] = u[j + n].wrapping_add(carry as u32);
            }
            q[j] = qhat as u32;
        }

        // D8: denormalize the remainder.
        let mut r = BigUint { limbs: u[..n].to_vec() };
        r.normalize();
        let r = r.shr_bits(shift);
        let mut quot = BigUint { limbs: q };
        quot.normalize();
        (quot, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(hex: &str) -> BigUint {
        BigUint::from_hex(hex).unwrap()
    }

    #[test]
    fn mul_small() {
        assert_eq!(BigUint::from_u64(6).mul(&BigUint::from_u64(7)).to_u64(), Some(42));
        assert_eq!(BigUint::zero().mul(&BigUint::from_u64(7)), BigUint::zero());
    }

    #[test]
    fn mul_carries() {
        let a = BigUint::from_u64(u64::MAX);
        let sq = a.mul(&a);
        // (2^64-1)^2 = 2^128 - 2^65 + 1.
        assert_eq!(sq.to_hex(), "fffffffffffffffe0000000000000001");
    }

    #[test]
    fn shifts() {
        let a = n("deadbeefcafebabe");
        assert_eq!(a.shl_bits(0), a);
        assert_eq!(a.shl_bits(4).to_hex(), "deadbeefcafebabe0");
        assert_eq!(a.shl_bits(64).to_hex(), "deadbeefcafebabe0000000000000000");
        assert_eq!(a.shr_bits(4).to_hex(), "deadbeefcafebab");
        assert_eq!(a.shr_bits(64), BigUint::zero());
        assert_eq!(a.shl_bits(37).shr_bits(37), a);
    }

    #[test]
    fn div_small() {
        let (q, r) = BigUint::from_u64(1000).divrem(&BigUint::from_u64(7)).unwrap();
        assert_eq!(q.to_u64(), Some(142));
        assert_eq!(r.to_u64(), Some(6));
    }

    #[test]
    fn div_by_zero() {
        assert!(BigUint::from_u64(5).divrem(&BigUint::zero()).is_err());
    }

    #[test]
    fn div_smaller_dividend() {
        let (q, r) = BigUint::from_u64(5).divrem(&BigUint::from_u64(100)).unwrap();
        assert!(q.is_zero());
        assert_eq!(r.to_u64(), Some(5));
    }

    #[test]
    fn div_multi_limb() {
        let a = n("1fffffffffffffffffffffffffffffffffffffffffffffffff");
        let b = n("ffffffffffffffffffffff");
        let (q, r) = a.divrem(&b).unwrap();
        // Verify by reconstruction.
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r < b);
    }

    #[test]
    fn div_exact() {
        let b = n("123456789abcdef0123456789");
        let q0 = n("fedcba9876543210");
        let a = b.mul(&q0);
        let (q, r) = a.divrem(&b).unwrap();
        assert_eq!(q, q0);
        assert!(r.is_zero());
    }

    #[test]
    fn div_knuth_addback_case() {
        // A case engineered to hit the rare D6 add-back path:
        // dividend = 0x7fff800000000001_00000000, divisor = 0x800000000001.
        let a = n("7fff80000000000100000000");
        let b = n("800000000001");
        let (q, r) = a.divrem(&b).unwrap();
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r < b);
    }

    #[test]
    fn reconstruction_randomish() {
        // Deterministic pseudo-random reconstruction checks.
        let mut x = n("2b7e151628aed2a6abf7158809cf4f3c");
        let mut y = n("9e3779b97f4a7c15");
        for _ in 0..50 {
            let (q, r) = x.divrem(&y).unwrap();
            assert_eq!(q.mul(&y).add(&r), x, "x={x} y={y}");
            assert!(r < y);
            // Evolve the pair.
            x = x.mul(&n("10001")).add(&y);
            y = y.add(&n("deadbeef"));
        }
    }
}
