//! Montgomery-form modular exponentiation for odd moduli.
//!
//! The plain [`super::mod_exp`] reduces with Knuth division after every
//! multiplication; Montgomery's method replaces the division with adds
//! and shifts. Results are verified against the division-based path by
//! property test. Measured honestly (bench `modexp_impl_768bit`), this
//! allocation-per-REDC implementation does NOT beat the division path —
//! both are O(n²) per multiply, and the Montgomery conversions plus
//! per-step `BigUint` allocations dominate. It stays in the tree as the
//! correctness-checked basis for a future in-place variant, and as a
//! data point for E4's cost discussion.

use super::{mod_exp, BigUint};
use crate::error::CryptoError;

/// Precomputed Montgomery context for an odd modulus.
pub struct MontgomeryCtx {
    /// The modulus (odd).
    pub m: BigUint,
    /// Number of limbs in the modulus.
    n: usize,
    /// -m^{-1} mod 2^32.
    m_prime: u32,
    /// R^2 mod m, with R = 2^(32n).
    r2: BigUint,
}

impl MontgomeryCtx {
    /// Builds a context; fails for even or trivial moduli.
    pub fn new(m: &BigUint) -> Result<Self, CryptoError> {
        if m.is_even() || m.bit_len() < 2 {
            return Err(CryptoError::BadKey("Montgomery requires an odd modulus > 1"));
        }
        let n = m.limbs.len();
        let m0 = m.limbs[0];

        // Newton iteration for the inverse of m0 mod 2^32: each step
        // doubles the valid bits.
        let mut inv: u32 = 1;
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u32.wrapping_sub(m0.wrapping_mul(inv)));
        }
        debug_assert_eq!(m0.wrapping_mul(inv), 1);
        let m_prime = inv.wrapping_neg();

        // R^2 mod m via shifting (2n limbs = 64n bits of doubling).
        let r2 = BigUint::one().shl_bits(64 * n).rem(m)?;

        Ok(MontgomeryCtx { m: m.clone(), n, m_prime, r2 })
    }

    /// Montgomery reduction of a (≤ 2n limb) product: returns t·R^{-1}
    /// mod m.
    fn redc(&self, t: &BigUint) -> BigUint {
        let n = self.n;
        let mut a = t.limbs.clone();
        a.resize(2 * n + 1, 0);

        for i in 0..n {
            let u = a[i].wrapping_mul(self.m_prime);
            // a += u * m << (32 * i)
            let mut carry = 0u64;
            for j in 0..n {
                let cur = u64::from(a[i + j]) + u64::from(u) * u64::from(self.m.limbs[j]) + carry;
                a[i + j] = cur as u32;
                carry = cur >> 32;
            }
            let mut k = i + n;
            while carry != 0 {
                let cur = u64::from(a[k]) + carry;
                a[k] = cur as u32;
                carry = cur >> 32;
                k += 1;
            }
        }

        // Shift right by n limbs.
        let mut out = BigUint { limbs: a[n..].to_vec() };
        out.normalize();
        if out >= self.m {
            out = out.sub(&self.m);
        }
        out
    }

    /// Multiplies two Montgomery-form values.
    fn mont_mul(&self, x: &BigUint, y: &BigUint) -> BigUint {
        self.redc(&x.mul(y))
    }

    /// Converts into Montgomery form.
    fn to_mont(&self, x: &BigUint) -> Result<BigUint, CryptoError> {
        Ok(self.mont_mul(&x.rem(&self.m)?, &self.r2))
    }

    /// Computes `base^exp mod m` by square-and-multiply over Montgomery
    /// arithmetic.
    pub fn mod_exp(&self, base: &BigUint, exp: &BigUint) -> Result<BigUint, CryptoError> {
        let base_m = self.to_mont(base)?;
        let mut acc = self.to_mont(&BigUint::one())?;
        for i in (0..exp.bit_len()).rev() {
            acc = self.mont_mul(&acc, &acc);
            if exp.bit(i) {
                acc = self.mont_mul(&acc, &base_m);
            }
        }
        // Convert out of Montgomery form: multiply by 1.
        Ok(self.redc(&acc))
    }
}

/// Convenience: Montgomery modexp when the modulus is odd, falling back
/// to the division-based path otherwise.
pub fn mod_exp_fast(base: &BigUint, exp: &BigUint, modulus: &BigUint) -> Result<BigUint, CryptoError> {
    match MontgomeryCtx::new(modulus) {
        Ok(ctx) => ctx.mod_exp(base, exp),
        Err(_) => mod_exp(base, exp, modulus),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dh::DhGroup;

    fn n(hex: &str) -> BigUint {
        BigUint::from_hex(hex).unwrap()
    }

    #[test]
    fn matches_division_path_small() {
        let m = BigUint::from_u64(1_000_003);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        for (b, e) in [(2u64, 10u64), (3, 0), (0, 5), (999_999, 999_999), (7, 1)] {
            let want = mod_exp(&BigUint::from_u64(b), &BigUint::from_u64(e), &m).unwrap();
            let got = ctx.mod_exp(&BigUint::from_u64(b), &BigUint::from_u64(e)).unwrap();
            assert_eq!(got, want, "b={b} e={e}");
        }
    }

    #[test]
    fn matches_division_path_oakley() {
        let g = DhGroup::oakley768();
        let ctx = MontgomeryCtx::new(&g.p).unwrap();
        let base = n("123456789abcdef0fedcba9876543210");
        let exp = n("deadbeefcafef00d1234");
        assert_eq!(ctx.mod_exp(&base, &exp).unwrap(), mod_exp(&base, &exp, &g.p).unwrap());
    }

    #[test]
    fn rejects_even_modulus() {
        assert!(MontgomeryCtx::new(&BigUint::from_u64(100)).is_err());
        assert!(MontgomeryCtx::new(&BigUint::one()).is_err());
        // Fallback still computes.
        let r = mod_exp_fast(&BigUint::from_u64(3), &BigUint::from_u64(4), &BigUint::from_u64(100)).unwrap();
        assert_eq!(r.to_u64(), Some(81));
    }

    #[test]
    fn dh_agreement_via_montgomery() {
        let g = DhGroup::small192();
        let ctx = MontgomeryCtx::new(&g.p).unwrap();
        let a = n("aabbccddeeff00112233");
        let b = n("99887766554433221100");
        let ga = ctx.mod_exp(&g.g, &a).unwrap();
        let gb = ctx.mod_exp(&g.g, &b).unwrap();
        assert_eq!(ctx.mod_exp(&gb, &a).unwrap(), ctx.mod_exp(&ga, &b).unwrap());
    }
}
