//! Modular arithmetic: exponentiation, inverses, primality.

use super::BigUint;
use crate::error::CryptoError;
use crate::rng::RandomSource;

/// Computes `base^exp mod modulus` by left-to-right square-and-multiply.
pub fn mod_exp(base: &BigUint, exp: &BigUint, modulus: &BigUint) -> Result<BigUint, CryptoError> {
    if modulus.is_zero() {
        return Err(CryptoError::DivideByZero);
    }
    if modulus == &BigUint::one() {
        return Ok(BigUint::zero());
    }
    let mut result = BigUint::one();
    let base = base.rem(modulus)?;
    let bits = exp.bit_len();
    for i in (0..bits).rev() {
        result = result.mul(&result).rem(modulus)?;
        if exp.bit(i) {
            result = result.mul(&base).rem(modulus)?;
        }
    }
    Ok(result)
}

/// Computes the modular inverse of `a` mod `m` via the extended Euclidean
/// algorithm. Returns `None` if `gcd(a, m) != 1`.
pub fn mod_inverse(a: &BigUint, m: &BigUint) -> Option<BigUint> {
    if m.is_zero() || m == &BigUint::one() {
        return None;
    }
    // Track (old_r, r) and signed coefficients for a as (sign, magnitude).
    let mut old_r = a.rem(m).ok()?;
    let mut r = m.clone();
    let mut old_s = (false, BigUint::one()); // Coefficient of a for old_r.
    let mut s = (false, BigUint::zero());

    while !r.is_zero() {
        let (q, rem) = old_r.divrem(&r).ok()?;
        // new_s = old_s - q * s, with sign tracking.
        let qs = q.mul(&s.1);
        let new_s = signed_sub(old_s.clone(), (s.0, qs));
        old_r = std::mem::replace(&mut r, rem);
        old_s = std::mem::replace(&mut s, new_s);
    }

    if old_r != BigUint::one() {
        return None;
    }
    // Normalize the coefficient into [0, m).
    let (neg, mag) = old_s;
    let mag = mag.rem(m).ok()?;
    if neg && !mag.is_zero() {
        Some(m.sub(&mag))
    } else {
        Some(mag)
    }
}

/// Subtracts signed magnitudes: `a - b` where each is `(negative, |x|)`.
fn signed_sub(a: (bool, BigUint), b: (bool, BigUint)) -> (bool, BigUint) {
    match (a.0, b.0) {
        // a - b where both non-negative.
        (false, false) => match a.1.checked_sub(&b.1) {
            Some(d) => (false, d),
            None => (true, b.1.sub(&a.1)),
        },
        // a - (-b) = a + b.
        (false, true) => (false, a.1.add(&b.1)),
        // -a - b = -(a + b).
        (true, false) => (true, a.1.add(&b.1)),
        // -a - (-b) = b - a.
        (true, true) => match b.1.checked_sub(&a.1) {
            Some(d) => (false, d),
            None => (true, a.1.sub(&b.1)),
        },
    }
}

/// Miller-Rabin primality test with `rounds` random bases (plus base 2,
/// always). Deterministically correct for the small primes used in
/// tests; probabilistic for large candidates.
pub fn miller_rabin(n: &BigUint, rounds: usize, rng: &mut dyn RandomSource) -> bool {
    let two = BigUint::from_u64(2);
    if n < &two {
        return false;
    }
    if n == &two || n == &BigUint::from_u64(3) {
        return true;
    }
    if n.is_even() {
        return false;
    }

    // Quick trial division by small primes.
    for p in [3u64, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47] {
        let pb = BigUint::from_u64(p);
        if n == &pb {
            return true;
        }
        if n.rem(&pb).map(|r| r.is_zero()).unwrap_or(false) {
            return false;
        }
    }

    // Write n-1 = d * 2^s with d odd.
    let n_minus_1 = n.sub(&BigUint::one());
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = d.shr_bits(1);
        s += 1;
    }

    let witness = |a: &BigUint| -> bool {
        // Returns true if `a` proves n composite.
        let mut x = match mod_exp(a, &d, n) {
            Ok(x) => x,
            Err(_) => return true,
        };
        if x == BigUint::one() || x == n_minus_1 {
            return false;
        }
        for _ in 0..s - 1 {
            x = match x.mul(&x).rem(n) {
                Ok(v) => v,
                Err(_) => return true, // n zero cannot happen; treat as composite
            };
            if x == n_minus_1 {
                return false;
            }
        }
        true
    };

    if witness(&two) {
        return false;
    }
    for _ in 0..rounds {
        // Random base in [2, n-2].
        let a = random_below(&n_minus_1, rng);
        let a = if a < two { two.clone() } else { a };
        if witness(&a) {
            return false;
        }
    }
    true
}

/// Returns a uniform random value in `[0, bound)`.
pub fn random_below(bound: &BigUint, rng: &mut dyn RandomSource) -> BigUint {
    assert!(!bound.is_zero());
    let bits = bound.bit_len();
    let bytes = bits.div_ceil(8);
    loop {
        let mut buf = vec![0u8; bytes];
        rng.fill_bytes(&mut buf);
        // Mask the top byte to the bit length.
        let excess = bytes * 8 - bits;
        if excess > 0 {
            buf[0] &= 0xff >> excess;
        }
        let candidate = BigUint::from_bytes_be(&buf);
        if &candidate < bound {
            return candidate;
        }
    }
}

/// Returns a random value with exactly `bits` significant bits.
pub fn random_bits(bits: usize, rng: &mut dyn RandomSource) -> BigUint {
    assert!(bits > 0);
    let bytes = bits.div_ceil(8);
    let mut buf = vec![0u8; bytes];
    rng.fill_bytes(&mut buf);
    let excess = bytes * 8 - bits;
    buf[0] &= 0xff >> excess;
    buf[0] |= 0x80 >> excess; // Force the top bit.
    BigUint::from_bytes_be(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Drbg;

    fn n(hex: &str) -> BigUint {
        BigUint::from_hex(hex).unwrap()
    }

    #[test]
    fn mod_exp_small() {
        let r = mod_exp(&BigUint::from_u64(4), &BigUint::from_u64(13), &BigUint::from_u64(497)).unwrap();
        assert_eq!(r.to_u64(), Some(445));
        // Fermat: 2^(p-1) = 1 mod p for p = 1000003.
        let p = BigUint::from_u64(1_000_003);
        let r = mod_exp(&BigUint::from_u64(2), &p.sub(&BigUint::one()), &p).unwrap();
        assert_eq!(r, BigUint::one());
    }

    #[test]
    fn mod_exp_edges() {
        let m = BigUint::from_u64(7);
        assert_eq!(mod_exp(&BigUint::from_u64(3), &BigUint::zero(), &m).unwrap(), BigUint::one());
        assert_eq!(mod_exp(&BigUint::zero(), &BigUint::from_u64(5), &m).unwrap(), BigUint::zero());
        assert_eq!(mod_exp(&BigUint::from_u64(3), &BigUint::one(), &BigUint::one()).unwrap(), BigUint::zero());
        assert!(mod_exp(&BigUint::one(), &BigUint::one(), &BigUint::zero()).is_err());
    }

    #[test]
    fn mod_exp_multi_limb() {
        // 2^128 mod (2^89-1): 2^89 = 1, so 2^128 = 2^39.
        let m = BigUint::from_hex("1ffffffffffffffffffffff").unwrap(); // 2^89-1
        let r = mod_exp(&BigUint::from_u64(2), &BigUint::from_u64(128), &m).unwrap();
        assert_eq!(r, BigUint::from_u64(1 << 39));
    }

    #[test]
    fn inverse_basics() {
        let m = BigUint::from_u64(97);
        for a in 1u64..97 {
            let inv = mod_inverse(&BigUint::from_u64(a), &m).unwrap();
            let prod = BigUint::from_u64(a).mul(&inv).rem(&m).unwrap();
            assert_eq!(prod, BigUint::one(), "a={a}");
        }
    }

    #[test]
    fn inverse_nonexistent() {
        assert!(mod_inverse(&BigUint::from_u64(6), &BigUint::from_u64(9)).is_none());
        assert!(mod_inverse(&BigUint::zero(), &BigUint::from_u64(9)).is_none());
    }

    #[test]
    fn inverse_large() {
        let m = n("ffffffffffffffffc90fdaa22168c234c4c6628b80dc1cd1");
        let a = n("123456789abcdef0fedcba9876543210deadbeef");
        if let Some(inv) = mod_inverse(&a, &m) {
            assert_eq!(a.mul(&inv).rem(&m).unwrap(), BigUint::one());
        }
    }

    #[test]
    fn miller_rabin_knowns() {
        let mut rng = Drbg::new(1);
        for p in [2u64, 3, 5, 7, 61, 97, 65537, 1_000_003, 2_147_483_647] {
            assert!(miller_rabin(&BigUint::from_u64(p), 16, &mut rng), "{p} is prime");
        }
        for c in [0u64, 1, 4, 9, 91, 561, 41041, 825_265, 1_000_001] {
            assert!(!miller_rabin(&BigUint::from_u64(c), 16, &mut rng), "{c} is composite");
        }
    }

    #[test]
    fn miller_rabin_mersenne() {
        let mut rng = Drbg::new(2);
        // 2^89-1 is prime; 2^83-1 is not.
        assert!(miller_rabin(&n("1ffffffffffffffffffffff"), 8, &mut rng));
        assert!(!miller_rabin(&n("7ffffffffffffffffffff"), 8, &mut rng));
    }

    #[test]
    fn random_below_bounds() {
        let mut rng = Drbg::new(3);
        let bound = n("ffffffffffffffffffffffffffffffff");
        for _ in 0..50 {
            assert!(random_below(&bound, &mut rng) < bound);
        }
        let one = BigUint::one();
        assert!(random_below(&one, &mut rng).is_zero());
    }

    #[test]
    fn random_bits_exact() {
        let mut rng = Drbg::new(4);
        for bits in [1usize, 7, 8, 9, 63, 64, 65, 127] {
            let v = random_bits(bits, &mut rng);
            assert_eq!(v.bit_len(), bits, "bits={bits}");
        }
    }
}
