//! Arbitrary-precision unsigned integers, from scratch.
//!
//! The paper proposes layering "exponential key exchange" (Diffie-Hellman
//! 1976) under the login dialog, and cites LaMacchia & Odlyzko's result
//! that small moduli are insecure while large ones are computationally
//! expensive. Reproducing that trade-off (experiment E4) requires real
//! modular exponentiation and real discrete-log attacks, hence a real
//! bignum.
//!
//! Representation: little-endian `u32` limbs, normalized (no trailing
//! zero limbs; zero is the empty vector).

mod modular;
mod montgomery;
mod muldiv;

pub use modular::{miller_rabin, mod_exp, mod_inverse, random_below, random_bits};
pub use montgomery::{mod_exp_fast, MontgomeryCtx};

use crate::error::CryptoError;
use std::cmp::Ordering;

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs, most significant limb last and nonzero.
    pub(crate) limbs: Vec<u32>,
}

impl BigUint {
    /// Zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> Self {
        BigUint::from_u64(1)
    }

    /// Builds from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut n = BigUint { limbs: vec![v as u32, (v >> 32) as u32] };
        n.normalize();
        n
    }

    /// Returns the value as a `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(u64::from(self.limbs[0])),
            2 => Some(u64::from(self.limbs[0]) | (u64::from(self.limbs[1]) << 32)),
            _ => None,
        }
    }

    /// Parses a big-endian hex string (whitespace tolerated).
    pub fn from_hex(s: &str) -> Result<Self, CryptoError> {
        let clean: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        if clean.is_empty() {
            return Err(CryptoError::BadHex);
        }
        let mut limbs = Vec::with_capacity(clean.len() / 8 + 1);
        let bytes = clean.as_bytes();
        let mut i = bytes.len();
        while i > 0 {
            let start = i.saturating_sub(8);
            let chunk = std::str::from_utf8(&bytes[start..i]).map_err(|_| CryptoError::BadHex)?;
            limbs.push(u32::from_str_radix(chunk, 16).map_err(|_| CryptoError::BadHex)?);
            i = start;
        }
        let mut n = BigUint { limbs };
        n.normalize();
        Ok(n)
    }

    /// Formats as big-endian lowercase hex (no leading zeros; zero is
    /// `"0"`).
    pub fn to_hex(&self) -> String {
        if self.limbs.is_empty() {
            return "0".into();
        }
        let mut s = format!("{:x}", self.limbs.last().copied().unwrap_or(0));
        for limb in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{limb:08x}"));
        }
        s
    }

    /// Builds from big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 4 + 1);
        let mut i = bytes.len();
        while i > 0 {
            let start = i.saturating_sub(4);
            let mut limb = 0u32;
            for &b in &bytes[start..i] {
                limb = (limb << 8) | u32::from(b);
            }
            limbs.push(limb);
            i = start;
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Serializes to big-endian bytes (minimal length; zero is empty).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 4);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        // Strip leading zeros.
        let first = out.iter().position(|&b| b != 0).unwrap_or(out.len());
        out.drain(..first);
        out
    }

    /// Drops trailing zero limbs.
    pub(crate) fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True if the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// Tests bit `i` (little-endian bit numbering).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 32;
        self.limbs.get(limb).is_some_and(|l| (l >> (i % 32)) & 1 == 1)
    }

    /// Addition.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let mut out = Vec::with_capacity(self.limbs.len().max(other.limbs.len()) + 1);
        let mut carry = 0u64;
        for i in 0..self.limbs.len().max(other.limbs.len()) {
            let a = u64::from(*self.limbs.get(i).unwrap_or(&0));
            let b = u64::from(*other.limbs.get(i).unwrap_or(&0));
            let sum = a + b + carry;
            out.push(sum as u32);
            carry = sum >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Subtraction; returns `None` if `other > self`.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self.cmp_big(other) == Ordering::Less {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let a = i64::from(self.limbs[i]);
            let b = i64::from(*other.limbs.get(i).unwrap_or(&0));
            let mut diff = a - b - borrow;
            if diff < 0 {
                diff += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(diff as u32);
        }
        debug_assert_eq!(borrow, 0);
        let mut n = BigUint { limbs: out };
        n.normalize();
        Some(n)
    }

    /// Subtraction. Underflow is a violated arithmetic precondition;
    /// rather than panic (or silently return a wrong magnitude), it
    /// saturates to zero, which every modular caller then reduces to a
    /// harmless failed probe.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        self.checked_sub(other).unwrap_or_else(BigUint::zero)
    }

    /// Total ordering.
    pub fn cmp_big(&self, other: &BigUint) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_big(other)
    }
}

impl std::fmt::Debug for BigUint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl std::fmt::Display for BigUint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        for v in [0u64, 1, 0xffff_ffff, 0x1_0000_0000, u64::MAX] {
            let n = BigUint::from_u64(v);
            assert_eq!(n.to_u64(), Some(v));
            assert_eq!(BigUint::from_hex(&n.to_hex()).unwrap(), n);
            assert_eq!(BigUint::from_bytes_be(&n.to_bytes_be()), n);
        }
    }

    #[test]
    fn hex_parsing() {
        assert_eq!(BigUint::from_hex("ff").unwrap().to_u64(), Some(255));
        assert_eq!(BigUint::from_hex("0").unwrap(), BigUint::zero());
        assert_eq!(BigUint::from_hex("00000001").unwrap(), BigUint::one());
        assert!(BigUint::from_hex("xyz").is_err());
        assert!(BigUint::from_hex("").is_err());
        // Whitespace tolerated (for the Oakley constants).
        assert_eq!(BigUint::from_hex("de ad\nbe ef").unwrap().to_u64(), Some(0xdeadbeef));
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = BigUint::from_hex("ffffffffffffffffffffffff").unwrap();
        let b = BigUint::from_u64(0xdeadbeef);
        let sum = a.add(&b);
        assert_eq!(sum.sub(&b), a);
        assert_eq!(sum.sub(&a), b);
        assert!(b.checked_sub(&a).is_none());
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = BigUint::from_u64(u64::MAX);
        let sum = a.add(&BigUint::one());
        assert_eq!(sum.to_hex(), "10000000000000000");
    }

    #[test]
    fn ordering() {
        let a = BigUint::from_u64(5);
        let b = BigUint::from_u64(6);
        let c = BigUint::from_hex("100000000000000000").unwrap();
        assert!(a < b && b < c && a < c);
        assert_eq!(a.cmp_big(&BigUint::from_u64(5)), Ordering::Equal);
    }

    #[test]
    fn bit_len_and_bit() {
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(BigUint::one().bit_len(), 1);
        assert_eq!(BigUint::from_u64(0x8000_0000_0000_0000).bit_len(), 64);
        let n = BigUint::from_u64(0b1010);
        assert!(!n.bit(0) && n.bit(1) && !n.bit(2) && n.bit(3) && !n.bit(4));
    }

    #[test]
    fn bytes_be() {
        let n = BigUint::from_bytes_be(&[0x01, 0x02, 0x03, 0x04, 0x05]);
        assert_eq!(n.to_u64(), Some(0x0102030405));
        assert_eq!(n.to_bytes_be(), vec![0x01, 0x02, 0x03, 0x04, 0x05]);
        assert_eq!(BigUint::zero().to_bytes_be(), Vec::<u8>::new());
    }

    #[test]
    fn is_even() {
        assert!(BigUint::zero().is_even());
        assert!(!BigUint::one().is_even());
        assert!(BigUint::from_u64(0x1_0000_0000).is_even());
    }
}
