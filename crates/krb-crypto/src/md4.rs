//! MD4 message digest (RFC 1186/1320), from scratch.
//!
//! Draft 3 of Kerberos V5 specified three checksum types: CRC-32, MD4,
//! and MD4 encrypted with DES. The paper's analysis turns on whether a
//! checksum is "collision-proof" — MD4 was *believed* to be in 1991 (it
//! has since been thoroughly broken, but the 1991-era protocol analysis
//! only needs "the adversary in our model cannot construct collisions",
//! which holds for the generic adversary the attack library implements).

const A0: u32 = 0x6745_2301;
const B0: u32 = 0xefcd_ab89;
const C0: u32 = 0x98ba_dcfe;
const D0: u32 = 0x1032_5476;

fn f(x: u32, y: u32, z: u32) -> u32 {
    (x & y) | (!x & z)
}

fn g(x: u32, y: u32, z: u32) -> u32 {
    (x & y) | (x & z) | (y & z)
}

fn h(x: u32, y: u32, z: u32) -> u32 {
    x ^ y ^ z
}

/// Compresses one 64-byte block into the state.
fn compress(state: &mut [u32; 4], block: &[u8]) {
    debug_assert_eq!(block.len(), 64);
    let mut x = [0u32; 16];
    for (i, w) in x.iter_mut().enumerate() {
        *w = u32::from_le_bytes([block[4 * i], block[4 * i + 1], block[4 * i + 2], block[4 * i + 3]]);
    }

    let [mut a, mut b, mut c, mut d] = *state;

    // Round 1.
    const S1: [u32; 4] = [3, 7, 11, 19];
    for i in 0..16 {
        let v = a.wrapping_add(f(b, c, d)).wrapping_add(x[i]).rotate_left(S1[i % 4]);
        (a, b, c, d) = (d, v, b, c);
    }

    // Round 2.
    const S2: [u32; 4] = [3, 5, 9, 13];
    const K2: [usize; 16] = [0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15];
    for (i, &k) in K2.iter().enumerate() {
        let v = a
            .wrapping_add(g(b, c, d))
            .wrapping_add(x[k])
            .wrapping_add(0x5a82_7999)
            .rotate_left(S2[i % 4]);
        (a, b, c, d) = (d, v, b, c);
    }

    // Round 3.
    const S3: [u32; 4] = [3, 9, 11, 15];
    const K3: [usize; 16] = [0, 8, 4, 12, 2, 10, 6, 14, 1, 9, 5, 13, 3, 11, 7, 15];
    for (i, &k) in K3.iter().enumerate() {
        let v = a
            .wrapping_add(h(b, c, d))
            .wrapping_add(x[k])
            .wrapping_add(0x6ed9_eba1)
            .rotate_left(S3[i % 4]);
        (a, b, c, d) = (d, v, b, c);
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
}

/// Computes the 16-byte MD4 digest of `data`.
pub fn md4(data: &[u8]) -> [u8; 16] {
    let mut state = [A0, B0, C0, D0];

    let mut chunks = data.chunks_exact(64);
    for block in &mut chunks {
        compress(&mut state, block);
    }

    // Merkle-Damgard padding: 0x80, zeros, 64-bit little-endian bit
    // length.
    let rem = chunks.remainder();
    let bitlen = (data.len() as u64).wrapping_mul(8);
    let mut tail = Vec::with_capacity(128);
    tail.extend_from_slice(rem);
    tail.push(0x80);
    while tail.len() % 64 != 56 {
        tail.push(0);
    }
    tail.extend_from_slice(&bitlen.to_le_bytes());
    for block in tail.chunks_exact(64) {
        compress(&mut state, block);
    }

    let mut out = [0u8; 16];
    for (i, w) in state.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
    }
    out
}

/// Returns the digest as a lowercase hex string, for tests and logs.
pub fn md4_hex(data: &[u8]) -> String {
    md4(data).iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full RFC 1320 test suite.
    #[test]
    fn rfc1320_vectors() {
        let cases: [(&[u8], &str); 7] = [
            (b"", "31d6cfe0d16ae931b73c59d7e0c089c0"),
            (b"a", "bde52cb31de33e46245e05fbdbd6fb24"),
            (b"abc", "a448017aaf21d8525fc10ae87aa6729d"),
            (b"message digest", "d9130a8164549fe818874806e1c7014b"),
            (b"abcdefghijklmnopqrstuvwxyz", "d79e1c308aa5bbcdeea8ed63df412da9"),
            (
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "043f8582f241db351ce627e153e7f0e4",
            ),
            (
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "e33b4ddc9c38f2199c3e7b164fcc0536",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(md4_hex(input), want, "input {:?}", String::from_utf8_lossy(input));
        }
    }

    #[test]
    fn length_extension_boundaries() {
        // Exercise padding at the 55/56/63/64-byte boundaries.
        for n in [55usize, 56, 63, 64, 65, 119, 120, 127, 128] {
            let data = vec![0xabu8; n];
            let d = md4(&data);
            // Must differ from a one-byte-longer input.
            let mut data2 = data.clone();
            data2.push(0xab);
            assert_ne!(d, md4(&data2), "len {n}");
        }
    }

    #[test]
    fn bit_flip_avalanche() {
        let base = b"authenticator: client=pat addr=10.0.0.7 time=667000000";
        let d0 = md4(base);
        let mut flipped = base.to_vec();
        flipped[10] ^= 1;
        let d1 = md4(&flipped);
        let differing: u32 = d0.iter().zip(d1.iter()).map(|(a, b)| (a ^ b).count_ones()).sum();
        // Expect roughly half of 128 bits to flip; demand at least a
        // quarter to catch gross implementation errors.
        assert!(differing > 32, "only {differing} bits differ");
    }
}
