//! Deterministic random sources for protocol use.
//!
//! Every random choice in the simulated protocols flows through a
//! [`RandomSource`] so runs are reproducible. Two implementations model
//! the paper's dichotomy: a decent seeded DRBG (standing in for the
//! proposed hardware random number generator / network random service),
//! and [`BadLcg`], the "user workstations are not particularly good
//! sources of random keys" failure mode — its outputs can be regenerated
//! by an attacker who learns one of them.

use crate::des::DesKey;

/// A source of random 64-bit values.
pub trait RandomSource {
    /// Returns the next pseudo-random u64.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly-distributed value in `[0, bound)`.
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Fills `buf` with random bytes.
    fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_be_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Generates a fresh parity-correct, non-weak DES key.
    fn gen_des_key(&mut self) -> DesKey {
        loop {
            let k = DesKey::from_u64(self.next_u64()).with_odd_parity();
            if !k.is_weak() && !k.is_semi_weak() {
                return k;
            }
        }
    }
}

/// A seeded SplitMix64-based deterministic generator. Good statistical
/// quality, reproducible; stands in for the paper's proposed hardware
/// RNG and network random service.
#[derive(Clone, Debug)]
pub struct Drbg {
    state: u64,
}

impl Drbg {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Drbg { state: seed }
    }
}

impl RandomSource for Drbg {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea & Flood), public domain constants.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A deliberately weak linear congruential generator seeded from a
/// low-entropy value (e.g. time-of-day), modelling a 1990 workstation's
/// key generation. [`BadLcg::replay_from`] lets an attacker who learns
/// any single output regenerate the whole stream.
#[derive(Clone, Debug)]
pub struct BadLcg {
    state: u64,
}

impl BadLcg {
    /// Seeds from a (low-entropy) value.
    pub fn new(seed: u64) -> Self {
        BadLcg { state: seed }
    }

    /// Reconstructs the generator from one observed output: the state IS
    /// the output, so the attack is trivial. This is exactly why the
    /// paper wants key generation moved to a hardware unit or network
    /// random service.
    pub fn replay_from(observed_output: u64) -> Self {
        BadLcg { state: observed_output }
    }
}

impl RandomSource for BadLcg {
    fn next_u64(&mut self) -> u64 {
        // Classic MMIX LCG constants (Knuth).
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drbg_reproducible() {
        let mut a = Drbg::new(42);
        let mut b = Drbg::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn drbg_seed_sensitivity() {
        let mut a = Drbg::new(42);
        let mut b = Drbg::new(43);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut r = Drbg::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..50 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_des_key_is_sound() {
        let mut r = Drbg::new(9);
        for _ in 0..100 {
            let k = r.gen_des_key();
            assert!(k.has_odd_parity());
            assert!(!k.is_weak());
        }
    }

    #[test]
    fn bad_lcg_stream_recoverable_from_one_output() {
        let mut victim = BadLcg::new(667_000_000); // Seeded from "time".
        let first = victim.next_u64();
        let mut attacker = BadLcg::replay_from(first);
        for _ in 0..10 {
            assert_eq!(attacker.next_u64(), victim.next_u64());
        }
    }

    #[test]
    fn fill_bytes_partial_chunk() {
        let mut r = Drbg::new(1);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
