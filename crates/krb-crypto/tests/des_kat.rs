//! FIPS-81 known-answer tests and fast-vs-reference differential
//! properties for the DES core.
//!
//! The fused SP-table kernel in `des::fast` must be bit-exact with the
//! retained table-walking implementation in `des::reference`. The KATs
//! pin both against the published FIPS 81 worked examples, and the
//! `testkit::prop` suite drives randomized equivalence (replay a
//! failure with the printed `TESTKIT_SEED`).

use krb_crypto::des::{self, DesKey, KeySchedule};
use krb_crypto::des3::TripleDesKey;
use krb_crypto::modes;
use testkit::prelude::*;

/// FIPS 81 sample key.
const FIPS81_KEY: u64 = 0x0123456789ABCDEF;
/// FIPS 81 sample plaintext: "Now is the time for all " as three blocks.
const FIPS81_PT: [u64; 3] = [0x4E6F772069732074, 0x68652074696D6520, 0x666F7220616C6C20];

fn blocks_to_bytes(blocks: &[u64]) -> Vec<u8> {
    blocks.iter().flat_map(|b| b.to_be_bytes()).collect()
}

fn bytes_to_blocks(bytes: &[u8]) -> Vec<u64> {
    bytes.chunks_exact(8).map(|c| u64::from_be_bytes(c.try_into().unwrap())).collect()
}

#[test]
fn fips81_ecb_known_answer() {
    let key = DesKey::from_u64(FIPS81_KEY);
    let ct = modes::ecb_encrypt(&key, &blocks_to_bytes(&FIPS81_PT)).unwrap();
    assert_eq!(
        bytes_to_blocks(&ct),
        [0x3FA40E8A984D4815, 0x6A271787AB8883F9, 0x893D51EC4B563B53],
        "FIPS 81 table B1 ECB vector"
    );
    assert_eq!(bytes_to_blocks(&modes::ecb_decrypt(&key, &ct).unwrap()), FIPS81_PT);
}

#[test]
fn fips81_cbc_known_answer() {
    let key = DesKey::from_u64(FIPS81_KEY);
    let iv = 0x1234567890ABCDEF;
    let ct = modes::cbc_encrypt(&key, iv, &blocks_to_bytes(&FIPS81_PT)).unwrap();
    assert_eq!(
        bytes_to_blocks(&ct),
        [0xE5C7CDDE872BF27C, 0x43E934008C389C0F, 0x683788499A7C05F6],
        "FIPS 81 table C1 CBC vector"
    );
    assert_eq!(bytes_to_blocks(&modes::cbc_decrypt(&key, iv, &ct).unwrap()), FIPS81_PT);
}

#[test]
fn des3_ede_degenerate_known_answer() {
    // With K1 = K2 = K3, EDE collapses to single DES, so the NBS
    // single-DES vector (key 01..01, PT 8000..00 -> 95F8A5E5DD31D900)
    // pins the chain without trusting our own output.
    let k = DesKey::from_u64(0x0101010101010101);
    let tk = TripleDesKey::new(k, k, k);
    assert_eq!(tk.encrypt_block(0x8000000000000000), 0x95F8A5E5DD31D900);
    assert_eq!(tk.decrypt_block(0x95F8A5E5DD31D900), 0x8000000000000000);
    // And a genuinely three-key chain must differ from single DES.
    let tk3 = TripleDesKey::new(
        DesKey::from_u64(0x0123456789ABCDEF),
        DesKey::from_u64(0x23456789ABCDEF01),
        DesKey::from_u64(0x456789ABCDEF0123),
    );
    assert_ne!(
        tk3.encrypt_block(FIPS81_PT[0]),
        DesKey::from_u64(0x0123456789ABCDEF).encrypt_block(FIPS81_PT[0])
    );
}

fn arb_key() -> impl Strategy<Value = DesKey> {
    any::<u64>().prop_map(|v| DesKey::from_u64(v).with_odd_parity())
}

fn arb_blocks() -> impl Strategy<Value = Vec<u8>> {
    collection::vec(any::<u8>(), 0..64).prop_map(|mut v| {
        v.resize(v.len().div_ceil(8) * 8, 0);
        v
    })
}

testkit::prop! {
    fn fast_encrypt_matches_reference(k in any::<u64>(), pt in any::<u64>()) {
        let ks = KeySchedule::new(&DesKey::from_u64(k));
        prop_assert_eq!(des::encrypt_block(&ks, pt), des::reference::encrypt_block(&ks, pt));
    }

    fn fast_decrypt_matches_reference(k in any::<u64>(), ct in any::<u64>()) {
        let ks = KeySchedule::new(&DesKey::from_u64(k));
        prop_assert_eq!(des::decrypt_block(&ks, ct), des::reference::decrypt_block(&ks, ct));
    }

    fn fast_roundtrip_and_cache_agree(k in any::<u64>(), pt in any::<u64>()) {
        let key = DesKey::from_u64(k);
        let ks = KeySchedule::new(&key);
        // DesKey methods go through the thread-local schedule cache;
        // the free functions take an explicit schedule. Same kernel,
        // same answer.
        let ct = key.encrypt_block(pt);
        prop_assert_eq!(ct, des::encrypt_block(&ks, pt));
        prop_assert_eq!(key.decrypt_block(ct), pt);
    }

    fn in_place_modes_match_allocating(key in arb_key(), iv in any::<u64>(), data in arb_blocks()) {
        let ks = KeySchedule::new(&key);
        let alloc = modes::cbc_encrypt(&key, iv, &data).unwrap();
        let mut buf = data.clone();
        modes::cbc_encrypt_in_place(&ks, iv, &mut buf).unwrap();
        prop_assert_eq!(&buf, &alloc);

        let alloc = modes::pcbc_encrypt(&key, iv, &data).unwrap();
        let mut buf = data.clone();
        modes::pcbc_encrypt_in_place(&ks, iv, &mut buf).unwrap();
        prop_assert_eq!(&buf, &alloc);

        let alloc = modes::ecb_encrypt(&key, &data).unwrap();
        let mut buf = data;
        modes::ecb_encrypt_in_place(&ks, &mut buf).unwrap();
        prop_assert_eq!(&buf, &alloc);
    }
}
