//! Statistical sanity checks on the DES implementation: bijectivity and
//! avalanche. These catch gross implementation errors (dropped rounds,
//! table transpositions) that individual known-answer vectors might
//! miss, without relying on memorized constants.

use krb_crypto::des::DesKey;
use krb_crypto::rng::{Drbg, RandomSource};

#[test]
fn encryption_is_injective_on_samples() {
    let mut rng = Drbg::new(1);
    let key = rng.gen_des_key();
    let mut seen = std::collections::HashSet::new();
    for _ in 0..2000 {
        let pt = rng.next_u64();
        let ct = key.encrypt_block(pt);
        assert!(seen.insert(ct) || key.decrypt_block(ct) == pt);
    }
    // 2000 distinct random plaintexts -> 2000 distinct ciphertexts
    // (collisions would break decryption, checked above anyway).
    assert!(seen.len() >= 1990);
}

#[test]
fn plaintext_avalanche_is_near_half() {
    let mut rng = Drbg::new(2);
    let key = rng.gen_des_key();
    let mut total = 0u64;
    let mut count = 0u64;
    for _ in 0..200 {
        let pt = rng.next_u64();
        let ct = key.encrypt_block(pt);
        let bit = 1u64 << rng.next_below(64);
        let ct2 = key.encrypt_block(pt ^ bit);
        total += u64::from((ct ^ ct2).count_ones());
        count += 1;
    }
    let avg = total as f64 / count as f64;
    // One flipped input bit should flip ~32 output bits on average.
    assert!((24.0..40.0).contains(&avg), "plaintext avalanche avg {avg}");
}

#[test]
fn key_avalanche_is_near_half() {
    let mut rng = Drbg::new(3);
    let mut total = 0u64;
    let mut count = 0u64;
    for _ in 0..200 {
        let k = rng.next_u64();
        let pt = rng.next_u64();
        let key = DesKey::from_u64(k);
        // Flip a non-parity key bit (bit positions 1..8 within each
        // byte carry key material).
        let byte = rng.next_below(8);
        let bit_in_byte = 1 + rng.next_below(7);
        let flipped = DesKey::from_u64(k ^ (1u64 << (byte * 8 + bit_in_byte)));
        let d = key.encrypt_block(pt) ^ flipped.encrypt_block(pt);
        total += u64::from(d.count_ones());
        count += 1;
    }
    let avg = total as f64 / count as f64;
    assert!((24.0..40.0).contains(&avg), "key avalanche avg {avg}");
}

#[test]
fn parity_bits_do_not_affect_encryption() {
    // Bit 0 of each key byte is parity only: flipping it must not
    // change the cipher function.
    let mut rng = Drbg::new(4);
    for _ in 0..50 {
        let k = rng.next_u64();
        let pt = rng.next_u64();
        let a = DesKey::from_u64(k).encrypt_block(pt);
        let b = DesKey::from_u64(k ^ 0x0101_0101_0101_0101).encrypt_block(pt);
        assert_eq!(a, b);
    }
}

#[test]
fn ciphertext_bits_are_unbiased() {
    // Over many random (key, plaintext) pairs, each ciphertext bit
    // should be ~50% ones.
    let mut rng = Drbg::new(5);
    let mut ones = [0u32; 64];
    let n = 2000;
    for _ in 0..n {
        let key = DesKey::from_u64(rng.next_u64());
        let ct = key.encrypt_block(rng.next_u64());
        for (i, o) in ones.iter_mut().enumerate() {
            *o += ((ct >> i) & 1) as u32;
        }
    }
    for (i, &o) in ones.iter().enumerate() {
        let frac = f64::from(o) / n as f64;
        assert!((0.40..0.60).contains(&frac), "bit {i} biased: {frac}");
    }
}
