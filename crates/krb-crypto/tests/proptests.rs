//! Property-based tests over the crypto substrate's core invariants.
//!
//! Runs on `testkit::prop` — deterministic and hermetic. Replay any
//! failure with the printed `TESTKIT_SEED`.

use krb_crypto::bignum::{mod_exp, mod_inverse, BigUint};
use krb_crypto::crc32::{crc32, forge_suffix};
use krb_crypto::des::DesKey;
use krb_crypto::md4::md4;
use krb_crypto::modes;
use krb_crypto::s2k::string_to_key_v4;
use testkit::prelude::*;

fn arb_key() -> impl Strategy<Value = DesKey> {
    any::<u64>().prop_map(|v| DesKey::from_u64(v).with_odd_parity())
}

fn arb_blocks() -> impl Strategy<Value = Vec<u8>> {
    collection::vec(any::<u8>(), 0..32).prop_map(|v| {
        let mut v = v;
        v.resize(v.len().div_ceil(8) * 8, 0);
        v
    })
}

testkit::prop! {
    fn des_block_roundtrip(k in any::<u64>(), pt in any::<u64>()) {
        let key = DesKey::from_u64(k);
        prop_assert_eq!(key.decrypt_block(key.encrypt_block(pt)), pt);
    }

    fn des_complementation(k in any::<u64>(), pt in any::<u64>()) {
        let key = DesKey::from_u64(k);
        let comp = DesKey::from_u64(!k);
        prop_assert_eq!(comp.encrypt_block(!pt), !key.encrypt_block(pt));
    }

    fn ecb_roundtrip(key in arb_key(), data in arb_blocks()) {
        let ct = modes::ecb_encrypt(&key, &data).unwrap();
        prop_assert_eq!(modes::ecb_decrypt(&key, &ct).unwrap(), data);
    }

    fn cbc_roundtrip(key in arb_key(), iv in any::<u64>(), data in arb_blocks()) {
        let ct = modes::cbc_encrypt(&key, iv, &data).unwrap();
        prop_assert_eq!(modes::cbc_decrypt(&key, iv, &ct).unwrap(), data);
    }

    fn pcbc_roundtrip(key in arb_key(), iv in any::<u64>(), data in arb_blocks()) {
        let ct = modes::pcbc_encrypt(&key, iv, &data).unwrap();
        prop_assert_eq!(modes::pcbc_decrypt(&key, iv, &ct).unwrap(), data);
    }

    /// CBC prefix property: any block-aligned ciphertext prefix decrypts
    /// to the corresponding plaintext prefix.
    fn cbc_prefix_property(key in arb_key(), iv in any::<u64>(), data in arb_blocks(), cut in 0usize..4) {
        let ct = modes::cbc_encrypt(&key, iv, &data).unwrap();
        let cut = (cut * 8).min(ct.len());
        let pt = modes::cbc_decrypt(&key, iv, &ct[..cut]).unwrap();
        prop_assert_eq!(&pt[..], &data[..cut]);
    }

    /// PCBC swap tolerance: swapping two interior ciphertext blocks
    /// leaves every block after the swapped pair intact.
    fn pcbc_swap_suffix_intact(key in arb_key(), iv in any::<u64>(), data in arb_blocks(), at in 0usize..3) {
        let mut data = data;
        data.resize(data.len().max(40), 7); // at least 5 blocks
        let mut ct = modes::pcbc_encrypt(&key, iv, &data).unwrap();
        let a = at * 8;
        let b = a + 8;
        let (x, y) = (ct[a..a + 8].to_vec(), ct[b..b + 8].to_vec());
        ct[a..a + 8].copy_from_slice(&y);
        ct[b..b + 8].copy_from_slice(&x);
        let pt = modes::pcbc_decrypt(&key, iv, &ct).unwrap();
        prop_assert_eq!(&pt[b + 8..], &data[b + 8..]);
        prop_assert_eq!(&pt[..a], &data[..a]);
    }

    fn crc_forge_any_target(msg in collection::vec(any::<u8>(), 0..64), target in any::<u32>()) {
        let patch = forge_suffix(&msg, target);
        let mut forged = msg.clone();
        forged.extend_from_slice(&patch);
        prop_assert_eq!(crc32(&forged), target);
    }

    /// CRC-32 is affine: crc(a) ^ crc(b) ^ crc(c) == crc(a^b^c) for
    /// equal-length inputs.
    fn crc_linearity(
        a in collection::vec(any::<u8>(), 16),
        b in collection::vec(any::<u8>(), 16),
        c in collection::vec(any::<u8>(), 16),
    ) {
        let x: Vec<u8> = a.iter().zip(&b).zip(&c).map(|((p, q), r)| p ^ q ^ r).collect();
        prop_assert_eq!(crc32(&x), crc32(&a) ^ crc32(&b) ^ crc32(&c));
    }

    fn md4_injective_in_practice(a in collection::vec(any::<u8>(), 0..64), b in collection::vec(any::<u8>(), 0..64)) {
        if a != b {
            prop_assert_ne!(md4(&a), md4(&b));
        }
    }

    fn bignum_add_sub(a in any::<u64>(), b in any::<u64>()) {
        let (x, y) = (BigUint::from_u64(a), BigUint::from_u64(b));
        prop_assert_eq!(x.add(&y).sub(&y), x);
    }

    fn bignum_mul_commutes(a in any::<u128>(), b in any::<u128>()) {
        let x = BigUint::from_hex(&format!("{a:x}")).unwrap();
        let y = BigUint::from_hex(&format!("{b:x}")).unwrap();
        prop_assert_eq!(x.mul(&y), y.mul(&x));
    }

    fn bignum_distributes(a in any::<u128>(), b in any::<u128>(), c in any::<u128>()) {
        let x = BigUint::from_hex(&format!("{a:x}")).unwrap();
        let y = BigUint::from_hex(&format!("{b:x}")).unwrap();
        let z = BigUint::from_hex(&format!("{c:x}")).unwrap();
        prop_assert_eq!(x.mul(&y.add(&z)), x.mul(&y).add(&x.mul(&z)));
    }

    fn bignum_divrem_reconstructs(a in any::<u128>(), b in 1u128..) {
        let x = BigUint::from_hex(&format!("{a:x}")).unwrap();
        let y = BigUint::from_hex(&format!("{b:x}")).unwrap();
        let (q, r) = x.divrem(&y).unwrap();
        prop_assert_eq!(q.mul(&y).add(&r), x);
        prop_assert!(r < y);
    }

    fn bignum_divrem_wide(limbs_a in collection::vec(any::<u32>(), 1..12), limbs_b in collection::vec(any::<u32>(), 1..8)) {
        let x = BigUint::from_bytes_be(&limbs_a.iter().flat_map(|l| l.to_be_bytes()).collect::<Vec<_>>());
        let y = BigUint::from_bytes_be(&limbs_b.iter().flat_map(|l| l.to_be_bytes()).collect::<Vec<_>>());
        if !y.is_zero() {
            let (q, r) = x.divrem(&y).unwrap();
            prop_assert_eq!(q.mul(&y).add(&r), x.clone());
            prop_assert!(r < y);
        }
    }

    fn bignum_shift_inverse(a in any::<u128>(), s in 0usize..96) {
        let x = BigUint::from_hex(&format!("{a:x}")).unwrap();
        prop_assert_eq!(x.shl_bits(s).shr_bits(s), x);
    }

    fn bignum_hex_roundtrip(limbs in collection::vec(any::<u32>(), 0..10)) {
        let x = BigUint::from_bytes_be(&limbs.iter().flat_map(|l| l.to_be_bytes()).collect::<Vec<_>>());
        prop_assert_eq!(BigUint::from_hex(&x.to_hex()).unwrap(), x);
    }

    /// Homomorphism: g^(a+b) = g^a * g^b (mod p).
    fn mod_exp_homomorphism(a in any::<u32>(), b in any::<u32>()) {
        let p = BigUint::from_u64(1_000_003);
        let g = BigUint::from_u64(2);
        let ga = mod_exp(&g, &BigUint::from_u64(a.into()), &p).unwrap();
        let gb = mod_exp(&g, &BigUint::from_u64(b.into()), &p).unwrap();
        let gab = mod_exp(&g, &BigUint::from_u64(u64::from(a) + u64::from(b)), &p).unwrap();
        prop_assert_eq!(ga.mul(&gb).rem(&p).unwrap(), gab);
    }

    fn mod_inverse_correct(a in 1u64..1_000_003) {
        let p = BigUint::from_u64(1_000_003); // prime
        let x = BigUint::from_u64(a);
        let inv = mod_inverse(&x, &p).unwrap();
        prop_assert_eq!(x.mul(&inv).rem(&p).unwrap(), BigUint::one());
    }

    fn s2k_always_sound(pw in string::printable(0..=40)) {
        let k = string_to_key_v4(&pw);
        prop_assert!(k.has_odd_parity());
        prop_assert!(!k.is_weak());
        prop_assert!(!k.is_semi_weak());
    }

    /// s2k is sound on non-ASCII passwords too (the old regex strategy
    /// covered arbitrary printable unicode).
    fn s2k_sound_on_unicode(pw in string::of("a-z°±é漢字🦀", 0..=24)) {
        let k = string_to_key_v4(&pw);
        prop_assert!(k.has_odd_parity());
        prop_assert!(!k.is_weak());
    }

    /// Montgomery exponentiation agrees with the division-based path on
    /// arbitrary odd moduli.
    fn montgomery_matches_division(base in any::<u128>(), exp in any::<u64>(), m in any::<u128>()) {
        let modulus = BigUint::from_hex(&format!("{:x}", m | 1)).unwrap(); // force odd
        if modulus.bit_len() >= 2 {
            let b = BigUint::from_hex(&format!("{base:x}")).unwrap();
            let e = BigUint::from_u64(exp);
            let want = mod_exp(&b, &e, &modulus).unwrap();
            let got = krb_crypto::bignum::mod_exp_fast(&b, &e, &modulus).unwrap();
            prop_assert_eq!(got, want);
        }
    }
}
