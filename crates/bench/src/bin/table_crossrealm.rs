//! E10 — inter-realm authentication: path costs and trust limits.
//!
//! Run: `cargo run --release -p bench --bin table_crossrealm`

use bench::{BenchJson, TextTable};
use kerberos::client::{login, LoginInput};
use kerberos::crossrealm::{cross_realm_ticket, RealmTopology, TrustPolicy};
use kerberos::kdc::Kdc;
use kerberos::testbed::deploy_realm;
use kerberos::ticket::Ticket;
use kerberos::ProtocolConfig;
use krb_crypto::rng::{Drbg, RandomSource};
use simnet::{Network, SimDuration};

fn main() {
    println!("E10: inter-realm chains — message cost, transited paths, trust evaluation");
    let config = ProtocolConfig::v5_draft3();

    let mut json = BenchJson::new("E10");
    let mut table = TextTable::new(&["chain depth", "realms", "wire messages", "transited recorded"]);
    for depth in 1usize..=4 {
        let mut net = Network::new();
        net.advance(SimDuration::from_secs(1_000_000));
        let mut rng = Drbg::new(0xE10 + depth as u64);

        // Build a chain R0 (home, with user) -> R1 -> ... -> Rdepth.
        let names: Vec<String> = (0..=depth).map(|i| format!("REALM{i}")).collect();
        let mut realms = Vec::new();
        for (i, name) in names.iter().enumerate() {
            let users: &[(&str, &str)] = if i == 0 { &[("pat", "pw")] } else { &[] };
            let services: &[&str] = if i == depth { &["files"] } else { &[] };
            realms.push(deploy_realm(&mut net, name, i as u8 + 1, &config, users, services, 40 + i as u64));
        }
        let mut topo = RealmTopology::new();
        for (i, r) in realms.iter().enumerate() {
            topo.add_realm(&names[i], r.kdc_ep);
        }
        for i in 0..depth {
            let k = rng.gen_des_key();
            realms[i].with_kdc(&mut net, |kdc: &mut Kdc| {
                kdc.db.add_cross_realm(&names[i + 1], k);
            });
            realms[i + 1].with_kdc(&mut net, |kdc: &mut Kdc| {
                kdc.db.add_cross_realm(&names[i], k);
            });
            // Static routes: every realm routes toward the chain end via
            // its next hop.
            for (j, name) in names.iter().enumerate().take(depth) {
                if j <= i {
                    topo.add_route(name, &names[depth], &names[j + 1]);
                }
            }
        }
        for i in 0..depth {
            topo.add_route(&names[i], &names[i + 1], &names[i + 1]);
        }

        let home = &realms[0];
        let tgt = login(
            &mut net,
            &config,
            home.user_ep("pat"),
            home.kdc_ep,
            &home.user("pat"),
            LoginInput::Password("pw"),
            &mut rng,
        )
        .expect("login");
        let before = net.traffic_log().len();
        let target = realms[depth].service("files");
        let (cred, path) =
            cross_realm_ticket(&mut net, &config, &topo, home.user_ep("pat"), &tgt, &target, &mut rng)
                .expect("cross-realm walk");
        let msgs = net.traffic_log().len() - before;

        let files_key = realms[depth].service_keys["files"];
        let t = Ticket::unseal(config.codec, config.ticket_layer, &files_key, &cred.sealed_ticket)
            .expect("unseal");
        json.int(&format!("wire_msgs.depth{depth}"), msgs as u64);
        json.int(&format!("transited.depth{depth}"), t.transited.len() as u64);
        json.metrics(&net.tracer().snapshot());
        table.row(&[
            depth.to_string(),
            path.join(">"),
            msgs.to_string(),
            format!("{:?}", t.transited),
        ]);
    }
    table.print("cost grows linearly in path length; each hop is a full TGS exchange");
    json.write("crossrealm");

    // Trust evaluation demonstration.
    let policy = TrustPolicy::distrusting(&["REALM2"]);
    println!(
        "\ntrust policy 'distrust REALM2': path [REALM1,REALM2] -> {:?}; path [REALM1] -> {:?}",
        policy.evaluate(&["REALM1".into(), "REALM2".into()]).err().map(|e| e.to_string()),
        policy.evaluate(&["REALM1".into()]).is_ok()
    );
    println!(
        "paper: 'in the absence of a global name space ... a server needs global knowledge of \
         the trustworthiness of all possible transit realms. In a large internet, such \
         knowledge is probably not possible.'"
    );
}
