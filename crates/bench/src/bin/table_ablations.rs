//! Defense ablations: starting from the vulnerable v5-draft3 baseline,
//! apply ONE recommended change at a time and re-run every attack.
//! This shows which fix stops which attack — the paper's recommendation
//! list as a causal table.
//!
//! Run: `cargo run --release -p bench --bin table_ablations`

use attacks::all_attacks;
use bench::{BenchJson, TextTable};
use kerberos::{AppProtection, AuthStyle, Freshness, PreauthMode, ProtocolConfig};
use krb_crypto::checksum::ChecksumType;

/// One ablation: a name and a config mutation.
fn ablations() -> Vec<(&'static str, ProtocolConfig)> {
    let base = ProtocolConfig::v5_draft3;
    let mut v: Vec<(&'static str, ProtocolConfig)> = vec![("baseline (v5-draft3)", base())];

    let mut c = base();
    c.replay_cache = true;
    v.push(("+replay cache", c));

    let mut c = base();
    c.auth_style = AuthStyle::ChallengeResponse;
    v.push(("+challenge/response (a)", c));

    let mut c = base();
    c.preauth = PreauthMode::EncTimestamp;
    v.push(("+preauthentication (g)", c));

    let mut c = base();
    c.dh_login = true;
    v.push(("+exponential key exchange (h)", c));

    let mut c = base();
    c.hha_login = true;
    v.push(("+handheld authenticator (c)", c));

    let mut c = base();
    c.subkey_negotiation = true;
    v.push(("+true session keys (e)", c));

    let mut c = base();
    c.freshness = Freshness::SequenceNumbers;
    c.priv_layer = kerberos::enclayer::EncLayer::HardenedCbc;
    v.push(("+sequence numbers + hardened priv layer (d)", c));

    let mut c = base();
    c.checksum = ChecksumType::Md4Des;
    v.push(("+collision-proof checksum (b/c)", c));

    let mut c = base();
    c.enforce_cname_match = true;
    v.push(("+cname check (the omitted requirement)", c));

    let mut c = base();
    c.allow_enc_tkt_in_skey = false;
    c.allow_reuse_skey = false;
    v.push(("-ENC-TKT-IN-SKEY / -REUSE-SKEY (new d)", c));

    let mut c = base();
    c.service_binding = true;
    v.push(("+service binding in authenticator", c));

    let mut c = base();
    c.forbid_duplicate_skey_auth = true;
    v.push(("+obey DUPLICATE-SKEY warning", c));

    // The paper's claim that address binding buys nothing: removing it
    // should change no row.
    let mut c = base();
    c.address_in_ticket = false;
    v.push(("-address in ticket (paper: useless)", c));

    // And for the v4-era encoding question: typed codec on the V4 stack.
    let mut c = ProtocolConfig::v4();
    c.codec = kerberos::encoding::Codec::Typed;
    v.push(("v4 +typed encoding (b)", c));

    let mut c = ProtocolConfig::v4();
    c.app_protection = AppProtection::Priv;
    v.push(("v4 +KRB_PRIV app data", c));

    v
}

fn main() {
    println!("Defense ablations x attacks (BREACH = attack still works)");
    let attacks = all_attacks();
    let mut headers: Vec<&str> = vec!["ablation"];
    let ids: Vec<&str> = attacks.iter().map(|a| a.id()).collect();
    headers.extend(ids.iter());
    let mut table = TextTable::new(&headers);

    let mut json = BenchJson::new("E11");
    json.int("attacks", attacks.len() as u64);
    for (name, config) in ablations() {
        let mut cells = vec![name.to_string()];
        let mut breaches = 0u64;
        for attack in &attacks {
            let r = attack.run(&config, 0xab1a);
            breaches += u64::from(r.succeeded);
            cells.push(if r.succeeded { "X".into() } else { ".".into() });
        }
        json.int(&format!("breaches.{name}"), breaches);
        table.row(&cells);
    }
    table.print("X = breach, . = safe");
    json.write("ablations");

    println!(
        "Reading guide: each recommended change eliminates exactly the rows the paper\n\
         attributes to it; removing the network address from tickets (second-to-last\n\
         line for draft3) changes nothing — \"no extra security is gained by relying\n\
         on the network address.\""
    );
}
