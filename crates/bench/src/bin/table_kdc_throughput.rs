//! E13 — DES kernel and KDC throughput: what the fused SP-table kernel
//! buys, from raw block encryption up through end-to-end authentication.
//!
//! Three layers of the same hot path:
//!   1. raw kernel blocks/sec — fast (fused SP tables) vs the retained
//!      table-walking reference, same precomputed key schedule;
//!   2. string-to-key trials/sec — the dictionary-attack inner loop the
//!      paper warns about (a faster kernel helps the *attacker* too);
//!   3. end-to-end KDC authentications/sec on the simulated campus.
//!
//! Before timing anything, the harness proves the fast kernel bit-exact
//! against the reference and the FIPS 81 vector; it exits nonzero if
//! equivalence fails or the fast kernel is not actually faster.
//!
//! Run: `cargo run --release -p bench --bin table_kdc_throughput`
//! Smoke: `KDC_THROUGHPUT_QUICK=1 ...` (fewer iterations, same checks).
//! Writes `BENCH_crypto.json` in the current directory.

use attacks::env::AttackEnv;
use bench::{time_us, BenchJson, TextTable};
use kerberos::ProtocolConfig;
use krb_crypto::des::{self, DesKey, KeySchedule};
use krb_crypto::rng::{Drbg, RandomSource};
use krb_crypto::s2k::string_to_key_v5;
use std::hint::black_box;

/// Differential + known-answer equivalence gate. Returns false on any
/// mismatch (the bench then refuses to report numbers for a wrong
/// kernel).
fn equivalence_check(trials: usize) -> bool {
    // FIPS 81 ECB vector, first block.
    let ks = KeySchedule::new(&DesKey::from_u64(0x0123456789ABCDEF));
    if des::encrypt_block(&ks, 0x4E6F772069732074) != 0x3FA40E8A984D4815 {
        eprintln!("equivalence: fast kernel fails FIPS 81 vector");
        return false;
    }
    let mut rng = Drbg::new(0xE13);
    for i in 0..trials {
        let key = DesKey::from_u64(rng.next_u64());
        let block = rng.next_u64();
        let ks = KeySchedule::new(&key);
        let fast_ct = des::encrypt_block(&ks, block);
        if fast_ct != des::reference::encrypt_block(&ks, block)
            || des::decrypt_block(&ks, fast_ct) != des::reference::decrypt_block(&ks, fast_ct)
        {
            eprintln!("equivalence: fast != reference at trial {i}");
            return false;
        }
    }
    true
}

/// Encrypts `n` chained blocks (each ciphertext feeds the next input, so
/// the work cannot be hoisted) and returns blocks/sec.
fn blocks_per_sec(n: usize, ks: &KeySchedule, enc: impl Fn(&KeySchedule, u64) -> u64) -> f64 {
    let (_, us) = time_us(|| {
        let mut b = 0x0123456789ABCDEFu64;
        for _ in 0..n {
            b = enc(ks, b);
        }
        black_box(b)
    });
    n as f64 / (us / 1e6)
}

fn main() {
    let quick = std::env::var("KDC_THROUGHPUT_QUICK").is_ok();
    let (eq_trials, kernel_blocks, s2k_trials, kdc_auths) =
        if quick { (64, 200_000, 200, 5) } else { (1024, 2_000_000, 5_000, 60) };

    println!("E13: DES kernel and KDC throughput (quick={quick})");

    if !equivalence_check(eq_trials) {
        eprintln!("FAIL: fast kernel is not bit-exact with the reference");
        std::process::exit(1);
    }
    println!("equivalence: fast == reference over {eq_trials} random key/block trials + FIPS 81");

    // 1. Raw kernel.
    let ks = KeySchedule::new(&DesKey::from_u64(0x0123456789ABCDEF));
    // Warm up once so neither side pays first-touch costs inside the
    // timed region.
    blocks_per_sec(kernel_blocks / 10 + 1, &ks, des::encrypt_block);
    let fast_bps = blocks_per_sec(kernel_blocks, &ks, des::encrypt_block);
    let ref_blocks = kernel_blocks / 10 + 1; // reference is ~10-50x slower
    blocks_per_sec(ref_blocks / 10 + 1, &ks, des::reference::encrypt_block);
    let ref_bps = blocks_per_sec(ref_blocks, &ks, des::reference::encrypt_block);
    let speedup = fast_bps / ref_bps;

    // 2. String-to-key (the dictionary-attack inner loop).
    let (_, s2k_us) = time_us(|| {
        for i in 0..s2k_trials {
            black_box(string_to_key_v5(&format!("guess{i}"), "ATHENA.MIT.EDUpat"));
        }
    });
    let s2k_per_sec = s2k_trials as f64 / (s2k_us / 1e6);

    // 3. End-to-end authentications on the simulated campus: fresh AS
    // exchange per iteration (password -> key -> sealed TGT), the KDC
    // reusing its cached TGS schedule across requests.
    let config = ProtocolConfig::v5_draft3();
    let mut env = AttackEnv::new(&config, 0xE13);
    env.login("pat").expect("warm-up login");
    let (_, kdc_us) = time_us(|| {
        for _ in 0..kdc_auths {
            env.login("pat").expect("login");
        }
    });
    let kdc_per_sec = kdc_auths as f64 / (kdc_us / 1e6);

    let mut table = TextTable::new(&["metric", "value"]);
    table.row(&["fast kernel (blocks/s)".into(), format!("{fast_bps:.0}")]);
    table.row(&["reference kernel (blocks/s)".into(), format!("{ref_bps:.0}")]);
    table.row(&["speedup (x)".into(), format!("{speedup:.1}")]);
    table.row(&["string-to-key (trials/s)".into(), format!("{s2k_per_sec:.0}")]);
    table.row(&["KDC AS-exchanges (auths/s)".into(), format!("{kdc_per_sec:.0}")]);
    table.print("DES kernel and KDC throughput");

    let mut json = BenchJson::new("E13");
    json.flag("quick", quick)
        .num("blocks_per_sec_fast", fast_bps, 0)
        .num("blocks_per_sec_reference", ref_bps, 0)
        .num("speedup", speedup, 2)
        .num("s2k_trials_per_sec", s2k_per_sec, 0)
        .num("kdc_auths_per_sec", kdc_per_sec, 0)
        .str_field("equivalence", "pass")
        .metrics(&env.tracer().snapshot());
    json.write("crypto");

    if speedup <= 1.0 {
        eprintln!("FAIL: fast kernel ({fast_bps:.0} blocks/s) is not faster than the reference ({ref_bps:.0} blocks/s)");
        std::process::exit(1);
    }
}
