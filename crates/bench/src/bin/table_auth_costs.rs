//! E5 — the cost of the recommended protocol options, in messages on
//! the wire per operation.
//!
//! "An extra pair of messages must be exchanged each time a ticket is
//! used ... we have added extra messages to the login dialog" — this
//! table counts them.
//!
//! Run: `cargo run --release -p bench --bin table_auth_costs`

use bench::{BenchJson, TextTable};
use kerberos::appserver::connect_app;
use kerberos::client::{login, LoginInput};
use kerberos::testbed::standard_campus;
use kerberos::{AuthStyle, PreauthMode, ProtocolConfig};
use krb_crypto::rng::Drbg;
use simnet::{Network, SimDuration};

/// Counts datagrams on the wire during `f`.
fn count_msgs(net: &mut Network, f: impl FnOnce(&mut Network)) -> usize {
    let before = net.traffic_log().len();
    f(net);
    net.traffic_log().len() - before
}

fn main() {
    println!("E5: wire messages per operation, per protocol option");
    let mut json = BenchJson::new("E5");

    // Login dialog variants.
    let mut table = TextTable::new(&["login variant", "messages", "delta vs v4"]);
    let variants: Vec<(&str, ProtocolConfig)> = vec![
        ("v4 baseline", ProtocolConfig::v4()),
        (
            "+ preauth",
            {
                let mut c = ProtocolConfig::v4();
                c.preauth = PreauthMode::EncTimestamp;
                c
            },
        ),
        (
            "+ handheld authenticator (2-round)",
            {
                let mut c = ProtocolConfig::v4();
                c.hha_login = true;
                c
            },
        ),
        (
            "+ exponential key exchange",
            {
                let mut c = ProtocolConfig::v4();
                c.dh_login = true;
                c
            },
        ),
        ("hardened (all of the above)", ProtocolConfig::hardened()),
    ];
    let mut baseline = 0usize;
    for (label, config) in &variants {
        let mut net = Network::new();
        net.advance(SimDuration::from_secs(1_000_000));
        let realm = standard_campus(&mut net, config, 5);
        let mut rng = Drbg::new(6);
        let n = count_msgs(&mut net, |net| {
            let _ = login(
                net,
                config,
                realm.user_ep("pat"),
                realm.kdc_ep,
                &realm.user("pat"),
                LoginInput::Password("correct-horse-battery"),
                &mut rng,
            )
            .expect("login");
        });
        if baseline == 0 {
            baseline = n;
        }
        json.int(&format!("login_msgs.{label}"), n as u64);
        table.row(&[label.to_string(), n.to_string(), format!("+{}", n.saturating_sub(baseline))]);
    }
    table.print("login (AS exchange) message counts");

    // Application authentication variants.
    let mut table = TextTable::new(&["AP variant", "messages", "delta"]);
    let variants: Vec<(&str, ProtocolConfig)> = vec![
        ("timestamp authenticator (v4)", ProtocolConfig::v4()),
        ("timestamp + mutual (draft3)", ProtocolConfig::v5_draft3()),
        (
            "challenge/response",
            {
                let mut c = ProtocolConfig::v5_draft3();
                c.auth_style = AuthStyle::ChallengeResponse;
                c
            },
        ),
    ];
    let mut baseline = 0usize;
    for (label, config) in &variants {
        let mut net = Network::new();
        net.advance(SimDuration::from_secs(1_000_000));
        let realm = standard_campus(&mut net, config, 7);
        let mut rng = Drbg::new(8);
        let tgt = login(
            &mut net,
            config,
            realm.user_ep("pat"),
            realm.kdc_ep,
            &realm.user("pat"),
            LoginInput::Password("correct-horse-battery"),
            &mut rng,
        )
        .expect("login");
        let st = kerberos::client::get_service_ticket(
            &mut net,
            config,
            realm.user_ep("pat"),
            realm.kdc_ep,
            &tgt,
            &realm.service("echo"),
            kerberos::TgsParams::default(),
            &mut rng,
        )
        .expect("ticket");
        let n = count_msgs(&mut net, |net| {
            let _ = connect_app(net, config, realm.user_ep("pat"), realm.service_ep("echo"), &st, &mut rng)
                .expect("connect");
        });
        if baseline == 0 {
            baseline = n;
        }
        json.int(&format!("ap_msgs.{label}"), n as u64);
        json.metrics(&net.tracer().snapshot());
        table.row(&[label.to_string(), n.to_string(), format!("+{}", n.saturating_sub(baseline))]);
    }
    table.print(
        "application authentication message counts \
         (paper: C/R 'rules out the possibility of authenticated datagrams')",
    );
    json.write("auth_costs");
}
