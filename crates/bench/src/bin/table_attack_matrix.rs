//! E1 — the attack × configuration matrix (the paper's claim set).
//!
//! Run: `cargo run --release -p bench --bin table_attack_matrix`

use attacks::matrix::{expected, render_table, run_matrix};
use bench::BenchJson;

fn main() {
    println!("E1: attack x configuration matrix (Bellovin & Merritt 1991)");
    let reports = run_matrix(0xE1);
    println!("\n{}", render_table(&reports));

    let mut deviations = 0u64;
    for r in &reports {
        let want = expected(r.id, r.config).unwrap_or(false);
        if r.succeeded != want {
            deviations += 1;
            println!("DEVIATION {}/{}: expected {want}, got {}", r.id, r.config, r.succeeded);
        }
    }
    println!("\nevidence (breaches only):");
    for r in reports.iter().filter(|r| r.succeeded) {
        println!("  {:>3} [{:9}] {}", r.id, r.config, r.evidence);
    }
    println!(
        "\n{} cells, {} deviations from the paper's analysis",
        reports.len(),
        deviations
    );

    let mut json = BenchJson::new("E1");
    json.int("cells", reports.len() as u64)
        .int("breaches", reports.iter().filter(|r| r.succeeded).count() as u64)
        .int("deviations", deviations);
    for r in &reports {
        json.flag(&format!("{}.{}", r.id, r.config), r.succeeded);
    }
    json.write("attack_matrix");

    assert_eq!(deviations, 0, "matrix must match the paper");
}
