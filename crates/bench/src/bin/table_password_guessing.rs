//! E2 — password-guessing yield by password class and protocol variant.
//!
//! Reproduces the paper's claims that (a) recorded or harvested AS
//! replies fall to dictionary attack at high rates for weak passwords,
//! (b) the DH layer stops passive guessing, and (c) preauthentication
//! stops active harvesting.
//!
//! Run: `cargo run --release -p bench --bin table_password_guessing`

use attacks::pw_guess::crack_as_reply;
use attacks::workload::{generate_population, guess_list, PasswordClass};
use bench::{time_us, BenchJson, TextTable};
use kerberos::database::KdcDatabase;
use kerberos::kdc::{Kdc, KDC_PORT};
use kerberos::messages::{deframe, AsRep, AsReq, WireKind};
use kerberos::{Principal, ProtocolConfig};
use krb_crypto::rng::{Drbg, RandomSource};
use simnet::{Addr, Endpoint, Host, Network, SimDuration};

const POPULATION: usize = 60;

fn main() {
    println!("E2: password-guessing yield ({POPULATION}-user population, 1990-style cracker)");
    let mix = [
        (PasswordClass::DictionaryWord, 0.35),
        (PasswordClass::MutatedWord, 0.40),
        (PasswordClass::Random, 0.25),
    ];
    let population = generate_population(POPULATION, &mix, 0xE2);
    let guesses = guess_list();
    println!("dictionary+mutations: {} guesses", guesses.len());

    let mut table = TextTable::new(&[
        "config", "harvest", "dict-cracked", "mutated-cracked", "random-cracked", "total", "us/guess",
    ]);

    let mut json = BenchJson::new("E2");
    json.int("population", POPULATION as u64).int("guesses", guesses.len() as u64);
    for config in ProtocolConfig::presets() {
        // Stand up a KDC with the whole population registered.
        let mut net = Network::new();
        net.advance(SimDuration::from_secs(1_000_000));
        let mut db = KdcDatabase::new("ATHENA");
        let mut rng = Drbg::new(1);
        db.add_tgs(rng.gen_des_key());
        for (user, pw, _) in &population {
            db.add_user(user, pw);
        }
        let kdc_addr = Addr::new(10, 9, 0, 250);
        let mut kdc_host = Host::new("kerberos", vec![kdc_addr]);
        kdc_host.bind(KDC_PORT, Box::new(Kdc::new(config.clone(), db, 2)));
        net.add_host(kdc_host);
        net.add_host(Host::new("attacker", vec![Addr::new(10, 9, 0, 1)]));
        let kdc_ep = Endpoint::new(kdc_addr, KDC_PORT);
        let attacker_ep = Endpoint::new(Addr::new(10, 9, 0, 1), 1024);

        // Harvest phase (active, A5-style): request an AS reply per
        // user.
        let mut harvested = Vec::new();
        for (user, _, class) in &population {
            let client = Principal::user(user, "ATHENA");
            let req = AsReq {
                client: client.clone(),
                service: Principal::tgs("ATHENA"),
                nonce: 1,
                lifetime_us: config.ticket_lifetime_us,
                addr: attacker_ep.addr.0,
                options: kerberos::flags::KdcOptions::empty(),
                padata: vec![],
            };
            let Ok(reply) = net.rpc(attacker_ep, kdc_ep, req.encode(config.codec)) else { continue };
            if let Ok((WireKind::AsRep, _)) = deframe(&reply) {
                if let Ok(rep) = AsRep::decode(config.codec, &reply) {
                    if rep.dh_public.is_none() {
                        harvested.push((client, rep.enc_part, rep.challenge_r, *class));
                    }
                }
            }
        }

        // Cracking phase.
        let mut cracked = [0usize; 3];
        let mut totals = [0usize; 3];
        for (_, _, class) in &population {
            totals[class_idx(*class)] += 1;
        }
        let mut guess_time_total = 0f64;
        let mut guess_count = 0usize;
        for (client, enc, r, class) in &harvested {
            let (found, us) = time_us(|| crack_as_reply(&config, client, enc, *r, &guesses));
            guess_time_total += us;
            guess_count += guesses.len().min(3000);
            if found.is_some() {
                cracked[class_idx(*class)] += 1;
            }
        }
        let us_per_guess = if guess_count > 0 { guess_time_total / guess_count as f64 } else { 0.0 };

        json.int(&format!("harvested.{}", config.name), harvested.len() as u64);
        json.int(&format!("cracked.{}", config.name), cracked.iter().sum::<usize>() as u64);
        json.metrics(&net.tracer().snapshot());
        table.row(&[
            config.name.into(),
            format!("{}/{}", harvested.len(), population.len()),
            frac(cracked[0], totals[0]),
            frac(cracked[1], totals[1]),
            frac(cracked[2], totals[2]),
            frac(cracked.iter().sum(), POPULATION),
            format!("{us_per_guess:.2}"),
        ]);
    }
    table.print("E2: crack yield by class (paper: weak passwords fall; DH/preauth stop the harvest)");
    json.write("password_guessing");
}

fn class_idx(c: PasswordClass) -> usize {
    match c {
        PasswordClass::DictionaryWord => 0,
        PasswordClass::MutatedWord => 1,
        PasswordClass::Random => 2,
    }
}

fn frac(n: usize, d: usize) -> String {
    if d == 0 {
        "-".into()
    } else {
        format!("{n}/{d} ({:.0}%)", 100.0 * n as f64 / d as f64)
    }
}
