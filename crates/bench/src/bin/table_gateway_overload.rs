//! E17 — gateway overload: goodput, shedding, and latency for the four
//! seeded abuse scenarios against the admission-controlled KDC
//! front-end.
//!
//! Run: `cargo run --release -p bench --bin table_gateway_overload`

use attacks::overload::{run_overload, OverloadConfig, Scenario};
use bench::{BenchJson, TextTable};
use kerberos::ProtocolConfig;

fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

fn main() {
    println!("E17: KDC gateway under overload and abuse");

    let config = ProtocolConfig::hardened();
    let o = OverloadConfig::standard(0xE17);
    let mut json = BenchJson::new("E17");

    let mut table = TextTable::new(&[
        "scenario",
        "legit ok",
        "abuse adm",
        "shed rate",
        "p99 login",
        "restarts",
    ]);
    for scenario in Scenario::all() {
        let r = run_overload(&config, &o, scenario);
        let label = scenario.label().replace('-', "_");
        json.int(&format!("{label}.legit_ok"), u64::from(r.legit_ok))
            .int(&format!("{label}.legit_total"), u64::from(r.legit_total))
            .int(&format!("{label}.abuse_sent"), u64::from(r.abuse_sent))
            .int(&format!("{label}.abuse_admitted"), r.abuse_admitted)
            .int(&format!("{label}.admitted"), r.admitted)
            .int(&format!("{label}.shed"), r.shed)
            .int(&format!("{label}.throttled"), r.throttled)
            .int(&format!("{label}.penalized"), r.penalized)
            .int(&format!("{label}.restarts"), r.restarts)
            .int(&format!("{label}.p99_latency_us"), r.p99_latency_us())
            .int(
                &format!("{label}.shed_rate_permille"),
                (r.shed_rate() * 1000.0) as u64,
            )
            .int(
                &format!("{label}.abuse_admission_permille"),
                (r.abuse_admission_ratio() * 1000.0) as u64,
            )
            .int(
                &format!("{label}.legit_success_permille"),
                (r.legit_success_ratio() * 1000.0) as u64,
            );
        table.row(&[
            r.scenario.to_string(),
            format!("{}/{}", r.legit_ok, r.legit_total),
            format!("{}/{}", r.abuse_admitted, r.abuse_sent),
            pct(r.shed_rate()),
            format!("{:.1}ms", r.p99_latency_us() as f64 / 1000.0),
            r.restarts.to_string(),
        ]);
    }
    table.print(
        "hardened config, standard small-campus gateway (40 req/s global, \
         4 req/s per source): legitimate goodput, abusive traffic admitted \
         past the gateway, refusal rate, and p99 sim-time login latency",
    );

    json.write("gateway");

    println!(
        "\nthe paper's E2 countermeasure — limit the request rate from one \
         source — is necessary but not sufficient: the token bucket caps the \
         storm's goodput, the per-principal penalty window is what actually \
         stops offline-guessing material from leaving the KDC, and bounded \
         queues with typed SERVER_BUSY turn overload into client backoff \
         rather than timeout storms. The crash-restart row prices volatile \
         admission state: one dark round, then full recovery."
    );
}
