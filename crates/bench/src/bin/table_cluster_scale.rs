//! E18: million-principal sharded KDC cluster with batched AS/TGS
//! processing.
//!
//! Three phases:
//!
//! - **Provision** (deterministic): bulk-provisions the principal
//!   population into a 4-shard [`ShardedDatabase`] via the cached
//!   string-to-key path and reports per-shard occupancy and load skew
//!   (max/mean, thousandths).
//! - **Throughput** (wall clock, stdout only): pre-builds a seeded
//!   mixed AS/TGS request stream, drives each shard's [`Kdc`] through
//!   [`Kdc::handle_batch`] off-network, and compares the cluster
//!   aggregate (sum of independent per-shard rates — shards are
//!   separate hosts in deployment) against TWO single-KDC baselines:
//!   the same request stream through one sequential full-database KDC,
//!   and E13's full-login-loop methodology. Gate: aggregate >= 2x the
//!   better baseline, else exit(1).
//! - **Cluster sim** (deterministic, feeds `BENCH_cluster.json`): a
//!   small same-seed simnet deployment — shard primaries + replicas
//!   behind the shard-aware gateway — runs a mixed AS/TGS/AP workload
//!   while shard 0's primary crash-restarts mid-run. Outcome counts,
//!   gateway failovers, and the metrics snapshot land in the JSON; the
//!   phase runs twice and the report gates on byte-identity.
//!
//! Wall-clock rates never enter the JSON, so two same-seed runs write
//! byte-identical `BENCH_cluster.json`.

use std::collections::BTreeMap;

use bench::{time_us, BenchJson, TextTable};

use attacks::env::AttackEnv;
use kerberos::appserver::connect_app;
use kerberos::client::{login_at, LoginInput, TgsParams};
use kerberos::encoding::MsgType;
use kerberos::flags::KdcOptions;
use kerberos::get_service_ticket_at;
use kerberos::messages::{deframe, AsRep, AsReq, EncKdcRepPart, TgsReq, WireKind};
use kerberos::testbed::{deploy_cluster, CLIENT_PORT};
use kerberos::{
    bulk_password, shard_for, Authenticator, Kdc, Principal, ProtocolConfig, ShardedDatabase,
};
use krb_crypto::checksum;
use krb_crypto::rng::{Drbg, RandomSource};
use krb_crypto::s2k;
use krb_gateway::{GatewayConfig, PenaltyConfig, ShedPolicy};
use krb_trace::MetricsSnapshot;
use simnet::{
    Addr, Endpoint, FaultPlan, Network, Service, ServiceCtx, SimDuration, SimTime,
};

const SHARDS: usize = 4;
const SEED: u64 = 0xE18;
const REALM: &str = "ATHENA.MIT.EDU";
/// Fixed "now" for the off-network batched phase: KDC and request
/// timestamps agree, well inside clock skew.
const NOW_US: u64 = 3_600_000_000;

/// Builds the provisioned sharded database (TGS + app service keys
/// drawn from a seed-fixed DRBG so every copy built from the same seed
/// agrees).
fn provision(config: &ProtocolConfig, shards: usize, principals: usize) -> (ShardedDatabase, Principal) {
    let mut rng = Drbg::new(SEED);
    let mut db = ShardedDatabase::new(REALM, shards);
    db.add_tgs(rng.gen_des_key());
    let files = db.add_service("files", "fileshost", rng.gen_des_key());
    db.bulk_add_users("u", principals);
    let _ = config;
    (db, files)
}

/// The deterministic per-user source endpoint AS requests are stamped
/// with (tickets are address-bound; the TGS leg must match).
fn user_ep(idx: u64) -> Endpoint {
    Endpoint::new(
        Addr::new(10, 9, ((idx >> 8) % 250) as u8, (idx % 250 + 1) as u8),
        CLIENT_PORT,
    )
}

fn build_as_req(config: &ProtocolConfig, client: &Principal, ep: Endpoint, nonce: u64) -> Vec<u8> {
    AsReq {
        client: client.clone(),
        service: Principal::tgs(REALM),
        nonce,
        lifetime_us: config.ticket_lifetime_us,
        addr: ep.addr.0,
        options: KdcOptions::empty().with(KdcOptions::FORWARDABLE).with(KdcOptions::RENEWABLE),
        padata: Vec::new(),
    }
    .encode(config.codec)
}

/// Runs an untimed AS exchange against `kdc` and builds a TGS request
/// for `service` from the resulting TGT — the client-side half of the
/// mixed workload, kept out of the timed sections.
fn build_tgs_req(
    config: &ProtocolConfig,
    kdc: &mut Kdc,
    ctx: &mut ServiceCtx,
    client: &Principal,
    ep: Endpoint,
    service: &Principal,
    rng: &mut dyn RandomSource,
) -> Vec<u8> {
    let as_req = build_as_req(config, client, ep, rng.next_u64());
    let reply = kdc.handle(ctx, &as_req, ep).expect("AS reply");
    let rep = AsRep::decode(config.codec, &reply).expect("AS reply decodes");
    let kc = s2k::string_to_key_v5(&bulk_password(&client.name), &client.salt());
    let part_bytes = config.ticket_layer.open(&kc, 0, &rep.enc_part).expect("enc part opens");
    let part = EncKdcRepPart::decode(config.codec, MsgType::EncAsRepPart, &part_bytes)
        .expect("rep part decodes");

    let mut req = TgsReq {
        tgt: part.ticket,
        authenticator: Vec::new(),
        service: service.clone(),
        options: KdcOptions::empty(),
        nonce: rng.next_u64(),
        lifetime_us: config.ticket_lifetime_us,
        additional_ticket: None,
        forward_addr: None,
        authz_data: Vec::new(),
    };
    let key_opt = config.checksum.is_keyed().then_some(&part.session_key);
    let cksum = checksum::compute(config.checksum, key_opt, &req.checksum_body())
        .expect("checksum computes");
    let auth = Authenticator {
        client: client.clone(),
        addr: ep.addr.0,
        timestamp: NOW_US,
        cksum: Some(cksum),
        service_binding: config.service_binding.then(|| service.clone()),
        subkey: None,
        seq_init: None,
    };
    req.authenticator = auth
        .seal(config.codec, config.ticket_layer, &part.session_key, rng)
        .expect("authenticator seals");
    req.encode(config.codec)
}

/// Counts reply kinds: `(ok, errors)`.
fn tally(replies: &[Vec<u8>]) -> (u64, u64) {
    let mut ok = 0;
    let mut errors = 0;
    for r in replies {
        match deframe(r) {
            Ok((WireKind::AsRep | WireKind::TgsRep, _)) => ok += 1,
            _ => errors += 1,
        }
    }
    (ok, errors)
}

/// Outcome counts from one deterministic cluster-sim run.
#[derive(Default)]
struct WorkloadOutcome {
    logins_ok: u64,
    logins_failed: u64,
    tgs_ok: u64,
    ap_ok: u64,
    failovers: u64,
    snapshot: MetricsSnapshot,
}

/// A gateway sized so admission control never sheds this workload: the
/// phase measures shard failover, not overload shedding (E17 covers
/// that).
fn open_gateway() -> GatewayConfig {
    GatewayConfig {
        global_rate_per_sec: 100_000,
        global_burst: 10_000,
        per_source_rate_per_sec: 10_000,
        per_source_burst: 1_000,
        queue_bound: 512,
        queue_service_us: 100,
        shed_policy: ShedPolicy::ShedNewest,
        penalty: PenaltyConfig::standard(),
    }
}

/// Phase C: deploys the cluster on a fresh simnet, crashes shard 0's
/// primary mid-workload, and drives a seeded mixed AS/TGS/AP workload
/// through the gateway. Fully deterministic for a given seed.
fn run_cluster_sim(config: &ProtocolConfig, users: usize, rounds: usize, seed: u64) -> WorkloadOutcome {
    let mut net = Network::new();
    let cluster =
        deploy_cluster(&mut net, REALM, 1, config, SHARDS, 1, users, 8, &["files"], open_gateway(), seed);

    // Shard 0's primary dies mid-workload and restarts later; the
    // gateway's per-shard pin should carry its traffic to the replica.
    let crash_addr = cluster.shard_primary_eps[0].addr;
    net.set_fault_plan(
        FaultPlan::new(seed).crash(crash_addr, SimTime(2_500_000), SimTime(5_500_000)),
    );

    let mut rng = Drbg::new(seed ^ 0x776f_726b);
    let mut out = WorkloadOutcome::default();
    let contact = cluster.contact_eps();
    let files = cluster.service_principals["files"].clone();
    let files_ep = cluster.service_eps["files"];
    net.advance(SimDuration::from_secs(1));

    for round in 0..rounds {
        let idx = rng.next_u64() % users as u64;
        let name = format!("u{idx}");
        let client = Principal::user(&name, REALM);
        let pw = bulk_password(&name);
        let ws = cluster.client_eps[round % cluster.client_eps.len()];

        match login_at(&mut net, config, ws, &contact, &client, LoginInput::Password(&pw), &mut rng)
        {
            Ok(tgt) => {
                out.logins_ok += 1;
                if let Ok(cred) = get_service_ticket_at(
                    &mut net,
                    config,
                    ws,
                    &contact,
                    &tgt,
                    &files,
                    TgsParams::default(),
                    &mut rng,
                ) {
                    out.tgs_ok += 1;
                    if let Ok(mut conn) = connect_app(&mut net, config, ws, files_ep, &cred, &mut rng)
                    {
                        if conn.request(&mut net, b"GET motd", &mut rng).is_ok() {
                            out.ap_ok += 1;
                        }
                    }
                }
            }
            Err(_) => out.logins_failed += 1,
        }
        net.advance(SimDuration::from_millis(250));
    }

    out.snapshot = net.tracer().snapshot();
    out.failovers = out
        .snapshot
        .iter()
        .filter(|(k, _)| k.starts_with("gateway.shard_failovers{"))
        .map(|(_, v)| *v)
        .sum();
    out
}

fn fmt_rate(v: f64) -> String {
    format!("{v:.0}")
}

fn main() {
    let quick = std::env::var("CLUSTER_SCALE_QUICK").is_ok();
    // (principals, AS reqs total, TGS reqs per shard, E13 logins,
    //  sim users, sim rounds)
    let (principals, as_total, tgs_per_shard, e13_logins, sim_users, sim_rounds) =
        if quick { (20_000, 8_000, 250, 100, 64, 24) } else { (1_000_000, 100_000, 2_000, 2_000, 96, 48) };
    let config = ProtocolConfig::v5_draft3();

    println!("E18: sharded KDC cluster scale (quick={quick})");
    println!();

    // ---- Phase A: provision the sharded population -------------------
    let ((db, files), prov_us) = time_us(|| provision(&config, SHARDS, principals));
    let occupancy = db.occupancy();
    let skew_millis = db.skew_millis();
    let prov_rate = principals as f64 / (prov_us / 1e6);

    // ---- Phase B: batched cluster throughput vs single-KDC baselines -
    let mut kdcs: Vec<Kdc> = db
        .into_shards()
        .into_iter()
        .enumerate()
        .map(|(i, d)| Kdc::new(config.clone(), d, SEED ^ 0x4b44_4331 ^ i as u64))
        .collect();

    // Pre-build the seeded mixed request stream, grouped by owning
    // shard. Client-side work (encoding, key derivation, TGT
    // acquisition for the TGS legs) stays out of the timed sections.
    let mut batches: Vec<Vec<(Vec<u8>, Endpoint)>> = vec![Vec::new(); SHARDS];
    let mut wl = Drbg::new(SEED ^ 0x6261_7463);
    for _ in 0..as_total {
        let idx = wl.next_u64() % principals as u64;
        let client = Principal::user(&format!("u{idx}"), REALM);
        let ep = user_ep(idx);
        let req = build_as_req(&config, &client, ep, wl.next_u64());
        batches[shard_for(&client, SHARDS)].push((req, ep));
    }
    let mut ctx = ServiceCtx::detached(SimTime(NOW_US), "bench", Addr::new(10, 9, 0, 250), true);
    for shard in 0..SHARDS {
        let mut built = 0;
        let mut probe = 0u64;
        while built < tgs_per_shard {
            let idx = wl.next_u64() % principals as u64;
            probe += 1;
            assert!(probe < 64 * tgs_per_shard as u64 + 64, "shard {shard} starved of users");
            let client = Principal::user(&format!("u{idx}"), REALM);
            if shard_for(&client, SHARDS) != shard {
                continue;
            }
            let ep = user_ep(idx);
            let req = build_tgs_req(&config, &mut kdcs[shard], &mut ctx, &client, ep, &files, &mut wl);
            batches[shard].push((req, ep));
            built += 1;
        }
    }

    // Timed: each shard drains its batch through the amortized path.
    // Shards are independent hosts in deployment, so the cluster
    // aggregate is the sum of per-shard rates.
    let mut per_shard_rates = Vec::with_capacity(SHARDS);
    let mut batch_requests = 0u64;
    let mut batch_ok = 0u64;
    let mut batch_errors = 0u64;
    for (shard, kdc) in kdcs.iter_mut().enumerate() {
        let batch = &batches[shard];
        let (replies, us) = time_us(|| kdc.handle_batch(&mut ctx, batch));
        let (ok, errors) = tally(&replies);
        batch_requests += batch.len() as u64;
        batch_ok += ok;
        batch_errors += errors;
        per_shard_rates.push(batch.len() as f64 / (us / 1e6));
    }
    let cluster_agg: f64 = per_shard_rates.iter().sum();

    // Baseline 1: the same request stream through ONE sequential KDC
    // holding the full database (same seed-fixed keys, so the shard
    // KDCs' TGTs decrypt here too).
    let (mono_db, _) = provision(&config, 1, principals);
    let mut mono = Kdc::new(config.clone(), mono_db.into_shards().remove(0), SEED ^ 0x4d4f_4e4f);
    let all: Vec<&(Vec<u8>, Endpoint)> = batches.iter().flatten().collect();
    let (mono_ok, mono_us) = time_us(|| {
        let mut ok = 0u64;
        for (req, ep) in &all {
            if let Some(reply) = mono.handle(&mut ctx, req, *ep) {
                if matches!(deframe(&reply), Ok((WireKind::AsRep | WireKind::TgsRep, _))) {
                    ok += 1;
                }
            }
        }
        ok
    });
    let mono_rate = all.len() as f64 / (mono_us / 1e6);

    // Baseline 2: E13's methodology — full client login loop against a
    // single campus KDC.
    let mut env = AttackEnv::new(&config, 0xE13);
    env.login("pat").expect("warm-up login");
    let (_, e13_us) = time_us(|| {
        for _ in 0..e13_logins {
            env.login("pat").expect("login");
        }
    });
    let e13_rate = e13_logins as f64 / (e13_us / 1e6);

    // ---- Phase C: deterministic cluster sim with mid-workload crash --
    let wl_a = run_cluster_sim(&config, sim_users, sim_rounds, SEED ^ 0x5349_4d31);
    let wl_b = run_cluster_sim(&config, sim_users, sim_rounds, SEED ^ 0x5349_4d31);
    let deterministic = wl_a.snapshot == wl_b.snapshot
        && wl_a.logins_ok == wl_b.logins_ok
        && wl_a.tgs_ok == wl_b.tgs_ok
        && wl_a.ap_ok == wl_b.ap_ok
        && wl_a.failovers == wl_b.failovers;

    // ---- Report ------------------------------------------------------
    let mut t = TextTable::new(&["metric", "value"]);
    t.row(&["principals".into(), principals.to_string()]);
    t.row(&["shards".into(), SHARDS.to_string()]);
    t.row(&["provision_rate_per_sec".into(), fmt_rate(prov_rate)]);
    for (i, occ) in occupancy.iter().enumerate() {
        t.row(&[format!("occupancy_shard_{i}"), occ.to_string()]);
    }
    t.row(&["load_skew_millis".into(), skew_millis.to_string()]);
    for (i, r) in per_shard_rates.iter().enumerate() {
        t.row(&[format!("shard_{i}_auths_per_sec"), fmt_rate(*r)]);
    }
    t.row(&["cluster_agg_auths_per_sec".into(), fmt_rate(cluster_agg)]);
    t.row(&["mono_seq_auths_per_sec".into(), fmt_rate(mono_rate)]);
    t.row(&["e13_login_auths_per_sec".into(), fmt_rate(e13_rate)]);
    t.row(&["batch_requests".into(), batch_requests.to_string()]);
    t.row(&["batch_errors".into(), batch_errors.to_string()]);
    t.row(&["sim_logins_ok".into(), wl_a.logins_ok.to_string()]);
    t.row(&["sim_logins_failed".into(), wl_a.logins_failed.to_string()]);
    t.row(&["sim_tgs_ok".into(), wl_a.tgs_ok.to_string()]);
    t.row(&["sim_ap_ok".into(), wl_a.ap_ok.to_string()]);
    t.row(&["sim_gateway_failovers".into(), wl_a.failovers.to_string()]);
    t.print("E18: cluster scale");

    // ---- Gates -------------------------------------------------------
    let baseline = mono_rate.max(e13_rate);
    let mut failed = Vec::new();
    if batch_errors > 0 || batch_ok != batch_requests {
        failed.push(format!("batched replies: {batch_ok}/{batch_requests} ok, {batch_errors} errors"));
    }
    if mono_ok != batch_requests {
        failed.push(format!("mono baseline replies: {mono_ok}/{batch_requests} ok"));
    }
    if cluster_agg < 2.0 * baseline {
        failed.push(format!(
            "cluster aggregate {} < 2x single-KDC baseline {}",
            fmt_rate(cluster_agg),
            fmt_rate(baseline)
        ));
    }
    if wl_a.logins_ok == 0 || wl_a.failovers == 0 {
        failed.push(format!(
            "cluster sim must survive the crash: {} logins ok, {} failovers",
            wl_a.logins_ok, wl_a.failovers
        ));
    }
    if !deterministic {
        failed.push("phase C diverged between two same-seed runs".into());
    }
    if !failed.is_empty() {
        for f in &failed {
            println!("E18 GATE FAILED: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "gate: cluster {} >= 2x baseline {} auths/s; failover survived; deterministic",
        fmt_rate(cluster_agg),
        fmt_rate(baseline)
    );

    // ---- BENCH_cluster.json: deterministic fields only ---------------
    let mut occ_map = BTreeMap::new();
    for (i, occ) in occupancy.iter().enumerate() {
        occ_map.insert(format!("occupancy_shard_{i}"), *occ as u64);
    }
    let mut json = BenchJson::new("E18");
    json.flag("quick", quick)
        .int("principals", principals as u64)
        .int("shards", SHARDS as u64)
        .int("load_skew_millis", skew_millis)
        .int("batch_requests", batch_requests)
        .int("batch_errors", batch_errors)
        .int("sim_rounds", sim_rounds as u64)
        .int("sim_logins_ok", wl_a.logins_ok)
        .int("sim_logins_failed", wl_a.logins_failed)
        .int("sim_tgs_ok", wl_a.tgs_ok)
        .int("sim_ap_ok", wl_a.ap_ok)
        .int("sim_gateway_failovers", wl_a.failovers)
        .flag("deterministic_sim", deterministic)
        .str_field("speedup_gate", "pass");
    for (k, v) in &occ_map {
        json.int(k, *v);
    }
    json.metrics(&wl_a.snapshot);
    json.write("cluster");
}
