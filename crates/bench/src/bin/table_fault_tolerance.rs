//! E12 — fault tolerance: authentication liveness vs. environment fault
//! rate, with and without slave-KDC replicas, plus what the faults cost
//! in retries.
//!
//! Run: `cargo run --release -p bench --bin table_fault_tolerance`

use attacks::chaos::{run_soak, SoakConfig};
use bench::{BenchJson, TextTable};
use kerberos::ProtocolConfig;
use simnet::LinkFaults;

fn soak_at(rate: f64, replicas: usize, crash: bool, seed: u64) -> SoakConfig {
    SoakConfig {
        seed,
        rounds: 6,
        faults: LinkFaults { drop: rate, duplicate: rate, reorder: rate, ..LinkFaults::none() },
        replicas,
        crash_master: crash,
    }
}

fn main() {
    println!("E12: authentication liveness under environment faults");

    // Part 1: flows completed vs fault rate, per preset (one replica, a
    // master crash window mid-campaign — the standard soak shape).
    let mut json = BenchJson::new("E12");
    let rates = [0.0f64, 0.05, 0.10, 0.20, 0.30];
    let mut table = TextTable::new(&["config", "0%", "5%", "10%", "20%", "30%"]);
    for config in ProtocolConfig::presets() {
        let mut cells = vec![config.name.to_string()];
        for rate in rates {
            let r = run_soak(&config, &soak_at(rate, 1, true, 0xE12));
            json.int(
                &format!("auth_ok.{}.{}pct", config.name, (rate * 100.0) as u64),
                u64::from(r.auth_ok),
            );
            cells.push(format!("{}/{}", r.auth_ok, r.auth_total));
        }
        table.row(&cells);
    }
    table.print(
        "honest flows completed vs per-link fault rate \
         (drop = duplicate = reorder, user<->KDC links, master crash mid-soak)",
    );

    // Part 2: replicas are what turn a KDC outage from an authentication
    // outage into a retry.
    let mut table = TextTable::new(&["replicas", "flows ok", "host-down hits", "restarts"]);
    for replicas in [0usize, 1, 2] {
        let r = run_soak(&ProtocolConfig::hardened(), &soak_at(0.10, replicas, true, 0xE12));
        json.int(&format!("auth_ok.hardened.replicas{replicas}"), u64::from(r.auth_ok));
        table.row(&[
            replicas.to_string(),
            format!("{}/{}", r.auth_ok, r.auth_total),
            r.stats.host_down.to_string(),
            r.stats.restarts.to_string(),
        ]);
    }
    table.print(
        "hardened, 10% faults, master crashed for the middle third: \
         replica count vs liveness (the paper's slave KDCs, recommendation-free \
         but operationally essential)",
    );

    // Part 3: what the environment actually did at the standard rate.
    let r = run_soak(&ProtocolConfig::hardened(), &soak_at(0.10, 1, true, 0xE12));
    let s = &r.stats;
    let mut table = TextTable::new(&["dropped", "duplicated", "reordered", "host-down", "restarts"]);
    table.row(&[
        s.dropped.to_string(),
        s.duplicated.to_string(),
        s.reordered.to_string(),
        s.host_down.to_string(),
        s.restarts.to_string(),
    ]);
    table.print("fault-layer activity during the standard hardened soak (seed 0xE12)");
    json.int("faults.dropped", s.dropped)
        .int("faults.duplicated", s.duplicated)
        .int("faults.reordered", s.reordered)
        .int("faults.host_down", s.host_down)
        .int("faults.restarts", s.restarts);
    json.write("fault_tolerance");

    println!(
        "\nliveness is bounded, not free: each flow retries with exponential backoff \
         and walks the KDC list (master + replicas), so a crashed master costs \
         seconds of simulated backoff — never a failed login, and never a changed \
         security verdict (see the E1 matrix under faults in chaos_soak.rs)."
    );
}
