//! E20 — trace-driven intrusion detection scored as a classifier: the
//! full E1 attack matrix, the stealth-axis variants, and fault-heavy
//! benign workloads run through the default krb-ids rule set.
//!
//! Run: `cargo run --release -p bench --bin table_ids_matrix`
//!
//! Gates (checked by `scripts/verify.sh` E20):
//! * every detector pair in the designed ground truth fires, with 100%
//!   detection on the loud variants (the ≥90% bar);
//! * zero alerts on the zero-fault benign workload (false-positive
//!   gate);
//! * byte-identical `BENCH_ids.json` across same-seed double runs.

use attacks::chaos::{run_soak, SoakConfig};
use attacks::env::with_env_hook;
use attacks::overload::{run_overload, OverloadConfig, Scenario};
use attacks::stealth::{run_benign, variants, Profile, GROUND_TRUTH};
use attacks::{all_attacks, AttackReport};
use bench::{BenchJson, TextTable};
use kerberos::ProtocolConfig;
use krb_ids::{default_engine, Engine, DETECTOR_LABELS};
use krb_trace::Tracer;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

const SEED: u64 = 0xE20;

/// What the attached engines saw across one observed run.
#[derive(Clone, Debug, Default)]
struct Findings {
    fired: BTreeSet<&'static str>,
    by_detector: BTreeMap<&'static str, u64>,
    alerts: u64,
    events: u64,
}

impl Findings {
    /// `replay+crash-reuse`, or `-` when quiet.
    fn summary(&self) -> String {
        if self.fired.is_empty() {
            "-".into()
        } else {
            self.fired.iter().copied().collect::<Vec<_>>().join("+")
        }
    }
}

/// Runs `f` with a fresh default engine attached (via the env hook) to
/// every environment it builds, then polls them all and merges what
/// they saw.
fn observe<R>(f: impl FnOnce() -> R) -> (R, Findings) {
    let engines: Rc<RefCell<Vec<Engine>>> = Rc::new(RefCell::new(Vec::new()));
    let hook: Rc<dyn Fn(&Tracer)> = {
        let engines = Rc::clone(&engines);
        Rc::new(move |t: &Tracer| {
            let mut eng = default_engine().expect("default rules compile");
            eng.attach(t);
            engines.borrow_mut().push(eng);
        })
    };
    let out = with_env_hook(hook, f);
    let mut findings = Findings::default();
    for eng in engines.borrow_mut().iter_mut() {
        eng.poll();
        findings.events += eng.events_seen();
        for a in eng.alerts() {
            findings.alerts += 1;
            *findings.by_detector.entry(a.detector).or_default() += 1;
            findings.fired.insert(a.detector);
        }
    }
    (out, findings)
}

/// One ✓/· row of the attack × detector matrix.
fn matrix_cells(fired: &BTreeSet<&'static str>) -> Vec<String> {
    DETECTOR_LABELS
        .iter()
        .map(|d| if fired.contains(d) { "Y".to_string() } else { ".".to_string() })
        .collect()
}

fn main() {
    println!("E20: online intrusion detection over the attack matrix");
    let mut json = BenchJson::new("E20");
    let presets = ProtocolConfig::presets();

    // === The E1 baseline matrix, observed ===
    // Every attack on every preset; detection is scored on each
    // attack's primary vulnerable configuration (the ground truth row).
    let mut baseline: BTreeMap<(&'static str, &'static str), (AttackReport, Findings)> =
        BTreeMap::new();
    for attack in all_attacks() {
        for config in &presets {
            let (report, found) = observe(|| attack.run(config, SEED));
            json.str_field(
                &format!("{}.{}.detectors", attack.id().to_lowercase(), config.name),
                &found.summary(),
            );
            baseline.insert((attack.id(), config.name), (report, found));
        }
    }

    let mut headers = vec!["attack", "outcome"];
    headers.extend(DETECTOR_LABELS);
    headers.push("expected");
    let mut table = TextTable::new(&headers);
    let mut expected_pairs = 0u64;
    let mut detected_pairs = 0u64;
    for row in GROUND_TRUTH {
        let (report, found) =
            baseline.get(&(row.attack, row.config)).expect("ground truth names a run cell");
        for d in row.expected {
            expected_pairs += 1;
            if found.fired.contains(d) {
                detected_pairs += 1;
            }
        }
        let mut cells = vec![
            format!("{} [{}]", row.attack, row.config),
            if report.succeeded { "breach".into() } else { "defended".into() },
        ];
        cells.extend(matrix_cells(&found.fired));
        cells.push(if row.expected.is_empty() { "(invisible)".into() } else { row.expected.join("+") });
        table.row(&cells);
    }
    table.print(
        "E1 attacks on their primary vulnerable configuration, observed by the \
         default rule set: Y = detector fired. Empty expectations are attacks a \
         wire sniffer cannot see (passive wiretaps, local trojans, in-flight \
         tampering, off-wire abuse) — see GROUND_TRUTH for the rationale rows",
    );

    // === The stealth axis ===
    let mut vtable = TextTable::new(&["variant", "profile", "attack", "detected", "expected", "verdict"]);
    let mut loud_expected = 0u64;
    let mut loud_detected = 0u64;
    for v in variants() {
        let (out, found) = observe(|| v.run(SEED));
        let expected: BTreeSet<&'static str> = v.expected.iter().copied().collect();
        let caught = !found.fired.is_empty();
        let verdict = match (v.expected.is_empty(), caught) {
            (false, _) if expected.iter().all(|d| found.fired.contains(d)) => "caught",
            (false, _) => "MISSED",
            (true, false) => "evaded",
            (true, true) => "caught anyway",
        };
        if v.profile == Profile::Loud {
            loud_expected += v.expected.len() as u64;
            loud_detected += v.expected.iter().filter(|d| found.fired.contains(*d)).count() as u64;
        }
        json.str_field(&format!("variant.{}.detectors", v.name), &found.summary())
            .flag(&format!("variant.{}.attack_succeeded", v.name), out.succeeded)
            .str_field(&format!("variant.{}.verdict", v.name), verdict);
        vtable.row(&[
            v.name.to_string(),
            v.profile.name().to_string(),
            if out.succeeded { "breach".into() } else { "failed".into() },
            found.summary(),
            if v.expected.is_empty() { "(evades)".into() } else { v.expected.join("+") },
            verdict.to_string(),
        ]);
    }
    vtable.print(
        "the same attacks re-staged loud and stealthy: the slow ticket harvest \
         evades the volume rules (a legitimate-looking login per idle period), \
         and waiting out the crash-reuse window stales the authenticator — \
         stealth is purchased with the attack itself",
    );

    // === False positives: the zero-fault benign workload ===
    let mut fp_alerts = 0u64;
    let mut fp_events = 0u64;
    let mut wtable = TextTable::new(&["workload", "config", "flows ok", "events", "alerts", "detectors"]);
    for config in &presets {
        let ((ok, total), found) = observe(|| run_benign(config, SEED));
        fp_alerts += found.alerts;
        fp_events += found.events;
        json.int(&format!("benign.{}.alerts", config.name), found.alerts)
            .int(&format!("benign.{}.events", config.name), found.events);
        wtable.row(&[
            "zero-fault benign".into(),
            config.name.to_string(),
            format!("{ok}/{total}"),
            found.events.to_string(),
            found.alerts.to_string(),
            found.summary(),
        ]);
    }

    // === The fault-heavy workloads: honest cost, not gated ===
    // The detectors are blind to fault metadata by design, so an
    // environment-duplicated sealed message alerts exactly like an
    // attacker's replay would — on a real wire the defender cannot tell
    // either. These rows price that honesty.
    let soak_config = ProtocolConfig::hardened();
    let (soak, soak_found) = observe(|| run_soak(&soak_config, &SoakConfig::standard(SEED)));
    json.int("soak.alerts", soak_found.alerts).str_field("soak.detectors", &soak_found.summary());
    wtable.row(&[
        "chaos soak (E12)".into(),
        soak_config.name.to_string(),
        format!("{}/{}", soak.auth_ok, soak.auth_total),
        soak_found.events.to_string(),
        soak_found.alerts.to_string(),
        soak_found.summary(),
    ]);
    for scenario in Scenario::all() {
        let o = OverloadConfig::standard(SEED);
        let (r, found) = observe(|| run_overload(&soak_config, &o, scenario));
        json.int(&format!("overload.{}.alerts", scenario.label().replace('-', "_")), found.alerts);
        wtable.row(&[
            format!("overload: {} (E17)", scenario.label()),
            soak_config.name.to_string(),
            format!("{}/{}", r.legit_ok, r.legit_total),
            found.events.to_string(),
            found.alerts.to_string(),
            found.summary(),
        ]);
    }
    wtable.print(
        "benign and fault-heavy workloads through the same engine: the \
         zero-fault rows are the false-positive gate (must be silent); the \
         chaos/overload rows report what indistinguishable-from-attack faults \
         cost a fault-blind wire observer (duplicated sealed messages alert \
         as replays, abuse storms alert as storms — the latter arguably true \
         positives)",
    );

    // === Gates ===
    let rate_pm = (detected_pairs * 1000).checked_div(expected_pairs).unwrap_or(0);
    let loud_pm = (loud_detected * 1000).checked_div(loud_expected).unwrap_or(0);
    let detection_pass = loud_pm >= 900 && detected_pairs == expected_pairs;
    let fp_pass = fp_alerts == 0;
    json.int("ground_truth.expected_pairs", expected_pairs)
        .int("ground_truth.detected_pairs", detected_pairs)
        .int("detection_rate_permille", rate_pm)
        .int("loud_variant_rate_permille", loud_pm)
        .str_field("detection_gate", if detection_pass { "pass" } else { "fail" })
        .int("zero_fault_false_positives", fp_alerts)
        .int("zero_fault_events", fp_events)
        .str_field("fp_gate", if fp_pass { "pass" } else { "fail" });
    json.write("ids");

    println!(
        "\ndetection: {detected_pairs}/{expected_pairs} designed detector pairs fired \
         ({}% — loud variants {}%); false positives on the zero-fault workload: {fp_alerts} \
         across {fp_events} events. The defender's loop closes online: every finding \
         is an ids.alert event in the same trace the attack wrote, at the sim time \
         of its evidence.",
        rate_pm / 10,
        loud_pm / 10,
    );
    if !detection_pass || !fp_pass {
        println!("E20 GATE FAILED: detection {detection_pass}, false positives {fp_pass}");
        std::process::exit(1);
    }
}
