//! E3 — the replay window: how long a stolen authenticator stays usable,
//! and what the defenses cost in server state.
//!
//! Run: `cargo run --release -p bench --bin table_replay_window`

use bench::{BenchJson, TextTable};
use kerberos::messages::WireKind;
use kerberos::replay_cache::ReplayCache;
use kerberos::ProtocolConfig;
use simnet::Datagram;

fn main() {
    println!("E3: stolen-authenticator replay window vs. delay and defense");

    // Part 1: replay success as a function of delay since capture.
    let delays_min = [0u64, 1, 2, 4, 5, 6, 10];
    let mut variants: Vec<(&str, ProtocolConfig)> = vec![
        ("v4 (no cache)", ProtocolConfig::v4()),
        ("v5-draft3", ProtocolConfig::v5_draft3()),
    ];
    let mut with_cache = ProtocolConfig::v4();
    with_cache.replay_cache = true;
    variants.push(("v4 + replay cache", with_cache));
    variants.push(("hardened (C/R)", ProtocolConfig::hardened()));

    let mut json = BenchJson::new("E3");
    let mut table = TextTable::new(&["variant", "0m", "1m", "2m", "4m", "5m", "6m", "10m"]);
    for (label, config) in &variants {
        let mut cells = vec![label.to_string()];
        let mut breaches = 0u64;
        for d in delays_min {
            let ok = replay_after(config, d * 60, 0xE3 + d);
            breaches += u64::from(ok);
            cells.push(if ok { "BREACH" } else { "safe" }.into());
        }
        json.int(&format!("breach_delays.{label}"), breaches);
        table.row(&cells);
    }
    table.print(
        "replay outcome vs delay (paper: 5-minute lifetime 'contributes considerably to this attack')",
    );

    // Part 2: replay-cache state vs request rate (the implementation
    // burden the paper says made caching 'too hard to implement').
    let mut table = TextTable::new(&["req/s", "live entries @5min", "approx bytes"]);
    for rate in [1u64, 10, 100, 1000] {
        let mut cache = ReplayCache::new(300_000_000);
        let total = rate * 360; // six minutes of traffic
        for i in 0..total {
            let t_us = i * (1_000_000 / rate.max(1));
            cache.offer(&i.to_be_bytes(), t_us);
        }
        json.int(&format!("cache_entries.{rate}rps"), cache.live_entries() as u64);
        json.int(&format!("cache_bytes.{rate}rps"), cache.approx_bytes() as u64);
        table.row(&[
            rate.to_string(),
            cache.live_entries().to_string(),
            cache.approx_bytes().to_string(),
        ]);
    }
    table.print("replay-cache state cost vs request rate");
    json.write("replay_window");

    // Part 3: challenge/response state: outstanding challenges are
    // bounded by in-flight handshakes, not by the skew window.
    println!(
        "\nchallenge/response server state: one nonce per in-flight handshake \
         (bounded by concurrency, not by request rate x window).\n\
         \"The trade-off is not between a stateful and a stateless protocol, \
         but in managing two kinds of state.\""
    );
}

/// Captures a legitimate AP exchange under `config`, waits `delay_secs`,
/// replays it, and reports whether the server accepted a second
/// authentication.
fn replay_after(config: &ProtocolConfig, delay_secs: u64, seed: u64) -> bool {
    let mut env = attacks::env::AttackEnv::new(config, seed);
    if env.victim_session("pat", "files").is_err() {
        return false;
    }
    let pat = env.user("pat");
    let files_ep = env.realm.service_ep("files");
    let captured: Vec<Datagram> = env
        .net
        .traffic_log()
        .iter()
        .filter(|r| {
            r.is_request
                && r.dgram.dst == files_ep
                && matches!(
                    r.dgram.payload.first().copied().and_then(WireKind::from_u8),
                    Some(WireKind::ApReq) | Some(WireKind::ChallengeResp)
                )
        })
        .map(|r| r.dgram.clone())
        .collect();
    let before = env.realm.with_app_server(&mut env.net, "files", |s| s.accepted_count(&pat));
    env.advance_secs(delay_secs);
    for d in &captured {
        let _ = env.net.inject(d.clone());
    }
    env.realm.with_app_server(&mut env.net, "files", |s| s.accepted_count(&pat)) > before
}
