//! E4 — the exponential-key-exchange trade-off (LaMacchia & Odlyzko):
//! small moduli/exponents fall cheaply to discrete-log attacks, large
//! ones cost real computation per login.
//!
//! Run: `cargo run --release -p bench --bin table_dh_tradeoff`

use bench::{mean_us, time_us, BenchJson, TextTable};
use krb_crypto::bignum::mod_exp;
use krb_crypto::dh::DhGroup;
use krb_crypto::dlog::{bsgs, pollard_rho};
use krb_crypto::rng::Drbg;

fn main() {
    println!("E4: exponential key exchange — cost of defense vs cost of attack");
    let mut json = BenchJson::new("E4");

    // Part 1: defender cost — one modexp per party per login.
    let mut table = TextTable::new(&["group", "modulus bits", "exp bits", "us/modexp", "modexps/login"]);
    let mut rng = Drbg::new(0xE4);
    for (group, exp_bits) in [
        (DhGroup::toy64(), 64usize),
        (DhGroup::small192(), 160),
        (DhGroup::oakley768(), 160),
        (DhGroup::oakley1024(), 160),
    ] {
        let kp = group.keypair(exp_bits, &mut rng).expect("keypair");
        let iters = 12;
        let us = mean_us(iters, || {
            let _ = std::hint::black_box(mod_exp(&group.g, &kp.private, &group.p));
        });
        json.num(&format!("modexp_us.{}", group.name), us, 0);
        table.row(&[
            group.name.into(),
            group.p.bit_len().to_string(),
            exp_bits.to_string(),
            format!("{us:.0}"),
            "2 per side".into(),
        ]);
    }
    table.print("defender cost: modular exponentiation per login");

    // Part 2: attacker cost vs exponent size — baby-step/giant-step on a
    // wiretapped public value.
    let mut table = TextTable::new(&["exp bits", "dlog time (ms)", "recovered"]);
    let group = DhGroup::toy64();
    for bits in [16usize, 20, 24, 28] {
        let mut rng = Drbg::new(0x100 + bits as u64);
        let kp = group.keypair(bits, &mut rng).expect("keypair");
        let (found, us) = time_us(|| bsgs(&group.g, &kp.public, &group.p, 1u64 << bits));
        let ok = found.map(|x| Some(x) == kp.private.to_u64()).unwrap_or(false);
        json.num(&format!("bsgs_ms.exp{bits}"), us / 1000.0, 1);
        json.flag(&format!("bsgs_recovered.exp{bits}"), ok);
        table.row(&[bits.to_string(), format!("{:.1}", us / 1000.0), ok.to_string()]);
    }
    table.print("attacker cost: BSGS vs secret-exponent size ('small numbers are quite insecure')");

    // Part 3: Pollard rho vs subgroup size (memoryless attack).
    let mut table = TextTable::new(&["subgroup bits", "rho time (ms)", "recovered"]);
    for bits in [14usize, 18, 21] {
        let mut rng = Drbg::new(0x200 + bits as u64);
        let group = DhGroup::generate_safe(bits, &mut rng).expect("group");
        let q = group.order.clone().expect("order");
        let secret = krb_crypto::bignum::random_below(&q, &mut rng);
        let h = mod_exp(&group.g, &secret, &group.p).expect("public");
        let (found, us) = time_us(|| pollard_rho(&group.g, &h, &group.p, &q, &mut rng));
        let ok = found.map(|x| x == secret).unwrap_or(false);
        json.num(&format!("rho_ms.sub{bits}"), us / 1000.0, 1);
        json.flag(&format!("rho_recovered.sub{bits}"), ok);
        table.row(&[bits.to_string(), format!("{:.1}", us / 1000.0), ok.to_string()]);
    }
    table.print("attacker cost: Pollard rho vs subgroup size");
    json.write("dh_tradeoff");

    println!(
        "\nShape reproduced: attack cost grows ~2^(n/2) while defense cost grows \
         ~n^2..n^3 per login — hence the paper's 'perhaps the best solution is to \
         support this feature as a domain-specific option.'"
    );
}
