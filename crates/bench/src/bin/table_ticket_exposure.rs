//! E9 — ticket exposure in short sessions, and the lifetime trade-off.
//!
//! "An intruder may simply watch for a mail-checking session, wherein a
//! user logs in briefly, reads a few messages, and logs out. A number of
//! valuable tickets would be exposed by such a session, notably the one
//! used to mount the user's home directory."
//!
//! Run: `cargo run --release -p bench --bin table_ticket_exposure`

use attacks::env::AttackEnv;
use attacks::workload::mail_check_session;
use bench::{BenchJson, TextTable};
use kerberos::messages::WireKind;
use kerberos::ProtocolConfig;

fn main() {
    println!("E9: live credentials exposed on the wire by a mail-check session");

    // Part 1: what one short session leaks.
    let mut json = BenchJson::new("E9");
    let mut table = TextTable::new(&["config", "AS replies", "TGS replies", "AP requests", "stealable tickets"]);
    for config in ProtocolConfig::presets() {
        let mut env = AttackEnv::new(&config, 0xE9);
        // The mail-check session: login, then touch each service.
        let tgt = env.login("pat").expect("login");
        let mut ap_count = 0;
        for service in mail_check_session() {
            let st = env.ticket("pat", &tgt, service).expect("ticket");
            let mut conn = env.connect("pat", &st, service).expect("connect");
            let mut rng = env.rng.clone();
            let _ = conn.request(&mut env.net, b"COUNT", &mut rng);
            ap_count += 1;
        }
        let log = env.net.traffic_log();
        let count_kind = |k: WireKind| {
            log.iter().filter(|r| r.dgram.payload.first().copied().and_then(WireKind::from_u8) == Some(k)).count()
        };
        let as_reps = count_kind(WireKind::AsRep);
        let tgs_reps = count_kind(WireKind::TgsRep);
        let ap_reqs = count_kind(WireKind::ApReq);
        // Each AP request carries a sealed ticket + live authenticator:
        // a stealable credential within the skew window (unless
        // challenge/response makes replays useless).
        let stealable = if config.auth_style == kerberos::AuthStyle::ChallengeResponse { 0 } else { ap_reqs };
        json.int(&format!("ap_requests.{}", config.name), ap_reqs as u64);
        json.int(&format!("stealable.{}", config.name), stealable as u64);
        json.metrics(&env.tracer().snapshot());
        table.row(&[
            config.name.into(),
            as_reps.to_string(),
            tgs_reps.to_string(),
            ap_reqs.to_string(),
            stealable.to_string(),
        ]);
        let _ = ap_count;
    }
    table.print("one mail-check session (login + home-directory mount + mail read)");

    // Part 2: the lifetime trade-off. With L-hour tickets and S sessions
    // per day, how many stolen-credential-hours does a day of traffic
    // put at risk? (Exposure = sessions x remaining lifetime.)
    let mut table = TextTable::new(&["ticket lifetime (h)", "relogins/day", "exposure (ticket-hours at risk)"]);
    for lifetime_h in [1u64, 4, 8, 24] {
        let day_hours = 12u64; // working day
        let relogins = day_hours.div_ceil(lifetime_h);
        // Each session exposes 2 service credentials (files + mail); a
        // stolen credential is good for the remainder of its lifetime —
        // on average half.
        let exposure = relogins * 2 * lifetime_h / 2;
        json.int(&format!("exposure_ticket_hours.{lifetime_h}h"), exposure);
        table.row(&[lifetime_h.to_string(), relogins.to_string(), exposure.to_string()]);
    }
    table.print(
        "lifetime sweep (paper: 'the longer a ticket is in use, the greater the risk of it \
         being stolen' — but short lifetimes mean more password prompts or more exposed logins)",
    );
    json.write("ticket_exposure");
}
