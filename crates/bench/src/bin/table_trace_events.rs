//! E15 — the observability layer itself: event volume per protocol
//! configuration, determinism of the exported trace, and the bounded
//! ring buffer under pressure.
//!
//! The subsystem under test is `krb-trace`; the workload is attack A1
//! (stolen live-authenticator replay) on each preset, the same scenario
//! the golden-trace tests pin.
//!
//! Run: `cargo run --release -p bench --bin table_trace_events`
//! Writes `BENCH_trace_events.json` in the current directory.

use attacks::env::with_trace_capture;
use attacks::replay::StolenAuthenticatorReplay;
use attacks::Attack;
use bench::{BenchJson, TextTable};
use kerberos::ProtocolConfig;
use krb_trace::{to_jsonl, EventKind, Tracer};
use std::collections::BTreeMap;

const SEED: u64 = 0xE15;

fn a1_trace(config: &ProtocolConfig) -> Tracer {
    let (_report, tracer) = with_trace_capture(|| StolenAuthenticatorReplay.run(config, SEED));
    tracer.expect("A1 builds an environment under every preset")
}

fn main() {
    println!("E15: trace event volume, determinism, and ring-buffer bounds (A1 workload)");
    let mut json = BenchJson::new("E15");

    // Part 1: what one attack run emits, per configuration.
    let mut table =
        TextTable::new(&["config", "events", "wire hops", "spans", "metric keys", "deterministic"]);
    for config in ProtocolConfig::presets() {
        let tracer = a1_trace(&config);
        let events = tracer.events();
        let hops = events.iter().filter(|e| e.kind == EventKind::WireHop).count();
        let spans = events.iter().filter(|e| e.kind == EventKind::SpanBegin).count();
        let metric_keys = tracer.snapshot().len();
        // Byte-identity against a second same-seed run: the property the
        // golden tests enforce for the pinned cell, checked here on
        // every preset.
        let deterministic = to_jsonl(&events) == to_jsonl(&a1_trace(&config).events());
        json.int(&format!("events.{}", config.name), events.len() as u64);
        json.int(&format!("wire_hops.{}", config.name), hops as u64);
        json.int(&format!("spans.{}", config.name), spans as u64);
        json.flag(&format!("deterministic.{}", config.name), deterministic);
        table.row(&[
            config.name.into(),
            events.len().to_string(),
            hops.to_string(),
            spans.to_string(),
            metric_keys.to_string(),
            deterministic.to_string(),
        ]);
        assert!(deterministic, "same-seed A1 traces must be byte-identical on {}", config.name);
    }
    table.print("one A1 run per preset (every trace byte-identical across same-seed reruns)");

    // Part 2: event mix on the vulnerable baseline — which layers talk.
    let tracer = a1_trace(&ProtocolConfig::v4());
    let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
    for e in tracer.events() {
        *by_kind.entry(e.kind.label()).or_insert(0) += 1;
    }
    let mut table = TextTable::new(&["event kind", "count"]);
    for (k, n) in &by_kind {
        json.int(&format!("kind.{k}"), *n);
        table.row(&[(*k).to_string(), n.to_string()]);
    }
    table.print("event mix, A1 on v4");

    // Part 3: the ring buffer stays bounded — shrinking the capacity
    // evicts oldest-first (counted, never silent) while the metrics
    // registry, which is not ring-backed, keeps exact totals.
    let tracer = a1_trace(&ProtocolConfig::v4());
    let full = tracer.events().len() as u64;
    let small = a1_trace(&ProtocolConfig::v4());
    small.set_capacity(8);
    let evicted_after = small.evicted();
    let retained = small.events().len() as u64;
    json.int("ring.full_events", full);
    json.int("ring.capped_retained", retained);
    json.int("ring.capped_evicted", evicted_after);
    println!(
        "\nring buffer: {full} events uncapped; capacity 8 retains {retained} and counts \
         {evicted_after} evicted — memory is bounded, metrics stay exact ({} keys intact)",
        small.snapshot().len()
    );
    assert!(retained <= 8, "capacity must bound retained events");
    assert!(evicted_after > 0, "eviction must be visible, not silent");

    json.write("trace_events");
}
