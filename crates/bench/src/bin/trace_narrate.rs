//! Narrated attack traces: run one paper attack under trace capture and
//! print the event log in the paper's step notation (`c -> kdc: AS-REQ`,
//! adversary moves interleaved as `**`/`·` annotations).
//!
//! Run: `cargo run --release -p bench --bin trace_narrate -- --narrate <attack> [config]`
//!   <attack>  an id (`A1`) or a name substring (`replay`)
//!   [config]  preset name (`v4`, `v5-draft3`, `hardened`; default `v4`)
//!   --alerts  attach the default krb-ids rule set to the run and
//!             interleave its `ids.alert` findings (timestamped at
//!             their evidence) with the protocol steps
//!
//! The same rendering backs the golden-trace tests; this bin is the
//! interactive view (`scripts/trace.sh --narrate replay`).

use attacks::env::{with_env_hook, with_trace_capture};
use attacks::overload::{run_overload, OverloadConfig, Scenario};
use attacks::{all_attacks, Attack};
use kerberos::{PaperLens, ProtocolConfig};
use krb_ids::{default_engine, Engine};
use krb_trace::{narrate, Event, Tracer};
use std::cell::RefCell;
use std::rc::Rc;

/// Seed matching the pinned E1 golden cell, so `--narrate replay` shows
/// exactly the trace the golden test locks down.
const SEED: u64 = 0xE1;

fn find_attack(pat: &str) -> Option<Box<dyn Attack>> {
    let lower = pat.to_lowercase();
    all_attacks()
        .into_iter()
        .find(|a| a.id().eq_ignore_ascii_case(pat) || a.name().to_lowercase().contains(&lower))
}

fn find_config(name: &str) -> Option<ProtocolConfig> {
    ProtocolConfig::presets().into_iter().find(|c| c.name.eq_ignore_ascii_case(name))
}

fn find_scenario(pat: &str) -> Option<Scenario> {
    let lower = pat.to_lowercase();
    if lower == "gateway" {
        return Some(Scenario::PreauthStorm);
    }
    // Substring matching only for unambiguous patterns; short fragments
    // fall through to the attack lookup.
    if lower.len() < 4 {
        return None;
    }
    Scenario::all().into_iter().find(|s| s.label().contains(&lower))
}

/// Runs `f` under trace capture; with `alerts` on, a default krb-ids
/// engine rides along on every environment the run builds, so its
/// findings land in the captured trace before narration.
fn run_traced<R>(alerts: bool, f: impl FnOnce() -> R) -> (R, Option<Tracer>) {
    if !alerts {
        return with_trace_capture(f);
    }
    let engines: Rc<RefCell<Vec<Engine>>> = Rc::new(RefCell::new(Vec::new()));
    let hook: Rc<dyn Fn(&Tracer)> = {
        let engines = Rc::clone(&engines);
        Rc::new(move |t: &Tracer| {
            let mut eng = default_engine().expect("default rules compile");
            eng.attach(t);
            engines.borrow_mut().push(eng);
        })
    };
    let (out, tracer) = with_trace_capture(|| with_env_hook(hook, f));
    for eng in engines.borrow_mut().iter_mut() {
        eng.poll();
    }
    (out, tracer)
}

/// The engine polls after the run, so its alert events sit at the tail
/// of the log with evidence-time stamps — a stable sort by sim time
/// interleaves them where their evidence crossed the wire.
fn by_sim_time(tracer: &Tracer) -> Vec<Event> {
    let mut events = tracer.events();
    events.sort_by_key(|e| e.at_us);
    events
}

/// Runs one gateway overload scenario under trace capture and narrates
/// the shed/throttle/penalty decisions alongside the protocol flow.
fn narrate_overload(scenario: Scenario, alerts: bool) {
    let config = ProtocolConfig::hardened();
    let o = OverloadConfig::standard(SEED);
    let (report, tracer) = run_traced(alerts, || run_overload(&config, &o, scenario));
    let Some(tracer) = tracer else {
        eprintln!("overload scenario built no traced environment (nothing to narrate)");
        std::process::exit(1);
    };
    println!(
        "== E17 — gateway overload: {} [hardened] — {}/{} legit ok, {}/{} abuse admitted ==\n",
        report.scenario, report.legit_ok, report.legit_total, report.abuse_admitted, report.abuse_sent
    );
    let events = if alerts { by_sim_time(&tracer) } else { tracer.events() };
    print!("{}", narrate(&events, &PaperLens));
    println!(
        "\noutcome: shed {} / throttled {} / penalized {} / admitted {} / restarts {}",
        report.shed, report.throttled, report.penalized, report.admitted, report.restarts
    );
}

fn usage() -> ! {
    eprintln!("usage: trace_narrate --narrate <attack-id-or-name-substring> [config] [--alerts]");
    eprintln!("  --alerts: run the default krb-ids rules online and interleave their findings");
    eprintln!("  attacks: {}", all_attacks().iter().map(|a| a.id()).collect::<Vec<_>>().join(" "));
    eprintln!("  gateway scenarios: gateway flash-crowd preauth-storm misbehaving-herd crash-restart");
    eprintln!(
        "  configs: {}",
        ProtocolConfig::presets().iter().map(|c| c.name).collect::<Vec<_>>().join(" ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    let mut pattern: Option<&str> = None;
    let mut config_name = "v4";
    let mut alerts = false;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--narrate" => match it.next() {
                Some(p) => pattern = Some(p),
                None => usage(),
            },
            "--alerts" => alerts = true,
            "--help" | "-h" => usage(),
            other if pattern.is_some() => config_name = other,
            other => pattern = Some(other),
        }
    }
    let Some(pattern) = pattern else { usage() };
    // Gateway overload scenarios narrate through the same lens: shed
    // and throttle events interleave with the protocol steps.
    if let Some(scenario) = find_scenario(pattern) {
        narrate_overload(scenario, alerts);
        return;
    }
    let Some(attack) = find_attack(pattern) else {
        eprintln!("no attack matches {pattern:?}");
        usage();
    };
    let Some(config) = find_config(config_name) else {
        eprintln!("no config preset named {config_name:?}");
        usage();
    };

    let (report, tracer) = run_traced(alerts, || attack.run(&config, SEED));
    let Some(tracer) = tracer else {
        eprintln!(
            "{} did not build a traced environment under config {} (nothing to narrate)",
            attack.id(),
            config.name
        );
        std::process::exit(1);
    };

    println!(
        "== {} — {} [{}] — {} ==\n",
        report.id,
        report.name,
        report.config,
        if report.succeeded { "BREACH" } else { "defended" }
    );
    let events = if alerts { by_sim_time(&tracer) } else { tracer.events() };
    print!("{}", narrate(&events, &PaperLens));
    println!("\noutcome: {}", report.evidence);

    let snap = tracer.snapshot();
    if !snap.is_empty() {
        println!("\nmetrics:");
        for (k, v) in &snap {
            println!("  {k} = {v}");
        }
    }
}
