//! E16 — fuzzing throughput and coverage over the three codecs: mutated
//! inputs per second, the reject-class histogram (how many distinct ways
//! each decoder says "no"), round-trip rate among surviving decodes, and
//! the determinism check the whole harness rests on.
//!
//! Run: `cargo run --release -p bench --bin table_fuzz_coverage`
//! Writes `BENCH_fuzz.json` in the current directory.
//! `E16_QUICK=1` shrinks the iteration count for smoke runs.

use bench::{time_us, BenchJson, TextTable};
use kerberos::encoding::Codec;
use krb_fuzz::corpus::{codec_label, generate_all_seeds, generate_seeds};
use krb_fuzz::harness::{run, FuzzConfig};
use std::collections::BTreeMap;

const SEED: u64 = 0xE16;

fn iterations() -> u64 {
    if std::env::var_os("E16_QUICK").is_some() {
        2_000
    } else {
        20_000
    }
}

fn main() {
    let iters = iterations();
    println!("E16: codec fuzzing — throughput, reject classes, round-trip rate ({iters} inputs)");
    let mut json = BenchJson::new("E16");
    json.int("iterations", iters);

    // Per-codec runs: each codec's seeds fuzzed in isolation, so the
    // histogram attributes rejects to the envelope that produced them.
    let mut table =
        TextTable::new(&["codec", "seeds", "inputs/s", "decoded", "rejected", "reject classes", "roundtrip %"]);
    for codec in [Codec::Legacy, Codec::Typed, Codec::Wire] {
        let seeds = generate_seeds(codec);
        let cfg = FuzzConfig { seed: SEED, iterations: iters };
        let (report, us) = time_us(|| run(&seeds, &cfg));
        let per_sec = iters as f64 / (us / 1e6);
        let label = codec_label(codec);
        let rt_pct = if report.decoded > 0 {
            100.0 * report.roundtrips as f64 / report.decoded as f64
        } else {
            0.0
        };
        assert_eq!(report.panics, 0, "decoder panicked under fuzzing on {label}");
        json.num(&format!("inputs_per_sec.{label}"), per_sec, 0);
        json.int(&format!("decoded.{label}"), report.decoded);
        json.int(&format!("rejected.{label}"), report.rejected);
        json.int(&format!("reject_classes.{label}"), report.classes.len() as u64);
        json.num(&format!("roundtrip_pct.{label}"), rt_pct, 1);
        table.row(&[
            label.to_string(),
            seeds.len().to_string(),
            format!("{per_sec:.0}"),
            report.decoded.to_string(),
            report.rejected.to_string(),
            report.classes.len().to_string(),
            format!("{rt_pct:.1}"),
        ]);
    }
    table.print("per-codec fuzzing, same PRNG seed (zero panics everywhere)");

    // The combined run over all seeds: the histogram the regression
    // fixtures draw from, exported as metrics.
    let seeds = generate_all_seeds();
    let cfg = FuzzConfig { seed: SEED, iterations: iters };
    let report = run(&seeds, &cfg);
    assert_eq!(report.panics, 0, "decoder panicked under combined fuzzing");
    let rerun = run(&seeds, &cfg);
    let deterministic = report.render(SEED) == rerun.render(SEED);
    assert!(deterministic, "same-seed fuzz runs must be byte-identical");
    json.flag("deterministic", deterministic);
    json.int("combined.decoded", report.decoded);
    json.int("combined.rejected", report.rejected);
    json.int("combined.roundtrips", report.roundtrips);

    let mut table = TextTable::new(&["reject class", "count"]);
    let mut metrics: BTreeMap<String, u64> = BTreeMap::new();
    for (class, n) in &report.classes {
        metrics.insert(format!("class.{class}"), *n);
    }
    for (name, n) in &report.per_strategy {
        metrics.insert(format!("strategy.{name}"), *n);
    }
    // The table shows the top of the histogram; the JSON carries it all.
    let mut by_count: Vec<(&String, &u64)> = report.classes.iter().collect();
    by_count.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    for (class, n) in by_count.iter().take(12) {
        table.row(&[(*class).clone(), n.to_string()]);
    }
    table.print(&format!(
        "top reject classes of {} total (full histogram in BENCH_fuzz.json)",
        report.classes.len()
    ));
    json.metrics(&metrics);

    println!(
        "\ncombined: {} decoded / {} rejected across {} reject classes; \
         {} of the decodes round-trip byte-for-byte; 0 panics",
        report.decoded,
        report.rejected,
        report.classes.len(),
        report.roundtrips
    );
    json.write("fuzz");
}
