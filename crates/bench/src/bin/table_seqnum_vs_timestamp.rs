//! E7 — KRB_SAFE/KRB_PRIV anti-replay: timestamp caches vs sequence
//! numbers.
//!
//! "If such messages are used for things like file system requests, the
//! size of the cache could rapidly become unmanageable. ... Both
//! problems can be solved if the idea of a timestamp is abandoned in
//! favor of sequence numbers."
//!
//! Run: `cargo run --release -p bench --bin table_seqnum_vs_timestamp`

use bench::{BenchJson, TextTable};
use kerberos::session::{Direction, Session};
use kerberos::{Freshness, Principal, ProtocolConfig};
use krb_crypto::des::DesKey;
use krb_crypto::rng::Drbg;

fn pair(config: &ProtocolConfig, seed: u64) -> (Session, Session) {
    let key = DesKey::from_u64(0x2468ACE013579BDF ^ seed).with_odd_parity();
    let c = Session::new(Principal::service("fs", "h", "R"), key, config, Direction::ClientToServer, 100, 500);
    let s = Session::new(Principal::user("pat", "R"), key, config, Direction::ServerToClient, 500, 100);
    (c, s)
}

fn main() {
    println!("E7: session anti-replay state and detection capability");

    // Part 1: cache growth under a file-server message rate.
    let mut json = BenchJson::new("E7");
    let mut table = TextTable::new(&["mechanism", "messages", "cache entries", "deletion detected"]);
    for (label, config) in [
        ("timestamps (draft3)", ProtocolConfig::v5_draft3()),
        ("sequence numbers (hardened)", ProtocolConfig::hardened()),
    ] {
        for n in [100usize, 1000, 10_000] {
            let mut rng = Drbg::new(0xE7);
            let (mut c, mut s) = pair(&config, n as u64);
            for i in 0..n {
                let wire = c.send_priv(b"read block", 1_000 + i as u64, 7, &mut rng).expect("seal");
                s.recv_priv(&wire, 1_000 + i as u64).expect("open");
            }
            // Deletion detection: drop one message, send the next.
            let dropped = c.send_priv(b"lost", 999_000, 7, &mut rng).expect("seal");
            drop(dropped);
            let next = c.send_priv(b"after gap", 999_001, 7, &mut rng).expect("seal");
            let detected = s.recv_priv(&next, 999_001).is_err();
            let slug = if config.freshness == Freshness::SequenceNumbers { "seqnum" } else { "timestamp" };
            json.int(&format!("cache_entries.{slug}.{n}msgs"), s.timestamp_cache_entries() as u64);
            json.flag(&format!("deletion_detected.{slug}.{n}msgs"), detected);
            table.row(&[
                label.into(),
                n.to_string(),
                s.timestamp_cache_entries().to_string(),
                if config.freshness == Freshness::SequenceNumbers {
                    format!("{detected} (gap seen)")
                } else {
                    format!("{detected}")
                },
            ]);
        }
    }
    table.print("cache growth and deletion detection (paper: sequence numbers detect deletions; timestamps cannot)");

    // Part 2: cross-stream replay, the concurrent-session hazard.
    let mut table = TextTable::new(&["mechanism", "cross-stream replay"]);
    for (label, config) in [
        ("timestamps, shared multi-session key", ProtocolConfig::v5_draft3()),
        ("sequence numbers + subkeys", ProtocolConfig::hardened()),
    ] {
        let mut rng = Drbg::new(0xE8);
        let (mut c1, _s1) = pair(&config, 1);
        let (_c2, mut s2) = if config.freshness == Freshness::SequenceNumbers {
            // Distinct per-session initial sequence numbers.
            let key = DesKey::from_u64(0x2468ACE013579BDF ^ 1).with_odd_parity();
            let c = Session::new(Principal::service("fs", "h", "R"), key, &config, Direction::ClientToServer, 9000, 8000);
            let s = Session::new(Principal::user("pat", "R"), key, &config, Direction::ServerToClient, 8000, 9000);
            (c, s)
        } else {
            pair(&config, 1)
        };
        let wire = c1.send_priv(b"delete archive", 5_000, 7, &mut rng).expect("seal");
        let replayed = s2.recv_priv(&wire, 5_100).is_ok();
        let slug = if config.freshness == Freshness::SequenceNumbers { "seqnum" } else { "timestamp" };
        json.flag(&format!("cross_stream_replay.{slug}"), replayed);
        table.row(&[label.into(), if replayed { "BREACH" } else { "safe" }.into()]);
    }
    table.print("message from session 1 replayed into session 2");
    json.write("seqnum_vs_timestamp");
}
