//! Shared helpers for the experiment harness: table formatting,
//! wall-clock measurement, and the stable machine-readable report every
//! `table_*` bin writes next to its TextTable.

use std::collections::BTreeMap;
use std::time::Instant;

/// A simple fixed-width text table.
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    widths: Vec<usize>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        let headers: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
        let widths = headers.iter().map(|h| h.len()).collect();
        TextTable { headers, rows: Vec::new(), widths }
    }

    /// Adds a row (cells stringified by the caller). Rows may be wider
    /// than the header; extra columns get headerless width slots so the
    /// rendered cells and separator still line up.
    pub fn row(&mut self, cells: &[String]) {
        if self.widths.len() < cells.len() {
            self.widths.resize(cells.len(), 0);
        }
        for (i, c) in cells.iter().enumerate() {
            self.widths[i] = self.widths[i].max(c.len());
        }
        self.rows.push(cells.to_vec());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
                .collect::<Vec<_>>()
                .join("  ")
        };
        s.push_str(&line(&self.headers, &self.widths));
        s.push('\n');
        s.push_str(&"-".repeat(self.widths.iter().sum::<usize>() + 2 * self.widths.len()));
        s.push('\n');
        for r in &self.rows {
            s.push_str(&line(r, &self.widths));
            s.push('\n');
        }
        s
    }

    /// Prints the table with a title.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==\n{}", self.render());
    }
}

/// A stable-field-order JSON report: every experiment bin writes one as
/// `BENCH_<name>.json` so downstream tooling gets machine-readable
/// numbers uniformly, not just from the throughput bench.
///
/// Fields render in insertion order; an attached metrics snapshot (the
/// `krb-trace` registry, already a sorted map) renders as a nested
/// object under `"metrics"`. No floats beyond what the caller formats —
/// the output is deterministic given deterministic inputs.
pub struct BenchJson {
    experiment: String,
    fields: Vec<(String, String)>,
    metrics: Option<BTreeMap<String, u64>>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

impl BenchJson {
    /// A report for experiment `experiment` (e.g. `"E2"`).
    pub fn new(experiment: &str) -> Self {
        BenchJson { experiment: experiment.to_string(), fields: Vec::new(), metrics: None }
    }

    /// Adds a string field.
    pub fn str_field(&mut self, key: &str, v: &str) -> &mut Self {
        self.fields.push((key.to_string(), format!("\"{}\"", json_escape(v))));
        self
    }

    /// Adds an integer field.
    pub fn int(&mut self, key: &str, v: u64) -> &mut Self {
        self.fields.push((key.to_string(), v.to_string()));
        self
    }

    /// Adds a boolean field.
    pub fn flag(&mut self, key: &str, v: bool) -> &mut Self {
        self.fields.push((key.to_string(), v.to_string()));
        self
    }

    /// Adds a float field, rendered with `decimals` places (callers pick
    /// the precision so wall-clock noise does not churn diffs for
    /// sim-time numbers).
    pub fn num(&mut self, key: &str, v: f64, decimals: usize) -> &mut Self {
        self.fields.push((key.to_string(), format!("{v:.decimals$}")));
        self
    }

    /// Attaches a metrics snapshot (rendered sorted, under `"metrics"`).
    pub fn metrics(&mut self, snap: &BTreeMap<String, u64>) -> &mut Self {
        self.metrics = Some(snap.clone());
        self
    }

    /// Renders the report.
    pub fn render(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"experiment\": \"{}\"", json_escape(&self.experiment)));
        for (k, v) in &self.fields {
            s.push_str(&format!(",\n  \"{}\": {v}", json_escape(k)));
        }
        if let Some(m) = &self.metrics {
            s.push_str(",\n  \"metrics\": {");
            let mut first = true;
            for (k, v) in m {
                s.push_str(if first { "\n" } else { ",\n" });
                first = false;
                s.push_str(&format!("    \"{}\": {v}", json_escape(k)));
            }
            s.push_str("\n  }");
        }
        s.push_str("\n}\n");
        s
    }

    /// Writes `BENCH_<name>.json` in the current directory and says so.
    pub fn write(&self, name: &str) {
        let path = format!("BENCH_{name}.json");
        match std::fs::write(&path, self.render()) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

/// Times a closure, returning (result, elapsed microseconds).
pub fn time_us<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64() * 1e6)
}

/// Times `iters` runs of a closure and returns mean microseconds.
pub fn mean_us(iters: usize, mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_secs_f64() * 1e6 / iters as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(&["short".into(), "1".into()]);
        t.row(&["a-much-longer-name".into(), "22222".into()]);
        let out = t.render();
        assert!(out.contains("a-much-longer-name"));
        assert!(out.lines().count() >= 4);
    }

    #[test]
    fn rows_wider_than_headers_stay_aligned() {
        let mut t = TextTable::new(&["name"]);
        t.row(&["x".into(), "a-long-extra-cell".into()]);
        t.row(&["yy".into(), "z".into()]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        // Separator spans the full (row-derived) width, and both rows
        // pad their first column to the same offset.
        let sep = lines[1];
        assert!(sep.chars().all(|c| c == '-'));
        assert!(sep.len() >= "a-long-extra-cell".len());
        let col2 = |l: &str| l.find("a-long-extra-cell").or_else(|| l.find('z'));
        assert_eq!(col2(lines[2]), col2(lines[3]));
    }

    #[test]
    fn timing_is_positive() {
        let (v, us) = time_us(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(us >= 0.0);
        assert!(mean_us(3, || { std::hint::black_box(1 + 1); }) >= 0.0);
    }
}
