//! E2 (bench half) — the attacker's guess-verification rate against a
//! recorded AS reply, per configuration.

use attacks::pw_guess::crack_as_reply;
use kerberos::encoding::MsgType;
use kerberos::messages::EncKdcRepPart;
use kerberos::{Principal, ProtocolConfig};
use krb_crypto::rng::{Drbg, RandomSource};
use krb_crypto::s2k;
use testkit::bench::{Harness, Throughput};

/// Builds a realistic sealed AS-reply part under the victim's key.
fn sealed_reply(config: &ProtocolConfig, client: &Principal, password: &str) -> Vec<u8> {
    let mut rng = Drbg::new(3);
    let kc = s2k::string_to_key_v5(password, &client.salt());
    let part = EncKdcRepPart {
        session_key: rng.gen_des_key(),
        nonce: 42,
        ticket: vec![0xaa; 96],
        end_time: 9_999_999,
        server_time: 1_000_000,
        ticket_cksum: None,
    };
    config
        .ticket_layer
        .seal(&kc, 0, &part.encode(config.codec, MsgType::EncAsRepPart), &mut rng)
        .unwrap()
}

fn bench_guess_rate(h: &mut Harness) {
    let client = Principal::user("victim", "ATHENA");
    // 512 wrong guesses: measures the *verification* rate (the attack's
    // inner loop), not the lucky hit.
    let guesses: Vec<String> = (0..512).map(|i| format!("wrong-guess-{i}")).collect();
    for config in [ProtocolConfig::v4(), ProtocolConfig::v5_draft3()] {
        let sealed = sealed_reply(&config, &client, "the-actual-password");
        h.run_throughput(
            &format!("pw_guess_rate/{}", config.name),
            Throughput::Elements(guesses.len() as u64),
            || crack_as_reply(&config, &client, std::hint::black_box(&sealed), None, &guesses),
        );
    }
}

fn bench_s2k(h: &mut Harness) {
    // string-to-key dominates each guess: measure it alone.
    let mut i = 0u64;
    h.run("string_to_key", || {
        i += 1;
        s2k::string_to_key_v5(std::hint::black_box("candidate-password"), &i.to_string())
    });
}

fn main() {
    let mut h = Harness::new("pw_guess");
    bench_guess_rate(&mut h);
    bench_s2k(&mut h);
    h.finish();
}
