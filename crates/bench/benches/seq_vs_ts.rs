//! E7 (bench half) — session send/receive throughput: timestamp caching
//! vs sequence numbers, as session history grows.

use kerberos::session::{Direction, Session};
use kerberos::{Principal, ProtocolConfig};
use krb_crypto::des::DesKey;
use krb_crypto::rng::Drbg;
use testkit::bench::Harness;

fn make_pair(config: &ProtocolConfig) -> (Session, Session) {
    let key = DesKey::from_u64(0x2468ACE013579BDF).with_odd_parity();
    let c = Session::new(Principal::service("fs", "h", "R"), key, config, Direction::ClientToServer, 100, 500);
    let s = Session::new(Principal::user("pat", "R"), key, config, Direction::ServerToClient, 500, 100);
    (c, s)
}

fn main() {
    let mut h = Harness::new("seq_vs_ts");
    for (label, config, history) in [
        ("timestamps-fresh", ProtocolConfig::v5_draft3(), 0usize),
        ("timestamps-10k-history", ProtocolConfig::v5_draft3(), 10_000),
        ("seqnums-fresh", ProtocolConfig::hardened(), 0),
        ("seqnums-10k-history", ProtocolConfig::hardened(), 10_000),
    ] {
        let mut rng = Drbg::new(7);
        let (mut cs, mut ss) = make_pair(&config);
        // Pre-populate history.
        for i in 0..history {
            let w = cs.send_priv(b"warm", 1_000 + i as u64, 7, &mut rng).unwrap();
            ss.recv_priv(&w, 1_000 + i as u64).unwrap();
        }
        let mut t = 1_000_000u64;
        h.run(&format!("session_roundtrip/{label}"), || {
            t += 1;
            let w = cs.send_priv(std::hint::black_box(b"command bytes"), t, 7, &mut rng).unwrap();
            ss.recv_priv(&w, t).unwrap()
        });
    }
    h.finish();
}
