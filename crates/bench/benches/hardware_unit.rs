//! E8 — the overhead of routing cryptographic operations through the
//! (simulated) host encryption unit instead of software key handling.

use criterion::{criterion_group, criterion_main, Criterion};
use hardware::EncryptionUnit;
use kerberos::enclayer::EncLayer;
use kerberos::ProtocolConfig;
use krb_crypto::des::DesKey;
use krb_crypto::key::KeyPurpose;
use krb_crypto::rng::Drbg;

fn bench_seal_paths(c: &mut Criterion) {
    let config = ProtocolConfig::hardened();
    let key = DesKey::from_u64(0x0123456789ABCDEF).with_odd_parity();
    let data = vec![0x5au8; 256];

    // Software path: key in host memory.
    c.bench_function("seal_256B_software", |b| {
        let mut rng = Drbg::new(1);
        b.iter(|| EncLayer::HardenedCbc.seal(&key, 3, std::hint::black_box(&data), &mut rng).unwrap());
    });

    // Hardware path: key sealed in the unit, addressed by handle, audit
    // log appended per op.
    c.bench_function("seal_256B_hardware_unit", |b| {
        let mut unit = EncryptionUnit::new(config.clone(), 2);
        let slot = unit.load_key(key, KeyPurpose::AppSession);
        b.iter(|| unit.seal_data(slot, 3, std::hint::black_box(&data)).unwrap());
    });
}

fn bench_unit_ticket_ops(c: &mut Criterion) {
    use kerberos::flags::TicketFlags;
    use kerberos::principal::Principal;
    use kerberos::ticket::Ticket;
    let config = ProtocolConfig::hardened();
    let mut rng = Drbg::new(3);
    let service_key = DesKey::from_u64(0xFEDCBA9876543210).with_odd_parity();
    let ticket = Ticket {
        flags: TicketFlags::empty(),
        client: Principal::user("pat", "R"),
        service: Principal::service("files", "h", "R"),
        addr: None,
        auth_time: 0,
        start_time: 0,
        end_time: 1_000_000_000,
        session_key: DesKey::from_u64(0x1111111111111111).with_odd_parity(),
        transited: vec![],
    };
    let sealed = ticket.seal(config.codec, config.ticket_layer, &service_key, &mut rng).unwrap();

    c.bench_function("decrypt_ticket_software", |b| {
        b.iter(|| {
            Ticket::unseal(config.codec, config.ticket_layer, &service_key, std::hint::black_box(&sealed))
                .unwrap()
        });
    });

    c.bench_function("decrypt_ticket_hardware_unit", |b| {
        let mut unit = EncryptionUnit::new(config.clone(), 4);
        let slot = unit.load_key(service_key, KeyPurpose::Service);
        b.iter(|| unit.decrypt_ticket(slot, std::hint::black_box(&sealed)).unwrap());
    });
}

criterion_group!(benches, bench_seal_paths, bench_unit_ticket_ops);
criterion_main!(benches);
