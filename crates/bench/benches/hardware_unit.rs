//! E8 — the overhead of routing cryptographic operations through the
//! (simulated) host encryption unit instead of software key handling.

use hardware::EncryptionUnit;
use kerberos::enclayer::EncLayer;
use kerberos::ProtocolConfig;
use krb_crypto::des::DesKey;
use krb_crypto::key::KeyPurpose;
use krb_crypto::rng::Drbg;
use testkit::bench::Harness;

fn bench_seal_paths(h: &mut Harness) {
    let config = ProtocolConfig::hardened();
    let key = DesKey::from_u64(0x0123456789ABCDEF).with_odd_parity();
    let data = vec![0x5au8; 256];

    // Software path: key in host memory.
    let mut rng = Drbg::new(1);
    h.run("seal_256B_software", || {
        EncLayer::HardenedCbc.seal(&key, 3, std::hint::black_box(&data), &mut rng).unwrap()
    });

    // Hardware path: key sealed in the unit, addressed by handle, audit
    // log appended per op.
    let mut unit = EncryptionUnit::new(config.clone(), 2);
    let slot = unit.load_key(key, KeyPurpose::AppSession);
    h.run("seal_256B_hardware_unit", || {
        unit.seal_data(slot, 3, std::hint::black_box(&data)).unwrap()
    });
}

fn bench_unit_ticket_ops(h: &mut Harness) {
    use kerberos::flags::TicketFlags;
    use kerberos::principal::Principal;
    use kerberos::ticket::Ticket;
    let config = ProtocolConfig::hardened();
    let mut rng = Drbg::new(3);
    let service_key = DesKey::from_u64(0xFEDCBA9876543210).with_odd_parity();
    let ticket = Ticket {
        flags: TicketFlags::empty(),
        client: Principal::user("pat", "R"),
        service: Principal::service("files", "h", "R"),
        addr: None,
        auth_time: 0,
        start_time: 0,
        end_time: 1_000_000_000,
        session_key: DesKey::from_u64(0x1111111111111111).with_odd_parity(),
        transited: vec![],
    };
    let sealed = ticket.seal(config.codec, config.ticket_layer, &service_key, &mut rng).unwrap();

    h.run("decrypt_ticket_software", || {
        Ticket::unseal(config.codec, config.ticket_layer, &service_key, std::hint::black_box(&sealed))
            .unwrap()
    });

    let mut unit = EncryptionUnit::new(config.clone(), 4);
    let slot = unit.load_key(service_key, KeyPurpose::Service);
    h.run("decrypt_ticket_hardware_unit", || {
        unit.decrypt_ticket(slot, std::hint::black_box(&sealed)).unwrap()
    });
}

fn main() {
    let mut h = Harness::new("hardware_unit");
    bench_seal_paths(&mut h);
    bench_unit_ticket_ops(&mut h);
    h.finish();
}
