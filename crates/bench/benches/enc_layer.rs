//! E6 — encryption-layer throughput: V4 PCBC vs Draft-3 CBC(+confounder)
//! vs hardened CBC+MAC, across message sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kerberos::enclayer::EncLayer;
use krb_crypto::des::DesKey;
use krb_crypto::rng::Drbg;

fn bench_seal(c: &mut Criterion) {
    let key = DesKey::from_u64(0x0123456789ABCDEF).with_odd_parity();
    let mut group = c.benchmark_group("enc_layer_seal");
    for size in [64usize, 1024, 8192] {
        let data = vec![0x5au8; size];
        group.throughput(Throughput::Bytes(size as u64));
        for (name, layer) in [
            ("v4-pcbc", EncLayer::V4Pcbc),
            ("v5-cbc-conf", EncLayer::V5Cbc { confounder: true }),
            ("hardened-cbc-mac", EncLayer::HardenedCbc),
        ] {
            group.bench_with_input(BenchmarkId::new(name, size), &data, |b, data| {
                let mut rng = Drbg::new(1);
                b.iter(|| layer.seal(&key, 7, std::hint::black_box(data), &mut rng).unwrap());
            });
        }
    }
    group.finish();
}

fn bench_open(c: &mut Criterion) {
    let key = DesKey::from_u64(0x0123456789ABCDEF).with_odd_parity();
    let mut group = c.benchmark_group("enc_layer_open");
    for size in [64usize, 1024, 8192] {
        let data = vec![0x5au8; size];
        group.throughput(Throughput::Bytes(size as u64));
        for (name, layer) in [
            ("v4-pcbc", EncLayer::V4Pcbc),
            ("v5-cbc-conf", EncLayer::V5Cbc { confounder: true }),
            ("hardened-cbc-mac", EncLayer::HardenedCbc),
        ] {
            let mut rng = Drbg::new(1);
            let ct = layer.seal(&key, 7, &data, &mut rng).unwrap();
            group.bench_with_input(BenchmarkId::new(name, size), &ct, |b, ct| {
                b.iter(|| layer.open(&key, 7, std::hint::black_box(ct)).unwrap());
            });
        }
    }
    group.finish();
}

fn bench_checksums(c: &mut Criterion) {
    use krb_crypto::checksum::{compute, ChecksumType};
    let key = DesKey::from_u64(0x0123456789ABCDEF).with_odd_parity();
    let data = vec![0xa5u8; 1024];
    let mut group = c.benchmark_group("checksum_1k");
    for (name, ctype, keyed) in [
        ("crc32", ChecksumType::Crc32, false),
        ("crc32-des", ChecksumType::Crc32Des, true),
        ("md4", ChecksumType::Md4, false),
        ("md4-des", ChecksumType::Md4Des, true),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| compute(ctype, keyed.then_some(&key), std::hint::black_box(&data)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_seal, bench_open, bench_checksums);
criterion_main!(benches);
