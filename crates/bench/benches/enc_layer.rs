//! E6 — encryption-layer throughput: V4 PCBC vs Draft-3 CBC(+confounder)
//! vs hardened CBC+MAC, across message sizes.

use kerberos::enclayer::EncLayer;
use krb_crypto::des::DesKey;
use krb_crypto::rng::Drbg;
use testkit::bench::{Harness, Throughput};

const LAYERS: [(&str, EncLayer); 3] = [
    ("v4-pcbc", EncLayer::V4Pcbc),
    ("v5-cbc-conf", EncLayer::V5Cbc { confounder: true }),
    ("hardened-cbc-mac", EncLayer::HardenedCbc),
];

fn bench_seal(h: &mut Harness) {
    let key = DesKey::from_u64(0x0123456789ABCDEF).with_odd_parity();
    for size in [64usize, 1024, 8192] {
        let data = vec![0x5au8; size];
        for (name, layer) in LAYERS {
            let mut rng = Drbg::new(1);
            h.run_throughput(
                &format!("enc_layer_seal/{name}/{size}"),
                Throughput::Bytes(size as u64),
                || layer.seal(&key, 7, std::hint::black_box(&data), &mut rng).unwrap(),
            );
        }
    }
}

fn bench_open(h: &mut Harness) {
    let key = DesKey::from_u64(0x0123456789ABCDEF).with_odd_parity();
    for size in [64usize, 1024, 8192] {
        let data = vec![0x5au8; size];
        for (name, layer) in LAYERS {
            let mut rng = Drbg::new(1);
            let ct = layer.seal(&key, 7, &data, &mut rng).unwrap();
            h.run_throughput(
                &format!("enc_layer_open/{name}/{size}"),
                Throughput::Bytes(size as u64),
                || layer.open(&key, 7, std::hint::black_box(&ct)).unwrap(),
            );
        }
    }
}

fn bench_checksums(h: &mut Harness) {
    use krb_crypto::checksum::{compute, ChecksumType};
    let key = DesKey::from_u64(0x0123456789ABCDEF).with_odd_parity();
    let data = vec![0xa5u8; 1024];
    for (name, ctype, keyed) in [
        ("crc32", ChecksumType::Crc32, false),
        ("crc32-des", ChecksumType::Crc32Des, true),
        ("md4", ChecksumType::Md4, false),
        ("md4-des", ChecksumType::Md4Des, true),
    ] {
        h.run(&format!("checksum_1k/{name}"), || {
            compute(ctype, keyed.then_some(&key), std::hint::black_box(&data)).unwrap()
        });
    }
}

fn main() {
    let mut h = Harness::new("enc_layer");
    bench_seal(&mut h);
    bench_open(&mut h);
    bench_checksums(&mut h);
    h.finish();
}
