//! E5 (bench half) — end-to-end cost of a full authentication under each
//! configuration (login + TGS + AP exchange on the simulated network).

use kerberos::appserver::connect_app;
use kerberos::client::{get_service_ticket, login, LoginInput, TgsParams};
use kerberos::testbed::standard_campus;
use kerberos::ProtocolConfig;
use krb_crypto::rng::Drbg;
use simnet::{Network, SimDuration};
use testkit::bench::Harness;

fn bench_full_auth(h: &mut Harness) {
    for config in ProtocolConfig::presets() {
        h.run_with_setup(
            &format!("full_auth_chain/{}", config.name),
            || {
                let mut net = Network::new();
                net.advance(SimDuration::from_secs(1_000_000));
                let realm = standard_campus(&mut net, &config, 9);
                (net, realm, Drbg::new(10))
            },
            |(mut net, realm, mut rng)| {
                let tgt = login(
                    &mut net,
                    &config,
                    realm.user_ep("pat"),
                    realm.kdc_ep,
                    &realm.user("pat"),
                    LoginInput::Password("correct-horse-battery"),
                    &mut rng,
                )
                .unwrap();
                let st = get_service_ticket(
                    &mut net,
                    &config,
                    realm.user_ep("pat"),
                    realm.kdc_ep,
                    &tgt,
                    &realm.service("echo"),
                    TgsParams::default(),
                    &mut rng,
                )
                .unwrap();
                connect_app(&mut net, &config, realm.user_ep("pat"), realm.service_ep("echo"), &st, &mut rng)
                    .unwrap()
            },
        );
    }
}

fn bench_login_only(h: &mut Harness) {
    for config in ProtocolConfig::presets() {
        h.run_with_setup(
            &format!("login_only/{}", config.name),
            || {
                let mut net = Network::new();
                net.advance(SimDuration::from_secs(1_000_000));
                let realm = standard_campus(&mut net, &config, 11);
                (net, realm, Drbg::new(12))
            },
            |(mut net, realm, mut rng)| {
                login(
                    &mut net,
                    &config,
                    realm.user_ep("pat"),
                    realm.kdc_ep,
                    &realm.user("pat"),
                    LoginInput::Password("correct-horse-battery"),
                    &mut rng,
                )
                .unwrap()
            },
        );
    }
}

fn main() {
    let mut h = Harness::new("auth_modes");
    bench_full_auth(&mut h);
    bench_login_only(&mut h);
    h.finish();
}
