//! E5 (bench half) — end-to-end cost of a full authentication under each
//! configuration (login + TGS + AP exchange on the simulated network).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kerberos::appserver::connect_app;
use kerberos::client::{get_service_ticket, login, LoginInput, TgsParams};
use kerberos::testbed::standard_campus;
use kerberos::ProtocolConfig;
use krb_crypto::rng::Drbg;
use simnet::{Network, SimDuration};

fn bench_full_auth(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_auth_chain");
    group.sample_size(20);
    for config in ProtocolConfig::presets() {
        group.bench_with_input(BenchmarkId::from_parameter(config.name), &config, |b, config| {
            b.iter_with_setup(
                || {
                    let mut net = Network::new();
                    net.advance(SimDuration::from_secs(1_000_000));
                    let realm = standard_campus(&mut net, config, 9);
                    (net, realm, Drbg::new(10))
                },
                |(mut net, realm, mut rng)| {
                    let tgt = login(
                        &mut net,
                        config,
                        realm.user_ep("pat"),
                        realm.kdc_ep,
                        &realm.user("pat"),
                        LoginInput::Password("correct-horse-battery"),
                        &mut rng,
                    )
                    .unwrap();
                    let st = get_service_ticket(
                        &mut net,
                        config,
                        realm.user_ep("pat"),
                        realm.kdc_ep,
                        &tgt,
                        &realm.service("echo"),
                        TgsParams::default(),
                        &mut rng,
                    )
                    .unwrap();
                    connect_app(&mut net, config, realm.user_ep("pat"), realm.service_ep("echo"), &st, &mut rng)
                        .unwrap()
                },
            );
        });
    }
    group.finish();
}

fn bench_login_only(c: &mut Criterion) {
    let mut group = c.benchmark_group("login_only");
    group.sample_size(20);
    for config in ProtocolConfig::presets() {
        group.bench_with_input(BenchmarkId::from_parameter(config.name), &config, |b, config| {
            b.iter_with_setup(
                || {
                    let mut net = Network::new();
                    net.advance(SimDuration::from_secs(1_000_000));
                    let realm = standard_campus(&mut net, config, 11);
                    (net, realm, Drbg::new(12))
                },
                |(mut net, realm, mut rng)| {
                    login(
                        &mut net,
                        config,
                        realm.user_ep("pat"),
                        realm.kdc_ep,
                        &realm.user("pat"),
                        LoginInput::Password("correct-horse-battery"),
                        &mut rng,
                    )
                    .unwrap()
                },
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_full_auth, bench_login_only);
criterion_main!(benches);
