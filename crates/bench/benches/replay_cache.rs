//! E3 (bench half) — replay-cache offer throughput as the cache grows.

use kerberos::replay_cache::ReplayCache;
use testkit::bench::Harness;

fn bench_offer(h: &mut Harness) {
    for preload in [0usize, 1_000, 100_000] {
        // Steady state: each offer advances time so the window holds
        // ~preload live entries (old ones expire as new arrive).
        let window = 300_000_000u64;
        let step = if preload == 0 { window } else { window / preload as u64 };
        let mut cache = ReplayCache::new(window);
        let mut now = 0u64;
        let mut n = 0u64;
        for _ in 0..preload {
            n += 1;
            now += step;
            cache.offer(&n.to_be_bytes(), now);
        }
        h.run(&format!("replay_cache_offer/{preload}"), || {
            n += 1;
            now += step;
            cache.offer(&n.to_be_bytes(), now)
        });
    }
}

fn bench_purge(h: &mut Harness) {
    for size in [1_000usize, 100_000] {
        h.run_with_setup(
            &format!("replay_cache_purge/{size}"),
            || {
                let mut cache = ReplayCache::new(300_000_000);
                for i in 0..size as u64 {
                    cache.offer(&i.to_be_bytes(), i * 1000);
                }
                cache
            },
            |mut cache| {
                cache.purge(size as u64 * 1000 + 300_000_001);
                cache
            },
        );
    }
}

fn main() {
    let mut h = Harness::new("replay_cache");
    bench_offer(&mut h);
    bench_purge(&mut h);
    h.finish();
}
