//! E3 (bench half) — replay-cache offer throughput as the cache grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kerberos::replay_cache::ReplayCache;

fn bench_offer(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay_cache_offer");
    group.sample_size(20);
    for preload in [0usize, 1_000, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(preload), &preload, |b, &preload| {
            // Steady state: each offer advances time so the window holds
            // ~preload live entries (old ones expire as new arrive).
            let window = 300_000_000u64;
            let step = if preload == 0 { window } else { window / preload as u64 };
            let mut cache = ReplayCache::new(window);
            let mut now = 0u64;
            let mut n = 0u64;
            for _ in 0..preload {
                n += 1;
                now += step;
                cache.offer(&n.to_be_bytes(), now);
            }
            b.iter(|| {
                n += 1;
                now += step;
                cache.offer(&n.to_be_bytes(), now)
            });
        });
    }
    group.finish();
}

fn bench_purge(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay_cache_purge");
    group.sample_size(20);
    for size in [1_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter_with_setup(
                || {
                    let mut cache = ReplayCache::new(300_000_000);
                    for i in 0..size as u64 {
                        cache.offer(&i.to_be_bytes(), i * 1000);
                    }
                    cache
                },
                |mut cache| {
                    cache.purge(size as u64 * 1000 + 300_000_001);
                    cache
                },
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_offer, bench_purge);
criterion_main!(benches);
