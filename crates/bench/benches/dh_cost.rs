//! E4 (bench half) — modular exponentiation cost per DH group, and the
//! full-exchange overhead the login DH layer adds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use krb_crypto::bignum::mod_exp;
use krb_crypto::dh::DhGroup;
use krb_crypto::rng::Drbg;

fn bench_modexp(c: &mut Criterion) {
    let mut group = c.benchmark_group("dh_modexp");
    group.sample_size(20);
    for g in [DhGroup::toy64(), DhGroup::small192(), DhGroup::oakley768(), DhGroup::oakley1024()] {
        let mut rng = Drbg::new(4);
        let kp = g.keypair(160.min(g.p.bit_len() - 1), &mut rng).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(g.name), &g, |b, g| {
            b.iter(|| mod_exp(&g.g, &kp.private, &g.p).unwrap());
        });
    }
    group.finish();
}

fn bench_full_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("dh_full_exchange");
    group.sample_size(10);
    for g in [DhGroup::small192(), DhGroup::oakley768()] {
        group.bench_with_input(BenchmarkId::from_parameter(g.name), &g, |b, g| {
            let mut rng = Drbg::new(5);
            b.iter(|| {
                let a = g.keypair(160.min(g.p.bit_len() - 1), &mut rng).unwrap();
                let bb = g.keypair(160.min(g.p.bit_len() - 1), &mut rng).unwrap();
                let s = g.shared_secret(&bb.public, &a.private).unwrap();
                DhGroup::derive_key(&s)
            });
        });
    }
    group.finish();
}

fn bench_dlog_attack(c: &mut Criterion) {
    let mut group = c.benchmark_group("dlog_bsgs");
    group.sample_size(10);
    let g = DhGroup::toy64();
    for bits in [16usize, 20, 24] {
        let mut rng = Drbg::new(6);
        let kp = g.keypair(bits, &mut rng).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(bits), &kp, |b, kp| {
            b.iter(|| krb_crypto::dlog::bsgs(&g.g, &kp.public, &g.p, 1u64 << bits).unwrap());
        });
    }
    group.finish();
}

fn bench_montgomery(c: &mut Criterion) {
    use krb_crypto::bignum::MontgomeryCtx;
    let mut group = c.benchmark_group("modexp_impl_768bit");
    group.sample_size(20);
    let g = DhGroup::oakley768();
    let mut rng = Drbg::new(7);
    let kp = g.keypair(160, &mut rng).unwrap();
    group.bench_function("division-based", |b| {
        b.iter(|| mod_exp(&g.g, &kp.private, &g.p).unwrap());
    });
    group.bench_function("montgomery", |b| {
        let ctx = MontgomeryCtx::new(&g.p).unwrap();
        b.iter(|| ctx.mod_exp(&g.g, &kp.private).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_modexp, bench_full_exchange, bench_dlog_attack, bench_montgomery);
criterion_main!(benches);
