//! E4 (bench half) — modular exponentiation cost per DH group, and the
//! full-exchange overhead the login DH layer adds.

use krb_crypto::bignum::mod_exp;
use krb_crypto::dh::DhGroup;
use krb_crypto::rng::Drbg;
use testkit::bench::Harness;

fn bench_modexp(h: &mut Harness) {
    for g in [DhGroup::toy64(), DhGroup::small192(), DhGroup::oakley768(), DhGroup::oakley1024()] {
        let mut rng = Drbg::new(4);
        let kp = g.keypair(160.min(g.p.bit_len() - 1), &mut rng).unwrap();
        h.run(&format!("dh_modexp/{}", g.name), || mod_exp(&g.g, &kp.private, &g.p).unwrap());
    }
}

fn bench_full_exchange(h: &mut Harness) {
    for g in [DhGroup::small192(), DhGroup::oakley768()] {
        let mut rng = Drbg::new(5);
        h.run(&format!("dh_full_exchange/{}", g.name), || {
            let a = g.keypair(160.min(g.p.bit_len() - 1), &mut rng).unwrap();
            let bb = g.keypair(160.min(g.p.bit_len() - 1), &mut rng).unwrap();
            let s = g.shared_secret(&bb.public, &a.private).unwrap();
            DhGroup::derive_key(&s)
        });
    }
}

fn bench_dlog_attack(h: &mut Harness) {
    let g = DhGroup::toy64();
    for bits in [16usize, 20, 24] {
        let mut rng = Drbg::new(6);
        let kp = g.keypair(bits, &mut rng).unwrap();
        h.run(&format!("dlog_bsgs/{bits}"), || {
            krb_crypto::dlog::bsgs(&g.g, &kp.public, &g.p, 1u64 << bits).unwrap()
        });
    }
}

fn bench_montgomery(h: &mut Harness) {
    use krb_crypto::bignum::MontgomeryCtx;
    let g = DhGroup::oakley768();
    let mut rng = Drbg::new(7);
    let kp = g.keypair(160, &mut rng).unwrap();
    h.run("modexp_impl_768bit/division-based", || mod_exp(&g.g, &kp.private, &g.p).unwrap());
    let ctx = MontgomeryCtx::new(&g.p).unwrap();
    h.run("modexp_impl_768bit/montgomery", || ctx.mod_exp(&g.g, &kp.private).unwrap());
}

fn main() {
    let mut h = Harness::new("dh_cost");
    bench_modexp(&mut h);
    bench_full_exchange(&mut h);
    bench_dlog_attack(&mut h);
    bench_montgomery(&mut h);
    h.finish();
}
