//! Deterministic token buckets.
//!
//! Levels are tracked in *token-microseconds* (one token =
//! [`TOKEN_UNITS`] units), so refill is exact integer arithmetic over
//! elapsed sim-time — no floats, no rounding drift, and two same-seed
//! runs see bit-identical bucket decisions.

/// Scale factor: one token, in internal level units.
pub const TOKEN_UNITS: u64 = 1_000_000;

/// A token bucket refilling at `rate_per_sec` tokens per second of
/// sim-time, holding at most `burst` tokens.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    rate_per_sec: u64,
    capacity_units: u64,
    level_units: u64,
    last_us: u64,
}

impl TokenBucket {
    /// A bucket that starts full (a quiet source gets its whole burst).
    pub fn new(rate_per_sec: u64, burst: u64, now_us: u64) -> Self {
        let capacity_units = burst.saturating_mul(TOKEN_UNITS);
        TokenBucket { rate_per_sec, capacity_units, level_units: capacity_units, last_us: now_us }
    }

    /// Credits tokens for the sim-time elapsed since the last refill.
    /// With `rate_per_sec` tokens/s, `Δt` µs is worth exactly
    /// `Δt · rate_per_sec` level units.
    fn refill(&mut self, now_us: u64) {
        let elapsed = now_us.saturating_sub(self.last_us);
        self.last_us = self.last_us.max(now_us);
        let credit = elapsed.saturating_mul(self.rate_per_sec);
        self.level_units = self.level_units.saturating_add(credit).min(self.capacity_units);
    }

    /// Takes one token if available. `false` means the caller is over
    /// rate and should be refused.
    pub fn try_take(&mut self, now_us: u64) -> bool {
        self.refill(now_us);
        if self.level_units >= TOKEN_UNITS {
            self.level_units -= TOKEN_UNITS;
            true
        } else {
            false
        }
    }

    /// Whole tokens currently available (after crediting elapsed time).
    pub fn level(&mut self, now_us: u64) -> u64 {
        self.refill(now_us);
        self.level_units / TOKEN_UNITS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_rate_limited() {
        let mut b = TokenBucket::new(2, 5, 0);
        // The full burst drains immediately...
        for _ in 0..5 {
            assert!(b.try_take(0));
        }
        assert!(!b.try_take(0), "burst exhausted");
        // ...then exactly rate tokens per second come back.
        assert!(b.try_take(500_000), "2/s → one token per 500ms");
        assert!(!b.try_take(600_000));
        assert!(b.try_take(1_000_000));
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut b = TokenBucket::new(1000, 3, 0);
        for _ in 0..3 {
            assert!(b.try_take(0));
        }
        // An hour idle still only buys the burst back.
        assert_eq!(b.level(3_600_000_000), 3);
    }

    #[test]
    fn sub_token_credit_accumulates_exactly() {
        let mut b = TokenBucket::new(1, 1, 0);
        assert!(b.try_take(0));
        // 999_999 µs at 1 token/s is one unit short of a token.
        assert!(!b.try_take(999_999));
        // The earlier partial credit is not lost: 1s total elapsed.
        assert!(b.try_take(1_000_000));
    }

    #[test]
    fn time_going_backwards_is_harmless() {
        let mut b = TokenBucket::new(1, 1, 1_000_000);
        assert!(b.try_take(1_000_000));
        // A stale (earlier) clock reading credits nothing and does not
        // rewind the refill origin.
        assert!(!b.try_take(500_000));
        assert!(b.try_take(2_000_000));
    }

    #[test]
    fn zero_rate_never_refills() {
        let mut b = TokenBucket::new(0, 2, 0);
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert!(!b.try_take(u64::MAX / 2));
    }
}
