//! Bounded admission queue with explicit load shedding.
//!
//! The queue is *virtual*: it models a bounded backlog of in-service
//! requests as a deque of completion times, admitting or shedding each
//! offer deterministically. Admitted requests are forwarded immediately
//! — the modeled queueing delay is reported as a metric
//! (`gateway.queue_wait`), not imposed on the wire — so the queue's job
//! is the *admission decision* and the occupancy/backpressure signals,
//! which is what the overload scenarios score.

use std::collections::VecDeque;

/// What to drop when the queue is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Refuse the arriving request (tail drop): protects requests
    /// already accepted, favors clients that got in early.
    ShedNewest,
    /// Evict the oldest queued request to admit the new one (head
    /// drop): under sustained overload the oldest entries are the ones
    /// whose clients have likely timed out already.
    ShedOldest,
}

impl ShedPolicy {
    pub fn label(self) -> &'static str {
        match self {
            ShedPolicy::ShedNewest => "shed-newest",
            ShedPolicy::ShedOldest => "shed-oldest",
        }
    }
}

/// Outcome of offering one request to the queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Admitted; `wait_us` is the modeled time the request spends
    /// queued before service starts, `occupancy` the backlog depth
    /// after admission.
    Admitted { wait_us: u64, occupancy: usize },
    /// Refused outright (shed-newest policy at capacity).
    Shed { occupancy: usize },
    /// Admitted by evicting the oldest queued request (shed-oldest
    /// policy at capacity) — one shed *and* one admission.
    AdmittedEvicting { wait_us: u64, occupancy: usize },
}

/// A bounded FIFO of modeled completion times.
#[derive(Clone, Debug)]
pub struct AdmissionQueue {
    service_us: u64,
    bound: usize,
    policy: ShedPolicy,
    backlog: VecDeque<u64>,
}

impl AdmissionQueue {
    pub fn new(bound: usize, service_us: u64, policy: ShedPolicy) -> Self {
        AdmissionQueue { service_us, bound: bound.max(1), policy, backlog: VecDeque::new() }
    }

    pub fn policy(&self) -> ShedPolicy {
        self.policy
    }

    /// Current backlog depth (after draining completed entries is the
    /// caller's view; this is the raw deque length).
    pub fn occupancy(&self) -> usize {
        self.backlog.len()
    }

    pub fn bound(&self) -> usize {
        self.bound
    }

    /// Offers one request at sim-time `now_us`.
    pub fn offer(&mut self, now_us: u64) -> Admission {
        // Entries whose modeled service finished by now leave the queue.
        while self.backlog.front().map(|&done| done <= now_us).unwrap_or(false) {
            self.backlog.pop_front();
        }
        let mut evicted = false;
        if self.backlog.len() >= self.bound {
            match self.policy {
                ShedPolicy::ShedNewest => {
                    return Admission::Shed { occupancy: self.backlog.len() };
                }
                ShedPolicy::ShedOldest => {
                    self.backlog.pop_front();
                    evicted = true;
                }
            }
        }
        // Service starts when the previous entry finishes (or now, if
        // the queue is idle); this entry completes one service time
        // later.
        let start = self.backlog.back().copied().unwrap_or(now_us).max(now_us);
        let done = start.saturating_add(self.service_us);
        self.backlog.push_back(done);
        let wait_us = start.saturating_sub(now_us);
        let occupancy = self.backlog.len();
        if evicted {
            Admission::AdmittedEvicting { wait_us, occupancy }
        } else {
            Admission::Admitted { wait_us, occupancy }
        }
    }

    /// Drops the backlog (gateway restart).
    pub fn reset(&mut self) {
        self.backlog.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_queue_admits_with_zero_wait() {
        let mut q = AdmissionQueue::new(4, 1_000, ShedPolicy::ShedNewest);
        assert_eq!(q.offer(0), Admission::Admitted { wait_us: 0, occupancy: 1 });
        assert_eq!(q.offer(0), Admission::Admitted { wait_us: 1_000, occupancy: 2 });
        assert_eq!(q.offer(0), Admission::Admitted { wait_us: 2_000, occupancy: 3 });
    }

    #[test]
    fn shed_newest_refuses_at_capacity() {
        let mut q = AdmissionQueue::new(2, 1_000, ShedPolicy::ShedNewest);
        q.offer(0);
        q.offer(0);
        assert_eq!(q.offer(0), Admission::Shed { occupancy: 2 });
        assert_eq!(q.occupancy(), 2, "shed request never entered the queue");
    }

    #[test]
    fn shed_oldest_evicts_to_admit() {
        let mut q = AdmissionQueue::new(2, 1_000, ShedPolicy::ShedOldest);
        q.offer(0);
        q.offer(0);
        match q.offer(0) {
            Admission::AdmittedEvicting { occupancy, .. } => assert_eq!(occupancy, 2),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert_eq!(q.occupancy(), 2);
    }

    #[test]
    fn completed_entries_drain_with_time() {
        let mut q = AdmissionQueue::new(2, 1_000, ShedPolicy::ShedNewest);
        q.offer(0);
        q.offer(0);
        // At t=2000 both modeled services are done; the queue is empty
        // again and a new offer waits zero.
        assert_eq!(q.offer(2_000), Admission::Admitted { wait_us: 0, occupancy: 1 });
    }

    #[test]
    fn occupancy_never_exceeds_bound() {
        for policy in [ShedPolicy::ShedNewest, ShedPolicy::ShedOldest] {
            let mut q = AdmissionQueue::new(3, 10_000, policy);
            for t in 0..50u64 {
                q.offer(t);
                assert!(q.occupancy() <= q.bound(), "policy {policy:?}");
            }
        }
    }

    #[test]
    fn zero_bound_is_clamped_to_one() {
        let mut q = AdmissionQueue::new(0, 1_000, ShedPolicy::ShedNewest);
        assert!(matches!(q.offer(0), Admission::Admitted { .. }));
        assert!(matches!(q.offer(0), Admission::Shed { .. }));
    }
}
