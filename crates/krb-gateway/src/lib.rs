//! # krb-gateway
//!
//! An overload-hardened front-end for the KDC cluster: a simnet host
//! that multiplexes many client flows onto the KDCs and survives abuse.
//! The paper's password-guessing discussion (reproduced as E2) shows
//! the KDC will happily serve an unbounded stream of AS requests to an
//! attacker harvesting guessable keys; the admission path built here is
//! the server-side defense the paper's "limit the rate of requests from
//! a single source" enhancement gestures at, grown into a full front
//! tier.
//!
//! Layers, outermost first:
//!
//! - [`bucket`] — deterministic token buckets (global and per-source),
//!   integer-µs math only so refill is exact and byte-identical across
//!   runs.
//! - [`penalty`] — per-principal preauth-storm throttling with
//!   exponential penalty windows: consecutive preauthentication
//!   failures against one principal buy the principal's callers an
//!   exponentially growing timeout.
//! - [`queue`] — a bounded admission queue with an explicit
//!   load-shedding policy (shed-newest vs. shed-oldest) and modeled
//!   queueing delay.
//! - [`gateway`] — the [`simnet::Service`] tying them together: parse
//!   (through a protocol-supplied [`gateway::Frontend`]), throttle,
//!   queue, forward to an upstream KDC, classify the reply, and answer
//!   refused clients with a *typed* server-busy reply so their backoff
//!   engages instead of timing out.
//!
//! The crate depends only on `simnet` and `krb-trace`; the Kerberos
//! protocol knowledge (message parsing, the busy reply's wire format)
//! is injected by the `kerberos` crate through the [`gateway::Frontend`]
//! trait, keeping the admission machinery reusable and the dependency
//! graph acyclic.

pub mod bucket;
pub mod gateway;
pub mod penalty;
pub mod queue;

pub use bucket::TokenBucket;
pub use gateway::{Frontend, Gateway, GatewayConfig, GatewayStats, ReplyClass, RequestClass};
pub use penalty::{PenaltyBox, PenaltyConfig};
pub use queue::{Admission, AdmissionQueue, ShedPolicy};
