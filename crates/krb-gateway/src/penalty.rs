//! Per-principal preauth-storm throttling.
//!
//! The paper's password-guessing attack (E2) needs many AS exchanges
//! against one principal; each failed preauthentication here is a
//! *strike* against that principal, and once strikes cross a threshold
//! every further AS request for the principal is refused for an
//! exponentially growing penalty window. A successful login clears the
//! record, and strikes decay on their own so a user who fat-fingers a
//! password twice on Monday is not one typo from lockout on Friday.

use std::collections::BTreeMap;

/// Tuning for the penalty box.
#[derive(Clone, Debug)]
pub struct PenaltyConfig {
    /// Strikes tolerated before a penalty window opens.
    pub strike_threshold: u32,
    /// First window's length; each strike past the threshold doubles it.
    pub base_window_us: u64,
    /// Cap on doublings, bounding the worst-case lockout.
    pub max_doublings: u32,
    /// A strike is forgotten if no new strike lands within this long.
    pub decay_us: u64,
}

impl PenaltyConfig {
    /// Defaults matched to the E2 storm scenarios: three free strikes,
    /// then 2s, 4s, ... up to ~2min windows; strikes decay after 10min.
    pub fn standard() -> Self {
        PenaltyConfig {
            strike_threshold: 3,
            base_window_us: 2_000_000,
            max_doublings: 6,
            decay_us: 600_000_000,
        }
    }
}

#[derive(Clone, Debug)]
struct PenaltyEntry {
    strikes: u32,
    last_strike_us: u64,
    blocked_until_us: u64,
}

/// Strike bookkeeping for every principal the gateway has seen fail.
#[derive(Clone, Debug)]
pub struct PenaltyBox {
    config: PenaltyConfig,
    entries: BTreeMap<String, PenaltyEntry>,
}

impl PenaltyBox {
    pub fn new(config: PenaltyConfig) -> Self {
        PenaltyBox { config, entries: BTreeMap::new() }
    }

    /// Whether `principal` is inside an open penalty window.
    pub fn is_blocked(&self, principal: &str, now_us: u64) -> bool {
        self.entries
            .get(principal)
            .map(|e| now_us < e.blocked_until_us)
            .unwrap_or(false)
    }

    /// Records a preauthentication failure for `principal`. Returns the
    /// penalty window just opened (µs), if strikes crossed the
    /// threshold.
    pub fn strike(&mut self, principal: &str, now_us: u64) -> Option<u64> {
        let cfg = &self.config;
        let entry = self
            .entries
            .entry(principal.to_string())
            .or_insert(PenaltyEntry { strikes: 0, last_strike_us: now_us, blocked_until_us: 0 });
        if now_us.saturating_sub(entry.last_strike_us) > cfg.decay_us {
            entry.strikes = 0;
        }
        entry.strikes = entry.strikes.saturating_add(1);
        entry.last_strike_us = now_us;
        if entry.strikes <= cfg.strike_threshold {
            return None;
        }
        let over = (entry.strikes - cfg.strike_threshold - 1).min(cfg.max_doublings);
        let window = cfg.base_window_us.saturating_shl(over);
        entry.blocked_until_us = now_us.saturating_add(window);
        Some(window)
    }

    /// Forgets `principal` entirely (successful authentication).
    pub fn clear(&mut self, principal: &str) {
        self.entries.remove(principal);
    }

    /// Drops all state (gateway restart: the box is volatile).
    pub fn reset(&mut self) {
        self.entries.clear();
    }

    /// Number of principals currently carrying strikes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// `u64::checked_shl` that saturates instead of wrapping; shift counts
/// are capped by `max_doublings` but belt-and-braces here keeps the
/// arithmetic total.
trait SaturatingShl {
    fn saturating_shl(self, n: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, n: u32) -> u64 {
        self.checked_shl(n).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PenaltyConfig {
        PenaltyConfig {
            strike_threshold: 2,
            base_window_us: 1_000_000,
            max_doublings: 3,
            decay_us: 60_000_000,
        }
    }

    #[test]
    fn threshold_strikes_are_free() {
        let mut pb = PenaltyBox::new(cfg());
        assert_eq!(pb.strike("pat", 0), None);
        assert_eq!(pb.strike("pat", 1), None);
        assert!(!pb.is_blocked("pat", 2));
    }

    #[test]
    fn windows_double_then_cap() {
        let mut pb = PenaltyBox::new(cfg());
        pb.strike("pat", 0);
        pb.strike("pat", 0);
        assert_eq!(pb.strike("pat", 0), Some(1_000_000));
        assert_eq!(pb.strike("pat", 0), Some(2_000_000));
        assert_eq!(pb.strike("pat", 0), Some(4_000_000));
        assert_eq!(pb.strike("pat", 0), Some(8_000_000));
        // max_doublings = 3 caps the window.
        assert_eq!(pb.strike("pat", 0), Some(8_000_000));
    }

    #[test]
    fn block_expires_with_time() {
        let mut pb = PenaltyBox::new(cfg());
        for _ in 0..3 {
            pb.strike("pat", 0);
        }
        assert!(pb.is_blocked("pat", 500_000));
        assert!(!pb.is_blocked("pat", 1_000_000));
    }

    #[test]
    fn success_clears_the_record() {
        let mut pb = PenaltyBox::new(cfg());
        for _ in 0..3 {
            pb.strike("pat", 0);
        }
        pb.clear("pat");
        assert!(!pb.is_blocked("pat", 0));
        assert_eq!(pb.strike("pat", 0), None, "history gone, strikes restart");
    }

    #[test]
    fn strikes_decay_when_quiet() {
        let mut pb = PenaltyBox::new(cfg());
        pb.strike("pat", 0);
        pb.strike("pat", 0);
        // Past decay_us: the old strikes are forgotten before this one
        // lands, so it counts as the first.
        assert_eq!(pb.strike("pat", 61_000_000), None);
    }

    #[test]
    fn principals_are_independent() {
        let mut pb = PenaltyBox::new(cfg());
        for _ in 0..3 {
            pb.strike("victim", 0);
        }
        assert!(pb.is_blocked("victim", 0));
        assert!(!pb.is_blocked("sam", 0));
        assert_eq!(pb.len(), 1);
    }
}
