//! The gateway service: admission control in front of the KDC cluster.
//!
//! Request path, in order:
//!
//! 1. **Penalty box** — AS requests for a principal inside an open
//!    penalty window are refused (preauth-storm defense).
//! 2. **Global token bucket** — caps aggregate request rate.
//! 3. **Per-source token bucket** — caps any one client address.
//! 4. **Admission queue** — bounded backlog with an explicit shed
//!    policy.
//!
//! Every refusal is a *typed* busy reply built by the protocol-supplied
//! [`Frontend`], so well-behaved clients back off instead of timing
//! out. Admitted requests are forwarded transparently to an upstream
//! KDC (round-robin); the KDC's reply is classified on the way back to
//! feed the penalty box.

use crate::bucket::TokenBucket;
use crate::penalty::{PenaltyBox, PenaltyConfig};
use crate::queue::{Admission, AdmissionQueue, ShedPolicy};
use krb_trace::{EventKind, Tracer, Value};
use simnet::net::{Endpoint, NetError};
use simnet::{Service, ServiceCtx};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// What the front-end sees in an inbound request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RequestClass {
    /// An initial-authentication request naming `principal` — the
    /// password-guessing surface, subject to penalty windows.
    AsRequest { principal: String },
    /// Anything else (TGS traffic, garbage): rate-limited and queued
    /// but never penalized by principal.
    Other,
}

/// What the front-end sees in an upstream reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplyClass {
    /// Preauthentication failed — a wrong password (or a guess).
    PreauthFailure,
    /// The principal authenticated successfully.
    Success,
    /// Anything else (other errors, TGS replies).
    Other,
}

/// Protocol knowledge injected by the kerberos crate: the gateway
/// itself never parses Kerberos wire formats.
pub trait Frontend {
    /// Classifies an inbound request payload.
    fn classify_request(&self, req: &[u8]) -> RequestClass;
    /// Classifies an upstream reply payload.
    fn classify_reply(&self, reply: &[u8]) -> ReplyClass;
    /// Builds the typed server-busy reply sent to refused clients.
    fn busy_reply(&self, reason: &'static str) -> Vec<u8>;
    /// For sharded clusters ([`Gateway::new_sharded`]): which shard
    /// group owns the principal this request names, if the request
    /// pins one. `None` means any shard can serve it (TGS traffic
    /// against a replicated TGS key, undecodable payloads). The value
    /// must be a pure function of `(req, shard_count)` so two gateways
    /// — or two runs — route identically.
    fn route_shard(&self, _req: &[u8], _shard_count: usize) -> Option<usize> {
        None
    }
}

/// Gateway tuning.
#[derive(Clone, Debug)]
pub struct GatewayConfig {
    /// Aggregate admission rate (requests/s of sim-time).
    pub global_rate_per_sec: u64,
    /// Aggregate burst allowance.
    pub global_burst: u64,
    /// Per-source-address admission rate.
    pub per_source_rate_per_sec: u64,
    /// Per-source burst allowance.
    pub per_source_burst: u64,
    /// Admission queue depth.
    pub queue_bound: usize,
    /// Modeled per-request service time for queue-wait accounting.
    pub queue_service_us: u64,
    /// What to drop when the queue is full.
    pub shed_policy: ShedPolicy,
    /// Preauth-storm penalty tuning.
    pub penalty: PenaltyConfig,
}

impl GatewayConfig {
    /// Defaults sized for the campus testbed: the global bucket admits
    /// a healthy shift-change flash crowd but caps a storm; one source
    /// gets a small slice of it.
    pub fn standard() -> Self {
        GatewayConfig {
            global_rate_per_sec: 200,
            global_burst: 100,
            per_source_rate_per_sec: 8,
            per_source_burst: 16,
            queue_bound: 64,
            queue_service_us: 5_000,
            shed_policy: ShedPolicy::ShedNewest,
            penalty: PenaltyConfig::standard(),
        }
    }
}

/// Cumulative admission counters; survive restarts (they describe the
/// whole run, not the current boot).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Requests forwarded upstream.
    pub admitted: u64,
    /// Requests dropped by the admission queue (either policy).
    pub shed: u64,
    /// Requests refused by a token bucket.
    pub throttled: u64,
    /// AS requests refused by an open penalty window.
    pub penalized: u64,
    /// Forwards whose upstream leg failed (crash, loss, no route).
    pub upstream_failures: u64,
    /// Times the gateway itself crash-restarted.
    pub restarts: u64,
}

/// The front-end service. Bind it on the realm's well-known KDC port
/// and point clients at it; `upstreams` are the real KDCs.
pub struct Gateway<F: Frontend> {
    config: GatewayConfig,
    frontend: F,
    upstreams: Vec<Endpoint>,
    next_upstream: usize,
    /// Source address → upstream index. Kerberos' hardened login is a
    /// stateful two-round handshake (challenge drawn on one KDC must be
    /// answered on the same KDC), so the gateway pins each source to
    /// one upstream — classic L4 session affinity — assigning new
    /// sources round-robin and advancing a pin only when its upstream
    /// fails.
    affinity: BTreeMap<u32, usize>,
    /// Shard-aware routing ([`Gateway::new_sharded`]): group `i` holds
    /// the primary-then-replicas endpoint list for shard `i`. `None`
    /// means the flat round-robin mode above.
    shard_groups: Option<Vec<Vec<Endpoint>>>,
    /// Per-group failover pin: which endpoint of the group currently
    /// serves it. Advanced on upstream failure, reset on restart.
    shard_pins: Vec<usize>,
    /// Shard group of the forward currently in flight, for pin
    /// advancement when the upstream leg fails.
    in_flight_shard: Option<usize>,
    global: TokenBucket,
    per_source: BTreeMap<u32, TokenBucket>,
    penalties: PenaltyBox,
    queue: AdmissionQueue,
    /// Principal named by the request currently being forwarded; the
    /// forward is synchronous (handle → wire → on_forward_reply within
    /// one dispatch), so one slot suffices.
    in_flight: Option<String>,
    pub stats: GatewayStats,
    trace: Tracer,
    trace_now_us: u64,
    /// Reused formatting buffer for per-request metric labels, so the
    /// admitted-counter label costs no allocation per request (A001).
    addr_scratch: String,
}

impl<F: Frontend> Gateway<F> {
    pub fn new(config: GatewayConfig, frontend: F, upstreams: Vec<Endpoint>) -> Self {
        let global = TokenBucket::new(config.global_rate_per_sec, config.global_burst, 0);
        let queue =
            AdmissionQueue::new(config.queue_bound, config.queue_service_us, config.shed_policy);
        let penalties = PenaltyBox::new(config.penalty.clone());
        Gateway {
            config,
            frontend,
            upstreams,
            next_upstream: 0,
            affinity: BTreeMap::new(),
            shard_groups: None,
            shard_pins: Vec::new(),
            in_flight_shard: None,
            global,
            per_source: BTreeMap::new(),
            penalties,
            queue,
            in_flight: None,
            stats: GatewayStats::default(),
            trace: Tracer::new(),
            trace_now_us: 0,
            addr_scratch: String::new(),
        }
    }

    /// A gateway fronting a *sharded* cluster: `shard_groups[i]` lists
    /// shard `i`'s KDCs, primary first, replicas after. Requests the
    /// frontend can attribute to a principal ([`Frontend::route_shard`])
    /// go to the group owning that principal; everything else spreads
    /// deterministically by source address. Within a group the current
    /// pin serves until its upstream fails, then the pin advances to the
    /// next replica — the same failover discipline as source affinity,
    /// but per shard.
    pub fn new_sharded(
        config: GatewayConfig,
        frontend: F,
        shard_groups: Vec<Vec<Endpoint>>,
    ) -> Self {
        let flat: Vec<Endpoint> = shard_groups.iter().flatten().copied().collect();
        let pins = vec![0; shard_groups.len()];
        let mut gw = Gateway::new(config, frontend, flat);
        gw.shard_groups = Some(shard_groups);
        gw.shard_pins = pins;
        gw
    }

    /// The upstream KDC endpoints, in rotation order.
    pub fn upstreams(&self) -> &[Endpoint] {
        &self.upstreams
    }

    /// The configured shard groups, if this gateway routes by shard.
    pub fn shard_groups(&self) -> Option<&[Vec<Endpoint>]> {
        self.shard_groups.as_deref()
    }

    fn throttle(&mut self, from: Endpoint, reason: &'static str) -> Option<Vec<u8>> {
        self.trace.emit(
            EventKind::GatewayThrottle,
            self.trace_now_us,
            vec![("src", Value::Str(from.addr.to_string())), ("reason", Value::str(reason))],
        );
        self.trace.counter("gateway.throttled", &from.addr.to_string(), 1);
        Some(self.frontend.busy_reply(reason))
    }

    fn shed_event(&mut self, from: Endpoint, occupancy: usize) {
        self.trace.emit(
            EventKind::GatewayShed,
            self.trace_now_us,
            vec![
                ("src", Value::Str(from.addr.to_string())),
                ("policy", Value::str(self.queue.policy().label())),
                ("occupancy", Value::U64(occupancy as u64)),
            ],
        );
        self.trace.counter("gateway.shed", &from.addr.to_string(), 1);
    }
}

impl<F: Frontend + 'static> Service for Gateway<F> {
    fn handle(&mut self, ctx: &mut ServiceCtx, req: &[u8], from: Endpoint) -> Option<Vec<u8>> {
        self.trace = ctx.tracer.clone();
        self.trace_now_us = ctx.true_time.0;
        let now_us = ctx.local_time.0;

        let principal = match self.frontend.classify_request(req) {
            RequestClass::AsRequest { principal } => Some(principal),
            RequestClass::Other => None,
        };

        // 1. Penalty box: a principal under a preauth-storm window is
        //    refused before any tokens are spent on it.
        if let Some(p) = &principal {
            if self.penalties.is_blocked(p, now_us) {
                self.stats.penalized = self.stats.penalized.saturating_add(1);
                return self.throttle(from, "penalty window");
            }
        }

        // 2. Global bucket.
        if !self.global.try_take(now_us) {
            self.stats.throttled = self.stats.throttled.saturating_add(1);
            return self.throttle(from, "global rate exceeded");
        }

        // 3. Per-source bucket.
        let src_bucket = self.per_source.entry(from.addr.0).or_insert_with(|| {
            TokenBucket::new(
                self.config.per_source_rate_per_sec,
                self.config.per_source_burst,
                now_us,
            )
        });
        if !src_bucket.try_take(now_us) {
            self.stats.throttled = self.stats.throttled.saturating_add(1);
            return self.throttle(from, "source rate exceeded");
        }

        // 4. Admission queue.
        let wait_us = match self.queue.offer(now_us) {
            Admission::Shed { occupancy } => {
                self.stats.shed = self.stats.shed.saturating_add(1);
                self.shed_event(from, occupancy);
                return Some(self.frontend.busy_reply("queue full"));
            }
            Admission::AdmittedEvicting { wait_us, occupancy } => {
                // The evicted request was already forwarded (the queue
                // is virtual); the shed shows up in the *accounting* —
                // its slot's work is disowned.
                self.stats.shed = self.stats.shed.saturating_add(1);
                self.shed_event(from, occupancy);
                wait_us
            }
            Admission::Admitted { wait_us, .. } => wait_us,
        };
        self.trace.gauge("gateway.occupancy", &ctx.host_name, self.queue.occupancy() as u64);
        self.trace.observe_us("gateway.queue_wait", &ctx.host_name, wait_us);

        // Forward upstream. Sharded mode routes by owning shard group;
        // flat mode forwards to this source's pinned upstream, with new
        // sources assigned round-robin.
        if self.upstreams.is_empty() {
            self.stats.upstream_failures = self.stats.upstream_failures.saturating_add(1);
            return Some(self.frontend.busy_reply("no upstream"));
        }
        let up = match &self.shard_groups {
            Some(groups) if !groups.is_empty() => {
                let gc = groups.len();
                let gi = self
                    .frontend
                    .route_shard(req, gc)
                    .map_or(from.addr.0 as usize % gc, |g| g % gc);
                let pin = self.shard_pins.get(gi).copied().unwrap_or(0);
                let ep = groups
                    .get(gi)
                    .filter(|g| !g.is_empty())
                    .map(|g| g[pin % g.len()]);
                match ep {
                    Some(ep) => {
                        self.in_flight_shard = Some(gi);
                        ep
                    }
                    None => {
                        self.stats.upstream_failures =
                            self.stats.upstream_failures.saturating_add(1);
                        return Some(self.frontend.busy_reply("no upstream"));
                    }
                }
            }
            _ => {
                let n = self.upstreams.len();
                let idx = *self.affinity.entry(from.addr.0).or_insert_with(|| {
                    let idx = self.next_upstream % n;
                    self.next_upstream = self.next_upstream.wrapping_add(1);
                    idx
                }) % n;
                match self.upstreams.get(idx) {
                    Some(ep) => *ep,
                    None => {
                        self.stats.upstream_failures =
                            self.stats.upstream_failures.saturating_add(1);
                        return Some(self.frontend.busy_reply("no upstream"));
                    }
                }
            }
        };
        self.stats.admitted = self.stats.admitted.saturating_add(1);
        self.addr_scratch.clear();
        let _ = write!(self.addr_scratch, "{}", from.addr);
        self.trace.counter("gateway.admitted", &self.addr_scratch, 1);
        self.in_flight = principal;
        ctx.forward_to(up, req.to_vec());
        None
    }

    fn on_forward_reply(
        &mut self,
        ctx: &mut ServiceCtx,
        upstream: Result<&[u8], &NetError>,
        from: Endpoint,
    ) -> Option<Vec<u8>> {
        self.trace = ctx.tracer.clone();
        self.trace_now_us = ctx.true_time.0;
        let now_us = ctx.local_time.0;
        let principal = self.in_flight.take();
        let shard = self.in_flight_shard.take();
        match upstream {
            Ok(bytes) => {
                if let Some(p) = &principal {
                    match self.frontend.classify_reply(bytes) {
                        ReplyClass::PreauthFailure => {
                            if let Some(window) = self.penalties.strike(p, now_us) {
                                self.trace.counter("gateway.penalty_windows", p, 1);
                                self.trace.note(
                                    self.trace_now_us,
                                    &format!(
                                        "gateway opens {}ms penalty window for {p}",
                                        window / 1_000
                                    ),
                                );
                            }
                        }
                        ReplyClass::Success => self.penalties.clear(p),
                        ReplyClass::Other => {}
                    }
                }
                Some(bytes.to_vec())
            }
            Err(_) => {
                // The KDC behind the pin is unreachable: move the pin
                // to the next replica — the shard group's pin in
                // sharded mode, the source's affinity pin otherwise.
                // The typed busy reply sends the client into backoff,
                // and its retry lands on the new upstream.
                self.stats.upstream_failures = self.stats.upstream_failures.saturating_add(1);
                match (shard, &self.shard_groups) {
                    (Some(gi), Some(groups)) => {
                        let group_len = groups.get(gi).map_or(0, Vec::len);
                        if let (Some(pin), true) = (self.shard_pins.get_mut(gi), group_len > 0) {
                            *pin = (*pin + 1) % group_len;
                            self.trace.counter("gateway.shard_failovers", &gi.to_string(), 1);
                        }
                    }
                    _ => {
                        if !self.upstreams.is_empty() {
                            if let Some(idx) = self.affinity.get_mut(&from.addr.0) {
                                *idx = (*idx + 1) % self.upstreams.len();
                            }
                        }
                    }
                }
                Some(self.frontend.busy_reply("upstream unavailable"))
            }
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }

    /// Crash-restart: all admission state is volatile. A rebooted
    /// gateway starts with full buckets, an empty queue, and a clean
    /// penalty box — exactly the window the crash-restart scenario
    /// probes.
    fn on_restart(&mut self, ctx: &mut ServiceCtx) {
        self.trace = ctx.tracer.clone();
        self.trace_now_us = ctx.true_time.0;
        let boot_us = ctx.local_time.0;
        self.global =
            TokenBucket::new(self.config.global_rate_per_sec, self.config.global_burst, boot_us);
        self.per_source.clear();
        self.penalties.reset();
        self.queue.reset();
        self.in_flight = None;
        self.affinity.clear();
        self.next_upstream = 0;
        self.in_flight_shard = None;
        for pin in &mut self.shard_pins {
            *pin = 0;
        }
        self.stats.restarts = self.stats.restarts.saturating_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::clock::SimTime;
    use simnet::net::Addr;

    /// A toy protocol: requests `b"AS:<name>"` are AS requests; replies
    /// `b"FAIL"` / `b"OK"` classify; busy replies are
    /// `b"BUSY:<reason>"`.
    struct ToyFrontend;
    impl Frontend for ToyFrontend {
        fn classify_request(&self, req: &[u8]) -> RequestClass {
            match req.strip_prefix(b"AS:") {
                Some(name) => RequestClass::AsRequest {
                    principal: String::from_utf8_lossy(name).into_owned(),
                },
                None => RequestClass::Other,
            }
        }
        fn classify_reply(&self, reply: &[u8]) -> ReplyClass {
            match reply {
                b"FAIL" => ReplyClass::PreauthFailure,
                b"OK" => ReplyClass::Success,
                _ => ReplyClass::Other,
            }
        }
        fn busy_reply(&self, reason: &'static str) -> Vec<u8> {
            let mut v = b"BUSY:".to_vec();
            v.extend_from_slice(reason.as_bytes());
            v
        }
    }

    fn kdc_ep() -> Endpoint {
        Endpoint::new(Addr::new(10, 0, 0, 250), 88)
    }

    fn client_ep() -> Endpoint {
        Endpoint::new(Addr::new(10, 0, 0, 1), 1024)
    }

    fn ctx_at(us: u64) -> ServiceCtx {
        ServiceCtx::detached(SimTime(us), "gw", Addr::new(10, 0, 0, 254), false)
    }

    fn gw(config: GatewayConfig) -> Gateway<ToyFrontend> {
        Gateway::new(config, ToyFrontend, vec![kdc_ep()])
    }

    #[test]
    fn admitted_request_is_forwarded_verbatim() {
        let mut g = gw(GatewayConfig::standard());
        let mut ctx = ctx_at(0);
        let reply = g.handle(&mut ctx, b"AS:pat", client_ep());
        assert_eq!(reply, None, "admission defers to the forward");
        assert_eq!(ctx.forward, Some((kdc_ep(), b"AS:pat".to_vec())));
        assert_eq!(g.stats.admitted, 1);
    }

    #[test]
    fn per_source_bucket_throttles_a_single_chatty_client() {
        let mut cfg = GatewayConfig::standard();
        cfg.per_source_rate_per_sec = 1;
        cfg.per_source_burst = 2;
        let mut g = gw(cfg);
        let mut admitted = 0;
        for _ in 0..10 {
            let mut ctx = ctx_at(0);
            if g.handle(&mut ctx, b"AS:pat", client_ep()).is_none() {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 2, "burst only; same instant buys no refill");
        assert_eq!(g.stats.throttled, 8);
        // A different source still gets through.
        let other = Endpoint::new(Addr::new(10, 0, 0, 2), 1024);
        let mut ctx = ctx_at(0);
        assert_eq!(g.handle(&mut ctx, b"AS:sam", other), None);
    }

    #[test]
    fn global_bucket_caps_the_aggregate() {
        let mut cfg = GatewayConfig::standard();
        cfg.global_rate_per_sec = 1;
        cfg.global_burst = 3;
        let mut g = gw(cfg);
        let mut refused = Vec::new();
        for i in 0..6u8 {
            let src = Endpoint::new(Addr::new(10, 0, 0, i + 1), 1024);
            let mut ctx = ctx_at(0);
            if let Some(reply) = g.handle(&mut ctx, b"AS:pat", src) {
                refused.push(reply);
            }
        }
        assert_eq!(refused.len(), 3);
        assert!(refused.iter().all(|r| r == b"BUSY:global rate exceeded"));
    }

    #[test]
    fn preauth_failures_open_a_penalty_window() {
        let mut cfg = GatewayConfig::standard();
        cfg.penalty.strike_threshold = 1;
        cfg.penalty.base_window_us = 1_000_000;
        let mut g = gw(cfg);
        // Two failed attempts: strike 1 free, strike 2 opens a window.
        for _ in 0..2 {
            let mut ctx = ctx_at(0);
            assert_eq!(g.handle(&mut ctx, b"AS:victim", client_ep()), None);
            let mut fctx = ctx_at(0);
            let relayed = g.on_forward_reply(&mut fctx, Ok(b"FAIL"), client_ep());
            assert_eq!(relayed, Some(b"FAIL".to_vec()));
        }
        // Inside the window the gateway refuses without forwarding.
        let mut ctx = ctx_at(500_000);
        let reply = g.handle(&mut ctx, b"AS:victim", client_ep());
        assert_eq!(reply, Some(b"BUSY:penalty window".to_vec()));
        assert_eq!(ctx.forward, None);
        assert_eq!(g.stats.penalized, 1);
        // After it expires the principal may try again.
        let mut ctx = ctx_at(1_100_000);
        assert_eq!(g.handle(&mut ctx, b"AS:victim", client_ep()), None);
    }

    #[test]
    fn success_clears_the_penalty_record() {
        let mut cfg = GatewayConfig::standard();
        cfg.penalty.strike_threshold = 1;
        let mut g = gw(cfg);
        let mut ctx = ctx_at(0);
        assert_eq!(g.handle(&mut ctx, b"AS:pat", client_ep()), None);
        let mut fctx = ctx_at(0);
        g.on_forward_reply(&mut fctx, Ok(b"FAIL"), client_ep());
        // The principal then logs in successfully: record cleared, so
        // the *next* failure is strike one again, not strike two.
        let mut ctx = ctx_at(1_000);
        assert_eq!(g.handle(&mut ctx, b"AS:pat", client_ep()), None);
        let mut fctx = ctx_at(1_000);
        g.on_forward_reply(&mut fctx, Ok(b"OK"), client_ep());
        let mut ctx = ctx_at(2_000);
        assert_eq!(g.handle(&mut ctx, b"AS:pat", client_ep()), None);
        let mut fctx = ctx_at(2_000);
        g.on_forward_reply(&mut fctx, Ok(b"FAIL"), client_ep());
        let mut ctx = ctx_at(3_000);
        assert_eq!(g.handle(&mut ctx, b"AS:pat", client_ep()), None, "no window yet");
    }

    #[test]
    fn queue_full_sheds_with_typed_busy() {
        let mut cfg = GatewayConfig::standard();
        cfg.queue_bound = 2;
        cfg.queue_service_us = 1_000_000;
        cfg.global_rate_per_sec = 1_000;
        cfg.global_burst = 1_000;
        cfg.per_source_rate_per_sec = 1_000;
        cfg.per_source_burst = 1_000;
        let mut g = gw(cfg);
        let mut replies = Vec::new();
        for _ in 0..3 {
            let mut ctx = ctx_at(0);
            replies.push(g.handle(&mut ctx, b"AS:pat", client_ep()));
        }
        assert_eq!(replies[0], None);
        assert_eq!(replies[1], None);
        assert_eq!(replies[2], Some(b"BUSY:queue full".to_vec()));
        assert_eq!(g.stats.shed, 1);
        assert_eq!(g.stats.admitted, 2);
    }

    #[test]
    fn upstream_failure_becomes_typed_busy() {
        let mut g = gw(GatewayConfig::standard());
        let mut ctx = ctx_at(0);
        assert_eq!(g.handle(&mut ctx, b"AS:pat", client_ep()), None);
        let mut fctx = ctx_at(0);
        let err = NetError::NoReply;
        let reply = g.on_forward_reply(&mut fctx, Err(&err), client_ep());
        assert_eq!(reply, Some(b"BUSY:upstream unavailable".to_vec()));
        assert_eq!(g.stats.upstream_failures, 1);
    }

    #[test]
    fn sources_pin_to_one_upstream_and_spread_round_robin() {
        let a = Endpoint::new(Addr::new(10, 0, 0, 250), 88);
        let b = Endpoint::new(Addr::new(10, 0, 0, 249), 88);
        let mut g = Gateway::new(GatewayConfig::standard(), ToyFrontend, vec![a, b]);
        let src = |i: u8| Endpoint::new(Addr::new(10, 0, 0, i), 1024);
        let target_of = |g: &mut Gateway<ToyFrontend>, s: Endpoint| {
            let mut ctx = ctx_at(0);
            assert_eq!(g.handle(&mut ctx, b"x", s), None);
            let (ep, _) = ctx.forward.expect("forwarded");
            let mut fctx = ctx_at(0);
            g.on_forward_reply(&mut fctx, Ok(b"OK"), s);
            ep
        };
        // New sources are assigned round-robin...
        assert_eq!(target_of(&mut g, src(1)), a);
        assert_eq!(target_of(&mut g, src(2)), b);
        assert_eq!(target_of(&mut g, src(3)), a);
        // ...and each source sticks to its pin (stateful handshakes
        // like the hardened challenge round need one KDC per dialog).
        assert_eq!(target_of(&mut g, src(1)), a);
        assert_eq!(target_of(&mut g, src(2)), b);
    }

    #[test]
    fn upstream_failure_moves_the_source_pin() {
        let a = Endpoint::new(Addr::new(10, 0, 0, 250), 88);
        let b = Endpoint::new(Addr::new(10, 0, 0, 249), 88);
        let mut g = Gateway::new(GatewayConfig::standard(), ToyFrontend, vec![a, b]);
        let mut ctx = ctx_at(0);
        assert_eq!(g.handle(&mut ctx, b"x", client_ep()), None);
        assert_eq!(ctx.forward.map(|(ep, _)| ep), Some(a));
        // Upstream a is down: busy reply, pin advances to b.
        let mut fctx = ctx_at(0);
        let err = NetError::HostDown(a.addr);
        let reply = g.on_forward_reply(&mut fctx, Err(&err), client_ep());
        assert_eq!(reply, Some(b"BUSY:upstream unavailable".to_vec()));
        // The client's busy retry lands on b.
        let mut ctx = ctx_at(1);
        assert_eq!(g.handle(&mut ctx, b"x", client_ep()), None);
        assert_eq!(ctx.forward.map(|(ep, _)| ep), Some(b));
    }

    #[test]
    fn restart_wipes_admission_state_but_keeps_cumulative_stats() {
        let mut cfg = GatewayConfig::standard();
        cfg.per_source_rate_per_sec = 0;
        cfg.per_source_burst = 1;
        cfg.penalty.strike_threshold = 0;
        let mut g = gw(cfg);
        // Exhaust the source bucket and open a penalty window.
        let mut ctx = ctx_at(0);
        assert_eq!(g.handle(&mut ctx, b"AS:pat", client_ep()), None);
        let mut fctx = ctx_at(0);
        g.on_forward_reply(&mut fctx, Ok(b"FAIL"), client_ep());
        let mut ctx = ctx_at(1);
        assert!(g.handle(&mut ctx, b"AS:sam", client_ep()).is_some(), "bucket empty");
        let before = g.stats;
        // Reboot: buckets refill, penalty box empties.
        let mut rctx = ctx_at(2);
        g.on_restart(&mut rctx);
        let mut ctx = ctx_at(3);
        assert_eq!(g.handle(&mut ctx, b"AS:pat", client_ep()), None, "state wiped");
        assert_eq!(g.stats.restarts, 1);
        assert_eq!(g.stats.admitted, before.admitted + 1, "stats are cumulative");
    }

    /// The toy frontend with shard knowledge: AS:<name> routes by the
    /// byte-sum of the name.
    struct ShardedToy;
    impl Frontend for ShardedToy {
        fn classify_request(&self, req: &[u8]) -> RequestClass {
            ToyFrontend.classify_request(req)
        }
        fn classify_reply(&self, reply: &[u8]) -> ReplyClass {
            ToyFrontend.classify_reply(reply)
        }
        fn busy_reply(&self, reason: &'static str) -> Vec<u8> {
            ToyFrontend.busy_reply(reason)
        }
        fn route_shard(&self, req: &[u8], shard_count: usize) -> Option<usize> {
            let name = req.strip_prefix(b"AS:")?;
            Some(name.iter().map(|b| usize::from(*b)).sum::<usize>() % shard_count)
        }
    }

    fn shard_eps() -> Vec<Vec<Endpoint>> {
        // Two shards, each with a primary and one replica.
        let ep = |d: u8| Endpoint::new(Addr::new(10, 0, 0, d), 88);
        vec![vec![ep(250), ep(249)], vec![ep(248), ep(247)]]
    }

    fn forward_target(g: &mut Gateway<ShardedToy>, req: &[u8], src: Endpoint) -> Endpoint {
        let mut ctx = ctx_at(0);
        assert_eq!(g.handle(&mut ctx, req, src), None, "expected admission");
        let (ep, _) = ctx.forward.expect("forwarded");
        let mut fctx = ctx_at(0);
        g.on_forward_reply(&mut fctx, Ok(b"OK"), src);
        ep
    }

    #[test]
    fn sharded_as_requests_follow_the_principal_not_the_source() {
        let groups = shard_eps();
        let mut g = Gateway::new_sharded(GatewayConfig::standard(), ShardedToy, groups.clone());
        let expect_of = |name: &str| {
            let gi = ShardedToy.route_shard(format!("AS:{name}").as_bytes(), 2).unwrap();
            groups[gi][0]
        };
        for src_octet in 1..=4u8 {
            let src = Endpoint::new(Addr::new(10, 0, 0, src_octet), 1024);
            for name in ["pat", "sam", "u17", "u18"] {
                let ep = forward_target(&mut g, format!("AS:{name}").as_bytes(), src);
                assert_eq!(ep, expect_of(name), "{name} from source {src_octet}");
            }
        }
    }

    #[test]
    fn sharded_failover_advances_the_group_pin_and_restart_resets_it() {
        let groups = shard_eps();
        let mut g = Gateway::new_sharded(GatewayConfig::standard(), ShardedToy, groups.clone());
        // Find a name owned by shard 0.
        let name = ["pat", "sam", "kim", "lee"]
            .iter()
            .find(|n| ShardedToy.route_shard(format!("AS:{n}").as_bytes(), 2) == Some(0))
            .expect("some name routes to shard 0");
        let req = format!("AS:{name}").into_bytes();
        assert_eq!(forward_target(&mut g, &req, client_ep()), groups[0][0]);
        // Shard 0's primary dies mid-forward: the pin advances to its
        // replica, and only shard 0 is affected.
        let mut ctx = ctx_at(0);
        assert_eq!(g.handle(&mut ctx, &req, client_ep()), None);
        let err = NetError::HostDown(groups[0][0].addr);
        let mut fctx = ctx_at(0);
        let reply = g.on_forward_reply(&mut fctx, Err(&err), client_ep());
        assert_eq!(reply, Some(b"BUSY:upstream unavailable".to_vec()));
        assert_eq!(forward_target(&mut g, &req, client_ep()), groups[0][1]);
        // A restart clears the pin back to the primary.
        let mut rctx = ctx_at(10);
        g.on_restart(&mut rctx);
        assert_eq!(forward_target(&mut g, &req, client_ep()), groups[0][0]);
    }

    #[test]
    fn sharded_other_traffic_spreads_deterministically_by_source() {
        let groups = shard_eps();
        let mut g = Gateway::new_sharded(GatewayConfig::standard(), ShardedToy, groups.clone());
        for src_octet in 1..=4u8 {
            let src = Endpoint::new(Addr::new(10, 0, 0, src_octet), 1024);
            let expected = &groups[Addr::new(10, 0, 0, src_octet).0 as usize % 2][0];
            let a = forward_target(&mut g, b"TGS:whatever", src);
            let b = forward_target(&mut g, b"TGS:whatever", src);
            assert_eq!(a, *expected);
            assert_eq!(b, *expected, "same source keeps the same group");
        }
    }

    #[test]
    fn no_upstreams_is_refused_not_panicked() {
        let mut g = Gateway::new(GatewayConfig::standard(), ToyFrontend, Vec::new());
        let mut ctx = ctx_at(0);
        let reply = g.handle(&mut ctx, b"AS:pat", client_ep());
        assert_eq!(reply, Some(b"BUSY:no upstream".to_vec()));
        assert_eq!(g.stats.upstream_failures, 1);
    }
}
