//! Property tests for the admission-control gateway: queue and bucket
//! invariants hold for arbitrary traffic schedules, penalty windows are
//! bounded (a starved principal always recovers), and the full
//! shed/admit decision stream is a pure function of (seed, fault plan).

use krb_gateway::{
    AdmissionQueue, Frontend, Gateway, GatewayConfig, PenaltyBox, PenaltyConfig, ReplyClass,
    RequestClass, ShedPolicy, TokenBucket,
};
use simnet::clock::SimTime;
use simnet::{Addr, Endpoint, FaultPlan, Host, Network, Service, ServiceCtx, SimDuration};
use testkit::prelude::*;

/// Toy protocol shared by the simnet properties: `AS:<name>` requests,
/// `OK`/`FAIL` replies, `BUSY:<reason>` refusals.
struct ToyFrontend;
impl Frontend for ToyFrontend {
    fn classify_request(&self, req: &[u8]) -> RequestClass {
        match req.strip_prefix(b"AS:") {
            Some(name) => RequestClass::AsRequest {
                principal: String::from_utf8_lossy(name).into_owned(),
            },
            None => RequestClass::Other,
        }
    }
    fn classify_reply(&self, reply: &[u8]) -> ReplyClass {
        match reply {
            b"FAIL" => ReplyClass::PreauthFailure,
            b"OK" => ReplyClass::Success,
            _ => ReplyClass::Other,
        }
    }
    fn busy_reply(&self, reason: &'static str) -> Vec<u8> {
        let mut v = b"BUSY:".to_vec();
        v.extend_from_slice(reason.as_bytes());
        v
    }
}

/// An upstream that fails every third AS request (so the penalty path
/// and the success path both run) and echoes everything else.
struct ToyKdc {
    n: u64,
}
impl Service for ToyKdc {
    fn handle(&mut self, _ctx: &mut ServiceCtx, req: &[u8], _from: Endpoint) -> Option<Vec<u8>> {
        self.n += 1;
        if req.starts_with(b"AS:") {
            Some(if self.n.is_multiple_of(3) { b"FAIL".to_vec() } else { b"OK".to_vec() })
        } else {
            Some(req.to_vec())
        }
    }
}

testkit::prop! {
    /// However requests arrive in time, the backlog never exceeds the
    /// configured bound — under either shed policy.
    fn queue_occupancy_never_exceeds_bound(
        bound in 0usize..24,
        service_us in 1u64..50_000,
        newest in any::<bool>(),
        gaps in collection::vec(0u64..20_000, 0..200),
    ) {
        let policy = if newest { ShedPolicy::ShedNewest } else { ShedPolicy::ShedOldest };
        let mut q = AdmissionQueue::new(bound, service_us, policy);
        let mut now = 0u64;
        for gap in gaps {
            now += gap;
            let _ = q.offer(now);
            prop_assert!(
                q.occupancy() <= q.bound(),
                "occupancy {} exceeded bound {}",
                q.occupancy(),
                q.bound()
            );
        }
    }

    /// A token bucket admits at most burst + rate·elapsed requests, and
    /// its level never exceeds capacity, for any arrival schedule.
    fn bucket_admissions_are_rate_bounded(
        rate in 0u64..100,
        burst in 1u64..50,
        gaps in collection::vec(0u64..200_000, 1..150),
    ) {
        let mut b = TokenBucket::new(rate, burst, 0);
        let mut now = 0u64;
        let mut admitted = 0u64;
        for gap in gaps {
            now += gap;
            prop_assert!(b.level(now) <= burst, "level exceeded capacity");
            if b.try_take(now) {
                admitted += 1;
            }
        }
        // Integer refill truncates, so the true allowance is at most the
        // real-number bound.
        let allowance = burst + rate * now / 1_000_000 + 1;
        prop_assert!(
            admitted <= allowance,
            "{admitted} admissions exceeded the {allowance}-token allowance"
        );
    }

    /// Penalty windows are bounded: whatever the storm did, the
    /// principal is unblocked one maximal window after its last strike.
    /// This is the unit-level form of "a starved legitimate client
    /// eventually authenticates once the storm subsides".
    fn penalty_windows_always_expire(
        threshold in 0u32..5,
        base_us in 1u64..10_000_000,
        max_doublings in 0u32..8,
        strikes in 1usize..40,
        gap_us in 0u64..100_000,
    ) {
        let config = PenaltyConfig {
            strike_threshold: threshold,
            base_window_us: base_us,
            max_doublings,
            decay_us: u64::MAX,
        };
        let mut p = PenaltyBox::new(config);
        let mut now = 0u64;
        for _ in 0..strikes {
            let _ = p.strike("victim", now);
            now += gap_us;
        }
        let max_window = base_us.saturating_shl_or_max(max_doublings);
        prop_assert!(
            !p.is_blocked("victim", now + max_window),
            "principal still blocked one maximal window after the last strike"
        );
    }

    /// The full decision stream — which requests are admitted, shed,
    /// throttled, penalized — is a pure function of (seed, fault plan):
    /// two runs of the same generated schedule under the same crash
    /// window produce byte-identical traces and stats.
    fn shed_admit_sequence_is_deterministic [24] (
        seed in any::<u64>(),
        crash_round in 0u64..6,
        schedule in collection::vec((0u8..4, 0u64..80_000), 1..60),
    ) {
        let run = |schedule: &[(u8, u64)]| {
            let mut net = Network::new();
            net.advance(SimDuration::from_secs(1_000));

            let kdc = Addr::new(10, 0, 0, 250);
            let mut kdc_host = Host::new("kdc", vec![kdc]);
            kdc_host.bind(88, Box::new(ToyKdc { n: 0 }));
            net.add_host(kdc_host);

            let gw_addr = Addr::new(10, 0, 0, 254);
            let mut cfg = GatewayConfig::standard();
            cfg.per_source_rate_per_sec = 2;
            cfg.per_source_burst = 3;
            cfg.global_rate_per_sec = 5;
            cfg.global_burst = 6;
            cfg.queue_bound = 4;
            let mut gw_host = Host::new("gw", vec![gw_addr]);
            gw_host.bind(
                88,
                Box::new(Gateway::new(cfg, ToyFrontend, vec![Endpoint::new(kdc, 88)])),
            );
            net.add_host(gw_host);

            let clients: Vec<Addr> = (1..=4).map(|i| Addr::new(10, 0, 0, i)).collect();
            for (i, c) in clients.iter().enumerate() {
                net.add_host(Host::new(&format!("c{i}"), vec![*c]));
            }

            // Crash window derived from the generated round index.
            let t0 = net.now().0;
            let from = t0 + crash_round * 200_000;
            net.set_fault_plan(FaultPlan::new(seed).crash(
                gw_addr,
                SimTime(from),
                SimTime(from + 200_000),
            ));

            let gw_ep = Endpoint::new(gw_addr, 88);
            let mut outcomes = Vec::new();
            for (who, gap) in schedule {
                net.advance(SimDuration(*gap));
                let src = Endpoint::new(clients[usize::from(*who) % clients.len()], 1024);
                let name = if *who == 0 { "victim" } else { "user" };
                let r = net.rpc(src, gw_ep, format!("AS:{name}").into_bytes());
                outcomes.push(format!("{r:?}"));
            }
            net.pump();
            (outcomes, format!("{:?}", net.tracer().events()))
        };

        let a = run(&schedule);
        let b = run(&schedule);
        prop_assert_eq!(a.0, b.0, "reply stream diverged across same-seed runs");
        prop_assert_eq!(a.1, b.1, "trace diverged across same-seed runs");
    }
}

/// Saturating `<<` helper mirroring the penalty box arithmetic.
trait SaturatingShl {
    fn saturating_shl_or_max(self, shift: u32) -> Self;
}
impl SaturatingShl for u64 {
    fn saturating_shl_or_max(self, shift: u32) -> u64 {
        if shift >= 64 || self > (u64::MAX >> shift) {
            u64::MAX
        } else {
            self << shift
        }
    }
}
