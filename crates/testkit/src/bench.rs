//! A lightweight wall-clock bench harness, replacing `criterion`.
//!
//! Model: per benchmark, a warmup phase calibrates how many iterations
//! fit in one sample window, then `samples` timed batches are taken and
//! reduced to min / median / p95 / mean nanoseconds per iteration. Each
//! suite prints an aligned text table and writes a JSON report to
//! `target/testkit-bench/<suite>.json` so the experiment tables in
//! EXPERIMENTS.md can be regenerated and diffed mechanically.
//!
//! Environment knobs:
//!
//! - `TESTKIT_BENCH_SAMPLES` — timed batches per benchmark (default 30)
//! - `TESTKIT_BENCH_WARMUP_MS` — warmup per benchmark (default 100)
//! - `TESTKIT_BENCH_SAMPLE_MS` — target wall time per batch (default 10)
//! - `TESTKIT_BENCH_QUICK=1` — CI preset (5 samples, 5 ms / 2 ms)
//! - `TESTKIT_BENCH_JSON=1` — also print the JSON report to stdout

use std::time::{Duration, Instant};

/// Work-per-iteration annotation, for derived throughput columns.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration (reported as MB/s).
    Bytes(u64),
    /// Logical elements processed per iteration (reported as Kelem/s).
    Elements(u64),
}

/// One benchmark's reduced measurements (nanoseconds per iteration).
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark id, e.g. `"enc_layer_seal/v4-pcbc/1024"`.
    pub id: String,
    /// Timed batches taken.
    pub samples: usize,
    /// Iterations per batch.
    pub iters_per_sample: u64,
    /// Fastest batch, ns/iter.
    pub min_ns: f64,
    /// Median batch, ns/iter.
    pub median_ns: f64,
    /// 95th-percentile batch, ns/iter.
    pub p95_ns: f64,
    /// Mean over all batches, ns/iter.
    pub mean_ns: f64,
    /// Optional work annotation for throughput reporting.
    pub throughput: Option<Throughput>,
}

impl BenchResult {
    fn throughput_cell(&self) -> String {
        match self.throughput {
            None => String::new(),
            Some(Throughput::Bytes(b)) => {
                format!("{:.1} MB/s", b as f64 / self.median_ns * 1e9 / 1e6)
            }
            Some(Throughput::Elements(n)) => {
                format!("{:.1} Kelem/s", n as f64 / self.median_ns * 1e9 / 1e3)
            }
        }
    }

    fn json(&self) -> String {
        let tp = match self.throughput {
            None => "null".to_string(),
            Some(Throughput::Bytes(b)) => format!("{{\"bytes\":{b}}}"),
            Some(Throughput::Elements(n)) => format!("{{\"elements\":{n}}}"),
        };
        format!(
            "{{\"id\":{id:?},\"samples\":{samples},\"iters_per_sample\":{ips},\
             \"min_ns\":{min:.1},\"median_ns\":{median:.1},\"p95_ns\":{p95:.1},\
             \"mean_ns\":{mean:.1},\"throughput\":{tp}}}",
            id = self.id,
            samples = self.samples,
            ips = self.iters_per_sample,
            min = self.min_ns,
            median = self.median_ns,
            p95 = self.p95_ns,
            mean = self.mean_ns,
        )
    }
}

/// A bench suite: runs benchmarks, accumulates results, reports on
/// [`Harness::finish`].
pub struct Harness {
    suite: String,
    samples: usize,
    warmup: Duration,
    sample_target: Duration,
    results: Vec<BenchResult>,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|s| s.trim().parse().ok()).unwrap_or(default)
}

impl Harness {
    /// A harness for one suite (usually one `benches/*.rs` file).
    pub fn new(suite: &str) -> Self {
        let quick = std::env::var("TESTKIT_BENCH_QUICK").map(|v| v == "1").unwrap_or(false);
        let (def_samples, def_warmup, def_sample) = if quick { (5, 5, 2) } else { (30, 100, 10) };
        Harness {
            suite: suite.to_string(),
            samples: env_u64("TESTKIT_BENCH_SAMPLES", def_samples) as usize,
            warmup: Duration::from_millis(env_u64("TESTKIT_BENCH_WARMUP_MS", def_warmup)),
            sample_target: Duration::from_millis(env_u64("TESTKIT_BENCH_SAMPLE_MS", def_sample)),
            results: Vec::new(),
        }
    }

    /// Benchmarks `f`, recording under `id`.
    pub fn run<R>(&mut self, id: &str, f: impl FnMut() -> R) {
        self.record(id, None, f);
    }

    /// Benchmarks `f` with a throughput annotation.
    pub fn run_throughput<R>(&mut self, id: &str, tp: Throughput, f: impl FnMut() -> R) {
        self.record(id, Some(tp), f);
    }

    /// Benchmarks `routine`, re-running `setup` untimed before every
    /// timed call (for routines that consume fresh state — the
    /// `iter_with_setup` pattern).
    pub fn run_with_setup<T, R>(
        &mut self,
        id: &str,
        mut setup: impl FnMut() -> T,
        mut routine: impl FnMut(T) -> R,
    ) {
        // Warmup: at least one full setup+routine pass.
        let warm_start = Instant::now();
        loop {
            let input = setup();
            std::hint::black_box(routine(input));
            if warm_start.elapsed() >= self.warmup {
                break;
            }
        }
        let mut per_iter = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            per_iter.push(t0.elapsed().as_secs_f64() * 1e9);
        }
        self.push(id, None, 1, per_iter);
    }

    fn record<R>(&mut self, id: &str, tp: Option<Throughput>, mut f: impl FnMut() -> R) {
        // Warmup and calibration: count iterations in the warmup window,
        // then size batches to the per-sample target.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let batch = ((self.sample_target.as_secs_f64() / per_iter) as u64).clamp(1, 1_000_000_000);

        let mut per_iter_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            per_iter_ns.push(t0.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
        self.push(id, tp, batch, per_iter_ns);
    }

    fn push(&mut self, id: &str, tp: Option<Throughput>, batch: u64, mut ns: Vec<f64>) {
        ns.sort_by(|a, b| a.total_cmp(b));
        let n = ns.len();
        let result = BenchResult {
            id: id.to_string(),
            samples: n,
            iters_per_sample: batch,
            min_ns: ns[0],
            median_ns: ns[n / 2],
            p95_ns: ns[(n * 95 / 100).min(n - 1)],
            mean_ns: ns.iter().sum::<f64>() / n as f64,
            throughput: tp,
        };
        eprintln!(
            "  {:<44} median {:>12}  p95 {:>12}  {}",
            result.id,
            fmt_ns(result.median_ns),
            fmt_ns(result.p95_ns),
            result.throughput_cell()
        );
        self.results.push(result);
    }

    /// Prints the suite table and writes the JSON report. Returns the
    /// results for programmatic use.
    pub fn finish(self) -> Vec<BenchResult> {
        let mut out = String::new();
        out.push_str(&format!(
            "\n== bench suite: {} ({} samples/bench) ==\n",
            self.suite, self.samples
        ));
        out.push_str(&format!(
            "{:<44} {:>12} {:>12} {:>12} {:>12}  {}\n",
            "id", "min", "median", "p95", "mean", "throughput"
        ));
        out.push_str(&"-".repeat(110));
        out.push('\n');
        for r in &self.results {
            out.push_str(&format!(
                "{:<44} {:>12} {:>12} {:>12} {:>12}  {}\n",
                r.id,
                fmt_ns(r.min_ns),
                fmt_ns(r.median_ns),
                fmt_ns(r.p95_ns),
                fmt_ns(r.mean_ns),
                r.throughput_cell(),
            ));
        }
        println!("{out}");

        let json = format!(
            "{{\"suite\":{:?},\"results\":[{}]}}",
            self.suite,
            self.results.iter().map(BenchResult::json).collect::<Vec<_>>().join(",")
        );
        if std::env::var("TESTKIT_BENCH_JSON").map(|v| v == "1").unwrap_or(false) {
            println!("{json}");
        }
        let dir = std::path::Path::new("target").join("testkit-bench");
        if std::fs::create_dir_all(&dir).is_ok() {
            let path = dir.join(format!("{}.json", self.suite));
            if std::fs::write(&path, &json).is_ok() {
                println!("json report: {}", path.display());
            }
        }
        self.results
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Harness {
        let mut h = Harness::new("selftest");
        h.samples = 5;
        h.warmup = Duration::from_millis(1);
        h.sample_target = Duration::from_millis(1);
        h
    }

    #[test]
    fn measures_and_orders_stats() {
        let mut h = tiny();
        h.run("noop", || std::hint::black_box(1u64 + 1));
        h.run_throughput("tp", Throughput::Bytes(1024), || std::hint::black_box([0u8; 64]));
        let mut sink = 0u64;
        h.run_with_setup("setup", || 21u64, |v| sink = v * 2);
        let results = h.results.clone();
        assert_eq!(results.len(), 3);
        for r in &results {
            assert!(r.min_ns <= r.median_ns && r.median_ns <= r.p95_ns, "{r:?}");
            assert!(r.min_ns > 0.0);
        }
        assert!(results[1].throughput_cell().contains("MB/s"));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let r = BenchResult {
            id: "x/y".into(),
            samples: 3,
            iters_per_sample: 10,
            min_ns: 1.0,
            median_ns: 2.0,
            p95_ns: 3.0,
            mean_ns: 2.0,
            throughput: Some(Throughput::Elements(512)),
        };
        let j = r.json();
        assert!(j.contains("\"id\":\"x/y\""));
        assert!(j.contains("\"median_ns\":2.0"));
        assert!(j.contains("\"elements\":512"));
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(512.0), "512 ns");
        assert_eq!(fmt_ns(1500.0), "1.50 us");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
    }
}
