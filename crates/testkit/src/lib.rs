//! # testkit
//!
//! Hermetic, in-tree test infrastructure for the kerberos-limits
//! workspace — the replacement for the `rand`, `proptest`, `criterion`,
//! and `parking_lot` crates-io dependencies, so `cargo build --release
//! && cargo test -q` succeeds with the network disabled and produces
//! bit-for-bit identical results across runs.
//!
//! Three pieces:
//!
//! - [`rng`] — [`TestRng`](rng::TestRng), a deterministic splittable
//!   PRNG built on `krb-crypto`'s SplitMix64 `Drbg`. Root seed from
//!   `TESTKIT_SEED`; printed on every property failure for replay.
//! - [`prop`] — a property-testing mini-framework: strategies for
//!   integers, vectors, options, strings and unions, the [`prop!`]
//!   macro, configurable case counts, and greedy shrinking.
//! - [`bench`] — a wall-clock bench harness (warmup + N samples,
//!   median/p95, JSON reports under `target/testkit-bench/`).
//!
//! ## Replaying a failure
//!
//! A failing property prints its root seed and a replay line:
//!
//! ```text
//! property 'proptests::cbc_roundtrip' failed at case 17/64 (root seed 123, 2 shrink steps)
//! minimal counterexample: (...)
//! replay: TESTKIT_SEED=123 cargo test -q cbc_roundtrip
//! ```
//!
//! Setting `TESTKIT_SEED` regenerates the identical case sequence;
//! `TESTKIT_CASES` scales how many cases every property runs.

pub mod bench;
pub mod prop;
pub mod rng;

pub use rng::{seed_from_env, TestRng, DEFAULT_SEED, SEED_ENV};

/// One-stop imports for test files:
/// `use testkit::prelude::*;`
pub mod prelude {
    pub use crate::prop::{
        any, boxed, collection, option, string, Arbitrary, BoxedStrategy, Just, Strategy,
    };
    pub use crate::rng::TestRng;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof};
}
