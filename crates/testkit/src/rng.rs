//! The testkit's deterministic, splittable PRNG.
//!
//! Built on `krb-crypto`'s SplitMix64 [`Drbg`] so test randomness and
//! protocol randomness share one audited generator. Every run is
//! reproducible: the root seed comes from the `TESTKIT_SEED` environment
//! variable (decimal or `0x`-hex) and is printed whenever a property
//! fails, so any failure can be replayed exactly.

use krb_crypto::rng::{Drbg, RandomSource};

/// Environment variable holding the root seed for a test run.
pub const SEED_ENV: &str = "TESTKIT_SEED";

/// Default root seed when `TESTKIT_SEED` is unset. Arbitrary but fixed:
/// runs are bit-for-bit reproducible out of the box.
pub const DEFAULT_SEED: u64 = 0x1991_B311_0519_0B1E;

/// Reads the root seed from `TESTKIT_SEED`, falling back to
/// [`DEFAULT_SEED`]. Accepts decimal (`12345`) or hex (`0xBEEF`).
pub fn seed_from_env() -> u64 {
    match std::env::var(SEED_ENV) {
        Err(_) => DEFAULT_SEED,
        Ok(s) => parse_seed(&s)
            .unwrap_or_else(|| panic!("{SEED_ENV}={s:?} is not a u64 (decimal or 0x-hex)")),
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// A deterministic, splittable PRNG for tests, workload generation, and
/// attack campaigns.
///
/// Wraps [`Drbg`] and implements [`RandomSource`], so a `TestRng` can be
/// handed to any protocol API that takes the simulated hardware RNG.
/// [`TestRng::split`] derives an independent child stream, so concurrent
/// or nested consumers never perturb each other's draws.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: Drbg,
}

impl TestRng {
    /// A generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        TestRng { inner: Drbg::new(seed) }
    }

    /// A generator seeded from `TESTKIT_SEED` (or the default). Returns
    /// the seed too, so callers can print it for replay.
    pub fn from_env() -> (Self, u64) {
        let seed = seed_from_env();
        (TestRng::new(seed), seed)
    }

    /// Derives the deterministic sub-generator for one property-test
    /// case: a pure function of (root seed, test name, case index).
    pub fn for_case(root_seed: u64, name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with seed and case index through
        // one SplitMix64 step each so nearby cases decorrelate.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut d = Drbg::new(root_seed ^ h);
        let a = d.next_u64();
        let mut d2 = Drbg::new(a.wrapping_add(case.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        TestRng { inner: Drbg::new(d2.next_u64()) }
    }

    /// Splits off an independent child generator. The parent advances by
    /// one draw; the child's stream shares no state with the parent's
    /// subsequent output.
    pub fn split(&mut self) -> Self {
        let s = self.inner.next_u64();
        // Decorrelate: a plain Drbg::new(s) child would replay draws the
        // parent is about to make.
        TestRng { inner: Drbg::new(s ^ 0x6a09_e667_f3bc_c908) }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Next raw 128-bit draw (two 64-bit draws, high word first).
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.inner.next_u64()) << 64) | u128::from(self.inner.next_u64())
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.inner.next_below(bound)
    }

    /// Uniform value in `[0, bound)` for 128-bit bounds.
    pub fn below_u128(&mut self, bound: u128) -> u128 {
        assert!(bound > 0);
        let zone = u128::MAX - u128::MAX % bound;
        loop {
            let v = self.next_u128();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform `usize` index in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 uniform bits into the mantissa.
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Fills a buffer with random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        self.inner.fill_bytes(buf);
    }
}

impl RandomSource for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_across_instances() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = TestRng::new(1);
        let mut child = parent.split();
        let child_draws: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        let parent_draws: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        assert_ne!(child_draws, parent_draws);
        // And the split itself is deterministic.
        let mut parent2 = TestRng::new(1);
        let mut child2 = parent2.split();
        assert_eq!(child_draws, (0..8).map(|_| child2.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn for_case_is_pure() {
        let mut a = TestRng::for_case(3, "mod::test_x", 5);
        let mut b = TestRng::for_case(3, "mod::test_x", 5);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case(3, "mod::test_x", 6);
        let mut d = TestRng::for_case(3, "mod::test_y", 5);
        let x = TestRng::for_case(3, "mod::test_x", 5).next_u64();
        assert_ne!(c.next_u64(), x);
        assert_ne!(d.next_u64(), x);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = TestRng::new(9);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn below_u128_in_range() {
        let mut r = TestRng::new(11);
        for bound in [1u128, 2, 1 << 70, u128::MAX] {
            for _ in 0..20 {
                assert!(r.below_u128(bound) < bound);
            }
        }
    }

    #[test]
    fn parse_seed_forms() {
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("0xff"), Some(255));
        assert_eq!(parse_seed("0XFF"), Some(255));
        assert_eq!(parse_seed("nope"), None);
    }
}
