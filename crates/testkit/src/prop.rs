//! A deterministic property-testing mini-framework.
//!
//! Replaces the crates-io `proptest` dependency with an in-tree engine
//! that is hermetic (no network, no build scripts) and bit-for-bit
//! reproducible: every generated case is a pure function of
//! (`TESTKIT_SEED`, test name, case index). On failure the runner
//! greedily shrinks the counterexample and prints the seed plus a
//! one-line replay recipe.
//!
//! The surface deliberately mirrors the subset of proptest this
//! repository used:
//!
//! - [`any::<T>()`](any) for integers, `bool`, `u128`, and `Option<T>`;
//! - integer ranges as strategies (`0usize..4`, `1u8..=5`, `1u128..`);
//! - [`Just`], [`prop_oneof!`], `.prop_map(..)`;
//! - [`collection::vec`], [`option::of`], [`string::of`];
//! - the [`prop!`] macro generating one `#[test]` per property, with an
//!   optional per-test case count: `fn name [64] (x in strat) { .. }`.
//!
//! Case counts: default [`DEFAULT_CASES`], overridable globally with the
//! `TESTKIT_CASES` environment variable or per test via the `[n]`
//! bracket in [`prop!`].

use crate::rng::{seed_from_env, TestRng, SEED_ENV};
use std::fmt::Debug;
use std::panic::{self, AssertUnwindSafe};

/// Default number of cases per property.
pub const DEFAULT_CASES: usize = 64;

/// Environment variable overriding the per-property case count.
pub const CASES_ENV: &str = "TESTKIT_CASES";

/// A generator of values of one type, with optional shrinking.
///
/// `generate` must be a pure function of the RNG stream; `shrink`
/// proposes strictly "simpler" candidate values (toward zero, shorter,
/// `None`), which the runner re-tests greedily.
pub trait Strategy {
    /// The generated value type.
    type Value: Clone + Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes simpler candidates for a failing value. Candidates are
    /// tried in order; the first that still fails becomes the new
    /// current value. Strategies with no meaningful simplification
    /// (mapped or union strategies) return an empty list.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f` (shrinking does not cross the
    /// map — `f` is not invertible).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Clone + Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// A boxed, type-erased strategy (the element type of [`prop_oneof!`]).
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

/// Boxes a strategy, erasing its concrete type.
pub fn boxed<S>(s: S) -> BoxedStrategy<S::Value>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

impl<V: Clone + Debug> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }

    fn shrink(&self, value: &V) -> Vec<V> {
        (**self).shrink(value)
    }
}

// ---------------------------------------------------------------------
// Constant and mapped strategies
// ---------------------------------------------------------------------

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Clone + Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A uniform choice between boxed strategies over one value type.
/// Usually built via [`prop_oneof!`].
pub struct Union<V: Clone + Debug> {
    variants: Vec<BoxedStrategy<V>>,
}

impl<V: Clone + Debug> Union<V> {
    /// A union over the given variants (must be non-empty).
    pub fn new(variants: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one variant");
        Union { variants }
    }
}

impl<V: Clone + Debug> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.index(self.variants.len());
        self.variants[i].generate(rng)
    }
}

/// Uniform choice among strategies of one value type:
/// `prop_oneof![Just(Codec::Legacy), Just(Codec::Typed)]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($variant:expr),+ $(,)?) => {
        $crate::prop::Union::new(vec![$($crate::prop::boxed($variant)),+])
    };
}

// ---------------------------------------------------------------------
// Integers and bool
// ---------------------------------------------------------------------

/// An integer type samplable by offset arithmetic in `u128` space.
pub trait SampleInt: Copy + Clone + Debug + PartialOrd + 'static {
    /// Type minimum.
    const MIN_VALUE: Self;
    /// Type maximum.
    const MAX_VALUE: Self;

    /// `self - lo` as an unsigned offset.
    fn offset_from(self, lo: Self) -> u128;

    /// `lo + offset` (offset must be in range).
    fn from_offset(lo: Self, offset: u128) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty => $u:ty),+ $(,)?) => {$(
        impl SampleInt for $t {
            const MIN_VALUE: Self = <$t>::MIN;
            const MAX_VALUE: Self = <$t>::MAX;

            fn offset_from(self, lo: Self) -> u128 {
                (self as $u).wrapping_sub(lo as $u) as u128
            }

            fn from_offset(lo: Self, offset: u128) -> Self {
                (lo as $u).wrapping_add(offset as $u) as $t
            }
        }
    )+};
}

impl_sample_int! {
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, u128 => u128, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128, isize => usize,
}

/// Uniform integers in an inclusive range, shrinking toward the low
/// bound.
#[derive(Clone, Debug)]
pub struct IntRange<T: SampleInt> {
    lo: T,
    hi: T,
}

impl<T: SampleInt> IntRange<T> {
    /// The inclusive range `[lo, hi]`.
    pub fn new(lo: T, hi: T) -> Self {
        assert!(lo <= hi, "empty integer range");
        IntRange { lo, hi }
    }

    /// Number of values minus one (the maximum offset).
    fn max_offset(&self) -> u128 {
        self.hi.offset_from(self.lo)
    }
}

impl<T: SampleInt> Strategy for IntRange<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let span = self.max_offset();
        if span == u128::MAX {
            return T::from_offset(self.lo, rng.next_u128());
        }
        T::from_offset(self.lo, rng.below_u128(span + 1))
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        let off = value.offset_from(self.lo);
        let mut candidates = Vec::new();
        for c in [0u128, off / 2, off.saturating_sub(1)] {
            if c < off && !candidates.contains(&c) {
                candidates.push(c);
            }
        }
        candidates.into_iter().map(|c| T::from_offset(self.lo, c)).collect()
    }
}

impl<T: SampleInt> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end.offset_from(self.start); // >= 1, no overflow
        T::from_offset(self.start, rng.below_u128(span))
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        IntRange::new(self.start, *value).shrink(value)
    }
}

impl<T: SampleInt> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        IntRange::new(*self.start(), *self.end()).generate(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        IntRange::new(*self.start(), *self.end()).shrink(value)
    }
}

impl<T: SampleInt> Strategy for std::ops::RangeFrom<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        IntRange::new(self.start, T::MAX_VALUE).generate(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        IntRange::new(self.start, T::MAX_VALUE).shrink(value)
    }
}

/// Uniform `bool`, shrinking `true` to `false`.
#[derive(Clone, Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }

    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

// ---------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary: Clone + Debug + Sized {
    /// The strategy type [`any`] returns.
    type Strat: Strategy<Value = Self>;

    /// The full-domain strategy.
    fn arbitrary() -> Self::Strat;
}

/// The canonical full-domain strategy for `T`: `any::<u64>()`,
/// `any::<Option<u32>>()`, `any::<bool>()`, ...
pub fn any<T: Arbitrary>() -> T::Strat {
    T::arbitrary()
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+ $(,)?) => {$(
        impl Arbitrary for $t {
            type Strat = IntRange<$t>;

            fn arbitrary() -> Self::Strat {
                IntRange::new(<$t>::MIN, <$t>::MAX)
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    type Strat = AnyBool;

    fn arbitrary() -> Self::Strat {
        AnyBool
    }
}

impl<T: Arbitrary + 'static> Arbitrary for Option<T> {
    type Strat = option::OptionStrategy<T::Strat>;

    fn arbitrary() -> Self::Strat {
        option::of(any::<T>())
    }
}

// ---------------------------------------------------------------------
// Collections, options, strings
// ---------------------------------------------------------------------

/// Length/size specifications: an exact `usize`, `lo..hi`, or
/// `lo..=hi`.
pub trait IntoSizeRange {
    /// Returns the inclusive `(min, max)` pair.
    fn bounds(self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(self) -> (usize, usize) {
        (self, self)
    }
}

impl IntoSizeRange for std::ops::Range<usize> {
    fn bounds(self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for std::ops::RangeInclusive<usize> {
    fn bounds(self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

/// Vector strategies.
pub mod collection {
    use super::*;

    /// Generates `Vec`s with lengths in `size` and elements from
    /// `elem`. Shrinks by truncation, single-element removal, then
    /// element-wise shrinking.
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    /// `vec(any::<u8>(), 0..32)` — the proptest idiom, verbatim.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { elem, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.min + rng.below_u128((self.max - self.min + 1) as u128) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }

        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let mut out = Vec::new();
            let len = value.len();
            // Structural shrinks first: shorter vectors are simpler.
            if len > self.min {
                out.push(value[..self.min].to_vec());
                let half = (self.min + len) / 2;
                if half > self.min && half < len {
                    out.push(value[..half].to_vec());
                }
                out.push(value[..len - 1].to_vec());
                // Dropping a single interior element (keep the tail).
                if len >= 2 {
                    let mut v = value.clone();
                    v.remove(0);
                    out.push(v);
                }
            }
            // Element-wise: replace each element by its first shrink.
            for i in 0..len {
                if let Some(simpler) = self.elem.shrink(&value[i]).into_iter().next() {
                    let mut v = value.clone();
                    v[i] = simpler;
                    out.push(v);
                }
            }
            out
        }
    }
}

/// Option strategies.
pub mod option {
    use super::*;

    /// `None` a quarter of the time, `Some` otherwise; shrinks toward
    /// `None`, then through the inner value.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `of(strategy)` — mirrors `proptest::option::of`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }

        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            match value {
                None => Vec::new(),
                Some(v) => {
                    let mut out = vec![None];
                    out.extend(self.inner.shrink(v).into_iter().map(Some));
                    out
                }
            }
        }
    }
}

/// String strategies over explicit character sets (the hermetic stand-in
/// for proptest's regex strategies).
pub mod string {
    use super::*;

    /// Strings with characters from a fixed set, shrinking by
    /// truncation.
    #[derive(Clone, Debug)]
    pub struct StringStrategy {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    /// `of("a-z0-9", 0..=11)`: charset syntax supports `x-y` spans and
    /// literal characters ('-' first or last is literal).
    pub fn of(charset: &str, size: impl IntoSizeRange) -> StringStrategy {
        let (min, max) = size.bounds();
        let chars = expand_charset(charset);
        assert!(!chars.is_empty(), "empty charset {charset:?}");
        StringStrategy { chars, min, max }
    }

    /// ASCII-printable strings (space through `~`), the stand-in for
    /// `"[ -~]{..}"` and arbitrary-password regexes.
    pub fn printable(size: impl IntoSizeRange) -> StringStrategy {
        of(" -~", size)
    }

    fn expand_charset(spec: &str) -> Vec<char> {
        let raw: Vec<char> = spec.chars().collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            if i + 2 < raw.len() && raw[i + 1] == '-' {
                let (lo, hi) = (raw[i] as u32, raw[i + 2] as u32);
                assert!(lo <= hi, "inverted span in charset {spec:?}");
                for c in lo..=hi {
                    if let Some(c) = char::from_u32(c) {
                        out.push(c);
                    }
                }
                i += 3;
            } else {
                out.push(raw[i]);
                i += 1;
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    impl Strategy for StringStrategy {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let len = self.min + rng.below_u128((self.max - self.min + 1) as u128) as usize;
            (0..len).map(|_| *rng.pick(&self.chars)).collect()
        }

        fn shrink(&self, value: &String) -> Vec<String> {
            let mut out = Vec::new();
            let chars: Vec<char> = value.chars().collect();
            let len = chars.len();
            if len > self.min {
                out.push(chars[..self.min].iter().collect());
                let half = (self.min + len) / 2;
                if half > self.min && half < len {
                    out.push(chars[..half].iter().collect());
                }
                out.push(chars[..len - 1].iter().collect());
            }
            // Replace each char with the simplest charset char.
            let simplest = self.chars[0];
            for i in 0..len {
                if chars[i] != simplest {
                    let mut v = chars.clone();
                    v[i] = simplest;
                    out.push(v.into_iter().collect());
                }
            }
            out
        }
    }
}

// ---------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($S:ident . $idx:tt),+))+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = cand;
                        out.push(v);
                    }
                )+
                out
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11)
}

// ---------------------------------------------------------------------
// The runner
// ---------------------------------------------------------------------

/// Cap on property executions spent shrinking one failure.
const MAX_SHRINK_RUNS: usize = 400;

thread_local! {
    static QUIET_PANICS: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// Runs `f`, suppressing the default panic-hook output for any panic it
/// raises (the runner catches those panics on purpose — each failing
/// case re-executes many times during shrinking).
fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    QUIET_PANICS.with(|q| q.set(q.get() + 1));
    let r = f();
    QUIET_PANICS.with(|q| q.set(q.get() - 1));
    r
}

/// Installs (once) the panic hook honoring [`with_quiet_panics`].
fn install_quiet_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if QUIET_PANICS.with(|q| q.get()) == 0 {
                previous(info);
            }
        }));
    });
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn run_case<V, F>(f: &F, value: &V) -> Result<(), String>
where
    V: Clone,
    F: Fn(V),
{
    let v = value.clone();
    let result = with_quiet_panics(|| panic::catch_unwind(AssertUnwindSafe(|| f(v))));
    result.map_err(panic_message)
}

fn env_cases() -> Option<usize> {
    std::env::var(CASES_ENV).ok().map(|s| {
        s.trim()
            .parse()
            .unwrap_or_else(|_| panic!("{CASES_ENV}={s:?} is not a positive integer"))
    })
}

/// Runs a property with the default / environment case count. Invoked
/// by [`prop!`]; callable directly for ad-hoc properties.
pub fn run<S, F>(name: &str, strategy: S, f: F)
where
    S: Strategy,
    F: Fn(S::Value),
{
    run_with(name, None, strategy, f);
}

/// Runs a property with an explicit case-count override (`None` =
/// `TESTKIT_CASES` or [`DEFAULT_CASES`]).
pub fn run_with<S, F>(name: &str, cases_override: Option<usize>, strategy: S, f: F)
where
    S: Strategy,
    F: Fn(S::Value),
{
    install_quiet_hook();
    let seed = seed_from_env();
    let cases = cases_override.or_else(env_cases).unwrap_or(DEFAULT_CASES);
    for case in 0..cases {
        let mut rng = TestRng::for_case(seed, name, case as u64);
        let value = strategy.generate(&mut rng);
        if let Err(first_msg) = run_case(&f, &value) {
            let (min, msg, steps) = shrink_failure(&strategy, value, first_msg, &f);
            panic!(
                "property '{name}' failed at case {case}/{cases} \
                 (root seed {seed}, {steps} shrink steps)\n\
                 minimal counterexample: {min:?}\n\
                 failure: {msg}\n\
                 replay: {SEED_ENV}={seed} cargo test -q {short}",
                short = name.rsplit("::").next().unwrap_or(name),
            );
        }
    }
}

/// Greedy shrink loop: repeatedly replace the failing value with the
/// first proposed candidate that still fails, until no candidate fails
/// or the run budget is exhausted.
fn shrink_failure<S, F>(
    strategy: &S,
    mut value: S::Value,
    mut message: String,
    f: &F,
) -> (S::Value, String, usize)
where
    S: Strategy,
    F: Fn(S::Value),
{
    let mut steps = 0;
    let mut runs = 0;
    'outer: loop {
        for candidate in strategy.shrink(&value) {
            if runs >= MAX_SHRINK_RUNS {
                break 'outer;
            }
            runs += 1;
            if let Err(msg) = run_case(f, &candidate) {
                value = candidate;
                message = msg;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (value, message, steps)
}

/// Declares property tests. Each entry becomes a named `#[test]`:
///
/// ```ignore
/// testkit::prop! {
///     #[test-doc-or-attrs]
///     fn addition_commutes(a in any::<u64>(), b in any::<u64>()) {
///         prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
///     }
///
///     // Optional per-test case count in brackets:
///     fn expensive_property [16] (v in collection::vec(any::<u8>(), 0..512)) {
///         ...
///     }
/// }
/// ```
#[macro_export]
macro_rules! prop {
    ($($(#[$meta:meta])* fn $name:ident $([$cases:expr])? ($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            #[allow(unused_mut, unused_assignments)]
            let mut cases: Option<usize> = None;
            $(cases = Some($cases);)?
            let strategy = ($($strat,)+);
            $crate::prop::run_with(
                concat!(module_path!(), "::", stringify!($name)),
                cases,
                strategy,
                |($($arg,)+)| $body,
            );
        }
    )+};
}

/// Drop-in for proptest's `prop_assert!` (plain assertion under this
/// runner: the panic is caught, shrunk, and reported with the seed).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Drop-in for proptest's `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Drop-in for proptest's `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catch(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
        install_quiet_hook();
        let r = with_quiet_panics(|| panic::catch_unwind(f));
        panic_message(r.expect_err("expected the property to fail"))
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let counter = std::cell::Cell::new(0usize);
        run_with("tk::count", Some(33), (any::<u64>(),), |(_v,)| {
            counter.set(counter.get() + 1);
        });
        assert_eq!(counter.get(), 33);
    }

    #[test]
    fn cases_are_deterministic_for_fixed_seed() {
        let collect = || {
            let mut got = Vec::new();
            for case in 0..10 {
                let mut rng = TestRng::for_case(42, "tk::det", case);
                got.push((any::<u64>(), collection::vec(any::<u8>(), 0..9)).generate(&mut rng));
            }
            got
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn failure_reports_seed_and_shrinks_to_minimum() {
        // Fails for any v >= 10: greedy shrinking must land exactly on 10.
        let msg = catch(|| {
            run_with("tk::ge10", Some(200), (0u64..1000,), |(v,)| {
                assert!(v < 10, "value {v} too big");
            });
        });
        assert!(msg.contains("minimal counterexample: (10,)"), "got: {msg}");
        assert!(msg.contains(&format!("root seed {}", crate::rng::DEFAULT_SEED)), "got: {msg}");
        assert!(msg.contains("replay: TESTKIT_SEED="), "got: {msg}");
    }

    #[test]
    fn vec_shrinking_reaches_minimal_length() {
        // Fails whenever the vec has >= 3 elements; minimal failing
        // example is any 3-element vec, and element-wise shrinking
        // drives every element to 0.
        let msg = catch(|| {
            run_with(
                "tk::vec3",
                Some(200),
                (collection::vec(any::<u8>(), 0..64),),
                |(v,)| assert!(v.len() < 3),
            );
        });
        assert!(msg.contains("minimal counterexample: ([0, 0, 0],)"), "got: {msg}");
    }

    #[test]
    fn option_shrinks_toward_none_then_inner() {
        let s = option::of(0u32..100);
        assert_eq!(s.shrink(&None), Vec::<Option<u32>>::new());
        let shrinks = s.shrink(&Some(7));
        assert_eq!(shrinks[0], None);
        assert!(shrinks.contains(&Some(0)));
    }

    #[test]
    fn int_ranges_respect_bounds() {
        let mut rng = TestRng::new(5);
        for _ in 0..500 {
            let a = (3u8..7).generate(&mut rng);
            assert!((3..7).contains(&a));
            let b = (1u8..=5).generate(&mut rng);
            assert!((1..=5).contains(&b));
            let c = (-500i64..500).generate(&mut rng);
            assert!((-500..500).contains(&c));
            let d = (1u128..).generate(&mut rng);
            assert!(d >= 1);
        }
    }

    #[test]
    fn full_domain_ints_cover_extremes_in_shrink_space() {
        let s = any::<i64>();
        // Shrinking moves toward i64::MIN (the range's low bound).
        let c = s.shrink(&0);
        assert!(c.contains(&i64::MIN));
    }

    #[test]
    fn oneof_samples_every_variant() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        let mut rng = TestRng::new(8);
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn string_strategy_respects_charset_and_len() {
        let s = string::of("a-c_", 2..=4);
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..=4).contains(&v.chars().count()), "{v:?}");
            assert!(v.chars().all(|c| "abc_".contains(c)), "{v:?}");
        }
    }

    #[test]
    fn prop_map_transforms_values() {
        let s = (0u8..10).prop_map(|v| v * 2);
        let mut rng = TestRng::new(1);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    // The macro itself, in its natural habitat.
    crate::prop! {
        fn macro_generated_property(a in any::<u32>(), b in any::<u32>()) {
            crate::prop_assert_eq!(
                u64::from(a) + u64::from(b),
                u64::from(b) + u64::from(a)
            );
        }

        fn macro_with_case_override [7] (v in 0u8..10) {
            crate::prop_assert!(v < 10);
        }
    }
}
