//! The network random-number service.
//!
//! "User workstations are not particularly good sources of random keys.
//! The best alternative is to provide a (secure) random number service
//! on the network. When a new client instance is added, this service
//! would be consulted to generate the key."

use kerberos::appserver::AppLogic;
use kerberos::principal::Principal;
use krb_crypto::rng::{Drbg, RandomSource};

/// Commands: `RAND <n>` returns n random bytes (n <= 256); `KEY` returns
/// 8 parity-correct DES key bytes.
pub struct RandomServiceLogic {
    rng: Drbg,
    /// Total bytes served, for auditing.
    pub bytes_served: u64,
}

impl RandomServiceLogic {
    /// A service seeded from the (hardware) entropy source.
    pub fn new(seed: u64) -> Self {
        RandomServiceLogic { rng: Drbg::new(seed), bytes_served: 0 }
    }
}

impl AppLogic for RandomServiceLogic {
    fn on_command(&mut self, _client: &Principal, cmd: &[u8]) -> Vec<u8> {
        let s = String::from_utf8_lossy(cmd);
        let mut parts = s.split_whitespace();
        match parts.next() {
            Some("RAND") => {
                let n: usize = parts.next().and_then(|v| v.parse().ok()).unwrap_or(8).min(256);
                let mut buf = vec![0u8; n];
                self.rng.fill_bytes(&mut buf);
                self.bytes_served += n as u64;
                buf
            }
            Some("KEY") => {
                self.bytes_served += 8;
                self.rng.gen_des_key().0.to_vec()
            }
            _ => b"EBADCMD".to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use krb_crypto::des::DesKey;

    fn pat() -> Principal {
        Principal::user("pat", "R")
    }

    #[test]
    fn rand_lengths() {
        let mut r = RandomServiceLogic::new(1);
        assert_eq!(r.on_command(&pat(), b"RAND 16").len(), 16);
        assert_eq!(r.on_command(&pat(), b"RAND 0").len(), 0);
        // Cap at 256.
        assert_eq!(r.on_command(&pat(), b"RAND 100000").len(), 256);
        assert_eq!(r.bytes_served, 16 + 256);
    }

    #[test]
    fn key_command_returns_sound_des_key() {
        let mut r = RandomServiceLogic::new(2);
        for _ in 0..20 {
            let bytes = r.on_command(&pat(), b"KEY");
            let k = DesKey::from_bytes(bytes.try_into().expect("8 bytes"));
            assert!(k.has_odd_parity());
            assert!(!k.is_weak());
        }
    }

    #[test]
    fn outputs_differ_across_calls() {
        let mut r = RandomServiceLogic::new(3);
        let a = r.on_command(&pat(), b"RAND 32");
        let b = r.on_command(&pat(), b"RAND 32");
        assert_ne!(a, b);
    }
}
