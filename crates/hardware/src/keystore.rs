//! The keystore: "a secure, reliable repository for a limited amount of
//! information. A client of the keystore could package arbitrary data to
//! be retained by the keystore, and retrieved at a later date. ...
//! Storage and retrieval requests would be authenticated by Kerberos
//! tickets, of course. Only encrypted transfer (KRB_PRIV) should be
//! employed."
//!
//! Implemented as an [`kerberos::appserver::AppLogic`], so it runs
//! behind the full kerberized AP exchange and KRB_PRIV session layer —
//! the deployment discipline is enforced by configuring the hosting
//! [`kerberos::appserver::AppServer`] with `AppProtection::Priv`.

use kerberos::appserver::AppLogic;
use kerberos::principal::Principal;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// Shared blob storage: (owner, label) -> bytes.
pub type BlobStore = Arc<Mutex<HashMap<(String, String), Vec<u8>>>>;

/// Locks the store, recovering from poisoning: a panicking client
/// thread must not brick the keystore, and every command leaves the map
/// structurally consistent (single-key inserts/removes), so the data is
/// safe to keep serving.
fn lock(blobs: &BlobStore) -> MutexGuard<'_, HashMap<(String, String), Vec<u8>>> {
    blobs.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Commands: `STORE <label> <bytes>`, `FETCH <label>`, `DELETE <label>`,
/// `LIST`. Blobs are namespaced per authenticated principal — "the key
/// for that instance would be restricted to that user".
#[derive(Default)]
pub struct KeyStoreLogic {
    /// (owner, label) -> blob. Shared so tests can inspect storage.
    pub blobs: BlobStore,
}

impl KeyStoreLogic {
    /// An empty keystore.
    pub fn new() -> Self {
        Self::default()
    }

    /// A keystore sharing `blobs` (e.g. for replicated inspection).
    pub fn with_storage(blobs: BlobStore) -> Self {
        KeyStoreLogic { blobs }
    }
}

fn split(cmd: &[u8]) -> (Vec<u8>, Vec<u8>) {
    match cmd.iter().position(|&b| b == b' ') {
        Some(i) => (cmd[..i].to_vec(), cmd[i + 1..].to_vec()),
        None => (cmd.to_vec(), Vec::new()),
    }
}

impl AppLogic for KeyStoreLogic {
    fn on_command(&mut self, client: &Principal, cmd: &[u8]) -> Vec<u8> {
        let owner = client.to_string();
        let (verb, rest) = split(cmd);
        match verb.as_slice() {
            b"STORE" => {
                let (label, blob) = split(&rest);
                let label = String::from_utf8_lossy(&label).into_owned();
                lock(&self.blobs).insert((owner, label), blob);
                b"STORED".to_vec()
            }
            b"FETCH" => {
                let label = String::from_utf8_lossy(&rest).into_owned();
                match lock(&self.blobs).get(&(owner, label)) {
                    Some(b) => {
                        let mut v = b"BLOB ".to_vec();
                        v.extend_from_slice(b);
                        v
                    }
                    None => b"ENOENT".to_vec(),
                }
            }
            b"DELETE" => {
                let label = String::from_utf8_lossy(&rest).into_owned();
                match lock(&self.blobs).remove(&(owner, label)) {
                    Some(_) => b"DELETED".to_vec(),
                    None => b"ENOENT".to_vec(),
                }
            }
            b"LIST" => {
                let blobs = lock(&self.blobs);
                let mut labels: Vec<&str> = blobs
                    .keys()
                    .filter(|(o, _)| *o == owner)
                    .map(|(_, l)| l.as_str())
                    .collect();
                labels.sort_unstable();
                labels.join("\n").into_bytes()
            }
            _ => b"EBADCMD".to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat() -> Principal {
        Principal::user("pat", "R")
    }

    #[test]
    fn store_fetch_delete() {
        let mut ks = KeyStoreLogic::new();
        assert_eq!(ks.on_command(&pat(), b"STORE mailkey \x01\x02\x03"), b"STORED");
        assert_eq!(ks.on_command(&pat(), b"FETCH mailkey"), b"BLOB \x01\x02\x03");
        assert_eq!(ks.on_command(&pat(), b"LIST"), b"mailkey");
        assert_eq!(ks.on_command(&pat(), b"DELETE mailkey"), b"DELETED");
        assert_eq!(ks.on_command(&pat(), b"FETCH mailkey"), b"ENOENT");
    }

    #[test]
    fn blobs_are_per_principal() {
        let mut ks = KeyStoreLogic::new();
        ks.on_command(&pat(), b"STORE k secret");
        let other = Principal::user("sam", "R");
        assert_eq!(ks.on_command(&other, b"FETCH k"), b"ENOENT");
        // Even a same-name user in a different realm is distinct.
        let impostor = Principal::user("pat", "EVIL");
        assert_eq!(ks.on_command(&impostor, b"FETCH k"), b"ENOENT");
    }

    #[test]
    fn survives_lock_poisoning() {
        let mut ks = KeyStoreLogic::new();
        ks.on_command(&pat(), b"STORE k v");
        // Poison the mutex: a thread panics while holding the lock.
        let blobs = ks.blobs.clone();
        let _ = std::thread::spawn(move || {
            let _guard = blobs.lock().unwrap();
            panic!("die holding the keystore lock");
        })
        .join();
        assert!(ks.blobs.lock().is_err(), "mutex should be poisoned");
        // The keystore keeps serving the (consistent) data regardless.
        assert_eq!(ks.on_command(&pat(), b"FETCH k"), b"BLOB v");
        assert_eq!(ks.on_command(&pat(), b"DELETE k"), b"DELETED");
    }

    #[test]
    fn binary_blobs_roundtrip() {
        let mut ks = KeyStoreLogic::new();
        let blob: Vec<u8> = (0..=255).collect();
        let mut cmd = b"STORE bin ".to_vec();
        cmd.extend_from_slice(&blob);
        ks.on_command(&pat(), &cmd);
        let got = ks.on_command(&pat(), b"FETCH bin");
        assert_eq!(&got[5..], &blob[..]);
    }
}
