//! The handheld authenticator token.
//!
//! "The server pick\[s\] a random number R, and use\[s\] Kc to encrypt R.
//! This value {R}Kc, rather than Kc, would be used to encrypt the
//! server's response. R would be transmitted in the clear to the user.
//! If a hand-held authenticator was in use, the user would employ it to
//! calculate {R}Kc."

use kerberos::kdc::hha_key;
use kerberos::principal::Principal;
use krb_crypto::des::DesKey;
use krb_crypto::s2k;
use std::fmt;

/// A sealed-key login token. The enrolled key never leaves the device.
pub struct HandheldAuthenticator {
    owner: Principal,
    kc: DesKey,
    /// How many challenges this device has answered (visible on the
    /// device's little LCD, so to speak).
    pub uses: u64,
}

impl fmt::Debug for HandheldAuthenticator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HandheldAuthenticator(owner={}, uses={})", self.owner, self.uses)
    }
}

impl HandheldAuthenticator {
    /// Enrolls a device for `owner` from their password (done once, at
    /// the security office, not on an untrusted workstation).
    pub fn enroll(owner: Principal, password: &str) -> Self {
        let kc = s2k::string_to_key_v5(password, &owner.salt());
        HandheldAuthenticator { owner, kc, uses: 0 }
    }

    /// The device owner.
    pub fn owner(&self) -> &Principal {
        &self.owner
    }

    /// Answers a challenge: computes `{R}K_c` for the displayed `R`.
    pub fn respond(&mut self, r: u64) -> DesKey {
        self.uses += 1;
        hha_key(&self.kc, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn responses_match_kdc_derivation() {
        let p = Principal::user("pat", "R");
        let mut dev = HandheldAuthenticator::enroll(p.clone(), "hunter2");
        let kc = s2k::string_to_key_v5("hunter2", &p.salt());
        assert_eq!(dev.respond(42), hha_key(&kc, 42));
        assert_eq!(dev.uses, 1);
    }

    #[test]
    fn responses_are_challenge_specific() {
        let mut dev = HandheldAuthenticator::enroll(Principal::user("pat", "R"), "hunter2");
        assert_ne!(dev.respond(1), dev.respond(2));
    }

    /// The login-spoofing resistance property: observing a response
    /// to challenge R1 gives the Trojan nothing usable for a different
    /// challenge R2 (short of breaking DES).
    #[test]
    fn observed_response_useless_for_other_challenges() {
        let mut dev = HandheldAuthenticator::enroll(Principal::user("pat", "R"), "hunter2");
        let observed = dev.respond(1);
        let needed = dev.respond(2);
        assert_ne!(observed, needed);
    }

    #[test]
    fn debug_hides_key() {
        let dev = HandheldAuthenticator::enroll(Principal::user("pat", "R"), "hunter2");
        let kc = s2k::string_to_key_v5("hunter2", &Principal::user("pat", "R").salt());
        let shown = format!("{dev:?}");
        assert!(!shown.contains(&format!("{:016x}", kc.to_u64())));
    }
}
