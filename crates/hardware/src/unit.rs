//! The host encryption unit.
//!
//! Design criteria from the paper, all enforced here:
//!
//! - "There must be secure storage for an adequate number of keys" —
//!   keys live in private slots, addressed by opaque [`KeyHandle`]s.
//! - "The encryption box itself must understand the Kerberos protocols"
//!   — tickets and KDC replies are decrypted *inside* the unit; embedded
//!   session keys become new sealed slots, never host memory.
//! - "The box need not have the ability to transmit a key, thereby
//!   providing us with a very high level of assurance that it will not
//!   do so" — no method returns key material; `Debug` output is
//!   redacted.
//! - "Keys should be tagged with their purpose. A login key should be
//!   used only to decrypt the ticket-granting ticket" — every operation
//!   checks the slot's [`KeyPurpose`].
//! - "Including a hardware random number generator on-board" — session
//!   keys and subkeys come from an internal DRBG.
//! - "Using a separate unit allows us to create untamperable logs" —
//!   an append-only audit log records every operation.

use kerberos::authenticator::Authenticator;
use kerberos::config::ProtocolConfig;
use kerberos::encoding::MsgType;
use kerberos::messages::EncKdcRepPart;
use kerberos::principal::Principal;
use kerberos::ticket::Ticket;
use krb_crypto::des::DesKey;
use krb_crypto::key::{KeyPurpose, TaggedKey};
use krb_crypto::rng::{Drbg, RandomSource};
use krb_crypto::s2k;
use std::collections::HashMap;
use std::fmt;

/// An opaque reference to a key slot inside the unit.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct KeyHandle(u32);

/// Errors raised by the unit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HwError {
    /// The handle does not name a loaded key.
    BadHandle,
    /// The slot's purpose forbids the requested operation.
    PurposeViolation {
        /// The purpose required by the operation.
        needed: KeyPurpose,
        /// The purpose the slot is tagged with.
        have: KeyPurpose,
    },
    /// A protocol operation failed (decryption, decoding).
    Protocol(String),
}

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwError::BadHandle => write!(f, "bad key handle"),
            HwError::PurposeViolation { needed, have } => {
                write!(f, "purpose violation: operation needs {needed:?}, slot is {have:?}")
            }
            HwError::Protocol(e) => write!(f, "protocol failure in unit: {e}"),
        }
    }
}

impl std::error::Error for HwError {}

/// A ticket as seen by the host when the unit decrypts it: the embedded
/// session key has been captured into a slot and replaced by a handle.
#[derive(Clone, Debug)]
pub struct TicketView {
    /// The client the ticket names.
    pub client: Principal,
    /// The service it is for.
    pub service: Principal,
    /// Validity end, µs.
    pub end_time: u64,
    /// Handle to the (sealed) session key.
    pub session_key: KeyHandle,
}

/// The view of a decrypted KDC reply part.
#[derive(Clone, Debug)]
pub struct KdcRepView {
    /// Handle to the new (sealed) session key.
    pub session_key: KeyHandle,
    /// Nonce echo.
    pub nonce: u64,
    /// The (still sealed) ticket bytes, to be sent to the service.
    pub ticket: Vec<u8>,
    /// Ticket end time.
    pub end_time: u64,
}

/// The host encryption unit.
pub struct EncryptionUnit {
    config: ProtocolConfig,
    slots: HashMap<KeyHandle, TaggedKey>,
    next: u32,
    rng: Drbg,
    audit: Vec<String>,
    audit_dropped: u64,
}

impl fmt::Debug for EncryptionUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EncryptionUnit({} sealed slots)", self.slots.len())
    }
}

impl EncryptionUnit {
    /// A fresh unit. `rng_seed` stands in for the hardware RNG.
    pub fn new(config: ProtocolConfig, rng_seed: u64) -> Self {
        EncryptionUnit {
            config,
            slots: HashMap::new(),
            next: 1,
            rng: Drbg::new(rng_seed),
            audit: Vec::new(),
            audit_dropped: 0,
        }
    }

    /// Maximum retained audit entries (the unit's log storage is
    /// finite, like any hardware log; oldest entries are dropped once
    /// full, with a running counter preserving the total).
    const AUDIT_CAP: usize = 65_536;

    fn log(&mut self, what: String) {
        if self.audit.len() >= Self::AUDIT_CAP {
            // Evict the older half in one move (amortized O(1) per op).
            let evict = Self::AUDIT_CAP / 2;
            self.audit.drain(..evict);
            self.audit_dropped += evict as u64;
        }
        self.audit.push(what);
    }

    /// Entries evicted from the (bounded) audit log.
    pub fn audit_dropped(&self) -> u64 {
        self.audit_dropped
    }

    /// The untamperable audit log (read-only).
    pub fn audit_log(&self) -> &[String] {
        &self.audit
    }

    /// Number of sealed slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    fn insert(&mut self, key: DesKey, purpose: KeyPurpose) -> KeyHandle {
        let h = KeyHandle(self.next);
        self.next += 1;
        self.slots.insert(h, TaggedKey::new(key, purpose));
        h
    }

    fn get(&self, h: KeyHandle, needed: KeyPurpose) -> Result<DesKey, HwError> {
        let t = self.slots.get(&h).ok_or(HwError::BadHandle)?;
        if !t.purpose.permits(needed) {
            return Err(HwError::PurposeViolation { needed, have: t.purpose });
        }
        Ok(t.key)
    }

    /// Loads a pre-existing key into a sealed slot. "This operation is
    /// done only by the Kerberos master server, for which strong
    /// physical security must be assumed."
    pub fn load_key(&mut self, key: DesKey, purpose: KeyPurpose) -> KeyHandle {
        let h = self.insert(key, purpose);
        self.log(format!("load_key purpose={purpose:?} -> {h:?}"));
        h
    }

    /// Derives the user's login key from a typed password and seals it
    /// immediately; the password's residence in host memory is
    /// minimized and the derived key never appears there at all.
    pub fn enroll_password(&mut self, principal: &Principal, password: &str) -> KeyHandle {
        let key = s2k::string_to_key_v5(password, &principal.salt());
        let h = self.insert(key, KeyPurpose::ClientLogin);
        self.log(format!("enroll_password for {principal} -> {h:?}"));
        h
    }

    /// Generates a fresh random key in a sealed slot (the on-board
    /// hardware RNG).
    pub fn gen_key(&mut self, purpose: KeyPurpose) -> KeyHandle {
        let key = self.rng.gen_des_key();
        let h = self.insert(key, purpose);
        self.log(format!("gen_key purpose={purpose:?} -> {h:?}"));
        h
    }

    /// Decrypts an AS-reply encrypted part inside the unit. Only a
    /// `ClientLogin` slot may perform this — the tagged-key rule that a
    /// login key "should be used only to decrypt the ticket-granting
    /// ticket".
    pub fn open_as_reply(&mut self, login_slot: KeyHandle, enc_part: &[u8]) -> Result<KdcRepView, HwError> {
        let key = self.get(login_slot, KeyPurpose::ClientLogin)?;
        let pt = self
            .config
            .ticket_layer
            .open(&key, 0, enc_part)
            .map_err(|e| HwError::Protocol(e.to_string()))?;
        let part = EncKdcRepPart::decode(self.config.codec, MsgType::EncAsRepPart, &pt)
            .map_err(|e| HwError::Protocol(e.to_string()))?;
        let skh = self.insert(part.session_key, KeyPurpose::TgsSession);
        self.log(format!("open_as_reply via {login_slot:?} -> session {skh:?}"));
        Ok(KdcRepView { session_key: skh, nonce: part.nonce, ticket: part.ticket, end_time: part.end_time })
    }

    /// Decrypts a TGS-reply encrypted part inside the unit (requires a
    /// `TgsSession` slot); the new application session key is sealed.
    pub fn open_tgs_reply(&mut self, tgs_session: KeyHandle, enc_part: &[u8]) -> Result<KdcRepView, HwError> {
        let key = self.get(tgs_session, KeyPurpose::TgsSession)?;
        let pt = self
            .config
            .ticket_layer
            .open(&key, 0, enc_part)
            .map_err(|e| HwError::Protocol(e.to_string()))?;
        let part = EncKdcRepPart::decode(self.config.codec, MsgType::EncTgsRepPart, &pt)
            .map_err(|e| HwError::Protocol(e.to_string()))?;
        let skh = self.insert(part.session_key, KeyPurpose::AppSession);
        self.log(format!("open_tgs_reply via {tgs_session:?} -> session {skh:?}"));
        Ok(KdcRepView { session_key: skh, nonce: part.nonce, ticket: part.ticket, end_time: part.end_time })
    }

    /// Builds and seals an authenticator under a session key slot.
    pub fn make_authenticator(
        &mut self,
        session: KeyHandle,
        auth: &Authenticator,
    ) -> Result<Vec<u8>, HwError> {
        let key = self
            .get(session, KeyPurpose::TgsSession)
            .or_else(|_| self.get(session, KeyPurpose::AppSession))?;
        let mut rng = self.rng.clone();
        let out = auth
            .seal(self.config.codec, self.config.ticket_layer, &key, &mut rng)
            .map_err(|e| HwError::Protocol(e.to_string()))?;
        self.rng = rng;
        self.log(format!("make_authenticator via {session:?}"));
        Ok(out)
    }

    /// Server side: decrypts a presented ticket with the service key
    /// slot; the embedded session key is sealed, not returned.
    pub fn decrypt_ticket(&mut self, service_slot: KeyHandle, sealed: &[u8]) -> Result<TicketView, HwError> {
        let key = self.get(service_slot, KeyPurpose::Service)?;
        let t = Ticket::unseal(self.config.codec, self.config.ticket_layer, &key, sealed)
            .map_err(|e| HwError::Protocol(e.to_string()))?;
        let skh = self.insert(t.session_key, KeyPurpose::AppSession);
        self.log(format!("decrypt_ticket via {service_slot:?} -> session {skh:?}"));
        Ok(TicketView { client: t.client, service: t.service, end_time: t.end_time, session_key: skh })
    }

    /// Seals application data under a session slot.
    pub fn seal_data(&mut self, session: KeyHandle, iv: u64, data: &[u8]) -> Result<Vec<u8>, HwError> {
        let key = self
            .get(session, KeyPurpose::AppSession)
            .or_else(|_| self.get(session, KeyPurpose::Subkey))?;
        let mut rng = self.rng.clone();
        let out = self
            .config
            .priv_layer
            .seal(&key, iv, data, &mut rng)
            .map_err(|e| HwError::Protocol(e.to_string()))?;
        self.rng = rng;
        self.log(format!("seal_data via {session:?}"));
        Ok(out)
    }

    /// Opens application data under a session slot.
    pub fn open_data(&mut self, session: KeyHandle, iv: u64, data: &[u8]) -> Result<Vec<u8>, HwError> {
        let key = self
            .get(session, KeyPurpose::AppSession)
            .or_else(|_| self.get(session, KeyPurpose::Subkey))?;
        let out = self
            .config
            .priv_layer
            .open(&key, iv, data)
            .map_err(|e| HwError::Protocol(e.to_string()))?;
        self.log(format!("open_data via {session:?}"));
        Ok(out)
    }

    /// Exports a sealed *blob* of a slot for the keystore, encrypted
    /// under a channel key slot — never in the clear. The paper's
    /// keystore holds exactly such blobs.
    pub fn export_sealed_blob(&mut self, slot: KeyHandle, channel: KeyHandle) -> Result<Vec<u8>, HwError> {
        let channel_key = self.get(channel, KeyPurpose::KeyStore)?;
        let t = self.slots.get(&slot).ok_or(HwError::BadHandle)?;
        let mut plain = t.key.to_u64().to_be_bytes().to_vec();
        plain.push(purpose_tag(t.purpose));
        let mut rng = self.rng.clone();
        let out = self
            .config
            .ticket_layer
            .seal(&channel_key, 0, &plain, &mut rng)
            .map_err(|e| HwError::Protocol(e.to_string()))?;
        self.rng = rng;
        self.log(format!("export_sealed_blob {slot:?} via channel {channel:?}"));
        Ok(out)
    }

    /// Imports a sealed blob from the keystore back into a slot.
    pub fn import_sealed_blob(&mut self, blob: &[u8], channel: KeyHandle) -> Result<KeyHandle, HwError> {
        let channel_key = self.get(channel, KeyPurpose::KeyStore)?;
        let pt = self
            .config
            .ticket_layer
            .open(&channel_key, 0, blob)
            .map_err(|e| HwError::Protocol(e.to_string()))?;
        if pt.len() < 9 {
            return Err(HwError::Protocol("blob too short".into()));
        }
        let mut kb = [0u8; 8];
        kb.copy_from_slice(&pt[..8]);
        let key = DesKey::from_bytes(kb);
        let purpose = purpose_from_tag(pt[8]).ok_or_else(|| HwError::Protocol("bad purpose tag".into()))?;
        let h = self.insert(key, purpose);
        self.log(format!("import_sealed_blob -> {h:?} purpose={purpose:?}"));
        Ok(h)
    }
}

fn purpose_tag(p: KeyPurpose) -> u8 {
    match p {
        KeyPurpose::ClientLogin => 1,
        KeyPurpose::Service => 2,
        KeyPurpose::TgsSession => 3,
        KeyPurpose::AppSession => 4,
        KeyPurpose::Subkey => 5,
        KeyPurpose::KdcMaster => 6,
        KeyPurpose::KeyStore => 7,
        KeyPurpose::Any => 8,
    }
}

fn purpose_from_tag(t: u8) -> Option<KeyPurpose> {
    Some(match t {
        1 => KeyPurpose::ClientLogin,
        2 => KeyPurpose::Service,
        3 => KeyPurpose::TgsSession,
        4 => KeyPurpose::AppSession,
        5 => KeyPurpose::Subkey,
        6 => KeyPurpose::KdcMaster,
        7 => KeyPurpose::KeyStore,
        8 => KeyPurpose::Any,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kerberos::flags::TicketFlags;

    fn unit() -> EncryptionUnit {
        EncryptionUnit::new(ProtocolConfig::hardened(), 99)
    }

    #[test]
    fn purpose_enforcement() {
        let mut u = unit();
        let login = u.enroll_password(&Principal::user("pat", "R"), "pw");
        // A login key may not decrypt tickets (it is not a service key).
        let err = u.decrypt_ticket(login, &[0u8; 32]).unwrap_err();
        assert!(matches!(err, HwError::PurposeViolation { .. }));
        // A service key may not open AS replies.
        let svc = u.gen_key(KeyPurpose::Service);
        let err = u.open_as_reply(svc, &[0u8; 32]).unwrap_err();
        assert!(matches!(err, HwError::PurposeViolation { .. }));
        // A session key may not export blobs without a keystore channel.
        let sess = u.gen_key(KeyPurpose::AppSession);
        let err = u.export_sealed_blob(sess, sess).unwrap_err();
        assert!(matches!(err, HwError::PurposeViolation { .. }));
    }

    #[test]
    fn bad_handle_rejected() {
        let mut u = unit();
        assert_eq!(u.seal_data(KeyHandle(999), 0, b"x").unwrap_err(), HwError::BadHandle);
    }

    #[test]
    fn ticket_decryption_seals_session_key() {
        let mut u = unit();
        let config = ProtocolConfig::hardened();
        let mut rng = Drbg::new(5);
        let service_key = rng.gen_des_key();
        let session_key = rng.gen_des_key();
        let t = Ticket {
            flags: TicketFlags::empty(),
            client: Principal::user("pat", "R"),
            service: Principal::service("files", "h", "R"),
            addr: None,
            auth_time: 0,
            start_time: 0,
            end_time: 100,
            session_key,
            transited: vec![],
        };
        let sealed = t.seal(config.codec, config.ticket_layer, &service_key, &mut rng).unwrap();
        let skh = u.load_key(service_key, KeyPurpose::Service);
        let view = u.decrypt_ticket(skh, &sealed).unwrap();
        assert_eq!(view.client, Principal::user("pat", "R"));
        // The view carries a handle; the session key bytes are nowhere
        // in the debug rendering of anything the host can see.
        let host_visible = format!("{view:?}{u:?}");
        assert!(!host_visible.contains(&format!("{:016X}", session_key.to_u64())));
        assert!(!host_visible.contains(&format!("{:016x}", session_key.to_u64())));
        // And the sealed session key is usable for data.
        let ct = u.seal_data(view.session_key, 1, b"hello").unwrap();
        assert_eq!(u.open_data(view.session_key, 1, &ct).unwrap(), b"hello");
    }

    #[test]
    fn keystore_blob_roundtrip() {
        let mut u = unit();
        let channel = u.gen_key(KeyPurpose::KeyStore);
        let svc = u.gen_key(KeyPurpose::Service);
        let blob = u.export_sealed_blob(svc, channel).unwrap();
        // The blob does not contain the raw key bytes (it is sealed).
        let h2 = u.import_sealed_blob(&blob, channel).unwrap();
        // Re-imported slot behaves identically: decrypting a ticket
        // sealed under the original works via the import.
        let mut rng = Drbg::new(6);
        let config = ProtocolConfig::hardened();
        let t = Ticket {
            flags: TicketFlags::empty(),
            client: Principal::user("x", "R"),
            service: Principal::service("s", "h", "R"),
            addr: None,
            auth_time: 0,
            start_time: 0,
            end_time: 1,
            session_key: rng.gen_des_key(),
            transited: vec![],
        };
        // Seal under the original slot's key: we cannot read it, so seal
        // via the unit-internal path: export/import proved equality if
        // decrypt succeeds. Build the ticket sealed under a key we DO
        // control, load it, export, import, and compare behavior.
        let known = rng.gen_des_key();
        let sealed = t.seal(config.codec, config.ticket_layer, &known, &mut rng).unwrap();
        let kh = u.load_key(known, KeyPurpose::Service);
        let blob2 = u.export_sealed_blob(kh, channel).unwrap();
        let kh2 = u.import_sealed_blob(&blob2, channel).unwrap();
        assert!(u.decrypt_ticket(kh2, &sealed).is_ok());
        let _ = h2;
    }

    #[test]
    fn tampered_blob_rejected() {
        let mut u = unit();
        let channel = u.gen_key(KeyPurpose::KeyStore);
        let svc = u.gen_key(KeyPurpose::Service);
        let mut blob = u.export_sealed_blob(svc, channel).unwrap();
        blob[3] ^= 0xff;
        assert!(u.import_sealed_blob(&blob, channel).is_err());
    }

    #[test]
    fn audit_log_grows_and_is_readonly() {
        let mut u = unit();
        let before = u.audit_log().len();
        let _ = u.gen_key(KeyPurpose::AppSession);
        let _ = u.enroll_password(&Principal::user("pat", "R"), "pw");
        assert_eq!(u.audit_log().len(), before + 2);
        assert!(u.audit_log()[before].starts_with("gen_key"));
    }

    #[test]
    fn audit_log_is_bounded() {
        let mut u = unit();
        let h = u.gen_key(KeyPurpose::AppSession);
        for _ in 0..(EncryptionUnit::AUDIT_CAP + 100) {
            let _ = u.seal_data(h, 0, b"x");
        }
        assert!(u.audit_log().len() <= EncryptionUnit::AUDIT_CAP);
        assert!(u.audit_dropped() >= 100);
    }

    #[test]
    fn audit_log_never_contains_key_material() {
        let mut u = unit();
        let h = u.load_key(DesKey::from_u64(0xDEAD_BEEF_CAFE_F00D), KeyPurpose::Service);
        let _ = h;
        for line in u.audit_log() {
            assert!(!line.to_lowercase().contains("deadbeef"));
        }
    }

    #[test]
    fn compromised_root_can_use_but_not_extract() {
        // "If root is compromised, the host could instruct the box to
        // create bogus tickets. Such concerns are certainly valid.
        // However ... we consider such temporary breaches of security to
        // be far less serious than the compromise of a key."
        let mut u = unit();
        let sess = u.gen_key(KeyPurpose::AppSession);
        // Root CAN misuse the unit while compromised:
        assert!(u.seal_data(sess, 0, b"bogus message as victim").is_ok());
        // But nothing root can call yields key bytes; the only
        // key-shaped output is the sealed blob, unreadable without the
        // channel slot that also never leaves the unit.
        let channel = u.gen_key(KeyPurpose::KeyStore);
        let blob = u.export_sealed_blob(sess, channel).unwrap();
        assert_eq!(blob.len() % 8, 16 % 8); // sealed, padded, MAC'd — not 9 raw bytes
        assert!(blob.len() > 9);
    }
}
