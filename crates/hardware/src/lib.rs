//! # hardware
//!
//! The special-purpose cryptographic hardware the paper argues some
//! deployments need (section "Kerberos Hardware Design Criteria"):
//!
//! - [`unit::EncryptionUnit`] — a host crypto unit that performs every
//!   Kerberos operation *without ever exposing a key to the host*: keys
//!   live in sealed slots referenced by handles, tagged by purpose, and
//!   no API returns key material. "The encryption box itself must
//!   understand the Kerberos protocols; nothing less will guarantee the
//!   security of the stored keys."
//! - [`keystore`] — a networked, Kerberos-authenticated repository for
//!   sealed key blobs, so server hosts need no long-term local key
//!   storage ("only one master key need be stored within the box").
//! - [`randsvc`] — the secure network random-number service the paper
//!   proposes for generating new instance keys.
//! - [`token::HandheldAuthenticator`] — the login token computing
//!   `{R}K_c`.

pub mod keystore;
pub mod randsvc;
pub mod token;
pub mod unit;

pub use token::HandheldAuthenticator;
pub use unit::{EncryptionUnit, HwError, KeyHandle};
